"""Approximate search tier benchmark: recall@k vs distance computations.

Not a paper figure — the acceptance benchmark for the sublinear search
tier (``repro.search``, see ``docs/SEARCH.md``).  Sweeps the per-query
``search_budget`` across fractions of the corpus size and measures, for
each budget:

- **recall@10** against the exact full-scan ground truth, and
- **exact distance evaluations actually spent** (pivot distances plus
  rerank, via :class:`~repro.distance.base.CountingDistance`) — the
  paper's Section 6.3 cost model, where DP distance evaluations dominate
  query cost.

The headline gate: at the 10k-OG scale the sketch tier reaches
**>= 90% recall@10 while spending <= 10% of the exact scan's distance
computations**.  The curve (recall vs cost) is archived as
``benchmarks/results/BENCH_approx.json``.

Scales (``BENCH_APPROX_SCALE``):

- ``smoke`` — 800 OGs, CI-friendly (< 1 min), same 90%/10% gate;
- ``default`` — 10 000 OGs (the ISSUE's headline scale);
- ``full`` — adds a 100 000-OG curve (no extra gate; the curve is the
  deliverable at that scale).
"""

from __future__ import annotations

import os
import time

import numpy as np

from conftest import format_table, record_result, short_patterns

from repro.datasets.synthetic import SyntheticConfig, generate_synthetic_ogs
from repro.distance.base import CountingDistance
from repro.distance.batch import one_vs_many
from repro.distance.eged import MetricEGED
from repro.search import SketchIndex, approx_knn

SCALE = os.environ.get("BENCH_APPROX_SCALE", "default").lower()
SMOKE = SCALE == "smoke"

SIZES = {"smoke": (800,), "default": (10_000,),
         "full": (10_000, 100_000)}.get(SCALE, (10_000,))
NUM_QUERIES = 8 if SMOKE else 16
K = 10
#: Budget sweep as fractions of the corpus size.
BUDGET_FRACTIONS = (0.01, 0.02, 0.05, 0.10)
#: The docs/SEARCH.md gate: recall@10 at a 10% budget.
GATE_FRACTION = 0.10
GATE_RECALL = 0.90


def _workload(n: int, seed: int = 0):
    """Corpus + held-out queries drawn from the same motion patterns."""
    patterns = short_patterns()
    ogs = generate_synthetic_ogs(SyntheticConfig(
        num_ogs=n, seed=seed, patterns=patterns))
    queries = generate_synthetic_ogs(SyntheticConfig(
        num_ogs=NUM_QUERIES, seed=seed + 1, patterns=patterns))
    return ogs, queries


def _curve(n: int) -> dict:
    """Recall/cost curve for one corpus size."""
    ogs, queries = _workload(n)
    counting = CountingDistance(MetricEGED())
    series = [np.asarray(og.values, dtype=np.float64) for og in ogs]

    t0 = time.perf_counter()
    sketch = SketchIndex.build(counting, ogs)
    build_seconds = time.perf_counter() - t0

    # Exact ground truth: one full scan per query.
    truth = []
    t0 = time.perf_counter()
    for q in queries:
        dists = one_vs_many(MetricEGED(), q.values, series)
        order = np.argsort(dists, kind="stable")[:K]
        truth.append({ogs[i].og_id for i in order})
    scan_seconds = (time.perf_counter() - t0) / len(queries)

    points = []
    for fraction in BUDGET_FRACTIONS:
        budget = max(K, int(round(fraction * n)))
        recalls, spent = [], []
        t0 = time.perf_counter()
        for q, expected in zip(queries, truth):
            counting.reset()
            hits = approx_knn(sketch, counting, q, K, budget)
            spent.append(counting.calls)
            got = {og.og_id for _, og, _ in hits}
            recalls.append(len(got & expected) / K)
        query_seconds = (time.perf_counter() - t0) / len(queries)
        points.append({
            "budget": budget,
            "budget_fraction": fraction,
            "recall_at_10": float(np.mean(recalls)),
            "mean_evaluations": float(np.mean(spent)),
            "max_evaluations": int(max(spent)),
            "cost_fraction": float(np.mean(spent)) / n,
            "query_seconds": query_seconds,
        })
    return {
        "num_ogs": n,
        "num_queries": len(queries),
        "k": K,
        "num_pivots": len(sketch.pivots),
        "sketch_build_seconds": build_seconds,
        "exact_scan_seconds_per_query": scan_seconds,
        "points": points,
    }


def bench_approx_recall_report():
    """Recall@10 vs distance-computation curves; gates the 90%/10% SLO."""
    curves = [_curve(n) for n in SIZES]

    lines = []
    for curve in curves:
        lines.append(f"corpus: {curve['num_ogs']} OGs "
                     f"(scale={SCALE}, k={K}, "
                     f"{curve['num_queries']} queries)")
        rows = [
            [f"{p['budget_fraction']:.0%}", p["budget"],
             f"{p['mean_evaluations']:.0f}",
             f"{p['cost_fraction']:.1%}",
             f"{p['recall_at_10']:.2f}"]
            for p in curve["points"]
        ]
        lines.extend(format_table(
            ["budget", "evals cap", "evals spent", "cost vs scan",
             "recall@10"], rows))
        lines.append("")
    record_result("BENCH_approx", lines,
                  data={"scale": SCALE, "curves": curves})

    for curve in curves:
        gate = next(p for p in curve["points"]
                    if p["budget_fraction"] == GATE_FRACTION)
        n = curve["num_ogs"]
        # Budgets are hard caps above the documented floor of
        # num_pivots + k (k results cannot be ranked with fewer evals).
        for p in curve["points"]:
            cap = max(p["budget"], curve["num_pivots"] + K)
            assert p["max_evaluations"] <= cap, (
                f"{n} OGs: spent {p['max_evaluations']} evaluations "
                f"against a cap of {cap} (budget {p['budget']})"
            )
        if n > 10_000:
            continue  # the 100k curve is reported, not gated
        assert gate["recall_at_10"] >= GATE_RECALL, (
            f"{n} OGs: recall@10 {gate['recall_at_10']:.2f} at a "
            f"{GATE_FRACTION:.0%} budget (need >= {GATE_RECALL:.0%})"
        )
        assert gate["cost_fraction"] <= GATE_FRACTION + 1e-9, (
            f"{n} OGs: spent {gate['cost_fraction']:.1%} of the exact "
            f"scan's distance computations (budget {GATE_FRACTION:.0%})"
        )
