"""Serving-layer load benchmark: throughput scaling across shard counts.

Not a paper figure — an engineering benchmark guarding the serving
subsystem's promises:

1. **Sharding pays on one core.**  A 4-shard affine index answers the
   synthetic 48-pattern k-NN workload at >= 2x the throughput of a
   single shard.  The speedup is algorithmic, not parallel: affine
   placement gives every shard its own cluster budget (more, tighter
   clusters overall) and a pivot fleet whose triangle bounds prune most
   leaf windows before any DP runs.
2. **Exactness is free.**  The hits returned at every shard count are
   identical (distances and ids) — sharding changes the access path,
   never the answer.

Queries run end to end through the public serving stack
(``ShardedIndex`` -> ``LiveIndex`` -> ``QueryService`` -> closed-loop
load generator), so service overhead is included in every number.
Reps are interleaved across shard counts (1, 2, 4, 1, 2, 4, ...) and
the best rep wins, which cancels machine-load drift on shared runners.

Archives ``benchmarks/results/BENCH_serving.json`` with throughput and
p50/p95/p99 latency per shard count.  Scale knob:
``BENCH_SERVING_SCALE=smoke`` shrinks the corpus for CI and skips the
timing assertion (shared runners are too noisy to gate on a ratio);
the full scale asserts the 2x.
"""

from __future__ import annotations

import os
import time

from conftest import format_table, record_result

from repro.core.index import STRGIndexConfig
from repro.datasets.synthetic import SyntheticConfig, generate_synthetic_ogs
from repro.parallel import usable_cpus
from repro.serving import (
    LiveIndex,
    QueryService,
    ServiceConfig,
    ShardedIndex,
    ShardedIndexConfig,
    run_closed_loop,
)

SCALE = os.environ.get("BENCH_SERVING_SCALE", "full")
SMOKE = SCALE == "smoke"

#: Corpus / tuning validated on the development box: 1920 OGs across the
#: 48 synthetic patterns, 10 EM clusters per shard, eval batches of 32.
NUM_OGS = 240 if SMOKE else 1920
CLUSTERS = 6 if SMOKE else 10
REPS = 1 if SMOKE else 3
NUM_QUERIES = 16 if SMOKE else 32
SHARD_COUNTS = (1, 2, 4)
K = 10


def bench_serving_report():
    """Throughput + tail latency at 1/2/4 shards, identical answers."""
    ogs = generate_synthetic_ogs(SyntheticConfig(num_ogs=NUM_OGS, seed=0))
    queries = generate_synthetic_ogs(
        SyntheticConfig(num_ogs=NUM_QUERIES, seed=99))

    services: dict[int, QueryService] = {}
    build_seconds: dict[int, float] = {}
    try:
        for shards in SHARD_COUNTS:
            index = ShardedIndex(ShardedIndexConfig(
                num_shards=shards, placement="affine", eval_batch=32,
                index=STRGIndexConfig(n_clusters=CLUSTERS),
            ))
            t0 = time.perf_counter()
            index.build(ogs)
            build_seconds[shards] = time.perf_counter() - t0
            services[shards] = QueryService(
                LiveIndex(index), ServiceConfig(workers=1, queue_depth=256))

        # Exactness: every shard count returns the same hits.
        reference = None
        for shards, service in services.items():
            hits = [
                [(d, og.og_id) for d, og, _ in
                 service.knn(query, K).hits]
                for query in queries[:4]
            ]
            if reference is None:
                reference = hits
            else:
                assert hits == reference, (
                    f"{shards}-shard hits differ from "
                    f"{SHARD_COUNTS[0]}-shard hits"
                )

        # Interleaved reps: 1, 2, 4, 1, 2, 4, ... best rep per count.
        best: dict[int, object] = {}
        for _ in range(REPS):
            for shards, service in services.items():
                report = run_closed_loop(
                    service, queries, k=K,
                    num_requests=len(queries), concurrency=1,
                )
                assert report.responses == len(queries)
                assert report.errors == 0 and report.rejected == 0
                prior = best.get(shards)
                if prior is None or report.throughput > prior.throughput:
                    best[shards] = report
    finally:
        for service in services.values():
            service.shutdown()

    speedup = best[4].throughput / best[1].throughput
    results = {
        str(shards): {
            "throughput_qps": report.throughput,
            "p50_ms": report.percentile(50) * 1e3,
            "p95_ms": report.percentile(95) * 1e3,
            "p99_ms": report.percentile(99) * 1e3,
            "build_seconds": build_seconds[shards],
        }
        for shards, report in best.items()
    }
    report = {
        "scale": SCALE,
        "config": {
            "num_ogs": NUM_OGS, "num_queries": NUM_QUERIES, "k": K,
            "clusters_per_shard": CLUSTERS, "eval_batch": 32,
            "placement": "affine", "reps": REPS,
        },
        "results": results,
        "speedup_4_vs_1": speedup,
    }

    rows = [
        [shards, f"{report.throughput:.1f}",
         f"{report.percentile(50) * 1e3:.1f}",
         f"{report.percentile(95) * 1e3:.1f}",
         f"{report.percentile(99) * 1e3:.1f}",
         f"{build_seconds[shards]:.1f}"]
        for shards, report in best.items()
    ]
    lines = format_table(
        ["shards", "qps", "p50 ms", "p95 ms", "p99 ms", "build s"], rows)
    lines.append("")
    lines.append(f"speedup 4 shards vs 1: {speedup:.2f}x "
                 f"({NUM_OGS} OGs, scale={SCALE})")
    record_result("BENCH_serving", lines, data=report)

    assert best[2].throughput > 0 and best[4].throughput > 0
    # Same CPU gate bench_ingest uses: on a 1-CPU container the service
    # threads timeshare one core and the speedup target is meaningless.
    if not SMOKE and usable_cpus() >= 2:
        assert speedup >= 2.0, (
            f"4-shard throughput only {speedup:.2f}x the 1-shard baseline "
            "(expected >= 2x from affine placement + pivot pruning)"
        )
