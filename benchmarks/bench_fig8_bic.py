"""Figure 8 — BIC curves find each stream's optimal cluster count.

Paper result: for each video stream, the BIC-vs-K curve peaks at (or
adjacent to) the stream's true cluster count — 9 for Lab1, 6 for Lab2,
Traffic1 and Traffic2 — with "little difference between the actual number
of clusters and the number of clusters found using the BIC measure"
(Table 2, columns 3-4).

Scale: up to 240 OGs per stream (the full streams hold 147-411 — the BIC
peak needs enough data for the per-point likelihood gain to outweigh the
parameter penalty), K swept over 2..12 (the paper sweeps 1..15).
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import format_table, record_result

K_RANGE = (2, 12)
SAMPLE_PER_STREAM = 240


@pytest.fixture(scope="module")
def bic_curves():
    from repro.clustering.bic import bic_curve
    from repro.datasets.real import STREAMS, simulate_stream_ogs

    curves = {}
    for name, spec in STREAMS.items():
        ogs = simulate_stream_ogs(spec)
        rng = np.random.default_rng(42)
        if len(ogs) > SAMPLE_PER_STREAM:
            idx = rng.choice(len(ogs), size=SAMPLE_PER_STREAM, replace=False)
            ogs = [ogs[int(i)] for i in idx]
        k_values = list(range(K_RANGE[0], K_RANGE[1] + 1))
        scores = bic_curve(ogs, k_values, seed=1, max_iterations=8, n_init=2)
        curves[name] = (k_values, scores, spec.n_clusters)
    return curves


def bench_fig8_bic_curves(benchmark, bic_curves):
    """BIC value per candidate K, per stream; peak vs true K."""
    curves = benchmark.pedantic(lambda: bic_curves, rounds=1, iterations=1)
    k_values = curves["Lab1"][0]
    rows = []
    for k_pos, k in enumerate(k_values):
        rows.append([k] + [f"{curves[n][1][k_pos]:.0f}"
                           for n in ("Lab1", "Lab2", "Traffic1", "Traffic2")])
    record_result("fig8_bic_curves", format_table(
        ["K", "Lab1", "Lab2", "Traffic1", "Traffic2"], rows,
    ))

    summary = []
    for name, (ks, scores, true_k) in curves.items():
        found_k = ks[int(np.argmax(scores))]
        summary.append([name, true_k, found_k])
        # "Little difference between the actual number of clusters and the
        # number found using the BIC measure" — allow +/- 2 at this scale.
        assert abs(found_k - true_k) <= 2, (
            f"{name}: BIC found K={found_k}, true K={true_k}"
        )
    record_result("fig8_found_vs_true_k", format_table(
        ["stream", "true K", "BIC K"], summary,
    ))
