"""Table 1 — description of the (simulated) real video data.

Reproduces the inventory: four streams, their OG counts and durations,
956 OGs / ~45 hours total.  The simulated generators must emit exactly
the specified number of OGs per stream.
"""

from __future__ import annotations

from conftest import format_table, record_result


def bench_table1_inventory(benchmark):
    """Stream inventory: #OGs and durations (Table 1)."""
    from repro.datasets.real import STREAMS, simulate_stream_ogs, stream_frame_count

    def run():
        rows = []
        total_ogs = 0
        total_minutes = 0.0
        for name in ("Lab1", "Lab2", "Traffic1", "Traffic2"):
            spec = STREAMS[name]
            ogs = simulate_stream_ogs(spec)
            hours, minutes = divmod(int(spec.duration_minutes), 60)
            rows.append([
                name, len(ogs), f"{hours}h {minutes:02d}m",
                stream_frame_count(spec),
            ])
            total_ogs += len(ogs)
            total_minutes += spec.duration_minutes
        hours, minutes = divmod(int(total_minutes), 60)
        rows.append(["Total", total_ogs, f"{hours}h {minutes:02d}m", "-"])
        return rows, total_ogs, total_minutes

    rows, total_ogs, total_minutes = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    record_result("table1_real_data", format_table(
        ["video", "# of OGs", "duration", "frames@10fps"], rows,
    ))
    assert total_ogs == 956                      # Table 1 total
    assert abs(total_minutes - (45 * 60 + 17)) / (45 * 60) < 0.01  # ~45h17m
