"""Table 2 — per-stream clustering quality, cluster counts and index size.

Paper results per stream: EM-EGED clustering error (traffic < lab because
traffic content is uniform bidirectional motion), BIC-found cluster count
close to the true count, and STRG-Index size 10-15x (or more) below the
raw STRG size.

Scale: clustering quality is evaluated on a 96-OG sample per stream; the
size accounting (Eqs. 9-10) uses the full simulated OG population and the
stream's true frame count, with the BG footprint taken from a rendered
segment of the stream.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import format_table, record_result

SAMPLE = 96
# Matches the Figure 8 bench (same sample, same seed), so the two
# experiments report one consistent found-K per stream.
BIC_SAMPLE = 240
BIC_SEED = 42


@pytest.fixture(scope="module")
def table2():
    from repro.clustering.bic import select_num_clusters
    from repro.clustering.em import EMClustering, EMConfig
    from repro.clustering.evaluation import clustering_error_rate
    from repro.core.index import STRGIndex, STRGIndexConfig
    from repro.core.size import index_size_bytes, strg_raw_size_bytes
    from repro.datasets.real import (
        STREAMS,
        render_stream_segment,
        simulate_stream_ogs,
        stream_frame_count,
    )
    from repro.graph.decomposition import decompose
    from repro.pipeline import PipelineConfig, VideoPipeline

    rows = {}
    pipeline = VideoPipeline(PipelineConfig())
    for name, spec in STREAMS.items():
        all_ogs = simulate_stream_ogs(spec)
        rng = np.random.default_rng(BIC_SEED)
        labels = [og.label for og in all_ogs]

        bic_idx = rng.choice(len(all_ogs),
                             size=min(BIC_SAMPLE, len(all_ogs)),
                             replace=False)
        found_k, _ = select_num_clusters(
            [all_ogs[int(i)] for i in bic_idx], 2, 12, seed=1,
            max_iterations=8, n_init=2,
        )
        em = EMClustering(EMConfig(n_clusters=spec.n_clusters,
                                   max_iterations=10, seed=1, n_init=3))
        result = em.fit(all_ogs)
        error = clustering_error_rate(labels, result.assignments)

        # BG footprint measured from an actually rendered + decomposed
        # segment of this stream.
        video = render_stream_segment(name, num_frames=16)
        decomposition = pipeline.decompose(video)
        bg_bytes = decomposition.background.size_bytes()

        index = STRGIndex(STRGIndexConfig(n_clusters=spec.n_clusters,
                                          em_iterations=6,
                                          cluster_sample_size=SAMPLE))
        index.build(all_ogs, background=decomposition.background)
        raw = strg_raw_size_bytes(all_ogs, bg_bytes,
                                  stream_frame_count(spec))
        compressed = index_size_bytes(index)
        rows[name] = {
            "error": error,
            "true_k": spec.n_clusters,
            "found_k": found_k,
            "raw_mb": raw / 1e6,
            "index_mb": compressed / 1e6,
            "ratio": raw / compressed,
        }
    return rows


def bench_table2_clustering_and_size(benchmark, table2):
    """The full Table 2: error, cluster counts, STRG vs STRG-Index size."""
    rows_by_stream = benchmark.pedantic(lambda: table2, rounds=1, iterations=1)
    rows = []
    for name in ("Lab1", "Lab2", "Traffic1", "Traffic2"):
        r = rows_by_stream[name]
        rows.append([
            name, f"{r['error']:.1f}%", r["true_k"], r["found_k"],
            f"{r['raw_mb']:.2f}MB", f"{r['index_mb']:.3f}MB",
            f"{r['ratio']:.0f}x",
        ])
    record_result("table2_real_streams", format_table(
        ["video", "EM-EGED err", "true K", "BIC K", "STRG size",
         "STRG-Idx size", "reduction"], rows,
    ))

    # Shape assertions from the paper's Table 2:
    # 1. traffic streams cluster more cleanly than lab streams;
    traffic_err = np.mean([rows_by_stream[n]["error"]
                           for n in ("Traffic1", "Traffic2")])
    lab_err = np.mean([rows_by_stream[n]["error"] for n in ("Lab1", "Lab2")])
    assert traffic_err < lab_err
    # 2. BIC lands close to the true cluster count;
    for name, r in rows_by_stream.items():
        assert abs(r["found_k"] - r["true_k"]) <= 2
    # 3. the index is at least 10x smaller than the raw STRG for every
    #    stream, and the reduction grows with stream duration (Lab1, the
    #    40-hour stream, compresses the most).
    for name, r in rows_by_stream.items():
        assert r["ratio"] >= 10.0
    assert rows_by_stream["Lab1"]["ratio"] > rows_by_stream["Traffic2"]["ratio"]
