"""Observability overhead + end-to-end coverage report.

Not a paper figure — an engineering benchmark guarding the PR-3
observability layer's two promises:

1. **Disabled is (nearly) free.**  The hooks compiled into the hot paths
   cost < 3% on the batched distance-kernel sweep (the PR-2 engine
   benchmark shape: one ``one_vs_many`` DP over a 64-series batch) when
   ``repro.observability`` is left disabled.
2. **Enabled sees everything.**  A full simulated run — ingest a
   rendered segment, build the index, run a k-NN query — produces a span
   tree covering every pipeline stage and a non-trivial metrics dump.

Archives ``benchmarks/results/BENCH_observability.json`` plus the trace
(``observability_trace.jsonl``) and Prometheus dump
(``observability_metrics.prom``) of the simulated run.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from conftest import RESULTS_DIR, format_table, record_result

from repro import observability as obs
from repro.distance.batch import _normalize_batch, one_vs_many
from repro.distance.eged import MetricEGED
from repro.observability.registry import MetricsRegistry
from repro.observability.trace import Tracer

#: Sweep shape: the PR-2 kernel-benchmark scale (64 series of 64 nodes).
BATCH_N = 64
BATCH_SIZE = 64
#: Sweeps per timed run (amortizes the timer) and best-of repeats.
SWEEPS = 10
REPEATS = 5

#: Span names the simulated run must cover, stage by stage.
EXPECTED_STAGES = (
    "ingest.segment",
    "pipeline.segmentation",
    "pipeline.tracking",
    "pipeline.decomposition",
    "index.build",
    "clustering.em.fit",
    "index.knn",
)


def _best_of(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _tiny_video():
    """A small rendered segment with two moving objects (~12 frames)."""
    from repro.video.synthesize import (
        Actor,
        BackgroundSpec,
        SceneRenderer,
        linear_trajectory,
        make_vehicle,
    )

    background = BackgroundSpec(
        width=96, height=72, base_color=(100, 100, 100),
        zones=[(0, 0, 96, 24, (60, 60, 140))],
    )
    scene = SceneRenderer(background)
    scene.add_actor(Actor(
        linear_trajectory((5.0, 40.0), (90.0, 40.0), 12),
        make_vehicle((200, 40, 40)), name="car-right",
    ))
    scene.add_actor(Actor(
        linear_trajectory((90.0, 58.0), (5.0, 58.0), 12),
        make_vehicle((40, 200, 40)), name="car-left",
    ))
    return scene.render(12, fps=10.0, name="bench-observability")


def bench_observability_report():
    """Disabled-path overhead + instrumented end-to-end run.

    Times the batched ``one_vs_many`` sweep three ways — a raw local loop
    calling ``compute_many`` directly (no hooks anywhere on the path),
    through the instrumented entry point with observability disabled, and
    again with it enabled — then replays the whole ingest → build → k-NN
    pipeline with observability on and archives its trace and metrics.
    Asserts the disabled path stays within 3% of the raw loop.
    """
    rng = np.random.default_rng(0)
    items = [np.asarray(rng.normal(size=(BATCH_N, 2)) * 20)
             for _ in range(BATCH_SIZE + 1)]
    query, batch = items[0], items[1:]
    distance = MetricEGED()
    a, bs = _normalize_batch(query, batch)

    def raw_sweeps():
        # The pre-observability engine: dispatch straight to the kernel.
        for _ in range(SWEEPS):
            distance.compute_many(a, bs)

    def hooked_sweeps():
        for _ in range(SWEEPS):
            one_vs_many(distance, query, batch)

    obs.configure(enabled=False, registry=MetricsRegistry(), tracer=Tracer())
    raw_s = _best_of(raw_sweeps)
    disabled_s = _best_of(hooked_sweeps)
    obs.configure(enabled=True)
    enabled_s = _best_of(hooked_sweeps)
    obs.configure(enabled=False, registry=MetricsRegistry(), tracer=Tracer())

    disabled_pct = 100.0 * (disabled_s - raw_s) / raw_s
    enabled_pct = 100.0 * (enabled_s - raw_s) / raw_s

    # -- full simulated run with observability enabled ------------------------
    from repro.storage.database import VideoDatabase

    obs.configure(enabled=True, registry=MetricsRegistry(),
                  tracer=Tracer())
    db = VideoDatabase()
    t0 = time.perf_counter()
    n_ogs = db.ingest(_tiny_video())
    walk = np.stack([np.linspace(5, 90, 12), np.full(12, 40.0)], axis=1)
    hits = db.knn(walk, k=min(3, n_ogs))
    run_seconds = time.perf_counter() - t0

    span_names = obs.tracer().span_names()
    missing = [s for s in EXPECTED_STAGES if s not in span_names]
    snapshot = obs.metrics()

    RESULTS_DIR.mkdir(exist_ok=True)
    obs.export_trace_jsonl(RESULTS_DIR / "observability_trace.jsonl")
    obs.export_metrics_prometheus(
        RESULTS_DIR / "observability_metrics.prom"
    )
    obs.configure(enabled=False, registry=MetricsRegistry(), tracer=Tracer())

    n_pairs = SWEEPS * BATCH_SIZE
    report = {
        "config": {
            "series_length": BATCH_N,
            "batch_size": BATCH_SIZE,
            "sweeps_per_run": SWEEPS,
            "best_of": REPEATS,
        },
        "overhead": {
            "raw_seconds": raw_s,
            "disabled_seconds": disabled_s,
            "enabled_seconds": enabled_s,
            "disabled_overhead_pct": disabled_pct,
            "enabled_overhead_pct": enabled_pct,
            "pairs_per_run": n_pairs,
        },
        "simulated_run": {
            "object_graphs": n_ogs,
            "knn_hits": len(hits),
            "seconds": run_seconds,
            "stages_covered": sorted(
                s for s in span_names if s in EXPECTED_STAGES
            ),
            "all_span_names": sorted(span_names),
            "metrics": snapshot,
        },
    }
    rows = [
        ["raw compute_many loop", f"{raw_s * 1e3:.1f}", "-"],
        ["hooks, disabled", f"{disabled_s * 1e3:.1f}",
         f"{disabled_pct:+.2f}%"],
        ["hooks, enabled", f"{enabled_s * 1e3:.1f}",
         f"{enabled_pct:+.2f}%"],
    ]
    lines = format_table(["variant", "ms/run", "overhead"], rows)
    lines.append("")
    lines.append(
        f"simulated run: {n_ogs} OGs ingested, {len(hits)} k-NN hits in "
        f"{run_seconds:.2f}s; stages covered: "
        f"{len(EXPECTED_STAGES) - len(missing)}/{len(EXPECTED_STAGES)}"
    )
    record_result("BENCH_observability", lines, data=report)

    assert not missing, f"simulated run missed stages: {missing}"
    assert snapshot["distance.pairs_computed"] > 0
    assert snapshot["index.knn_queries"] >= 1
    assert disabled_pct < 3.0, (
        f"disabled observability costs {disabled_pct:.2f}% on the kernel "
        "sweep (budget: 3%)"
    )


#: Contention shape: serving-worker counts hammering shared instruments.
CONTENTION_THREADS = 8
CONTENTION_OPS = 20_000


def bench_registry_contention():
    """Locked instruments stay exact and fast under thread contention.

    The serving layer's worker threads bump shared counters/histograms on
    every request, so the registry locks added for thread safety sit on
    the request path.  This micro-bench hammers one counter and one
    histogram from ``CONTENTION_THREADS`` threads, asserts the totals are
    *exact* (the whole point of the locks — unlocked ``+=`` drops
    increments under the interpreter's thread switches), and records the
    single-thread vs contended throughput so a lock-convoy regression
    shows up as an ops/s cliff.
    """
    def hammer(registry: MetricsRegistry, threads: int) -> float:
        counter = registry.counter("contention.ops")
        histogram = registry.histogram("contention.latency")

        def work():
            for i in range(CONTENTION_OPS):
                counter.inc()
                histogram.observe(0.001 * (i % 7))

        pool = [threading.Thread(target=work) for _ in range(threads)]
        t0 = time.perf_counter()
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        elapsed = time.perf_counter() - t0

        total = threads * CONTENTION_OPS
        assert registry.value("contention.ops") == total
        assert registry.histogram("contention.latency").count == total
        return 2 * total / elapsed  # counter + histogram ops

    single_ops = hammer(MetricsRegistry(), 1)
    contended_ops = hammer(MetricsRegistry(), CONTENTION_THREADS)

    rows = [
        ["1 thread", f"{single_ops / 1e6:.2f}"],
        [f"{CONTENTION_THREADS} threads", f"{contended_ops / 1e6:.2f}"],
    ]
    lines = format_table(["contention", "M ops/s"], rows)
    lines.append("")
    lines.append(
        f"totals exact at {CONTENTION_THREADS}x{CONTENTION_OPS} increments "
        "per instrument"
    )
    record_result("BENCH_registry_contention", lines)
