"""Streaming-freshness benchmark: the upload -> queryable SLO.

Not a paper figure — an engineering benchmark guarding the streaming
ingest service's core promise (docs/STREAMING.md):

1. **Uploads become queryable fast.**  Freshness is measured per clip as
   *frames-in to first correct k-NN hit*: the wall-clock gap between
   ``IngestService.submit`` accepting the raw frames and the first
   ``QueryService.knn`` response that returns the clip's own object
   graph.  That spans the whole pipeline — spool, segmentation,
   tracking, decomposition, ``LiveIndex`` commit and snapshot swap.
2. **Ingest never starves reads.**  A reader fleet hammers the query
   service for the entire run; because ingest and query admission are
   separate pools sharing only the copy-on-write snapshot, the readers
   must see **zero** ``ServiceOverloadError`` no matter how hard the
   write path is working.
3. **Faults degrade freshness, not correctness.**  The sweep repeats at
   0%, 1% and 5% injected fault rates on the ``ingest.process`` and
   ``ingest.commit`` points.  Retries absorb the faults: every upload
   must still index exactly once (no quarantine, no loss), with the
   fault tax visible only as added freshness latency and retry counts.

Archives ``benchmarks/results/BENCH_freshness.json`` with per-rate
freshness percentiles, retry totals and reader outcome counts.  Scale
knob: ``BENCH_FRESHNESS_SCALE=smoke`` shrinks the clip counts for CI.
"""

from __future__ import annotations

import os
import threading
import time

from conftest import format_table, record_result

from repro.core.index import STRGIndex, STRGIndexConfig
from repro.errors import ServiceOverloadError
from repro.pipeline import PipelineConfig, VideoPipeline
from repro.resilience import FaultInjector
from repro.resilience.faults import install, uninstall
from repro.resilience.retry import RetryPolicy
from repro.serving import (
    IngestService,
    IngestServiceConfig,
    LiveIndex,
    QueryService,
    ServiceConfig,
)
from repro.video.segmentation import GridSegmenter
from repro.video.synthesize import (
    Actor,
    BackgroundSpec,
    SceneRenderer,
    linear_trajectory,
    make_vehicle,
)

SCALE = os.environ.get("BENCH_FRESHNESS_SCALE", "full")
SMOKE = SCALE == "smoke"

#: Injected fault probability per ingest.process / ingest.commit call.
FAULT_RATES = (0.0, 0.01, 0.05)
NUM_SEEDS = 4 if SMOKE else 8          # corpus present before streaming
NUM_UPLOADS = 3 if SMOKE else 8        # clips streamed in during the run
NUM_READERS = 2
FRAMES = 6
K = 3
POLL_INTERVAL = 0.004                  # probe cadence while waiting
RUN_TIMEOUT = 60.0                     # hard cap per fault rate


def _render(name: str, x0: float, y0: float) -> "object":
    """One 64x48 clip with a single vehicle on a distinct trajectory."""
    scene = SceneRenderer(BackgroundSpec(width=64, height=48,
                                         base_color=(100, 100, 100)))
    scene.add_actor(Actor(
        linear_trajectory((x0, y0), (x0 + 36.0, y0), FRAMES),
        make_vehicle((200, 40, 40)),
    ))
    return scene.render(FRAMES, name=name)


class _Reader(threading.Thread):
    """Closed-loop read client; tallies outcomes until stopped."""

    def __init__(self, service: QueryService, probes, stop: threading.Event):
        super().__init__(name="freshness-reader", daemon=True)
        self.service = service
        self.probes = probes
        self.stop_event = stop
        self.ok = 0
        self.rejected = 0
        self.errors = 0

    def run(self) -> None:
        i = 0
        while not self.stop_event.is_set():
            try:
                self.service.knn(self.probes[i % len(self.probes)], K)
                self.ok += 1
            except ServiceOverloadError:
                self.rejected += 1
            except Exception:  # noqa: BLE001 — load test keeps going
                self.errors += 1
            i += 1


def _percentile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    pos = min(len(ordered) - 1, int(round(q / 100 * (len(ordered) - 1))))
    return ordered[pos]


def _run_rate(rate: float, state_dir, pipeline, seeds, uploads) -> dict:
    """One mixed read/write run at one injected fault rate."""
    index = STRGIndex(STRGIndexConfig(n_clusters=None, k_max=8))
    live = LiveIndex(index)
    live.bulk_insert(
        [og for _, og in seeds],
        clip_refs=[{"video": name} for name, _ in seeds],
    )
    live.compact()

    query = QueryService(live, ServiceConfig(workers=2, queue_depth=64))
    injector = FaultInjector(seed=int(rate * 1000) + 7)
    if rate > 0:
        injector.inject("ingest.process", rate=rate)
        injector.inject("ingest.commit", rate=rate)
    install(injector)
    stop = threading.Event()
    readers = [_Reader(query, [og for _, og in seeds], stop)
               for _ in range(NUM_READERS)]
    freshness: dict[str, float] = {}
    try:
        ingest = IngestService(
            live, pipeline, state_dir=state_dir,
            config=IngestServiceConfig(
                queue_depth=max(8, NUM_UPLOADS),
                min_workers=1, max_workers=2,
                retry_policy=RetryPolicy(max_attempts=4, base_delay=0.01,
                                         seed=0),
                retry_budget=256,
                checkpoint_every=4,
                watchdog_interval=0.02,
            ),
        )
        try:
            for reader in readers:
                reader.start()

            # Sustained writes: every upload is in the door before the
            # first freshness probe, so ingest stays busy throughout.
            submitted: dict[str, float] = {}
            for video, _probe in uploads:
                submitted[video.name] = time.monotonic()
                ingest.submit(video, backpressure=True)

            pending = {video.name: probe for video, probe in uploads}
            run_deadline = time.monotonic() + RUN_TIMEOUT
            while pending and time.monotonic() < run_deadline:
                for name, probe in list(pending.items()):
                    response = query.knn(probe, K)
                    if any(ref and ref.get("video") == name
                           for _, _, ref in response.hits):
                        freshness[name] = time.monotonic() - submitted[name]
                        del pending[name]
                time.sleep(POLL_INTERVAL)

            assert not pending, (
                f"rate={rate}: {sorted(pending)} never became queryable "
                f"within {RUN_TIMEOUT}s"
            )
            assert ingest.drain(timeout=RUN_TIMEOUT)
            health = ingest.health()
        finally:
            stop.set()
            for reader in readers:
                reader.join(timeout=5.0)
            ingest.shutdown()
    finally:
        uninstall()
        query.shutdown()

    # The SLO guard: sustained ingest must never push reads into
    # overload — admission pools are independent by design.
    reads_ok = sum(r.ok for r in readers)
    reads_rejected = sum(r.rejected for r in readers)
    reads_errors = sum(r.errors for r in readers)
    assert reads_rejected == 0, (
        f"rate={rate}: {reads_rejected} reads rejected with "
        "ServiceOverloadError during sustained ingest"
    )
    assert reads_errors == 0, f"rate={rate}: {reads_errors} reader errors"
    assert health["indexed_jobs"] == NUM_UPLOADS
    assert health["quarantined"] == 0, (
        f"rate={rate}: transient faults must be retried, not quarantined: "
        f"{health['quarantined_jobs']}"
    )

    values = list(freshness.values())
    return {
        "fault_rate": rate,
        "uploads": NUM_UPLOADS,
        "indexed_jobs": health["indexed_jobs"],
        "retries": health["retries"],
        "quarantined": health["quarantined"],
        "freshness_p50_ms": _percentile(values, 50) * 1e3,
        "freshness_max_ms": max(values) * 1e3,
        "reads_ok": reads_ok,
        "reads_rejected": reads_rejected,
        "reads_errors": reads_errors,
    }


def bench_freshness_report(tmp_path):
    """Upload -> queryable latency at 0/1/5% faults, reads never shed."""
    pipeline = VideoPipeline(PipelineConfig(
        segmenter=GridSegmenter(min_region_size=10)))

    # Seeds give the readers a standing corpus; uploads stream in live.
    # Distinct trajectories keep every clip its own nearest neighbour,
    # so "correct hit" is exact (distance 0 to its own probe OG).
    seeds = []
    for i in range(NUM_SEEDS):
        clip = _render(f"seed-{i:02d}", x0=4.0 + i, y0=10.0 + 3.0 * i)
        result = pipeline.process_clip(clip)
        assert result.object_graphs, f"seed {i} produced no OGs"
        seeds.append((clip.name, result.object_graphs[0]))

    uploads = []
    for i in range(NUM_UPLOADS):
        clip = _render(f"live-{i:02d}", x0=6.5 + i, y0=11.5 + 3.0 * i)
        result = pipeline.process_clip(clip)
        assert result.object_graphs, f"upload {i} produced no OGs"
        uploads.append((clip, result.object_graphs[0]))

    results = []
    for rate in FAULT_RATES:
        state_dir = tmp_path / f"ingest-{int(rate * 100):02d}"
        results.append(_run_rate(rate, state_dir, pipeline, seeds, uploads))

    rows = [
        [f"{r['fault_rate']:.0%}", r["uploads"], r["retries"],
         f"{r['freshness_p50_ms']:.0f}", f"{r['freshness_max_ms']:.0f}",
         r["reads_ok"], r["reads_rejected"]]
        for r in results
    ]
    lines = format_table(
        ["faults", "uploads", "retries", "p50 ms", "max ms",
         "reads ok", "rejected"], rows)
    lines.append("")
    lines.append(
        f"{NUM_UPLOADS} uploads x {len(FAULT_RATES)} fault rates, "
        f"{NUM_READERS} readers, scale={SCALE}"
    )
    record_result("BENCH_freshness", lines, data={
        "scale": SCALE,
        "config": {
            "num_seeds": NUM_SEEDS, "num_uploads": NUM_UPLOADS,
            "num_readers": NUM_READERS, "frames": FRAMES, "k": K,
            "fault_rates": list(FAULT_RATES),
            "fault_points": ["ingest.process", "ingest.commit"],
        },
        "results": results,
    })
