"""Shared machinery for the experiment-reproduction benchmarks.

Each ``bench_*`` module regenerates one table or figure of the paper's
evaluation (Section 6) at laptop scale.  Absolute values differ from the
paper (different hardware, simulated data); the *shape* of each result —
orderings, trends, crossovers — is asserted programmatically and the raw
series is printed and archived under ``benchmarks/results/``.

Scaling note: workload sizes are reduced relative to the paper (which
used a 2.6 GHz Pentium 4 and multi-hour video) so the whole suite runs in
minutes; every module states its scale in its docstring.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

RESULTS_DIR = Path(__file__).parent / "results"

# Shortened pattern lengths keep the O(n*m) distance DP cheap in sweeps.
BENCH_LENGTH_RANGE = (10, 20)


def short_patterns(count: int | None = None):
    """The motion patterns with bench-friendly (shorter) time lengths.

    ``count`` selects an evenly spread subset covering all categories.
    """
    import dataclasses

    from repro.datasets.patterns import ALL_PATTERNS

    patterns = [
        dataclasses.replace(p, length_range=BENCH_LENGTH_RANGE)
        for p in ALL_PATTERNS
    ]
    if count is None or count >= len(patterns):
        return patterns
    step = len(patterns) / count
    return [patterns[int(i * step)] for i in range(count)]


def record_result(name: str, lines: list[str], data=None,
                  json_name: str | None = None) -> None:
    """Print a result table and archive it under benchmarks/results/.

    Every call archives both forms: the printed table as ``{name}.txt``
    and a machine-readable JSON artifact.  With ``data`` set, that is
    the structured result itself — under ``{json_name}.json`` keyed by
    ``name`` (several benches merging into one artifact, each run
    updating its own key), or — without ``json_name`` — as
    ``{name}.json``.  Without ``data`` the table lines are archived as
    ``{"lines": [...]}`` so downstream tooling can rely on a JSON file
    existing for every recorded result.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines)
    print(f"\n=== {name} ===\n{text}\n")
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    import json

    if data is None:
        data = {"lines": lines}
    if json_name is None:
        (RESULTS_DIR / f"{name}.json").write_text(
            json.dumps(data, indent=2, default=str) + "\n")
        return
    merged_path = RESULTS_DIR / f"{json_name}.json"
    merged = {}
    if merged_path.exists():
        try:
            merged = json.loads(merged_path.read_text())
        except ValueError:
            merged = {}
    if not isinstance(merged, dict):
        merged = {}
    merged[name] = data
    merged_path.write_text(json.dumps(merged, indent=2, default=str) + "\n")


def format_table(headers: list[str], rows: list[list]) -> list[str]:
    """Fixed-width table lines from headers + rows."""
    table = [headers] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in table) for i in range(len(headers))]
    lines = []
    for i, row in enumerate(table):
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return lines


@pytest.fixture(scope="session")
def bench_rng():
    """Session-wide deterministic RNG for query sampling."""
    return np.random.default_rng(2005)


#: Noise levels swept by the Figure 5/6 benches (the paper uses 5%-30%).
NOISE_LEVELS = (0.05, 0.10, 0.20, 0.30)

#: (algorithm, distance) grid of Figures 5 and 6.
ALGORITHMS = ("EM", "KM", "KHM")
DISTANCES = ("EGED", "LCS", "DTW")


def make_clusterer(algo: str, distance_name: str, n_clusters: int,
                   max_iterations: int = 12):
    """Instantiate one (algorithm, distance) cell of the Fig. 5 grid."""
    from repro.clustering.em import EMClustering, EMConfig
    from repro.clustering.khm import KHMClustering, KHMConfig
    from repro.clustering.kmeans import KMeansClustering, KMeansConfig
    from repro.distance.dtw import DTW
    from repro.distance.eged import EGED
    from repro.distance.lcs import LCSDistance

    distance = {
        "EGED": EGED,
        "LCS": lambda: LCSDistance(epsilon=12.0),
        "DTW": DTW,
    }[distance_name]()
    if algo == "EM":
        return EMClustering(
            EMConfig(n_clusters=n_clusters, max_iterations=max_iterations,
                     seed=0),
            distance=distance,
        )
    if algo == "KM":
        return KMeansClustering(
            KMeansConfig(n_clusters=n_clusters,
                         max_iterations=max_iterations, seed=0),
            distance=distance,
        )
    return KHMClustering(
        KHMConfig(n_clusters=n_clusters, max_iterations=max_iterations,
                  seed=0),
        distance=distance,
    )


@pytest.fixture(scope="session")
def clustering_grid():
    """The full (algorithm x distance x noise) clustering sweep.

    Computed once per session and shared by the Fig. 5 and Fig. 6
    benches.  Uses 12 of the 48 patterns (96 OGs, shortened lengths) so
    the 36-run sweep stays within a couple of minutes.
    """
    from repro.clustering.evaluation import clustering_error_rate, distortion
    from repro.datasets.synthetic import SyntheticConfig, generate_synthetic_ogs
    from repro.distance.lp import LpDistance

    patterns = short_patterns(12)
    true_centroids = [p.generate(15) for p in patterns]
    grid: dict = {}
    for noise in NOISE_LEVELS:
        ogs = generate_synthetic_ogs(SyntheticConfig(
            num_ogs=96, noise_fraction=noise, seed=11, patterns=patterns,
        ))
        labels = [og.label for og in ogs]
        for algo in ALGORITHMS:
            for distance_name in DISTANCES:
                clusterer = make_clusterer(algo, distance_name, len(patterns))
                result = clusterer.fit(ogs)
                error = clustering_error_rate(labels, result.assignments)
                dtn = distortion(true_centroids, result.centroids,
                                 distance=LpDistance(2.0))
                grid[(algo, distance_name, noise)] = {
                    "error": error,
                    "distortion": dtn,
                    "iterations": result.n_iterations,
                    "iteration_seconds": result.iteration_seconds,
                    "converged": result.converged,
                }
    return grid
