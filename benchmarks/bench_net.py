"""Process-worker serving vs the thread-pool service (BENCH_net).

PR 4's ``QueryService`` fans shard work out on *threads*, so all
shards timeshare one GIL; the ``WorkerPool`` + ``NetFrontend`` stack
promotes shards to processes that memory-map one columnar snapshot.
This bench drives the same corpus through both stacks:

1. **Parity** — an HTTP ``/knn`` answer must be bit-identical to the
   in-process ``ShardedIndex`` on the same snapshot, at every process
   count and in both pool layouts (replicated and shard-partitioned).
2. **Scaling** — open-loop HTTP load at 1/2/4 worker processes over a
   4-shard store.  The scaling axis is *replicas* (1 slot, each
   process serves the whole snapshot, requests round-robin) because
   that is apples-to-apples with the thread pool: identical
   per-request work, GIL vs no GIL the only variable.  On a >= 4-core
   host, 4 processes must clear 3.5x the 1-process throughput.
3. **Partitioned layout** — one extra point with 4 shard slots (each
   request fans out to every worker, coordinator-probed shared bound),
   the latency-oriented layout; recorded, not gated.
4. **Baseline** — the PR 4 thread-pool service (4 threads, same index)
   recorded alongside, so the artifact shows what processes buy.

Scale: BENCH_NET_SCALE=smoke (CI) serves 240 OGs for ~2 s per point;
the full run serves 960 OGs for ~4 s per point.  The scaling gate only
applies on hosts with >= 4 usable cores (a 1-CPU container timeshares
everything and the ratio is meaningless).
"""

from __future__ import annotations

import os
import tempfile
import time

from conftest import format_table, record_result

from repro.core.index import STRGIndexConfig
from repro.datasets.synthetic import SyntheticConfig, generate_synthetic_ogs
from repro.parallel import usable_cpus
from repro.serving import (
    LiveIndex,
    NetConfig,
    NetFrontend,
    QueryService,
    ServiceConfig,
    ShardedIndex,
    ShardedIndexConfig,
    WorkerPool,
    WorkerPoolConfig,
    run_http_open_loop,
    run_open_loop,
)
from repro.serving.net import request_json
from repro.storage.store import open_store

SCALE = os.environ.get("BENCH_NET_SCALE", "full")
SMOKE = SCALE == "smoke"

NUM_OGS = 240 if SMOKE else 960
CLUSTERS = 6 if SMOKE else 8
NUM_QUERIES = 8 if SMOKE else 16
NUM_SHARDS = 4
WORKER_COUNTS = (1, 2, 4)
K = 10
RATE = 400.0                 # offered load; capacity caps completions
DURATION = 1.5 if SMOKE else 4.0
CONCURRENCY = 16


def bench_net_report():
    """HTTP parity + process-worker scaling vs the threaded baseline."""
    ogs = generate_synthetic_ogs(SyntheticConfig(num_ogs=NUM_OGS, seed=0))
    queries = generate_synthetic_ogs(
        SyntheticConfig(num_ogs=NUM_QUERIES, seed=99))
    index = ShardedIndex(ShardedIndexConfig(
        num_shards=NUM_SHARDS, placement="affine", eval_batch=32,
        index=STRGIndexConfig(n_clusters=CLUSTERS)))
    t0 = time.perf_counter()
    index.build(ogs, clip_refs=[f"clip-{i}" for i in range(len(ogs))])
    build_seconds = time.perf_counter() - t0

    with tempfile.TemporaryDirectory() as tmp:
        store = open_store(os.path.join(tmp, "corpus.strg"),
                           format="columnar")
        store.write_index(index)
        reference = open_store(store.path).load_index(mmap=True)
        expected = {
            i: [(d, ref) for d, _og, ref in reference.knn(q, K)]
            for i, q in enumerate(queries)
        }

        # Replicated layout (the thread-pool apples-to-apples): one
        # slot, N processes each serving the whole snapshot, requests
        # round-robined — plus one shard-partitioned point (4 slots,
        # every request fans out behind the probed shared bound).
        layouts = [(f"http x{n}", WorkerPoolConfig(workers=1, replicas=n))
                   for n in WORKER_COUNTS]
        layouts.append(
            ("http 4 slots", WorkerPoolConfig(workers=4, replicas=1)))
        http_reports = {}
        for label, pool_config in layouts:
            with WorkerPool(store.path, pool_config) as pool:
                with NetFrontend(pool, config=NetConfig(
                        max_inflight=256)) as frontend:
                    # Parity gate before any load: every query, over the
                    # wire, bit-identical to the in-process answer.
                    for i, q in enumerate(queries):
                        status, body = request_json(
                            "127.0.0.1", frontend.port, "POST", "/knn",
                            {"query": q.values.tolist(), "k": K})
                        assert status == 200, (status, body)
                        got = [(h["distance"], h["clip_ref"])
                               for h in body["hits"]]
                        assert got == expected[i], (
                            f"HTTP knn diverged from in-process at "
                            f"{label}, query {i}")
                        assert not body["degraded"]
                    http_reports[label] = run_http_open_loop(
                        "127.0.0.1", frontend.port, queries, k=K,
                        rate=RATE, duration=DURATION,
                        concurrency=CONCURRENCY)

        # PR 4 baseline: the same snapshot behind the thread service.
        with QueryService(LiveIndex(reference), ServiceConfig(
                workers=4, queue_depth=256)) as service:
            threaded = run_open_loop(service, queries, k=K,
                                     rate=RATE, duration=DURATION)

    speedup = (http_reports["http x4"].throughput
               / max(http_reports["http x1"].throughput, 1e-9))
    cpus = usable_cpus()
    results = {
        label.replace(" ", "_"): report.as_dict()
        for label, report in http_reports.items()
    }
    results["threaded_4_workers"] = threaded.as_dict()
    report = {
        "scale": SCALE,
        "usable_cpus": cpus,
        "config": {
            "num_ogs": NUM_OGS, "num_queries": NUM_QUERIES, "k": K,
            "num_shards": NUM_SHARDS, "clusters_per_shard": CLUSTERS,
            "rate": RATE, "duration": DURATION,
            "concurrency": CONCURRENCY,
            "build_seconds": build_seconds,
        },
        "results": results,
        "speedup_4_vs_1_workers": speedup,
    }

    rows = [
        [label, f"{rep.throughput:.1f}",
         f"{rep.percentile(50) * 1e3:.1f}",
         f"{rep.percentile(99) * 1e3:.1f}",
         rep.responses, rep.rejected]
        for label, rep in http_reports.items()
    ]
    rows.append(["threads x4", f"{threaded.throughput:.1f}",
                 f"{threaded.percentile(50) * 1e3:.1f}",
                 f"{threaded.percentile(99) * 1e3:.1f}",
                 threaded.responses, threaded.rejected])
    lines = format_table(
        ["stack", "qps", "p50 ms", "p99 ms", "ok", "rejected"], rows)
    lines.append("")
    lines.append(f"speedup 4 vs 1 worker processes: {speedup:.2f}x "
                 f"({NUM_OGS} OGs, {cpus} usable cpu(s), scale={SCALE})")
    record_result("BENCH_net", lines, data=report)

    for rep in http_reports.values():
        assert rep.responses > 0 and rep.errors == 0
    # The near-linear scaling claim needs real cores under the workers;
    # a 1-CPU container timeshares them and proves nothing either way.
    if not SMOKE and cpus >= 4:
        assert speedup >= 3.5, (
            f"4 worker processes only {speedup:.2f}x the 1-process "
            "baseline (expected >= 3.5x: search kernels share no GIL)"
        )
