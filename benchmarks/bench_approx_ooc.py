"""Out-of-core approximate search benchmark: recall/cost + resident set.

The acceptance benchmark for the store-streamed sketch tier
(``ColumnarStore.load_sketch`` + the blocked candidate scan, see
``docs/SEARCH.md``).  For each corpus size it builds one columnar
snapshot with a persisted sketch, then measures in fresh subprocesses
(so each mode pays its own pages, never the builder's):

- **in-RAM** — eager ``open_database(mmap=False)``: the tree, every OG
  and the sketch arrays all resident; budgeted queries run against the
  materialized index.
- **out-of-core** — lazy ``open_database()`` on the mmap store:
  budgeted queries stream the sketch columns and fetch only shortlist
  series; the tree is never built.

Gates (all assertions, run before any number is archived):

- both children return **bit-identical** budgeted hits;
- the out-of-core child never materializes the tree;
- the PR 7 recall gate still holds on the streamed sketch
  (>= 90% recall@10 at <= 10% of the exact scan's evaluations);
- at the largest corpus, the out-of-core mode's **anonymous** RSS
  growth (``RssAnon`` — heap pages the process owns, which the OS
  cannot reclaim without swap) is <= ``RSS_GATE_FRACTION`` of the
  in-RAM mode's, with an absolute floor absorbing allocator noise at
  small scales.

The gate is on *anonymous* memory deliberately.  The in-RAM mode's
footprint is entirely anonymous (every OG, the tree and the sketch live
on the heap).  The out-of-core mode's remaining resident pages are
file-backed mmap — the sketch columns the full scan reads and the
shortlist's trajectory pages — which are clean page cache: evictable
under pressure and shared between every process mapping the snapshot.
(The shortlist alone is ``BUDGET_FRACTION`` of the corpus per query, so
*total* RSS necessarily touches ~10% of the trajectory bytes; counting
reclaimable cache against the gate would just restate the budget.)  The
JSON report archives all three components (total / anon / file-backed)
for both modes.

Scales (``BENCH_APPROX_OOC_SCALE``):

- ``smoke``   — 4 000 OGs, CI-friendly;
- ``default`` — 20 000 OGs;
- ``full``    — 100 000 OGs (the committed artifact's scale);
- ``xl``      — 1 000 000 OGs: the ROADMAP north-star point.  The
  index build dominates (hours); the module is scale-free — the same
  blocked scan and subprocess RSS probes drive every size unchanged.

The structured result is archived as
``benchmarks/results/BENCH_approx_ooc.json``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time

import numpy as np

from conftest import format_table, record_result, short_patterns

from repro.core.index import STRGIndex, STRGIndexConfig
from repro.datasets.synthetic import SyntheticConfig, generate_synthetic_ogs
from repro.distance.base import CountingDistance
from repro.distance.batch import one_vs_many
from repro.distance.eged import MetricEGED
from repro.storage.columnar import ColumnarStore

SCALE = os.environ.get("BENCH_APPROX_OOC_SCALE", "default").lower()
SMOKE = SCALE == "smoke"

SIZES = {"smoke": (4_000,), "default": (20_000,), "full": (100_000,),
         "xl": (100_000, 1_000_000)}.get(SCALE, (20_000,))
NUM_QUERIES = 6 if SMOKE else 8
K = 10
#: Per-query budget as a fraction of the corpus (the PR 7 gate point).
BUDGET_FRACTION = 0.10
GATE_RECALL = 0.90
#: Out-of-core anonymous-RSS growth must stay under this fraction of
#: the in-RAM mode's (see the module docstring for why anon)...
RSS_GATE_FRACTION = 0.10
#: ...above an absolute floor: interpreter/numpy allocator noise makes
#: ratios meaningless once both sides are a few MB.
RSS_FLOOR_KB = 12_000

#: Runs in a fresh interpreter: open the snapshot in one mode, run the
#: budgeted queries, report hits + wall time + VmRSS growth.
_CHILD = r"""
import json, sys, time


def rss_kb():
    out = {"VmRSS": 0, "RssAnon": 0, "RssFile": 0}
    with open("/proc/self/status") as fh:
        for line in fh:
            key = line.split(":", 1)[0]
            if key in out:
                out[key] = int(line.split()[1])
    return out


import numpy as np   # noqa: E402
import repro         # noqa: E402  (import cost excluded from the window)

path, mode, queries_npz, k, budget = sys.argv[1:6]
k, budget = int(k), int(budget)
packed = np.load(queries_npz)
values, offsets = packed["values"], packed["offsets"]
queries = [values[offsets[i]:offsets[i + 1]]
           for i in range(len(offsets) - 1)]

before = rss_kb()
t0 = time.perf_counter()
db = repro.open_database(path, create=False,
                         mmap=(False if mode == "inram" else "auto"))
open_s = time.perf_counter() - t0
t0 = time.perf_counter()
sig = [[(float(h.distance), h.clip_ref)
        for h in db.knn(q, k, search_budget=budget)]
       for q in queries]
query_s = (time.perf_counter() - t0) / len(queries)
after = rss_kb()
print(json.dumps({
    "open_s": open_s,
    "query_s": query_s,
    "rss_kb": max(after["VmRSS"] - before["VmRSS"], 0),
    "anon_kb": max(after["RssAnon"] - before["RssAnon"], 0),
    "file_kb": max(after["RssFile"] - before["RssFile"], 0),
    "tree_loaded": db.index_loaded,
    "sig": sig,
}))
"""


def _workload(n: int, seed: int = 0):
    patterns = short_patterns()
    ogs = generate_synthetic_ogs(SyntheticConfig(
        num_ogs=n, seed=seed, patterns=patterns))
    queries = generate_synthetic_ogs(SyntheticConfig(
        num_ogs=NUM_QUERIES, seed=seed + 1, patterns=patterns))
    return ogs, queries


def _build_store(tmp_path, n: int, ogs, queries):
    """Columnar snapshot with the sketch tier persisted."""
    index = STRGIndex(STRGIndexConfig(n_clusters=8, em_iterations=2))
    t0 = time.perf_counter()
    index.build(ogs, clip_refs=[f"clip-{i}" for i in range(n)])
    build_s = time.perf_counter() - t0
    index.knn(queries[0], K, search_budget=max(K, int(0.02 * n)))
    store = ColumnarStore(tmp_path / f"ooc-{n}")
    store.write_index(index)
    return store, index, build_s


def _pack_queries(tmp_path, queries, n: int) -> str:
    series = [np.asarray(q.values, dtype=np.float64) for q in queries]
    offsets = np.zeros(len(series) + 1, dtype=np.int64)
    np.cumsum([len(s) for s in series], out=offsets[1:])
    path = os.fspath(tmp_path / f"queries-{n}.npz")
    np.savez(path, values=np.concatenate(series), offsets=offsets)
    return path


def _run_child(store_path, mode, queries_npz, budget) -> dict:
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD, os.fspath(store_path), mode,
         queries_npz, str(K), str(budget)],
        capture_output=True, text=True, check=True,
    )
    return json.loads(proc.stdout)


def _recall_and_cost(store, ogs, queries, budget) -> tuple[float, float]:
    """PR 7 gate, measured on the streamed sketch itself."""
    from repro.search import approx_knn

    counting = CountingDistance(MetricEGED())
    sketch = store.load_sketch(distance=counting, mmap=True)
    assert sketch is not None
    series = [np.asarray(og.values, dtype=np.float64) for og in ogs]
    recalls, spent = [], []
    for q in queries:
        dists = one_vs_many(MetricEGED(), q.values, series)
        expected = {f"clip-{i}"
                    for i in np.argsort(dists, kind="stable")[:K]}
        counting.reset()
        hits = approx_knn(sketch, counting, q, K, budget)
        spent.append(counting.calls)
        got = {ref for _, _, ref in hits}
        recalls.append(len(got & expected) / K)
    return float(np.mean(recalls)), float(np.mean(spent)) / len(ogs)


def _point(tmp_path, n: int) -> dict:
    ogs, queries = _workload(n)
    store, index, build_s = _build_store(tmp_path, n, ogs, queries)
    budget = max(K, int(round(BUDGET_FRACTION * n)))

    # -- correctness gates before any timing ---------------------------
    want = [[(float(d), ref)
             for d, _og, ref in index.knn(q, K, search_budget=budget)]
            for q in queries]
    recall, cost_fraction = _recall_and_cost(store, ogs, queries, budget)
    del index, ogs  # the children must pay for their own pages

    queries_npz = _pack_queries(tmp_path, queries, n)
    inram = _run_child(store.path, "inram", queries_npz, budget)
    ooc = _run_child(store.path, "ooc", queries_npz, budget)

    as_sig = [[(float(d), ref) for d, ref in per] for per in inram["sig"]]
    assert as_sig == want, "in-RAM child diverged from the builder"
    assert [[(float(d), ref) for d, ref in per] for per in ooc["sig"]] \
        == want, "out-of-core child diverged from the in-RAM answers"
    assert inram["tree_loaded"], "in-RAM child should materialize"
    assert not ooc["tree_loaded"], \
        "out-of-core child materialized the tree"

    keep = ("open_s", "query_s", "rss_kb", "anon_kb", "file_kb")
    return {
        "num_ogs": n,
        "num_queries": len(queries),
        "k": K,
        "budget": budget,
        "index_build_seconds": build_s,
        "recall_at_10": recall,
        "cost_fraction": cost_fraction,
        "inram": {key: inram[key] for key in keep},
        "ooc": {key: ooc[key] for key in keep},
        "anon_ratio": ooc["anon_kb"] / max(inram["anon_kb"], 1),
    }


def bench_approx_ooc_report(tmp_path):
    """RSS + recall/cost of out-of-core vs in-RAM budgeted search."""
    points = [_point(tmp_path, n) for n in SIZES]

    lines = [f"out-of-core approximate search (scale={SCALE}, k={K}, "
             f"budget={BUDGET_FRACTION:.0%} of corpus; anon = heap pages "
             "owned by the process, mmap = reclaimable file-backed cache)"]
    rows = [
        [p["num_ogs"], f"{p['recall_at_10']:.2f}",
         f"{p['cost_fraction']:.1%}",
         f"{p['inram']['anon_kb'] / 1024:.1f}",
         f"{p['ooc']['anon_kb'] / 1024:.1f}",
         f"{p['ooc']['file_kb'] / 1024:.1f}",
         f"{p['anon_ratio']:.1%}",
         f"{p['inram']['query_s'] * 1e3:.0f}",
         f"{p['ooc']['query_s'] * 1e3:.0f}"]
        for p in points
    ]
    lines.extend(format_table(
        ["corpus", "recall@10", "cost", "RAM anon MB", "OOC anon MB",
         "OOC mmap MB", "anon ratio", "RAM ms/q", "OOC ms/q"], rows))
    record_result("BENCH_approx_ooc", lines,
                  data={"scale": SCALE,
                        "rss_gate_fraction": RSS_GATE_FRACTION,
                        "rss_floor_kb": RSS_FLOOR_KB,
                        "points": points})

    for p in points:
        assert p["recall_at_10"] >= GATE_RECALL, (
            f"{p['num_ogs']} OGs: recall@10 {p['recall_at_10']:.2f} "
            f"(need >= {GATE_RECALL:.0%})")
        assert p["cost_fraction"] <= BUDGET_FRACTION + 1e-9, (
            f"{p['num_ogs']} OGs: spent {p['cost_fraction']:.1%} of the "
            f"exact scan (budget {BUDGET_FRACTION:.0%})")
    largest = max(points, key=lambda p: p["num_ogs"])
    allowed = max(RSS_GATE_FRACTION * largest["inram"]["anon_kb"],
                  RSS_FLOOR_KB)
    assert largest["ooc"]["anon_kb"] <= allowed, (
        f"{largest['num_ogs']} OGs: out-of-core anonymous RSS grew "
        f"{largest['ooc']['anon_kb']} KB vs {largest['inram']['anon_kb']} "
        f"KB in-RAM (allowed {allowed:.0f} KB)")
