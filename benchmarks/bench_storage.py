"""Storage-tier benchmark: columnar cold-open vs NPZ full-load.

Not a paper figure — an engineering benchmark guarding the columnar
store's two core promises (docs/STORAGE.md):

1. **O(1) cold open.**  ``repro.open_database()`` on a columnar
   ``.strg/`` store returns after reading one manifest: trajectory
   bytes stay on disk (memory-mapped, faulted in per query) and the
   tree materializes lazily.  The NPZ path decompresses and
   checksums the whole archive and rebuilds the tree eagerly.  Both
   cold-open latency and the resident-set growth of the opening
   process must be **at least 5x better** on the columnar store —
   measured in fresh subprocesses so page cache warmth is the only
   shared state.
2. **O(delta) checkpoints.**  Appending one clip-sized write batch to
   a columnar store moves bytes proportional to the batch, not the
   corpus; the NPZ "checkpoint" is a full rewrite.  The delta segment
   must be at most 1/5 of the full archive.

Correctness gates run *before* any timing: the NPZ load, the columnar
in-RAM load and the columnar mmap load must return bit-identical k-NN
results (same distances, same clip refs, same order).

Archives ``benchmarks/results/BENCH_storage.json``.  Scale knob:
``BENCH_STORAGE_SCALE=smoke`` shrinks the corpus for CI.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time

import numpy as np
from conftest import format_table, record_result

from repro.core.index import STRGIndex, STRGIndexConfig
from repro.graph.object_graph import ObjectGraph
from repro.serving.snapshot import _BufferedWrite
from repro.storage.store import open_store

SCALE = os.environ.get("BENCH_STORAGE_SCALE", "full")
SMOKE = SCALE == "smoke"

NUM_OGS = 120 if SMOKE else 400
#: Long trajectories so array bytes (not Python object overhead)
#: dominate what the two formats load.
NODE_RANGE = (60, 120)
SEED_BUILD = 48            # OGs clustered up front; the rest insert
OPEN_REPEATS = 2 if SMOKE else 3
K = 10
NUM_QUERIES = 8
MIN_RATIO = 5.0            # the acceptance floor on both open gates
MAX_DELTA_FRACTION = 0.2   # delta segment vs full archive bytes

#: Runs in a fresh interpreter per sample: open the database and
#: report wall time + VmRSS growth of just the open call.
_CHILD = r"""
import json, sys, time


def rss_kb():
    with open("/proc/self/status") as fh:
        for line in fh:
            if line.startswith("VmRSS:"):
                return int(line.split()[1])
    return 0


import repro  # noqa: E402  (import cost excluded from the window)

path = sys.argv[1]
before = rss_kb()
t0 = time.perf_counter()
db = repro.open_database(path, create=False)
open_s = time.perf_counter() - t0
after = rss_kb()
print(json.dumps({"open_s": open_s, "rss_kb": max(after - before, 0)}))
"""


def _corpus(rng):
    ogs = []
    for i in range(NUM_OGS):
        n = int(rng.integers(*NODE_RANGE))
        values = (np.cumsum(rng.normal(0.0, 1.0, (n, 2)), axis=0)
                  + rng.uniform(0.0, 500.0, 2))
        ogs.append(ObjectGraph.from_values(values, label=i % 6))
    return ogs


def _build(ogs):
    index = STRGIndex(STRGIndexConfig(n_clusters=8, em_iterations=2))
    index.build(ogs[:SEED_BUILD],
                clip_refs=[f"clip-{i}" for i in range(SEED_BUILD)])
    for i, og in enumerate(ogs[SEED_BUILD:], start=SEED_BUILD):
        index.insert(og, None, f"clip-{i}")
    return index


def _knn_signature(index, queries):
    return [[(d, ref) for d, _, ref in index.knn(q, K)] for q in queries]


def _measure_open(path) -> dict:
    samples = []
    for _ in range(OPEN_REPEATS):
        proc = subprocess.run(
            [sys.executable, "-c", _CHILD, os.fspath(path)],
            capture_output=True, text=True, check=True,
        )
        samples.append(json.loads(proc.stdout))
    return {
        "open_ms": min(s["open_s"] for s in samples) * 1e3,
        "rss_kb": int(np.median([s["rss_kb"] for s in samples])),
    }


def _tree_bytes(path) -> int:
    total = 0
    for root, _, files in os.walk(path):
        total += sum(os.path.getsize(os.path.join(root, f)) for f in files)
    return total


def bench_storage_report(tmp_path):
    """Cold-open latency/RSS ratios and the O(delta) checkpoint gate."""
    rng = np.random.default_rng(2005)
    ogs = _corpus(rng)
    t0 = time.perf_counter()
    index = _build(ogs)
    build_s = time.perf_counter() - t0

    npz = open_store(tmp_path / "corpus", format="npz")
    npz.write_index(index)
    col = open_store(tmp_path / "corpus_col", format="columnar")
    col.write_index(index)

    # -- correctness gate: bit-identical k-NN before any timing --------
    queries = ogs[:NUM_QUERIES]
    want = _knn_signature(index, queries)
    assert _knn_signature(npz.load_index(), queries) == want
    assert _knn_signature(col.load_index(mmap=False), queries) == want
    assert _knn_signature(col.load_index(mmap=True), queries) == want

    # -- cold-open gate: fresh subprocess per sample -------------------
    npz_open = _measure_open(npz.path)
    col_open = _measure_open(col.path)
    latency_ratio = npz_open["open_ms"] / max(col_open["open_ms"], 1e-6)
    rss_ratio = npz_open["rss_kb"] / max(col_open["rss_kb"], 1)
    assert latency_ratio >= MIN_RATIO, (
        f"columnar cold open only {latency_ratio:.1f}x faster "
        f"({col_open['open_ms']:.2f} ms vs {npz_open['open_ms']:.2f} ms)")
    assert rss_ratio >= MIN_RATIO, (
        f"columnar cold open only {rss_ratio:.1f}x lighter "
        f"({col_open['rss_kb']} KB vs {npz_open['rss_kb']} KB)")

    # -- O(delta) checkpoint gate --------------------------------------
    npz_bytes = os.path.getsize(npz.path)
    base_bytes = _tree_bytes(col.path)
    og = ogs[0]
    delta_og = ObjectGraph.from_values(og.values + 1.0, label=og.label)
    index.insert(delta_og, None, "clip-delta")
    before = _tree_bytes(col.path)
    col.checkpoint(index, [_BufferedWrite("insert", og=delta_og,
                                          clip_ref="clip-delta")])
    delta_bytes = _tree_bytes(col.path) - before
    assert 0 < delta_bytes <= npz_bytes * MAX_DELTA_FRACTION, (
        f"delta checkpoint moved {delta_bytes} bytes "
        f"(full archive: {npz_bytes})")
    assert len(col.load_index()) == len(index)

    rows = [
        ["npz", f"{npz_open['open_ms']:.2f}", npz_open["rss_kb"],
         npz_bytes],
        ["columnar", f"{col_open['open_ms']:.2f}", col_open["rss_kb"],
         base_bytes],
    ]
    lines = format_table(
        ["format", "cold open ms", "rss KB", "bytes on disk"], rows)
    lines += [
        "",
        f"cold-open speedup {latency_ratio:.1f}x, "
        f"resident-memory ratio {rss_ratio:.1f}x "
        f"(floor: {MIN_RATIO:.0f}x each)",
        f"delta checkpoint: {delta_bytes} bytes for 1 OG "
        f"({delta_bytes / npz_bytes:.1%} of a full NPZ rewrite)",
        f"{NUM_OGS} OGs x {NODE_RANGE[0]}-{NODE_RANGE[1]} nodes, "
        f"built in {build_s:.1f}s, scale={SCALE}",
    ]
    record_result("BENCH_storage", lines, data={
        "scale": SCALE,
        "config": {
            "num_ogs": NUM_OGS,
            "node_range": list(NODE_RANGE),
            "open_repeats": OPEN_REPEATS,
            "min_ratio": MIN_RATIO,
            "max_delta_fraction": MAX_DELTA_FRACTION,
        },
        "npz": {**npz_open, "bytes": npz_bytes},
        "columnar": {**col_open, "bytes": base_bytes},
        "latency_ratio": latency_ratio,
        "rss_ratio": rss_ratio,
        "delta_bytes": delta_bytes,
        "build_s": build_s,
    })
