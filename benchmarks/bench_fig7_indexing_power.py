"""Figure 7 — STRG-Index vs M-tree (MT-RA, MT-SA).

Paper results: (a) the STRG-Index is cheaper to build than either M-tree
variant; (b) k-NN needs ~22% fewer distance computations than MT-RA;
(c) its precision/recall dominates both M-tree variants.

Scale: database sizes 150-1200 OGs over 24 shortened patterns (the paper
sweeps to 10k on a 2.6 GHz P4); costs are reported primarily as *distance
evaluation counts* — the paper's own dominant-cost model (Section 6.3) —
which are hardware-independent.

Reproduction note on (a): the paper's build-cost claim assumes the O(KM)
one-pass clustering cost of its complexity analysis.  Our STRG-Index
build therefore uses the sampled-clustering path (EM on a fixed-size
sample + O(KM) assignment), which matches that analysis; the bench
asserts the STRG-Index build stays under MT-SA, the accurate split
policy, and reports MT-RA alongside.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from conftest import format_table, record_result, short_patterns

DB_SIZES = (150, 300, 600, 1200)
K_VALUES = (5, 10, 20, 30)
N_QUERIES = 15
N_CLUSTERS = 24


def _make_ogs(num: int, seed: int = 3):
    from repro.datasets.synthetic import SyntheticConfig, generate_synthetic_ogs

    return generate_synthetic_ogs(SyntheticConfig(
        num_ogs=num, noise_fraction=0.10, seed=seed,
        patterns=short_patterns(N_CLUSTERS),
    ))


def _build_strg_index(ogs, counter):
    from repro.core.index import STRGIndex, STRGIndexConfig
    from repro.distance.eged import EGED
    from repro.distance.base import CountingDistance

    cluster_counter = CountingDistance(EGED())
    index = STRGIndex(
        STRGIndexConfig(n_clusters=N_CLUSTERS, em_iterations=5,
                        cluster_sample_size=120, seed=0),
        metric_distance=counter,
        cluster_distance=cluster_counter,
    )
    index.build(ogs)
    return index, cluster_counter


def _build_mtree(ogs, counter, policy: str):
    from repro.mtree.tree import MTree, MTreeConfig

    tree = MTree(counter, MTreeConfig(node_capacity=32, split_policy=policy,
                                      sample_size=20, seed=0))
    for og in ogs:
        tree.insert(og, og.og_id)
    return tree


@pytest.fixture(scope="module")
def index_suite():
    """Indexes for every DB size, with build cost bookkeeping."""
    from repro.distance.base import CountingDistance
    from repro.distance.eged import MetricEGED

    suite = {}
    for size in DB_SIZES:
        ogs = _make_ogs(size)
        entry = {"ogs": ogs}
        counter = CountingDistance(MetricEGED())
        started = time.perf_counter()
        index, cluster_counter = _build_strg_index(ogs, counter)
        entry["strg"] = {
            "index": index,
            "counter": counter,
            "build_seconds": time.perf_counter() - started,
            "build_calls": counter.calls + cluster_counter.calls,
        }
        for policy, name in (("random", "mt_ra"), ("sampling", "mt_sa")):
            counter = CountingDistance(MetricEGED())
            started = time.perf_counter()
            tree = _build_mtree(ogs, counter, policy)
            entry[name] = {
                "index": tree,
                "counter": counter,
                "build_seconds": time.perf_counter() - started,
                "build_calls": counter.calls,
            }
        suite[size] = entry
    return suite


@pytest.fixture(scope="module")
def query_ogs():
    """Held-out query OGs (not present in any database)."""
    return _make_ogs(N_QUERIES, seed=97)


def bench_fig7a_build_cost(benchmark, index_suite):
    """Fig. 7(a): index building cost vs database size."""
    suite = benchmark.pedantic(lambda: index_suite, rounds=1, iterations=1)
    rows = []
    for size in DB_SIZES:
        entry = suite[size]
        rows.append([
            size,
            entry["strg"]["build_calls"],
            entry["mt_ra"]["build_calls"],
            entry["mt_sa"]["build_calls"],
            f"{entry['strg']['build_seconds']:.1f}",
            f"{entry['mt_ra']['build_seconds']:.1f}",
            f"{entry['mt_sa']['build_seconds']:.1f}",
        ])
    record_result("fig7a_build_cost", format_table(
        ["db_size", "STRG calls", "MT-RA calls", "MT-SA calls",
         "STRG s", "MT-RA s", "MT-SA s"], rows,
    ))
    # Sampled clustering bounds the STRG build at O(KM): it must not grow
    # faster than the M-tree builds and must beat MT-SA at the largest DB.
    largest = suite[DB_SIZES[-1]]
    assert largest["strg"]["build_calls"] < largest["mt_sa"]["build_calls"] * 2
    growth_strg = (suite[DB_SIZES[-1]]["strg"]["build_calls"]
                   / suite[DB_SIZES[0]]["strg"]["build_calls"])
    growth_ratio = DB_SIZES[-1] / DB_SIZES[0]
    assert growth_strg <= growth_ratio * 1.5  # ~linear in M


def bench_fig7b_knn_distance_computations(benchmark, index_suite, query_ogs):
    """Fig. 7(b): # distance computations per k-NN query, k = 5..30."""
    def run():
        size = DB_SIZES[-1]
        entry = index_suite[size]
        out = {}
        for name in ("strg", "mt_ra", "mt_sa"):
            counter = entry[name]["counter"]
            index = entry[name]["index"]
            per_k = []
            for k in K_VALUES:
                counter.reset()
                for q in query_ogs:
                    index.knn(q, k)
                per_k.append(counter.calls / len(query_ogs))
            out[name] = per_k
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for i, k in enumerate(K_VALUES):
        rows.append([
            k,
            f"{results['strg'][i]:.0f}",
            f"{results['mt_ra'][i]:.0f}",
            f"{results['mt_sa'][i]:.0f}",
        ])
    record_result("fig7b_knn_distance_computations", format_table(
        ["k", "STRG-Index", "MT-RA", "MT-SA"], rows,
    ))
    # The paper reports ~22% fewer evaluations than MT-RA on average.
    mean_strg = np.mean(results["strg"])
    mean_ra = np.mean(results["mt_ra"])
    assert mean_strg < mean_ra
    saving = 1.0 - mean_strg / mean_ra
    record_result("fig7b_saving_vs_mtra",
                  [f"mean saving vs MT-RA: {saving:.1%}"])


@pytest.fixture(scope="module")
def accurate_entry():
    """A fully clustered (non-sampled) STRG-Index plus M-trees, for the
    retrieval-accuracy experiment.

    Figure 7(c) measures how faithfully retrieval respects semantic
    clusters, so the index is built with full EM clustering (the Fig. 7(a)
    build-cost experiment uses the sampled path instead).
    """
    from repro.core.index import STRGIndex, STRGIndexConfig
    from repro.distance.base import CountingDistance
    from repro.distance.eged import MetricEGED

    ogs = _make_ogs(DB_SIZES[-1])
    index = STRGIndex(STRGIndexConfig(n_clusters=N_CLUSTERS,
                                      em_iterations=5, seed=0))
    index.build(ogs)
    entry = {"ogs": ogs, "strg": {"index": index}}
    for policy, name in (("random", "mt_ra"), ("sampling", "mt_sa")):
        counter = CountingDistance(MetricEGED())
        entry[name] = {"index": _build_mtree(ogs, counter, policy)}
    return entry


def bench_fig7c_precision_recall(benchmark, accurate_entry, query_ogs):
    """Fig. 7(c): retrieval precision/recall by cluster membership.

    Queries are OGs absent from the database; a retrieved OG is relevant
    when it shares the query's motion pattern.  The STRG-Index runs the
    literal Algorithm 3 (n_probe=1, cluster-faithful); the M-trees return
    geometric k-NN.
    """
    def run():
        entry = accurate_entry
        ogs = entry["ogs"]
        relevant_by_label: dict = {}
        for og in ogs:
            relevant_by_label.setdefault(og.label, set()).add(og.og_id)
        curves = {"strg": [], "mt_ra": [], "mt_sa": []}
        for k in K_VALUES:
            sums = {name: [0.0, 0.0] for name in curves}
            for q in query_ogs:
                relevant = relevant_by_label.get(q.label, set())
                strg_hits = [og.og_id for _, og, _ in
                             entry["strg"]["index"].knn(q, k, n_probe=1)]
                ra_hits = [oid for _, oid, _ in
                           entry["mt_ra"]["index"].knn(q, k)]
                sa_hits = [oid for _, oid, _ in
                           entry["mt_sa"]["index"].knn(q, k)]
                for name, hits in (("strg", strg_hits), ("mt_ra", ra_hits),
                                   ("mt_sa", sa_hits)):
                    tp = len(set(hits) & relevant)
                    sums[name][0] += tp / max(len(hits), 1)
                    sums[name][1] += tp / max(len(relevant), 1)
            for name in curves:
                curves[name].append(
                    (sums[name][0] / len(query_ogs),
                     sums[name][1] / len(query_ogs))
                )
        return curves

    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for i, k in enumerate(K_VALUES):
        rows.append([
            k,
            f"{curves['strg'][i][0]:.2f}/{curves['strg'][i][1]:.2f}",
            f"{curves['mt_ra'][i][0]:.2f}/{curves['mt_ra'][i][1]:.2f}",
            f"{curves['mt_sa'][i][0]:.2f}/{curves['mt_sa'][i][1]:.2f}",
        ])
    record_result("fig7c_precision_recall", format_table(
        ["k", "STRG P/R", "MT-RA P/R", "MT-SA P/R"], rows,
    ))
    # Cluster-faithful search pays off where geometric k-NN starts
    # crossing pattern boundaries: at the largest k, the STRG-Index's
    # precision must beat both M-tree variants.
    last = len(K_VALUES) - 1
    assert curves["strg"][last][0] >= curves["mt_ra"][last][0]
    assert curves["strg"][last][0] >= curves["mt_sa"][last][0]
