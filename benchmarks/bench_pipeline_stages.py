"""Stage-level benchmarks of the video pipeline.

Not a paper figure — engineering benchmarks for the substrate stages
(segmentation, RAG construction, tracking, decomposition) on a rendered
traffic segment, so regressions in any stage are visible independently.
"""

from __future__ import annotations

import pytest


@pytest.fixture(scope="module")
def traffic_video():
    from repro.datasets.real import render_stream_segment

    return render_stream_segment("Traffic1", num_frames=16)


@pytest.fixture(scope="module")
def traffic_rags(traffic_video):
    from repro.video.segmentation import GridSegmenter

    segmenter = GridSegmenter(min_region_size=10)
    return [
        segmenter.build_rag(traffic_video.frame(t), t)
        for t in range(traffic_video.num_frames)
    ]


def bench_grid_segmentation(benchmark, traffic_video):
    from repro.video.segmentation import GridSegmenter

    segmenter = GridSegmenter(min_region_size=10)
    labels = benchmark(segmenter.segment, traffic_video.frame(0))
    assert labels.shape == (traffic_video.height, traffic_video.width)


def bench_mean_shift_segmentation(benchmark, traffic_video):
    from repro.video.segmentation import MeanShiftSegmenter

    segmenter = MeanShiftSegmenter(spatial_bandwidth=2, range_bandwidth=10.0,
                                   max_iterations=3, min_region_size=16)
    labels = benchmark.pedantic(
        segmenter.segment, args=(traffic_video.frame(0),),
        rounds=1, iterations=1,
    )
    assert labels.max() >= 1  # more than one region


def bench_rag_construction(benchmark, traffic_video):
    from repro.video.regions import rag_from_labels
    from repro.video.segmentation import GridSegmenter

    segmenter = GridSegmenter(min_region_size=10)
    frame = traffic_video.frame(0)
    labels = segmenter.segment(frame)
    rag = benchmark(rag_from_labels, frame, labels, 0)
    assert len(rag) >= 2


def bench_tracking_frame_pair(benchmark, traffic_rags):
    from repro.graph.tracking import GraphTracker

    tracker = GraphTracker()
    edges = benchmark(tracker.track_pair, traffic_rags[0], traffic_rags[1])
    assert edges  # the static background must track


def bench_full_decomposition(benchmark, traffic_video):
    from repro.pipeline import VideoPipeline

    pipeline = VideoPipeline()
    decomposition = benchmark.pedantic(
        pipeline.decompose, args=(traffic_video,), rounds=1, iterations=1
    )
    assert len(decomposition.background) >= 1
