"""Stage-level benchmarks of the video pipeline.

Not a paper figure — engineering benchmarks for the substrate stages
(segmentation, RAG construction, tracking, decomposition) on a rendered
traffic segment, so regressions in any stage are visible independently.

``bench_pipeline_stage_report`` additionally archives the stage timings
as machine-readable ``benchmarks/results/BENCH_pipeline.json`` (best-of-3
wall-clock per stage), so the ingest trajectory is tracked across PRs
like the kernels/serving benches — pytest-benchmark's terminal-only
output is not diffable.
"""

from __future__ import annotations

import json
import time

import pytest

from conftest import RESULTS_DIR, format_table, record_result


@pytest.fixture(scope="module")
def traffic_video():
    from repro.datasets.real import render_stream_segment

    return render_stream_segment("Traffic1", num_frames=16)


@pytest.fixture(scope="module")
def traffic_rags(traffic_video):
    from repro.video.segmentation import GridSegmenter

    segmenter = GridSegmenter(min_region_size=10)
    return [
        segmenter.build_rag(traffic_video.frame(t), t)
        for t in range(traffic_video.num_frames)
    ]


def bench_grid_segmentation(benchmark, traffic_video):
    from repro.video.segmentation import GridSegmenter

    segmenter = GridSegmenter(min_region_size=10)
    labels = benchmark(segmenter.segment, traffic_video.frame(0))
    assert labels.shape == (traffic_video.height, traffic_video.width)


def bench_mean_shift_segmentation(benchmark, traffic_video):
    from repro.video.segmentation import MeanShiftSegmenter

    segmenter = MeanShiftSegmenter(spatial_bandwidth=2, range_bandwidth=10.0,
                                   max_iterations=3, min_region_size=16)
    labels = benchmark.pedantic(
        segmenter.segment, args=(traffic_video.frame(0),),
        rounds=1, iterations=1,
    )
    assert labels.max() >= 1  # more than one region


def bench_rag_construction(benchmark, traffic_video):
    from repro.video.regions import rag_from_labels
    from repro.video.segmentation import GridSegmenter

    segmenter = GridSegmenter(min_region_size=10)
    frame = traffic_video.frame(0)
    labels = segmenter.segment(frame)
    rag = benchmark(rag_from_labels, frame, labels, 0)
    assert len(rag) >= 2


def bench_tracking_frame_pair(benchmark, traffic_rags):
    from repro.graph.tracking import GraphTracker

    tracker = GraphTracker()
    edges = benchmark(tracker.track_pair, traffic_rags[0], traffic_rags[1])
    assert edges  # the static background must track


def bench_full_decomposition(benchmark, traffic_video):
    from repro.pipeline import VideoPipeline

    pipeline = VideoPipeline()
    decomposition = benchmark.pedantic(
        pipeline.decompose, args=(traffic_video,), rounds=1, iterations=1
    )
    assert len(decomposition.background) >= 1


def bench_pipeline_stage_report(traffic_video, traffic_rags):
    """Archive per-stage best-of-3 timings as BENCH_pipeline.json."""
    from repro.graph.tracking import GraphTracker
    from repro.pipeline import VideoPipeline
    from repro.video.regions import rag_from_labels
    from repro.video.segmentation import GridSegmenter, MeanShiftSegmenter

    frame = traffic_video.frame(0)
    grid = GridSegmenter(min_region_size=10)
    meanshift = MeanShiftSegmenter(spatial_bandwidth=2, range_bandwidth=10.0,
                                   max_iterations=3, min_region_size=16)
    grid_labels = grid.segment(frame)
    tracker = GraphTracker()
    pipeline = VideoPipeline()
    stages = {
        "grid_segmentation": lambda: grid.segment(frame),
        "meanshift_segmentation": lambda: meanshift.segment(frame),
        "rag_construction": lambda: rag_from_labels(frame, grid_labels, 0),
        "tracking_frame_pair": lambda: tracker.track_pair(
            traffic_rags[0], traffic_rags[1]),
        "full_decomposition": lambda: pipeline.decompose(traffic_video),
    }
    timings = {}
    for name, fn in stages.items():
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        timings[name] = best
    report = {
        "config": {"frames": traffic_video.num_frames,
                   "frame_size": f"{traffic_video.height}"
                                 f"x{traffic_video.width}",
                   "best_of": 3},
        "stage_seconds": timings,
    }
    (RESULTS_DIR / "BENCH_pipeline.json").write_text(
        json.dumps(report, indent=2) + "\n"
    )
    rows = [[name, f"{seconds * 1e3:.2f}"]
            for name, seconds in timings.items()]
    record_result("BENCH_pipeline",
                  format_table(["stage", "ms (best of 3)"], rows))
    assert timings["full_decomposition"] > 0.0
