"""Ablations over the STRG-Index design decisions (beyond the paper's own
figures; each isolates one claim made in the text).

1. **Background deduplication** (Section 2.3.3 / Eq. 9 vs 10): how much of
   the compression comes from storing one BG instead of N.
2. **Metric vs non-metric leaf keys** (Theorem 2): keying leaves with the
   non-metric EGED breaks the triangle-inequality pruning bound and loses
   true neighbors; the metric EGED_M keeps search exact.
3. **BIC-driven leaf split** (Section 5.3): with splits disabled, leaves
   degrade into coarse buckets and queries evaluate more distances.
4. **Time as just another dimension** (the 3DR-tree critique, Section 1):
   MBR proximity in (x, y, t) is a poor proxy for motion similarity —
   opposite-direction trajectories share a box.
5. **Sakoe-Chiba banding of EGED_M**: constraining the alignment corridor
   trades a bounded distance overestimate for a large DP speedup.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import format_table, record_result, short_patterns


def _make_ogs(num: int, seed: int = 5, noise: float = 0.10):
    from repro.datasets.synthetic import SyntheticConfig, generate_synthetic_ogs

    return generate_synthetic_ogs(SyntheticConfig(
        num_ogs=num, noise_fraction=noise, seed=seed,
        patterns=short_patterns(12),
    ))


def bench_ablation_bg_dedup(benchmark):
    """Eq. 9 vs Eq. 10: the N x size(BG) term dominates raw STRG size."""
    from repro.core.size import strg_raw_size_bytes

    def run():
        ogs = _make_ogs(120)
        bg_bytes = 4096  # a modest per-frame background footprint
        rows = []
        for num_frames in (1_000, 10_000, 100_000):
            raw = strg_raw_size_bytes(ogs, bg_bytes, num_frames)
            dedup = sum(og.size_bytes() for og in ogs) + bg_bytes
            rows.append([num_frames, raw, dedup, f"{raw / dedup:.0f}x"])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result("ablation_bg_dedup", format_table(
        ["frames", "raw bytes", "dedup bytes", "reduction"], rows,
    ))
    # The reduction must grow linearly with the frame count.
    first = float(rows[0][1]) / float(rows[0][2])
    last = float(rows[2][1]) / float(rows[2][2])
    assert last > first * 10


def bench_ablation_metric_vs_nonmetric_keys(benchmark):
    """Theorem 2's point: non-metric keys make pruned search lossy."""
    from repro.core.index import STRGIndex, STRGIndexConfig
    from repro.distance.eged import EGED, MetricEGED

    def run():
        ogs = _make_ogs(180)
        exact = MetricEGED()
        queries = _make_ogs(12, seed=77)

        def recall_at_10(index):
            hits_total = 0
            for q in queries:
                truth = {og.og_id for _, og in sorted(
                    ((exact(q, og), og) for og in ogs), key=lambda t: t[0]
                )[:10]}
                found = {og.og_id for _, og, _ in index.knn(q, 10)}
                hits_total += len(found & truth)
            return hits_total / (10 * len(queries))

        metric_index = STRGIndex(
            STRGIndexConfig(n_clusters=12, em_iterations=5)
        )
        metric_index.build(ogs)
        # Same tree, but keys and query pruning use the *non-metric* EGED.
        broken_index = STRGIndex(
            STRGIndexConfig(n_clusters=12, em_iterations=5),
            metric_distance=EGED(),
        )
        broken_index.build(ogs)
        return recall_at_10(metric_index), recall_at_10(broken_index)

    metric_recall, nonmetric_recall = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    record_result("ablation_metric_keys", [
        f"recall@10 with EGED_M keys:   {metric_recall:.3f}",
        f"recall@10 with EGED keys:     {nonmetric_recall:.3f}",
    ])
    # Metric keys give exact search.
    assert metric_recall == pytest.approx(1.0)
    # (The non-metric variant may or may not lose neighbors on a given
    # draw; correctness is only guaranteed by the metric property.)
    assert nonmetric_recall <= 1.0


def bench_ablation_leaf_split(benchmark):
    """Section 5.3: BIC splits keep leaves tight and queries cheap."""
    from repro.core.index import STRGIndex, STRGIndexConfig
    from repro.distance.base import CountingDistance
    from repro.distance.eged import MetricEGED

    def run():
        seed_ogs = _make_ogs(24, seed=1)
        stream = _make_ogs(240, seed=2)
        queries = _make_ogs(10, seed=88)
        results = {}
        for label, capacity in (("split", 24), ("no-split", 10 ** 9)):
            counter = CountingDistance(MetricEGED())
            index = STRGIndex(
                STRGIndexConfig(n_clusters=4, em_iterations=5,
                                leaf_capacity=capacity),
                metric_distance=counter,
            )
            index.build(seed_ogs)
            for og in stream:
                index.insert(og)
            counter.reset()
            for q in queries:
                index.knn(q, 10)
            results[label] = {
                "clusters": index.num_clusters(),
                "calls_per_query": counter.calls / len(queries),
            }
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [label, r["clusters"], f"{r['calls_per_query']:.0f}"]
        for label, r in results.items()
    ]
    record_result("ablation_leaf_split", format_table(
        ["variant", "clusters", "dist calls / query"], rows,
    ))
    assert results["split"]["clusters"] > results["no-split"]["clusters"]
    assert (results["split"]["calls_per_query"]
            < results["no-split"]["calls_per_query"])


def bench_ablation_3dr_tree(benchmark):
    """Section 1's 3DR-tree critique: time-as-a-dimension retrieval.

    Both indexes answer 10-NN pattern-retrieval queries; relevance =
    shared motion pattern.  The 3DR-tree ranks by (x, y, t) MBR distance,
    which cannot distinguish a lane from its reverse direction, so its
    precision collapses relative to the STRG-Index.
    """
    from repro.core.index import STRGIndex, STRGIndexConfig
    from repro.rtree3d.tree import RTree3D, RTree3DConfig

    def run():
        ogs = _make_ogs(240, seed=9)
        queries = _make_ogs(12, seed=55)
        strg = STRGIndex(STRGIndexConfig(n_clusters=12, em_iterations=5))
        strg.build(ogs)
        rtree = RTree3D(RTree3DConfig(node_capacity=8))
        by_id = {}
        for og in ogs:
            rtree.insert(og, og.og_id)
            by_id[og.og_id] = og
        k = 10
        precision = {"strg": 0.0, "3dr": 0.0}
        for q in queries:
            strg_hits = [og.label for _, og, _ in strg.knn(q, k, n_probe=1)]
            rtree_hits = [by_id[oid].label for _, oid in rtree.knn(q, k)]
            precision["strg"] += sum(
                1 for lab in strg_hits if lab == q.label
            ) / k
            precision["3dr"] += sum(
                1 for lab in rtree_hits if lab == q.label
            ) / k
        return {name: p / len(queries) for name, p in precision.items()}

    precision = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result("ablation_3dr_tree", [
        f"pattern precision@10, STRG-Index: {precision['strg']:.2f}",
        f"pattern precision@10, 3DR-tree:   {precision['3dr']:.2f}",
    ])
    assert precision["strg"] > precision["3dr"]


def bench_ablation_banded_eged(benchmark):
    """Banded EGED_M: overestimate vs speedup across band widths."""
    import time

    import numpy as np

    from repro.distance.erp import erp

    def run():
        import dataclasses

        from repro.datasets.patterns import ALL_PATTERNS
        from repro.datasets.synthetic import (
            SyntheticConfig,
            generate_synthetic_ogs,
        )

        # Long trajectories with very different lengths: the regime where
        # alignment corridors actually matter.
        long_patterns = [
            dataclasses.replace(p, length_range=(40, 120))
            for p in ALL_PATTERNS[:12]
        ]
        ogs = generate_synthetic_ogs(SyntheticConfig(
            num_ogs=40, noise_fraction=0.15, seed=4,
            patterns=long_patterns,
        ))
        pairs = [(ogs[i].values, ogs[i + 1].values)
                 for i in range(0, len(ogs) - 1, 2)]
        exact = [erp(a, b) for a, b in pairs]
        rows = []
        started = time.perf_counter()
        for a, b in pairs:
            erp(a, b)
        full_time = time.perf_counter() - started
        for band in (1, 3, 5, 10):
            started = time.perf_counter()
            banded = [erp(a, b, band=band) for a, b in pairs]
            banded_time = time.perf_counter() - started
            rel_err = float(np.mean([
                (bd - ex) / ex for bd, ex in zip(banded, exact) if ex > 0
            ]))
            rows.append([band, f"{rel_err:.2%}",
                         f"{full_time / max(banded_time, 1e-9):.1f}x"])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result("ablation_banded_eged", format_table(
        ["band", "mean overestimate", "speedup"], rows,
    ))
    # Banding never underestimates, and the error shrinks as the band
    # widens.
    errors = [float(row[1].rstrip("%")) for row in rows]
    assert all(e >= -1e-9 for e in errors)
    assert errors[-1] <= errors[0] + 1e-9
