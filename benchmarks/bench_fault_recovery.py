"""Ingest throughput under injected faults + crash-recovery cost.

Beyond the paper: a streaming deployment (Sec. 5's incremental
maintenance) must keep ingesting when segments go bad.  This bench
renders a batch of small segments and measures:

- ingest throughput through the resilient ``VideoDatabase`` at 0%, 1%
  and 5% injected per-segment fault rates (``skip-and-quarantine`` via
  the default retry-then-skip policy with zero backoff);
- the resilience overhead at 0% faults against the seed-style direct
  ``pipeline.process`` loop (must stay under 5%);
- the cost of ``VideoDatabase.recover`` from snapshot + journal.

Scale: 30 segments x 6 frames at 48x36 px (seconds, not the paper's
hours of video); throughput ordering, not absolute rate, is the result.
"""

from __future__ import annotations

import time

from conftest import format_table, record_result

NUM_SEGMENTS = 30
FAULT_RATES = (0.0, 0.01, 0.05)
MAX_OVERHEAD = 0.05


def _segments(n=NUM_SEGMENTS, num_frames=6):
    from repro.video.synthesize import (
        Actor,
        BackgroundSpec,
        SceneRenderer,
        linear_trajectory,
        make_vehicle,
    )

    segments = []
    for i in range(n):
        background = BackgroundSpec(width=48, height=36,
                                    base_color=(90, 90, 90))
        y = 10.0 + (i % 4) * 6.0
        scene = SceneRenderer(background, [
            Actor(linear_trajectory((4.0, y), (44.0, y), num_frames),
                  make_vehicle((200, 40, 40))),
        ])
        segments.append(scene.render(num_frames, name=f"seg-{i:03d}"))
    return segments


def _best_of(fn, rounds=3):
    best = float("inf")
    result = None
    for _ in range(rounds):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def bench_fault_recovery(benchmark, tmp_path_factory):
    from repro.pipeline import VideoPipeline
    from repro.resilience import FaultInjector, RetryPolicy, injected
    from repro.storage.database import VideoDatabase

    segments = _segments()
    retry = RetryPolicy(max_attempts=3, base_delay=0.0)

    def seed_style():
        # The pre-resilience ingest path: bare pipeline.process loop.
        pipeline = VideoPipeline()
        index = None
        for video in segments:
            _, index = pipeline.process(video, index)
        return index

    def resilient(rate, seed=2005):
        db = VideoDatabase(retry_policy=retry)
        injector = FaultInjector(seed=seed)
        if rate > 0:
            injector.inject("decomposition", rate=rate)
        with injected(injector):
            db.ingest_many(segments)
        return db

    def run():
        # Untimed warm-up: the first pipeline pass pays allocator and
        # import costs that would otherwise bias whichever path runs
        # first (observed at ~25% on this workload).
        seed_style()
        resilient(0.0)
        baseline_s, _ = _best_of(seed_style)
        rows = [["seed (pipeline.process loop)", "-",
                 f"{NUM_SEGMENTS / baseline_s:.1f}", "-", "-"]]
        overhead = None
        for rate in FAULT_RATES:
            elapsed, db = _best_of(lambda: resilient(rate))
            health = db.health()
            rows.append([
                f"resilient ingest @ {rate:.0%} faults",
                health["fault_policy"],
                f"{NUM_SEGMENTS / elapsed:.1f}",
                str(health["quarantined"]),
                str(health["retries"]),
            ])
            if rate == 0.0:
                overhead = elapsed / baseline_s - 1.0

        # Crash recovery: snapshot + journal replay cost.
        workdir = tmp_path_factory.mktemp("fault_recovery")
        path = workdir / "index.npz"
        db = VideoDatabase(retry_policy=retry,
                           journal_path=str(path) + ".journal")
        db.ingest_many(segments[: NUM_SEGMENTS // 2])
        db.save(path)
        db.ingest_many(segments[NUM_SEGMENTS // 2:])
        recover_s, recovered = _best_of(
            lambda: VideoDatabase.recover(path), rounds=3
        )
        return {
            "rows": rows,
            "overhead": overhead,
            "recover_ms": recover_s * 1e3,
            "pending": len(recovered.recovery.pending_segments),
        }

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = format_table(
        ["configuration", "policy", "segs/s", "quarantined", "retries"],
        stats["rows"],
    )
    lines.append("")
    lines.append(f"resilience overhead @ 0% faults: "
                 f"{stats['overhead'] * 100:+.2f}% "
                 f"(budget {MAX_OVERHEAD:.0%})")
    lines.append(f"recover from snapshot+journal: {stats['recover_ms']:.1f} ms "
                 f"({stats['pending']} pending segment(s) detected)")
    record_result("fault_recovery", lines)
    assert stats["pending"] == NUM_SEGMENTS - NUM_SEGMENTS // 2
    # The resilience layer must be free when nothing fails.
    assert stats["overhead"] < MAX_OVERHEAD
