"""Figure 6 — EM-EGED against KM-EGED and KHM-EGED.

Paper results: (a) EM-EGED's clustering error is slightly better than
KHM-EGED's (KHM's soft memberships resemble EM's responsibilities) and
better than KM-EGED's; (b) EM builds clusters faster; (c) EM's distortion
matches KM and clearly beats KHM.

Scale: shares the 96-OG / 12-pattern sweep with the Figure 5 bench.
"""

from __future__ import annotations

import numpy as np

from conftest import (
    ALGORITHMS,
    NOISE_LEVELS,
    format_table,
    record_result,
)


def bench_fig6a_error(benchmark, clustering_grid):
    """Fig. 6(a): clustering error of EM/KM/KHM, all with EGED."""
    grid = benchmark.pedantic(lambda: clustering_grid, rounds=1, iterations=1)
    rows = []
    for noise in NOISE_LEVELS:
        rows.append([f"{noise:.0%}"] + [
            f"{grid[(algo, 'EGED', noise)]['error']:.1f}"
            for algo in ALGORITHMS
        ])
    record_result("fig6a_eged_error", format_table(
        ["noise", "EM-EGED", "KM-EGED", "KHM-EGED"], rows,
    ))
    # All EGED variants land in the same band (the paper's curves are
    # close); EM must not be materially worse than the alternatives.
    mean = {algo: np.mean([grid[(algo, "EGED", n)]["error"]
                           for n in NOISE_LEVELS]) for algo in ALGORITHMS}
    assert mean["EM"] <= 1.25 * min(mean["KM"], mean["KHM"]) + 5.0


def bench_fig6b_build_time(benchmark, clustering_grid):
    """Fig. 6(b): cluster building time as iterations accumulate."""
    grid = benchmark.pedantic(lambda: clustering_grid, rounds=1, iterations=1)
    noise = NOISE_LEVELS[1]
    rows = []
    cumulative = {}
    for algo in ALGORITHMS:
        cell = grid[(algo, "EGED", noise)]
        seconds = np.cumsum(cell["iteration_seconds"])
        cumulative[algo] = seconds
        rows.append([
            algo,
            cell["iterations"],
            f"{seconds[-1]:.2f}",
            f"{seconds[-1] / cell['iterations']:.3f}",
            "yes" if cell["converged"] else "no",
        ])
    record_result("fig6b_build_time", format_table(
        ["algo", "iterations", "total_s", "s_per_iter", "converged"], rows,
    ))
    # EM must reach convergence within the iteration budget and spend no
    # more total time than the slowest alternative.
    em_total = cumulative["EM"][-1]
    assert grid[("EM", "EGED", noise)]["converged"]
    assert em_total <= max(cumulative["KM"][-1], cumulative["KHM"][-1]) * 1.5


def bench_fig6c_distortion(benchmark, clustering_grid):
    """Fig. 6(c): distortion (found vs true centroids, pixels)."""
    grid = benchmark.pedantic(lambda: clustering_grid, rounds=1, iterations=1)
    rows = []
    for noise in NOISE_LEVELS:
        rows.append([f"{noise:.0%}"] + [
            f"{grid[(algo, 'EGED', noise)]['distortion']:.0f}"
            for algo in ALGORITHMS
        ])
    record_result("fig6c_distortion", format_table(
        ["noise", "EM-EGED", "KM-EGED", "KHM-EGED"], rows,
    ))
    mean = {algo: np.mean([grid[(algo, "EGED", n)]["distortion"]
                           for n in NOISE_LEVELS]) for algo in ALGORITHMS}
    # EM's distortion tracks KM's (the paper reports them similar).
    assert mean["EM"] <= 1.5 * mean["KM"] + 1e-9
