"""Figure 5 — clustering error rate vs noise, per algorithm and distance.

Paper result: for each clustering algorithm (EM, KM, KHM), the EGED-based
variant has a far lower clustering error rate than the LCS- and DTW-based
variants at every noise level, and EGED is far more robust to noise.

Scale: 96 OGs over 12 patterns (the paper used larger sets over all 48);
noise levels 5-30%.
"""

from __future__ import annotations

import numpy as np

from conftest import (
    ALGORITHMS,
    DISTANCES,
    NOISE_LEVELS,
    format_table,
    record_result,
)


def _panel(grid, algo: str) -> list[list]:
    rows = []
    for noise in NOISE_LEVELS:
        row = [f"{noise:.0%}"]
        for distance in DISTANCES:
            row.append(f"{grid[(algo, distance, noise)]['error']:.1f}")
        rows.append(row)
    return rows


def _mean_error(grid, algo: str, distance: str) -> float:
    return float(np.mean([
        grid[(algo, distance, noise)]["error"] for noise in NOISE_LEVELS
    ]))


def bench_fig5a_em(benchmark, clustering_grid):
    """Fig. 5(a): EM-EGED vs EM-LCS vs EM-DTW."""
    grid = benchmark.pedantic(lambda: clustering_grid, rounds=1, iterations=1)
    rows = _panel(grid, "EM")
    record_result("fig5a_em_error", format_table(
        ["noise", "EM-EGED", "EM-LCS", "EM-DTW"], rows,
    ))
    assert _mean_error(grid, "EM", "EGED") < _mean_error(grid, "EM", "LCS")
    assert _mean_error(grid, "EM", "EGED") < _mean_error(grid, "EM", "DTW")


def bench_fig5b_km(benchmark, clustering_grid):
    """Fig. 5(b): KM-EGED vs KM-LCS vs KM-DTW."""
    grid = benchmark.pedantic(lambda: clustering_grid, rounds=1, iterations=1)
    rows = _panel(grid, "KM")
    record_result("fig5b_km_error", format_table(
        ["noise", "KM-EGED", "KM-LCS", "KM-DTW"], rows,
    ))
    assert _mean_error(grid, "KM", "EGED") < _mean_error(grid, "KM", "LCS")
    assert _mean_error(grid, "KM", "EGED") < _mean_error(grid, "KM", "DTW")


def bench_fig5c_khm(benchmark, clustering_grid):
    """Fig. 5(c): KHM-EGED vs KHM-LCS vs KHM-DTW."""
    grid = benchmark.pedantic(lambda: clustering_grid, rounds=1, iterations=1)
    rows = _panel(grid, "KHM")
    record_result("fig5c_khm_error", format_table(
        ["noise", "KHM-EGED", "KHM-LCS", "KHM-DTW"], rows,
    ))
    assert _mean_error(grid, "KHM", "EGED") < _mean_error(grid, "KHM", "LCS")
    assert _mean_error(grid, "KHM", "EGED") < _mean_error(grid, "KHM", "DTW")


def bench_fig5_noise_robustness(benchmark, clustering_grid):
    """Cross-panel claim: EGED error grows least from 5% to 30% noise."""
    grid = benchmark.pedantic(lambda: clustering_grid, rounds=1, iterations=1)
    rows = []
    growth = {}
    for distance in DISTANCES:
        lo = np.mean([grid[(a, distance, NOISE_LEVELS[0])]["error"]
                      for a in ALGORITHMS])
        hi = np.mean([grid[(a, distance, NOISE_LEVELS[-1])]["error"]
                      for a in ALGORITHMS])
        growth[distance] = hi - lo
        rows.append([distance, f"{lo:.1f}", f"{hi:.1f}", f"{hi - lo:+.1f}"])
    record_result("fig5_noise_robustness", format_table(
        ["distance", "err@5%", "err@30%", "growth"], rows,
    ))
    # EGED dominates on the noise-averaged error across all panels.  (The
    # paper additionally shows EM-DTW collapsing outright; our stabilized
    # EM keeps DTW viable, so per-level dominance over DTW is not asserted
    # — see EXPERIMENTS.md.)
    def overall(distance):
        return np.mean([
            grid[(a, distance, n)]["error"]
            for a in ALGORITHMS for n in NOISE_LEVELS
        ])

    assert overall("EGED") < overall("LCS")
    assert overall("EGED") < overall("DTW")
