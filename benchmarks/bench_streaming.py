"""Streaming-maintenance benchmarks (beyond the paper's static build).

Surveillance indexing is incremental: trajectories arrive as objects
leave the scene.  These benches measure the STRG-Index under a streaming
workload — insert throughput, BIC split activity, and whether query cost
stays flat as the index grows structure instead of bloating leaves.
"""

from __future__ import annotations

import time

from conftest import format_table, record_result, short_patterns


def _stream_ogs(num, seed=21):
    from repro.datasets.synthetic import SyntheticConfig, generate_synthetic_ogs

    return generate_synthetic_ogs(SyntheticConfig(
        num_ogs=num, noise_fraction=0.10, seed=seed,
        patterns=short_patterns(8),
    ))


def bench_streaming_inserts(benchmark):
    """Insert throughput and split activity over a 240-OG stream."""
    from repro.core.index import STRGIndex, STRGIndexConfig

    def run():
        seed_ogs = _stream_ogs(16, seed=1)
        stream = _stream_ogs(240, seed=2)
        index = STRGIndex(STRGIndexConfig(n_clusters=4, em_iterations=5,
                                          leaf_capacity=20))
        index.build(seed_ogs)
        clusters_before = index.num_clusters()
        started = time.perf_counter()
        for og in stream:
            index.insert(og)
        elapsed = time.perf_counter() - started
        return {
            "ogs_per_second": len(stream) / elapsed,
            "clusters_before": clusters_before,
            "clusters_after": index.num_clusters(),
            "total": len(index),
        }

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result("streaming_inserts", [
        f"insert throughput: {stats['ogs_per_second']:.0f} OGs/s",
        f"clusters: {stats['clusters_before']} -> {stats['clusters_after']} "
        f"(BIC splits during streaming)",
        f"indexed OGs: {stats['total']}",
    ], data=stats, json_name="BENCH_streaming")
    assert stats["total"] == 256
    # The BIC split policy must have refined the structure: 8 patterns
    # cannot stay healthy in 4 clusters.
    assert stats["clusters_after"] > stats["clusters_before"]


def bench_streaming_query_cost_stays_flat(benchmark):
    """Per-query distance evaluations must grow sublinearly with size
    thanks to the split policy (leaves stay tight)."""
    from repro.core.index import STRGIndex, STRGIndexConfig
    from repro.distance.base import CountingDistance
    from repro.distance.eged import MetricEGED

    def run():
        counter = CountingDistance(MetricEGED())
        index = STRGIndex(
            STRGIndexConfig(n_clusters=4, em_iterations=5, leaf_capacity=20),
            metric_distance=counter,
        )
        index.build(_stream_ogs(16, seed=1))
        stream = _stream_ogs(360, seed=2)
        queries = _stream_ogs(8, seed=77)
        checkpoints = []
        for i, og in enumerate(stream, start=1):
            index.insert(og)
            if i in (120, 240, 360):
                counter.reset()
                for q in queries:
                    index.knn(q, 5)
                checkpoints.append(
                    (len(index), counter.calls / len(queries))
                )
        return checkpoints

    checkpoints = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[size, f"{calls:.0f}", f"{calls / size:.2f}"]
            for size, calls in checkpoints]
    record_result("streaming_query_cost", format_table(
        ["db size", "evals/query", "evals per indexed OG"], rows,
    ), data=[{"db_size": size, "evals_per_query": calls}
             for size, calls in checkpoints],
        json_name="BENCH_streaming")
    # Sub-linear growth: tripling the DB must far less than triple the
    # per-query cost fraction.
    first_frac = checkpoints[0][1] / checkpoints[0][0]
    last_frac = checkpoints[-1][1] / checkpoints[-1][0]
    assert last_frac <= first_frac * 1.1


def bench_index_size_linear_in_ogs(benchmark):
    """Eq. 10: index bytes grow linearly with the OG payload."""
    from repro.core.index import STRGIndex, STRGIndexConfig
    from repro.core.size import index_size_bytes

    def run():
        sizes = []
        for n in (60, 120, 240):
            index = STRGIndex(STRGIndexConfig(n_clusters=8, em_iterations=4))
            index.build(_stream_ogs(n, seed=3))
            sizes.append((n, index_size_bytes(index)))
        return sizes

    sizes = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[n, b, f"{b / n:.0f}"] for n, b in sizes]
    record_result("streaming_index_size", format_table(
        ["ogs", "bytes", "bytes/og"], rows,
    ), data=[{"ogs": n, "bytes": b} for n, b in sizes],
        json_name="BENCH_streaming")
    per_og = [b / n for n, b in sizes]
    assert max(per_og) < min(per_og) * 1.5  # ~constant bytes per OG