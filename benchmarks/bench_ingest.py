"""Benchmarks of the vectorized, frame-parallel ingestion engine.

Not a paper figure — engineering benchmarks for the ingest front-end
(Section 2's per-frame segmentation -> RAG -> STRG path), comparing:

- **serial-seed**: the original implementation (per-pixel Python
  union-find labeling, ``np.roll`` mean-shift filtering, dict/set region
  merging), preserved verbatim below;
- **vectorized**: the current pure-numpy kernels, single process;
- **vectorized + 4 workers**: the same kernels with frame-parallel
  fan-out via :func:`repro.parallel.ordered_chunk_map`.

``bench_ingest_report`` archives ``benchmarks/results/BENCH_ingest.json``
(stage timings, end-to-end ingest timings, speedups, CPU budget) and
asserts the >=5x single-process stage speedup.  The 4-worker end-to-end
speedup is asserted only when the machine actually exposes >= 2 CPUs —
on a single-core runner a process pool is overhead by construction, and
the honest number is recorded instead of gamed.

Scale: ``BENCH_INGEST_SCALE=smoke`` shrinks frame/segment counts for CI.
"""

from __future__ import annotations

import os
import time

import numpy as np

from conftest import format_table, record_result

SMOKE = os.environ.get("BENCH_INGEST_SCALE", "").lower() == "smoke"

#: Frames timed by the segmentation+RAG stage comparison.
STAGE_FRAMES = 2 if SMOKE else 4
#: End-to-end ingest workload: segments x frames of simulated Traffic.
INGEST_SEGMENTS = 2 if SMOKE else 3
INGEST_FRAMES = 6 if SMOKE else 12
BEST_OF = 3


# --------------------------------------------------------------------------
# Seed implementations (pre-vectorization), preserved verbatim so the
# speedup baseline cannot drift as the library evolves.
# --------------------------------------------------------------------------


class _SeedUnionFind:
    """Union-find over pixel indices with path halving."""

    def __init__(self, n: int):
        self.parent = list(range(n))

    def find(self, x: int) -> int:
        parent = self.parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


def _seed_connected_components(features: np.ndarray,
                               threshold: float) -> np.ndarray:
    """The original per-pixel Python union-find labeling."""
    h, w = features.shape[:2]
    uf = _SeedUnionFind(h * w)
    flat = features.reshape(h * w, -1)
    for y in range(h):
        base = y * w
        for x in range(w - 1):
            i = base + x
            diff = flat[i] - flat[i + 1]
            if np.sqrt(np.sum(diff * diff)) <= threshold:
                uf.union(i, i + 1)
    for y in range(h - 1):
        base = y * w
        for x in range(w):
            i = base + x
            diff = flat[i] - flat[i + w]
            if np.sqrt(np.sum(diff * diff)) <= threshold:
                uf.union(i, i + w)
    roots = np.fromiter((uf.find(i) for i in range(h * w)), dtype=np.int64)
    _, labels = np.unique(roots, return_inverse=True)
    return labels.reshape(h, w).astype(np.int64)


def _seed_label_transitions(labels: np.ndarray) -> set:
    pairs: set = set()
    for a, b in ((labels[:, :-1], labels[:, 1:]),
                 (labels[:-1, :], labels[1:, :])):
        a = a.ravel()
        b = b.ravel()
        mask = a != b
        lo = np.minimum(a[mask], b[mask])
        hi = np.maximum(a[mask], b[mask])
        pairs.update(zip(lo.tolist(), hi.tolist()))
    return pairs


def _seed_merge_small_regions(labels: np.ndarray, features: np.ndarray,
                              min_size: int,
                              max_passes: int = 10) -> np.ndarray:
    """The original dict/set-driven small-region absorption."""
    labels = labels.copy()
    flat_feat = features.reshape(-1, features.shape[-1])
    for _ in range(max_passes):
        flat = labels.ravel()
        ids, inverse = np.unique(flat, return_inverse=True)
        counts = np.bincount(inverse)
        if counts.min() >= min_size or len(ids) <= 1:
            break
        sums = np.stack(
            [np.bincount(inverse, weights=flat_feat[:, c])
             for c in range(flat_feat.shape[1])], axis=1
        )
        means = sums / counts[:, None]
        id_to_pos = {int(r): k for k, r in enumerate(ids)}
        neighbors: dict = {int(r): set() for r in ids}
        for a, b in _seed_label_transitions(labels):
            neighbors[a].add(b)
            neighbors[b].add(a)
        remap = {}
        for k, rid in enumerate(ids):
            if counts[k] >= min_size:
                continue
            nbrs = neighbors[int(rid)]
            if not nbrs:
                continue
            best = min(
                nbrs,
                key=lambda n: float(
                    np.linalg.norm(means[k] - means[id_to_pos[n]])
                ),
            )
            remap[int(rid)] = best
        if not remap:
            break
        lut = np.array(
            [remap.get(int(r), int(r)) for r in ids], dtype=np.int64
        )
        labels = lut[inverse].reshape(labels.shape)
    _, compact = np.unique(labels.ravel(), return_inverse=True)
    return compact.reshape(labels.shape).astype(np.int64)


def _seed_region_adjacency(labels: np.ndarray) -> set:
    """The original tuple-set region adjacency."""
    pairs: set = set()
    horizontal = np.stack(
        [labels[:, :-1].ravel(), labels[:, 1:].ravel()], axis=1
    )
    vertical = np.stack(
        [labels[:-1, :].ravel(), labels[1:, :].ravel()], axis=1
    )
    for edges in (horizontal, vertical):
        diff = edges[edges[:, 0] != edges[:, 1]]
        if diff.size == 0:
            continue
        lo = np.minimum(diff[:, 0], diff[:, 1])
        hi = np.maximum(diff[:, 0], diff[:, 1])
        pairs.update(zip(lo.tolist(), hi.tolist()))
    return pairs


def _seed_meanshift_filter(segmenter, features: np.ndarray) -> np.ndarray:
    """The original np.roll-based mean-shift filtering."""
    h, w, _ = features.shape
    hr2 = segmenter.range_bandwidth ** 2
    offsets = segmenter._offsets()
    current = features.copy()
    for _ in range(segmenter.max_iterations):
        acc = np.zeros_like(current)
        cnt = np.zeros((h, w, 1), dtype=np.float64)
        for dy, dx in offsets:
            shifted = np.roll(np.roll(current, dy, axis=0), dx, axis=1)
            valid = np.ones((h, w), dtype=bool)
            if dy > 0:
                valid[:dy, :] = False
            elif dy < 0:
                valid[dy:, :] = False
            if dx > 0:
                valid[:, :dx] = False
            elif dx < 0:
                valid[:, dx:] = False
            diff = shifted - current
            in_range = np.sum(diff * diff, axis=2) <= hr2
            mask = (in_range & valid)[..., None].astype(np.float64)
            acc += shifted * mask
            cnt += mask
        new = acc / np.maximum(cnt, 1.0)
        converged = np.max(np.abs(new - current)) < 0.05
        current = new
        if converged:
            break
    return current


def _seed_meanshift_stage(segmenter, image: np.ndarray, frame_index: int):
    """Seed MeanShift segmentation + RAG construction for one frame."""
    from repro.graph.rag import RegionAdjacencyGraph
    from repro.video.color import rgb_to_luv
    from repro.video.regions import region_statistics

    features = rgb_to_luv(image)
    filtered = _seed_meanshift_filter(segmenter, features)
    labels = _seed_connected_components(filtered, segmenter.range_bandwidth)
    labels = _seed_merge_small_regions(labels, filtered,
                                       segmenter.min_region_size)
    regions = region_statistics(image, labels)
    adjacency = _seed_region_adjacency(labels)
    return RegionAdjacencyGraph.from_regions(regions, adjacency, frame_index)


def _best_of(fn, repeats: int = BEST_OF) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _make_videos():
    from repro.datasets.real import render_stream_segment

    rng = np.random.default_rng(0)
    videos = []
    for i in range(INGEST_SEGMENTS):
        video = render_stream_segment("Traffic1", num_frames=INGEST_FRAMES,
                                      rng=rng)
        video.name = f"Traffic1-{i:04d}"
        videos.append(video)
    return videos


class _SeedGridSegmenter:
    """GridSegmenter wired to the seed kernels (for the seed baseline)."""

    def __init__(self, levels: int = 8, min_region_size: int = 20):
        self.levels = levels
        self.min_region_size = min_region_size

    def segment(self, image: np.ndarray) -> np.ndarray:
        step = 256.0 / self.levels
        quantized = np.floor(image.astype(np.float64) / step)
        labels = _seed_connected_components(quantized, 0.0)
        return _seed_merge_small_regions(labels, image.astype(np.float64),
                                         self.min_region_size)

    def build_rag(self, image: np.ndarray, frame_index: int = 0):
        from repro.graph.rag import RegionAdjacencyGraph
        from repro.video.regions import region_statistics

        labels = self.segment(image)
        regions = region_statistics(image, labels)
        adjacency = _seed_region_adjacency(labels)
        return RegionAdjacencyGraph.from_regions(regions, adjacency,
                                                 frame_index)

    def build_rags(self, images, first_index: int = 0):
        return [self.build_rag(image, first_index + k)
                for k, image in enumerate(images)]


def _ingest_all(videos, segmenter=None, workers=None):
    """One full ingest run; returns (database, report)."""
    from repro.pipeline import PipelineConfig
    from repro.storage.database import VideoDatabase

    config = PipelineConfig() if segmenter is None \
        else PipelineConfig(segmenter=segmenter)
    db = VideoDatabase(config)
    report = db.ingest_many(videos, workers=workers)
    return db, report


def bench_ingest_report():
    """Stage + end-to-end ingest comparison; archives BENCH_ingest.json."""
    from repro.datasets.real import render_stream_segment
    from repro.parallel import usable_cpus
    from repro.video.segmentation import MeanShiftSegmenter

    cpus = usable_cpus()
    report: dict = {"config": {
        "smoke": SMOKE,
        "usable_cpus": cpus,
        "stage_frames": STAGE_FRAMES,
        "ingest_segments": INGEST_SEGMENTS,
        "ingest_frames": INGEST_FRAMES,
        "best_of": BEST_OF,
        "frame_size": "120x160",
    }}

    # -- Stage A: MeanShift segmentation + RAG, seed vs vectorized ---------
    video = render_stream_segment("Traffic1", num_frames=STAGE_FRAMES,
                                  rng=np.random.default_rng(3))
    frames = [video.frame(t) for t in range(video.num_frames)]
    segmenter = MeanShiftSegmenter(spatial_bandwidth=2, range_bandwidth=10.0,
                                   max_iterations=3, min_region_size=16)

    def run_seed_stage():
        return [_seed_meanshift_stage(segmenter, f, t)
                for t, f in enumerate(frames)]

    def run_vectorized_stage():
        return segmenter.build_rags(frames)

    # Correctness before speed: same region structure per frame.
    seed_rags = run_seed_stage()
    vec_rags = run_vectorized_stage()
    for seed_rag, vec_rag in zip(seed_rags, vec_rags):
        assert len(seed_rag) == len(vec_rag), "region count drifted from seed"

    seed_s = _best_of(run_seed_stage)
    vec_s = _best_of(run_vectorized_stage)
    stage_speedup = seed_s / vec_s
    report["meanshift_stage"] = {
        "seed_seconds": seed_s,
        "vectorized_seconds": vec_s,
        "speedup": stage_speedup,
        "seconds_per_frame_seed": seed_s / STAGE_FRAMES,
        "seconds_per_frame_vectorized": vec_s / STAGE_FRAMES,
    }

    # -- Stage B: end-to-end ingest, seed vs vectorized vs 4 workers -------
    videos = _make_videos()
    db_seed, rep_seed = _ingest_all(videos, segmenter=_SeedGridSegmenter())
    db_w1, rep_w1 = _ingest_all(videos, workers=1)
    db_w4, rep_w4 = _ingest_all(videos, workers=4)
    assert rep_w1 == rep_w4, "worker count changed the ingest report"
    assert rep_seed == rep_w1, "vectorized ingest extracted different OGs"
    assert db_w1.index is not None and db_w4.index is not None

    seed_ingest_s = _best_of(
        lambda: _ingest_all(videos, segmenter=_SeedGridSegmenter())
    )
    w1_s = _best_of(lambda: _ingest_all(videos, workers=1))
    w4_s = _best_of(lambda: _ingest_all(videos, workers=4))
    worker_speedup = w1_s / w4_s
    report["ingest_end_to_end"] = {
        "seed_seconds": seed_ingest_s,
        "workers1_seconds": w1_s,
        "workers4_seconds": w4_s,
        "vectorized_speedup": seed_ingest_s / w1_s,
        "worker_speedup_4v1": worker_speedup,
        "reports_identical": rep_w1 == rep_w4,
        "ogs": rep_w1["ogs"],
    }

    rows = [
        ["meanshift stage (seed)", f"{seed_s:.3f}", "1.00x"],
        ["meanshift stage (vectorized)", f"{vec_s:.3f}",
         f"{stage_speedup:.2f}x"],
        ["ingest end-to-end (seed serial)", f"{seed_ingest_s:.3f}", "1.00x"],
        ["ingest end-to-end (1 worker)", f"{w1_s:.3f}",
         f"{seed_ingest_s / w1_s:.2f}x"],
        ["ingest end-to-end (4 workers)", f"{w4_s:.3f}",
         f"{worker_speedup:.2f}x vs 1 worker"],
    ]
    lines = format_table(["variant", "seconds (best of 3)", "speedup"], rows)
    lines.append(f"usable cpus: {cpus}")
    record_result("BENCH_ingest", lines, data=report)

    assert stage_speedup >= 5.0, (
        f"vectorized MeanShift stage only {stage_speedup:.2f}x over seed"
    )
    if cpus >= 2:
        assert worker_speedup >= 1.8, (
            f"4-worker ingest only {worker_speedup:.2f}x over 1 worker "
            f"on a {cpus}-cpu machine"
        )
    else:
        lines.append("single-cpu machine: 4v1 worker gate skipped")


if __name__ == "__main__":  # pragma: no cover
    bench_ingest_report()
