"""Micro-benchmarks of the distance kernels.

Not a paper figure — engineering benchmarks tracking the cost of the
O(n*m) dynamic programs that dominate every experiment (Section 6.3's
cost model).  Uses pytest-benchmark's statistical timing (multiple
rounds), unlike the figure benches which run expensive sweeps once.
"""

from __future__ import annotations

import numpy as np
import pytest

LENGTHS = (16, 32, 64)


@pytest.fixture(scope="module")
def series_pairs():
    rng = np.random.default_rng(0)
    return {
        n: (rng.normal(size=(n, 2)) * 20, rng.normal(size=(n + 7, 2)) * 20)
        for n in LENGTHS
    }


@pytest.mark.parametrize("length", LENGTHS)
def bench_eged_nonmetric(benchmark, series_pairs, length):
    from repro.distance.eged import eged

    a, b = series_pairs[length]
    result = benchmark(eged, a, b)
    assert result >= 0.0


@pytest.mark.parametrize("length", LENGTHS)
def bench_eged_metric(benchmark, series_pairs, length):
    from repro.distance.erp import erp

    a, b = series_pairs[length]
    result = benchmark(erp, a, b)
    assert result >= 0.0


@pytest.mark.parametrize("length", LENGTHS)
def bench_dtw(benchmark, series_pairs, length):
    from repro.distance.dtw import dtw

    a, b = series_pairs[length]
    result = benchmark(dtw, a, b)
    assert result >= 0.0


@pytest.mark.parametrize("length", LENGTHS)
def bench_lcs(benchmark, series_pairs, length):
    from repro.distance.lcs import lcs_distance

    a, b = series_pairs[length]
    result = benchmark(lcs_distance, a, b, 5.0)
    assert 0.0 <= result <= 1.0


def bench_lower_bound_vs_full_distance(benchmark, series_pairs):
    """The O(n) lower bound must be orders of magnitude cheaper than the
    O(n*m) DP it gates."""
    from repro.distance.bounds import eged_metric_lower_bound

    a, b = series_pairs[64]
    result = benchmark(eged_metric_lower_bound, a, b)
    assert result >= 0.0
