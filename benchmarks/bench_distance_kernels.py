"""Micro-benchmarks of the distance kernels.

Not a paper figure — engineering benchmarks tracking the cost of the
O(n*m) dynamic programs that dominate every experiment (Section 6.3's
cost model).  Uses pytest-benchmark's statistical timing (multiple
rounds), unlike the figure benches which run expensive sweeps once.

``bench_batch_engine_report`` additionally compares the scalar per-pair
loop against the vectorized batch kernels and the multi-process executor
and archives a machine-readable ``benchmarks/results/BENCH_kernels.json``
(ops/sec per variant, EM wall-clock, cache hit rates).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from conftest import format_table, record_result

LENGTHS = (16, 32, 64)

#: Scale of the batch-engine report: 256 series of 64 nodes.
BATCH_N = 64
BATCH_SIZE = 256
SCALAR_SAMPLE = 48


@pytest.fixture(scope="module")
def series_pairs():
    rng = np.random.default_rng(0)
    return {
        n: (rng.normal(size=(n, 2)) * 20, rng.normal(size=(n + 7, 2)) * 20)
        for n in LENGTHS
    }


@pytest.fixture(scope="module")
def series_batch():
    rng = np.random.default_rng(1)
    return [
        np.asarray(rng.normal(size=(BATCH_N, 2)) * 20, dtype=np.float64)
        for _ in range(BATCH_SIZE)
    ]


@pytest.mark.parametrize("length", LENGTHS)
def bench_eged_nonmetric(benchmark, series_pairs, length):
    from repro.distance.eged import eged

    a, b = series_pairs[length]
    result = benchmark(eged, a, b)
    assert result >= 0.0


@pytest.mark.parametrize("length", LENGTHS)
def bench_eged_metric(benchmark, series_pairs, length):
    from repro.distance.erp import erp

    a, b = series_pairs[length]
    result = benchmark(erp, a, b)
    assert result >= 0.0


@pytest.mark.parametrize("length", LENGTHS)
def bench_dtw(benchmark, series_pairs, length):
    from repro.distance.dtw import dtw

    a, b = series_pairs[length]
    result = benchmark(dtw, a, b)
    assert result >= 0.0


@pytest.mark.parametrize("length", LENGTHS)
def bench_lcs(benchmark, series_pairs, length):
    from repro.distance.lcs import lcs_distance

    a, b = series_pairs[length]
    result = benchmark(lcs_distance, a, b, 5.0)
    assert 0.0 <= result <= 1.0


def bench_lower_bound_vs_full_distance(benchmark, series_pairs):
    """The O(n) lower bound must be orders of magnitude cheaper than the
    O(n*m) DP it gates."""
    from repro.distance.bounds import eged_metric_lower_bound

    a, b = series_pairs[64]
    result = benchmark(eged_metric_lower_bound, a, b)
    assert result >= 0.0


# -- batched / parallel variants ---------------------------------------------

def _seed_eged(a: np.ndarray, b: np.ndarray, mode: str = "adaptive") -> float:
    """The seed repo's ``_eged_dynamic``: cost matrices round-tripped
    through ``.tolist()`` plus a rolling-row DP over Python floats.

    Kept here verbatim as the *pre-batching* scalar baseline — the
    production ``eged()`` now delegates to the batch kernel even for a
    single pair, so timing it would compare the engine against itself.
    """
    from repro.distance.base import node_cost_matrix
    from repro.distance.eged import _gap_values

    n, m = a.shape[0], b.shape[0]
    sub = node_cost_matrix(a, b).tolist()
    mid_b = _gap_values(b, mode)
    del_cost = np.sqrt(
        np.sum((a[:, None, :] - mid_b[None, :, :]) ** 2, axis=2)
    ).tolist()
    mid_a = _gap_values(a, mode)
    ins_cost = np.sqrt(
        np.sum((b[:, None, :] - mid_a[None, :, :]) ** 2, axis=2)
    ).tolist()
    prev = [0.0] * (m + 1)
    for j in range(m):
        prev[j + 1] = prev[j] + ins_cost[j][0]
    for i in range(n):
        srow = sub[i]
        drow = del_cost[i]
        cur = [prev[0] + drow[0]]
        last = cur[0]
        for j in range(m):
            best = prev[j] + srow[j]
            cand = prev[j + 1] + drow[j + 1]
            if cand < best:
                best = cand
            cand = last + ins_cost[j][i + 1]
            if cand < best:
                best = cand
            cur.append(best)
            last = best
        prev = cur
    return float(prev[m])


def _engine_distances():
    """kernel name -> (batch-capable Distance, pre-batching scalar loop).

    ``erp``/``dtw``/``lcs_distance`` still *are* the rolling-row scalar
    loops; EGED's scalar path delegates to the batch kernel, so its
    baseline is the seed implementation preserved in :func:`_seed_eged`.
    """
    from repro.distance.dtw import DTW, dtw
    from repro.distance.eged import EGED, MetricEGED
    from repro.distance.erp import erp
    from repro.distance.lcs import LCSDistance, lcs_distance

    return {
        "eged_adaptive": (EGED(), _seed_eged),
        "eged_metric": (MetricEGED(), erp),
        "dtw": (DTW(), dtw),
        "lcs": (LCSDistance(epsilon=12.0),
                lambda a, b: lcs_distance(a, b, 12.0)),
    }


@pytest.mark.parametrize("kernel", ["eged_adaptive", "eged_metric",
                                    "dtw", "lcs"])
def bench_one_vs_many_batched(benchmark, series_batch, kernel):
    """One vectorized sweep over 64 series (the EM E-step shape)."""
    from repro.distance.batch import one_vs_many

    distance, _ = _engine_distances()[kernel]
    items = series_batch[:64]
    out = benchmark(one_vs_many, distance, series_batch[64], items)
    assert out.shape == (64,) and np.all(out >= 0.0)


def bench_one_vs_many_parallel(benchmark, series_batch):
    """The same sweep through the process-pool executor."""
    from repro.distance.eged import MetricEGED
    from repro.parallel import DistanceExecutor

    distance = MetricEGED()
    with DistanceExecutor(workers=max(2, os.cpu_count() or 1),
                          min_pairs=1) as ex:
        ex.one_vs_many(distance, series_batch[0], series_batch[:8])  # warm up
        out = benchmark(ex.one_vs_many, distance, series_batch[64],
                        series_batch[:64])
    assert out.shape == (64,)


def _best_of(fn, repeats: int = 3) -> float:
    """Best wall-clock of ``repeats`` runs — the standard defence against
    scheduler jitter on a single-CPU container."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_batch_engine_report(series_batch):
    """Scalar vs batch vs parallel throughput + EM wall-clock.

    Times each variant (best of three runs) at the n=64 / batch=256 scale
    (32 640 pairs for the full symmetric matrix), archives
    ``benchmarks/results/BENCH_kernels.json`` and asserts the batched
    pairwise matrix sustains at least 5x the scalar per-pair loop.
    """
    from repro.clustering.em import EMClustering, EMConfig
    from repro.distance.base import Distance
    from repro.distance.batch import pairwise_matrix
    from repro.distance.cache import DistanceCache, set_default_cache
    from repro.distance.eged import EGED
    from repro.parallel import DistanceExecutor

    items = series_batch
    n_pairs = len(items) * (len(items) - 1) // 2
    workers = os.cpu_count() or 1
    report: dict = {
        "config": {
            "series_length": BATCH_N,
            "batch_size": len(items),
            "matrix_pairs": n_pairs,
            "scalar_sample_pairs": SCALAR_SAMPLE,
            "workers": workers,
        },
        "kernels": {},
    }
    rows = []
    for name, (distance, scalar_fn) in _engine_distances().items():
        sample = [(items[i], items[(7 * i + 1) % len(items)])
                  for i in range(SCALAR_SAMPLE)]

        def _scalar_loop():
            for a, b in sample:
                scalar_fn(a, b)

        scalar_ops = SCALAR_SAMPLE / _best_of(_scalar_loop)
        batch_ops = n_pairs / _best_of(
            lambda: pairwise_matrix(distance, items)
        )
        with DistanceExecutor(workers=workers, min_pairs=1) as ex:
            parallel_ops = n_pairs / _best_of(
                lambda: pairwise_matrix(distance, items, executor=ex)
            )
        report["kernels"][name] = {
            "scalar_ops_per_sec": scalar_ops,
            "batch_ops_per_sec": batch_ops,
            "parallel_ops_per_sec": parallel_ops,
            "batch_speedup": batch_ops / scalar_ops,
            "parallel_speedup": parallel_ops / scalar_ops,
        }
        rows.append([name, f"{scalar_ops:.0f}", f"{batch_ops:.0f}",
                     f"{parallel_ops:.0f}",
                     f"{batch_ops / scalar_ops:.1f}x"])

    # EM wall-clock: the batched+cached engine vs a per-pair-only wrapper.
    class _ScalarOnly(Distance):
        """Hides ``compute_many``/``cache_token`` → per-pair, uncached."""

        def __init__(self, inner):
            self.inner = inner

        def compute(self, a, b):
            return self.inner.compute(a, b)

    rng = np.random.default_rng(3)
    em_series = [
        np.asarray(rng.normal(size=(int(rng.integers(12, 20)), 2)) * 10)
        for _ in range(64)
    ]
    cfg = dict(n_clusters=6, max_iterations=8, seed=0)
    bench_cache = DistanceCache()
    previous_cache = set_default_cache(bench_cache)
    try:
        t0 = time.perf_counter()
        EMClustering(EMConfig(**cfg), distance=EGED()).fit(em_series)
        batched_seconds = time.perf_counter() - t0
        t0 = time.perf_counter()
        EMClustering(EMConfig(**cfg),
                     distance=_ScalarOnly(EGED())).fit(em_series)
        scalar_seconds = time.perf_counter() - t0
    finally:
        set_default_cache(previous_cache)
    report["em_clustering"] = {
        "ogs": len(em_series),
        "n_clusters": cfg["n_clusters"],
        "max_iterations": cfg["max_iterations"],
        "scalar_seconds": scalar_seconds,
        "batched_seconds": batched_seconds,
        "speedup": scalar_seconds / batched_seconds,
        "cache": bench_cache.stats.as_dict(),
    }

    lines = format_table(
        ["kernel", "scalar ops/s", "batch ops/s", "parallel ops/s",
         "batch speedup"],
        rows,
    )
    lines.append("")
    lines.append(
        f"EM wall-clock: scalar {scalar_seconds:.2f}s vs batched "
        f"{batched_seconds:.2f}s "
        f"({scalar_seconds / batched_seconds:.1f}x, cache hit rate "
        f"{bench_cache.stats.hit_rate():.0%})"
    )
    record_result("BENCH_kernels", lines, data=report)

    for name, row in report["kernels"].items():
        assert row["batch_speedup"] >= 5.0, (
            f"{name}: batched pairwise matrix only "
            f"{row['batch_speedup']:.1f}x over the scalar loop"
        )
    assert batched_seconds < scalar_seconds, (
        "batched EM slower than the per-pair path"
    )
