"""Motion-attribute queries and terminal trajectory plots.

Runs in ~30 seconds:

    python examples/motion_queries.py

Indexes a simulated traffic stream's trajectories and answers the kinds
of "queries on moving objects" the paper's introduction motivates:
eastbound vehicles, speeders, anything crossing a region of interest.
Results are drawn as ASCII trajectory plots.
"""

import math

from repro.datasets.real import STREAMS, simulate_stream_ogs
from repro.storage.database import VideoDatabase
from repro.video.visualize import render_trajectories


def main() -> None:
    spec = STREAMS["Traffic2"]
    ogs = simulate_stream_ogs(spec)
    db = VideoDatabase()
    db.ingest_object_graphs(ogs, source=spec.name)
    print(f"indexed {len(ogs)} trajectories from {spec.name}")

    eastbound = db.query_by_motion(direction=0.0,
                                   direction_tolerance=math.pi / 6)
    westbound = db.query_by_motion(direction=math.pi,
                                   direction_tolerance=math.pi / 6)
    print(f"\n{len(eastbound)} eastbound, {len(westbound)} westbound")

    speeds = sorted(og.mean_velocity() for og in ogs)
    threshold = speeds[int(len(speeds) * 0.9)]
    speeders = db.query_by_motion(min_velocity=threshold)
    print(f"{len(speeders)} vehicles above the 90th-percentile speed "
          f"({threshold:.1f} px/frame)")

    roi = (0.0, 0.0, 200.0, 80.0)  # the top lanes
    in_roi = db.query_by_motion(region=roi)
    print(f"{len(in_roi)} trajectories intersect the region {roi}")

    print("\na sample of eastbound trajectories (S marks the start):")
    print(render_trajectories(eastbound[:4], width=64, height=14,
                              bounds=(0.0, 0.0, 200.0, 200.0)))

    print("\nand westbound:")
    print(render_trajectories(westbound[:4], width=64, height=14,
                              bounds=(0.0, 0.0, 200.0, 200.0)))


if __name__ == "__main__":
    main()
