"""Surveillance retrieval: the full pixels-to-query pipeline.

Runs in ~1 minute:

    python examples/surveillance_retrieval.py

A simulated indoor camera stream (the paper's Lab scenario) is rendered
frame by frame, segmented into regions, turned into a Spatio-Temporal
Region Graph, decomposed into Object Graphs and a Background Graph, and
indexed.  A short query clip is then matched against the database —
query-by-example over video content, as in Section 5.5.
"""

import numpy as np

from repro.datasets.real import render_stream_segment
from repro.storage.database import VideoDatabase


def main() -> None:
    db = VideoDatabase()

    # Ingest two segments of the simulated Lab1 stream.
    for segment_id in range(2):
        rng = np.random.default_rng(100 + segment_id)
        video = render_stream_segment("Lab1", num_frames=48, rng=rng)
        video.name = f"Lab1-segment-{segment_id}"
        n = db.ingest(video)
        print(f"ingested {video.name}: {video.num_frames} frames "
              f"-> {n} object graphs")

    stats = db.stats()
    print(f"\ndatabase: {stats['ogs']} OGs in {stats['clusters']} clusters "
          f"under {stats['backgrounds']} background(s)")
    print(f"raw STRG would be {stats['raw_strg_bytes'] / 1024:.0f} KiB; "
          f"the index is {stats['index_bytes'] / 1024:.0f} KiB "
          f"({stats['raw_strg_bytes'] / stats['index_bytes']:.0f}x smaller)")

    # Query by example clip: a fresh rendering of the same scene type.
    clip = render_stream_segment("Lab1", num_frames=24,
                                 rng=np.random.default_rng(999))
    print(f"\nquerying with {clip.num_frames}-frame example clip ...")
    hits = db.query_clip(clip, k=3)
    for hit in hits:
        print(f"  d={hit.distance:8.2f}  OG {hit.og.og_id}  "
              f"from {hit.clip_ref}")

    # Query by trajectory: "anything moving left-to-right across the room".
    walk = np.stack([np.linspace(10, 150, 20), np.full(20, 95.0)], axis=1)
    print("\nquerying with a left-to-right walking trajectory ...")
    for hit in db.knn(walk, k=3):
        direction = "right" if hit.og.values[-1, 0] > hit.og.values[0, 0] else "left"
        print(f"  d={hit.distance:8.2f}  OG {hit.og.og_id} "
              f"moves {direction}ward over {len(hit.og)} frames")


if __name__ == "__main__":
    main()
