"""Quickstart: index synthetic object trajectories and run k-NN queries.

Runs in ~30 seconds:

    python examples/quickstart.py

Steps:
1. generate a labeled synthetic workload (the paper's 48 motion patterns);
2. build an STRG-Index (EM clustering + metric EGED keys);
3. run exact and cluster-probed k-NN queries and inspect the results;
4. compare the index's distance-evaluation count against a linear scan.
"""

from repro.core.index import STRGIndex, STRGIndexConfig
from repro.datasets.patterns import ALL_PATTERNS
from repro.datasets.synthetic import SyntheticConfig, generate_synthetic_ogs
from repro.distance.base import CountingDistance
from repro.distance.eged import MetricEGED


def main() -> None:
    # 1. A workload: 8 motion patterns, 12 trajectories each.
    config = SyntheticConfig(
        num_ogs=96, noise_fraction=0.08, seed=42, patterns=ALL_PATTERNS[:8],
    )
    ogs = generate_synthetic_ogs(config)
    print(f"generated {len(ogs)} object graphs "
          f"({len({og.label for og in ogs})} motion patterns)")

    # 2. Build the index.  A CountingDistance shows how much work queries do.
    counter = CountingDistance(MetricEGED())
    index = STRGIndex(
        STRGIndexConfig(n_clusters=8, em_iterations=10),
        metric_distance=counter,
    )
    index.build(ogs)
    print(f"built {index}")

    # 3. Query: the 5 most similar trajectories to OG #10.
    query = ogs[10]
    print(f"\nquery: OG {query.og_id} "
          f"(pattern {query.meta['pattern']}, {len(query)} frames)")
    counter.reset()
    for distance, og, _ in index.knn(query, 5):
        print(f"  d={distance:8.2f}  OG {og.og_id:<3d} "
              f"pattern={og.meta['pattern']}")
    exact_calls = counter.calls

    # Cluster-probed search (the literal Algorithm 3) is cheaper still and
    # stays inside the query's semantic cluster.
    counter.reset()
    probed = index.knn(query, 5, n_probe=1)
    print(f"\nn_probe=1 search returns {len(probed)} hits "
          f"using {counter.calls} distance evaluations "
          f"(exact search used {exact_calls}; linear scan would use {len(ogs)})")

    # 4. Level-by-level statistics.
    print(f"\nindex stats: {index.stats()}")


if __name__ == "__main__":
    main()
