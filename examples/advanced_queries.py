"""Advanced querying: shots, preprocessing and the fluent query builder.

Runs in ~1 minute:

    python examples/advanced_queries.py

Builds a two-scene video (a hard cut between a traffic view and a lab
view), lets the shot parser split it, ingests both scenes into one
database (two root-level backgrounds), and then answers composite
queries — similarity plus motion/time/region predicates — using the
trajectory toolkit to prepare the query example.
"""

import math

import numpy as np

from repro.datasets.real import render_stream_segment
from repro.query import Query
from repro.storage.database import VideoDatabase
from repro.trajectory import resample, simplify, smooth
from repro.video.frames import VideoSegment
from repro.video.shots import detect_shot_boundaries


def main() -> None:
    # One video, two scenes: traffic then lab (a hard cut in between).
    traffic = render_stream_segment("Traffic1", num_frames=40,
                                    rng=np.random.default_rng(1))
    lab = render_stream_segment("Lab2", num_frames=40,
                                rng=np.random.default_rng(2))
    video = VideoSegment(
        np.concatenate([traffic.frames, lab.frames]), name="two-scenes"
    )
    boundaries = detect_shot_boundaries(video)
    print(f"shot parser found boundaries at frames {boundaries}")

    db = VideoDatabase()
    n = db.ingest(video, parse_shots=True)
    stats = db.stats()
    print(f"ingested {n} trajectories into {stats['backgrounds']} "
          f"background(s), {stats['clusters']} cluster(s)")

    # Prepare a query example with the trajectory toolkit: a noisy,
    # oversampled eastbound sketch, cleaned up before querying.
    rng = np.random.default_rng(7)
    sketch = np.stack([
        np.linspace(0, 150, 120),
        58.0 + rng.normal(0, 3.0, 120),
    ], axis=1)
    cleaned = resample(simplify(smooth(sketch, 7), tolerance=2.0), 24)
    print(f"\nquery sketch: {len(sketch)} raw points -> "
          f"{len(cleaned)} after smooth/simplify/resample")

    hits = (Query(db)
            .similar_to(cleaned)
            .heading(0.0, tolerance=math.pi / 3)
            .duration(minimum=5)
            .limit(3)
            .run())
    print("\neastbound trajectories most similar to the sketch:")
    for result in hits:
        og = result.og
        print(f"  d={result.distance:8.2f}  OG {og.og_id} "
              f"({og.duration()} frames, "
              f"mean speed {og.mean_velocity():.1f} px/frame)")

    total = Query(db).count()
    moving_fast = Query(db).velocity(minimum=2.0).count()
    print(f"\n{moving_fast} of {total} indexed trajectories move "
          f">= 2 px/frame")


if __name__ == "__main__":
    main()
