"""Distance-function tour: why the paper needs EGED twice.

Runs in seconds:

    python examples/distance_comparison.py

Walks through the paper's own worked example (Section 3.1) showing that
the non-metric EGED violates the triangle inequality while EGED_M
restores it, then compares all the implemented distances on realistic
trajectories: matching quality under noise and local time shifting.
"""

import numpy as np

from repro.datasets.patterns import pattern_by_id
from repro.distance import (
    DTW,
    EDRDistance,
    EGED,
    FrechetDistance,
    LCSDistance,
    LpDistance,
    MetricEGED,
    check_metric_axioms,
    eged,
)


def paper_example() -> None:
    """The Section 3.1 example: OG_r = {0}, OG_s = {1,1}, OG_t = {2,2,3}."""
    r, s, t = [0.0], [1.0, 1.0], [2.0, 2.0, 3.0]
    print("paper worked example (Section 3.1):")
    print(f"  non-metric: EGED(r,t)={eged(r, t):.0f}  "
          f"EGED(r,s)+EGED(s,t)={eged(r, s) + eged(s, t):.0f}  "
          f"-> triangle inequality VIOLATED")
    d = MetricEGED()
    print(f"  metric:     EGED_M(r,t)={d(r, t):.0f}  "
          f"EGED_M(r,s)+EGED_M(s,t)={d(r, s) + d(s, t):.0f}  "
          f"-> triangle inequality holds")


def metric_audit() -> None:
    """Empirically audit the metric axioms.

    The sample includes the paper's counterexample trajectories, so the
    non-metric distances are caught red-handed.
    """
    rng = np.random.default_rng(3)
    points = [rng.normal(size=(int(rng.integers(3, 10)), 2)) * 20
              for _ in range(4)]
    # The Section 3.1 counterexample, lifted to 2-D.
    points += [np.array([[0.0, 0.0]]),
               np.array([[1.0, 0.0], [1.0, 0.0]]),
               np.array([[2.0, 0.0], [2.0, 0.0], [3.0, 0.0]])]
    print("\nmetric axiom audit on 6 random trajectories:")
    for dist in (MetricEGED(), EGED(), DTW()):
        violations = check_metric_axioms(dist, points)
        status = "metric" if not violations else (
            f"{len(violations)} violations (e.g. {violations[0][:60]}...)"
        )
        print(f"  {dist.name:<12s} {status}")


def robustness_comparison() -> None:
    """Same-pattern vs different-pattern contrast under noise."""
    rng = np.random.default_rng(7)
    pattern_a = pattern_by_id(0)    # a vertical lane
    pattern_b = pattern_by_id(24)   # a diagonal
    base = pattern_a.generate(30)
    same_noisy = pattern_a.generate(24) + rng.normal(0, 4.0, (24, 2))
    different = pattern_b.generate(28)

    distances = [EGED(), MetricEGED(), DTW(), LCSDistance(epsilon=12.0),
                 EDRDistance(epsilon=12.0), FrechetDistance(),
                 LpDistance(2.0)]
    print("\ncontrast = d(different pattern) / d(same pattern, noisy):")
    print(f"  {'distance':<14s} {'same':>10s} {'different':>10s} {'contrast':>9s}")
    for dist in distances:
        d_same = dist(base, same_noisy)
        d_diff = dist(base, different)
        contrast = d_diff / d_same if d_same > 0 else float("inf")
        print(f"  {dist.name:<14s} {d_same:10.2f} {d_diff:10.2f} "
              f"{contrast:8.1f}x")


def main() -> None:
    paper_example()
    metric_audit()
    robustness_comparison()


if __name__ == "__main__":
    main()
