"""Traffic analysis: discover motion patterns in a traffic stream.

Runs in ~1 minute:

    python examples/traffic_analysis.py

Simulates the paper's Traffic1 stream, uses the BIC criterion (Section
4.2) to discover how many distinct motion patterns the stream contains,
clusters the trajectories with EM-EGED, and characterizes each discovered
pattern (direction, speed, lane position) — the kind of summary a traffic
operator would want from 15 minutes of camera footage.
"""

import math

import numpy as np

from repro.clustering.bic import select_num_clusters
from repro.clustering.em import EMClustering, EMConfig
from repro.clustering.evaluation import clustering_error_rate
from repro.datasets.real import STREAMS, simulate_stream_ogs


def describe_cluster(members) -> str:
    """Human-readable motion summary of a trajectory cluster."""
    dx = np.mean([og.values[-1, 0] - og.values[0, 0] for og in members])
    dy = np.mean([og.values[-1, 1] - og.values[0, 1] for og in members])
    speed = np.mean([og.mean_velocity() for og in members])
    lane = np.mean([np.mean(og.values[:, 1]) for og in members])
    angle = math.degrees(math.atan2(dy, dx))
    if abs(angle) < 45:
        heading = "eastbound"
    elif abs(angle) > 135:
        heading = "westbound"
    else:
        heading = "northbound" if angle < 0 else "southbound"
    return (f"{heading:>10s}  lane y~{lane:5.1f}  "
            f"speed {speed:4.1f} px/frame  ({len(members)} vehicles)")


def main() -> None:
    spec = STREAMS["Traffic1"]
    ogs = simulate_stream_ogs(spec)
    print(f"simulated {spec.name}: {len(ogs)} vehicle trajectories over "
          f"{spec.duration_minutes:.0f} minutes")

    # How many motion patterns does the stream contain?  (Fig. 8)
    # Model selection needs enough data for the likelihood gain to beat
    # the BIC penalty, so use the full stream.
    best_k, scores = select_num_clusters(ogs, 2, 10, seed=1,
                                         max_iterations=8)
    print(f"\nBIC model selection over K=2..10: optimal K = {best_k} "
          f"(stream was built with {spec.n_clusters} patterns)")
    for k, score in enumerate(scores, start=2):
        marker = " <- peak" if k == best_k else ""
        print(f"  K={k:2d}  BIC={score:9.1f}{marker}")

    # Cluster the full stream and describe each discovered pattern.
    em = EMClustering(EMConfig(n_clusters=best_k, max_iterations=12, seed=1))
    result = em.fit(ogs)
    error = clustering_error_rate([og.label for og in ogs],
                                  result.assignments)
    print(f"\nEM-EGED clustering: {result.n_iterations} iterations, "
          f"error rate vs ground truth {error:.1f}%")
    print("\ndiscovered motion patterns:")
    for c in range(result.num_clusters):
        members = [ogs[int(i)] for i in result.cluster_members(c)]
        if members:
            print(f"  cluster {c}: {describe_cluster(members)}")


if __name__ == "__main__":
    main()
