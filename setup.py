"""Legacy setup shim.

The offline environment lacks the ``wheel`` package required by PEP 660
editable installs, so ``pip install -e . --no-use-pep517`` goes through
this file instead.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
