"""Tests for ObjectGraph / ObjectRegionGraph (Sections 2.3.1-2.3.2)."""

import math

import numpy as np
import pytest

from repro.errors import EmptySequenceError, GraphStructureError
from repro.graph.attributes import NodeAttributes
from repro.graph.object_graph import ObjectGraph, ObjectRegionGraph


def make_org(start_frame: int, centroids, size: int = 50,
             color=(100.0, 100.0, 100.0)) -> ObjectRegionGraph:
    """Helper: a straight ORG from a centroid list."""
    keys = [(start_frame + i, i) for i in range(len(centroids))]
    attrs = [NodeAttributes(size=size, color=color, centroid=tuple(c))
             for c in centroids]
    return ObjectRegionGraph(keys, attrs)


class TestObjectRegionGraph:
    def test_basic_properties(self):
        org = make_org(3, [(0, 0), (1, 0), (2, 0)])
        assert len(org) == 3
        assert org.start_frame == 3
        assert org.end_frame == 5

    def test_empty_rejected(self):
        with pytest.raises(EmptySequenceError):
            ObjectRegionGraph([], [])

    def test_length_mismatch_rejected(self):
        with pytest.raises(GraphStructureError):
            ObjectRegionGraph(
                [(0, 0)],
                [NodeAttributes(1, (0, 0, 0), (0, 0)),
                 NodeAttributes(1, (0, 0, 0), (1, 1))],
            )

    def test_non_consecutive_frames_rejected(self):
        attrs = [NodeAttributes(1, (0, 0, 0), (0, 0))] * 2
        with pytest.raises(GraphStructureError):
            ObjectRegionGraph([(0, 0), (2, 0)], attrs)

    def test_mean_velocity(self):
        org = make_org(0, [(0, 0), (3, 4), (6, 8)])
        assert org.mean_velocity() == pytest.approx(5.0)

    def test_single_node_velocity_zero(self):
        org = make_org(0, [(5, 5)])
        assert org.mean_velocity() == 0.0
        assert org.mean_direction() == 0.0

    def test_mean_direction(self):
        org = make_org(0, [(0, 0), (1, 0), (2, 0)])  # moving +x
        assert org.mean_direction() == pytest.approx(0.0)
        org_up = make_org(0, [(0, 0), (0, 1)])  # moving +y
        assert org_up.mean_direction() == pytest.approx(math.pi / 2)

    def test_overlap_detection(self):
        a = make_org(0, [(0, 0)] * 5)
        b = make_org(4, [(0, 0)] * 3)
        c = make_org(10, [(0, 0)] * 2)
        assert a.overlaps(b)
        assert b.overlaps(a)
        assert not a.overlaps(c)

    def test_mean_centroid_gap(self):
        a = make_org(0, [(0, 0), (1, 0)])
        b = make_org(0, [(0, 3), (1, 3)])
        assert a.mean_centroid_gap(b) == pytest.approx(3.0)

    def test_gap_infinite_without_overlap(self):
        a = make_org(0, [(0, 0)])
        b = make_org(5, [(0, 0)])
        assert a.mean_centroid_gap(b) == float("inf")

    def test_centroids_array(self):
        org = make_org(0, [(1, 2), (3, 4)])
        np.testing.assert_array_equal(
            org.centroids(), np.array([[1.0, 2.0], [3.0, 4.0]])
        )


class TestObjectGraph:
    def test_from_values_scalar_column(self):
        og = ObjectGraph.from_values([1.0, 2.0, 3.0])
        assert og.values.shape == (3, 1)
        assert og.dim == 1

    def test_empty_rejected(self):
        with pytest.raises(EmptySequenceError):
            ObjectGraph(values=np.zeros((0, 2)))

    def test_frames_default_consecutive(self):
        og = ObjectGraph.from_values(np.zeros((4, 2)))
        np.testing.assert_array_equal(og.frames, [0, 1, 2, 3])

    def test_frames_length_mismatch_rejected(self):
        with pytest.raises(GraphStructureError):
            ObjectGraph(values=np.zeros((3, 2)), frames=np.arange(5))

    def test_sizes_length_mismatch_rejected(self):
        with pytest.raises(GraphStructureError):
            ObjectGraph(values=np.zeros((3, 2)), sizes=np.ones(2))

    def test_velocities_and_mean(self):
        og = ObjectGraph.from_values([[0.0, 0.0], [3.0, 4.0]])
        np.testing.assert_allclose(og.velocities(), [5.0])
        assert og.mean_velocity() == pytest.approx(5.0)

    def test_single_point_velocity(self):
        og = ObjectGraph.from_values([[1.0, 1.0]])
        assert og.velocities().size == 0
        assert og.mean_velocity() == 0.0

    def test_bounding_box(self):
        og = ObjectGraph.from_values([[0.0, 5.0], [10.0, 1.0]])
        assert og.bounding_box() == (0.0, 1.0, 10.0, 5.0)

    def test_unique_ids_and_hash(self):
        a = ObjectGraph.from_values([[0.0, 0.0]])
        b = ObjectGraph.from_values([[0.0, 0.0]])
        assert a.og_id != b.og_id
        assert a != b
        assert len({a, b}) == 2

    def test_size_bytes_positive_and_monotone(self):
        short = ObjectGraph.from_values(np.zeros((5, 2)))
        long = ObjectGraph.from_values(np.zeros((50, 2)))
        assert 0 < short.size_bytes() < long.size_bytes()

    def test_label_roundtrip(self):
        og = ObjectGraph.from_values([[0.0, 0.0]], label=7)
        assert og.label == 7


class TestFromOrgs:
    def test_merge_two_parallel_orgs(self):
        # Two body parts moving together: merged centroid is the
        # size-weighted mean.
        a = make_org(0, [(0, 0), (1, 0)], size=100)
        b = make_org(0, [(0, 2), (1, 2)], size=100)
        og = ObjectGraph.from_orgs([a, b])
        assert len(og) == 2
        np.testing.assert_allclose(og.values[0], [0.0, 1.0])
        np.testing.assert_allclose(og.sizes, [200.0, 200.0])

    def test_size_weighted_centroid(self):
        a = make_org(0, [(0.0, 0.0)], size=300)
        b = make_org(0, [(0.0, 4.0)], size=100)
        og = ObjectGraph.from_orgs([a, b])
        np.testing.assert_allclose(og.values[0], [0.0, 1.0])

    def test_staggered_orgs_cover_union(self):
        a = make_org(0, [(0, 0), (1, 0), (2, 0)])
        b = make_org(2, [(2, 0), (3, 0)])
        og = ObjectGraph.from_orgs([a, b])
        assert og.start_frame == 0
        assert og.end_frame == 3
        assert len(og) == 4

    def test_gap_frames_interpolated(self):
        a = make_org(0, [(0.0, 0.0)])
        b = make_org(2, [(2.0, 0.0)])
        og = ObjectGraph.from_orgs([a, b])
        np.testing.assert_allclose(og.values[1], [1.0, 0.0])

    def test_zero_orgs_rejected(self):
        with pytest.raises(EmptySequenceError):
            ObjectGraph.from_orgs([])

    def test_meta_records_member_count(self):
        a = make_org(0, [(0, 0)])
        og = ObjectGraph.from_orgs([a])
        assert og.meta["num_orgs"] == 1
