"""Fault injection, retry policies, graceful degradation and recovery.

Covers the ``repro.resilience`` package end to end: deterministic retry
schedules, scripted/probabilistic fault injection, quarantine under each
``FaultPolicy``, drop-tolerance escalation, crash-safe snapshots and
journal-driven recovery — including the paper-scale acceptance scenario
(50-segment batch at a 5% injected fault rate).
"""

import json
import os

import numpy as np
import pytest

from repro.errors import (
    CorruptSegmentError,
    IndexCorruptionError,
    IngestDegradedError,
    RecoveryError,
    SegmentationError,
    StorageError,
)
from repro.resilience import (
    FaultInjector,
    FaultPolicy,
    RetryPolicy,
    backoff_schedule,
    call_with_retry,
    injected,
    read_journal,
    replay_pending,
)
from repro.storage.database import VideoDatabase
from repro.storage.serialize import load_index, npz_path
from repro.video.synthesize import (
    Actor,
    BackgroundSpec,
    SceneRenderer,
    linear_trajectory,
    make_vehicle,
)

FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.0)


def tiny_segment(i: int, num_frames: int = 6):
    """A very small rendered segment with one deterministic mover."""
    background = BackgroundSpec(width=48, height=36, base_color=(90, 90, 90))
    y = 10.0 + (i % 4) * 6.0
    scene = SceneRenderer(background, [
        Actor(linear_trajectory((4.0, y), (44.0, y), num_frames),
              make_vehicle((200, 40, 40))),
    ])
    return scene.render(num_frames, name=f"seg-{i:03d}")


def blob_ogs(k=2, n_per=4, seed=0):
    from repro.graph.object_graph import ObjectGraph

    rng = np.random.default_rng(seed)
    ogs = []
    for label in range(k):
        for _ in range(n_per):
            base = np.linspace(0, 10, 8)[:, None]
            values = np.hstack([base + label * 120.0, base])
            ogs.append(ObjectGraph.from_values(
                values + rng.normal(0, 0.4, values.shape), label=label
            ))
    return ogs


class TestRetryPolicy:
    def test_backoff_schedule_is_capped_exponential(self):
        policy = RetryPolicy(max_attempts=5, base_delay=1.0, multiplier=2.0,
                             max_delay=5.0, jitter=0.0)
        assert backoff_schedule(policy) == [1.0, 2.0, 4.0, 5.0]

    def test_jittered_schedule_deterministic_under_seed(self):
        policy = RetryPolicy(max_attempts=6, base_delay=0.1, jitter=0.5,
                             seed=42)
        first = backoff_schedule(policy)
        second = backoff_schedule(policy)
        assert first == second
        assert any(a != b for a, b in zip(
            first, backoff_schedule(RetryPolicy(max_attempts=6,
                                                base_delay=0.1, jitter=0.5,
                                                seed=43))
        ))

    def test_succeeds_after_transient_failures(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError("transient")
            return "ok"

        slept = []
        result = call_with_retry(flaky, RetryPolicy(max_attempts=4,
                                                    base_delay=0.25),
                                 sleep=slept.append)
        assert result == "ok"
        assert calls["n"] == 3
        assert slept == [0.25, 0.5]

    def test_exhausts_and_raises_original(self):
        def always():
            raise SegmentationError("persistent")

        with pytest.raises(SegmentationError, match="persistent"):
            call_with_retry(always, FAST_RETRY, sleep=lambda _: None)

    def test_non_retryable_propagates_immediately(self):
        calls = {"n": 0}

        def boom():
            calls["n"] += 1
            raise TypeError("bug")

        with pytest.raises(TypeError):
            call_with_retry(boom, FAST_RETRY, retryable=(OSError,))
        assert calls["n"] == 1

    def test_on_retry_callback_counts(self):
        seen = []

        def always():
            raise OSError("x")

        with pytest.raises(OSError):
            call_with_retry(always, RetryPolicy(max_attempts=4,
                                                base_delay=0.0),
                            on_retry=lambda a, e, d: seen.append(a),
                            sleep=lambda _: None)
        assert seen == [1, 2, 3]

    def test_total_timeout_stops_retrying(self):
        clock = {"t": 0.0}

        def tick():
            clock["t"] += 10.0
            raise OSError("slow")

        with pytest.raises(OSError):
            call_with_retry(tick, RetryPolicy(max_attempts=10, base_delay=0.0,
                                              total_timeout=15.0),
                            sleep=lambda _: None,
                            clock=lambda: clock["t"])
        # First attempt at t=10 (within deadline) retries; second at t=20
        # exceeds the 15s deadline and stops.
        assert clock["t"] == 20.0

    def test_invalid_policy_rejected(self):
        from repro.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(InvalidParameterError):
            RetryPolicy(jitter=2.0)


class TestFaultInjector:
    def test_scripted_ordinals_fire_exactly(self):
        injector = FaultInjector()
        injector.inject("tracking", at={1})
        injector.check("tracking")                 # ordinal 0: clean
        with pytest.raises(CorruptSegmentError):
            injector.check("tracking")             # ordinal 1: fires
        injector.check("tracking")                 # ordinal 2: clean
        assert injector.counts["tracking"] == 3
        assert injector.fired["tracking"] == 1

    def test_rate_one_always_fires_with_point_default_error(self):
        injector = FaultInjector().inject("segmentation", rate=1.0)
        with pytest.raises(SegmentationError):
            injector.check("segmentation")
        injector2 = FaultInjector().inject("storage.write", rate=1.0)
        with pytest.raises(OSError):
            injector2.check("storage.write")

    def test_seeded_rate_is_deterministic(self):
        def decisions(seed):
            injector = FaultInjector(seed=seed)
            injector.inject("decomposition", rate=0.3)
            fired = []
            for _ in range(50):
                try:
                    injector.check("decomposition")
                    fired.append(False)
                except CorruptSegmentError:
                    fired.append(True)
            return fired

        assert decisions(7) == decisions(7)
        assert decisions(7) != decisions(8)

    def test_corrupt_transform_and_context(self):
        injector = FaultInjector().inject("segmentation", kind="corrupt",
                                          rate=1.0)
        assert injector.transform("segmentation", np.zeros((2, 2, 3))) is None

    def test_custom_error_class(self):
        injector = FaultInjector().inject("tracking", at={0},
                                          error=RuntimeError)
        with pytest.raises(RuntimeError):
            injector.check("tracking")

    def test_unknown_point_rejected(self):
        from repro.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            FaultInjector().inject("nonexistent", rate=1.0)

    def test_injected_context_restores(self):
        from repro.resilience import active

        injector = FaultInjector()
        assert active() is None
        with injected(injector) as handle:
            assert handle is injector
            assert active() is injector
        assert active() is None


class TestFaultPolicies:
    def test_fail_fast_propagates(self):
        db = VideoDatabase(fault_policy=FaultPolicy.FAIL_FAST)
        with injected(FaultInjector().inject("segmentation", rate=1.0)):
            with pytest.raises(SegmentationError):
                db.ingest(tiny_segment(0))
        assert db.health()["quarantined"] == 0
        assert db.health()["last_error"]["error_type"] == "SegmentationError"

    def test_skip_quarantines_and_continues(self):
        db = VideoDatabase(fault_policy="skip-and-quarantine")
        injector = FaultInjector().inject("decomposition", at={0})
        with injected(injector):
            assert db.ingest(tiny_segment(0)) == 0
            assert db.ingest(tiny_segment(1)) >= 1
        health = db.health()
        assert health["quarantined"] == 1
        assert health["quarantined_segments"] == ["seg-000"]
        assert health["segments_ingested"] == 1
        assert db.quarantine[0].error_type == "CorruptSegmentError"
        assert db.quarantine[0].details["segment"] == "seg-000"

    def test_retry_then_skip_heals_transient_fault(self):
        db = VideoDatabase(retry_policy=FAST_RETRY)  # default policy
        # Fault only on the segment's first decomposition attempt.
        injector = FaultInjector().inject("decomposition", at={0})
        with injected(injector):
            assert db.ingest(tiny_segment(0)) >= 1
        health = db.health()
        assert health["quarantined"] == 0
        assert health["retries"] == 1

    def test_retry_then_skip_quarantines_persistent_fault(self):
        db = VideoDatabase(retry_policy=FAST_RETRY)
        injector = FaultInjector().inject("tracking", rate=1.0)
        with injected(injector):
            assert db.ingest(tiny_segment(0)) == 0
        health = db.health()
        assert health["quarantined"] == 1
        assert health["retries"] == FAST_RETRY.max_attempts - 1
        assert db.quarantine[0].attempts == FAST_RETRY.max_attempts

    def test_corrupt_frame_is_quarantined(self):
        db = VideoDatabase(fault_policy="skip-and-quarantine")
        injector = FaultInjector().inject("segmentation", kind="corrupt",
                                          at={0})
        with injected(injector):
            assert db.ingest(tiny_segment(0)) == 0
        assert db.quarantine[0].error_type == "CorruptSegmentError"
        assert db.quarantine[0].details["frame"] == 0

    def test_programming_errors_never_quarantined(self):
        db = VideoDatabase(fault_policy="skip-and-quarantine")
        injector = FaultInjector().inject("decomposition", rate=1.0,
                                          error=TypeError)
        with injected(injector):
            with pytest.raises(TypeError):
                db.ingest(tiny_segment(0))

    def test_drop_tolerance_escalates(self):
        db = VideoDatabase(fault_policy="skip-and-quarantine",
                           drop_tolerance=0.4, drop_grace=3)
        injector = FaultInjector().inject("decomposition", at={1, 2})
        with injected(injector):
            assert db.ingest(tiny_segment(0)) >= 1     # ok
            assert db.ingest(tiny_segment(1)) == 0     # 1/2 quarantined
            with pytest.raises(IngestDegradedError) as excinfo:
                db.ingest(tiny_segment(2))             # 2/3 > 0.4 -> boom
        assert excinfo.value.details["quarantined"] == 2
        assert excinfo.value.details["processed"] == 3

    def test_ingest_many_reports(self):
        db = VideoDatabase(fault_policy="skip-and-quarantine")
        injector = FaultInjector().inject("decomposition", at={1})
        with injected(injector):
            report = db.ingest_many([tiny_segment(i) for i in range(4)])
        assert report["segments"] == 3
        assert report["quarantined"] == 1
        assert report["ogs"] >= 3


class TestAcceptance50Segments:
    """The headline scenario: 50 segments at a 5% injected fault rate."""

    RATE = 0.05
    N = 50

    def test_batch_completes_and_knn_matches_no_fault_run(self):
        segments = [tiny_segment(i) for i in range(self.N)]
        db = VideoDatabase(fault_policy="skip-and-quarantine")
        injector = FaultInjector(seed=2005)
        injector.inject("decomposition", rate=self.RATE)
        with injected(injector):
            report = db.ingest_many(segments)
        health = db.health()
        assert report["segments"] + report["quarantined"] == self.N
        assert health["quarantined"] == injector.fired["decomposition"]
        assert health["quarantined"] >= 1          # seed 2005 does fire
        quarantined = set(health["quarantined_segments"])

        # A clean run over exactly the surviving subset must answer
        # k-NN queries identically.
        survivors = [s for s in segments if s.name not in quarantined]
        clean = VideoDatabase(fault_policy="fail-fast")
        clean.ingest_many(survivors)
        assert clean.stats()["ogs"] == db.stats()["ogs"]
        query = np.stack([np.linspace(4, 44, 6), np.full(6, 16.0)], axis=1)
        hits_faulted = db.knn(query, k=5)
        hits_clean = clean.knn(query, k=5)
        assert len(hits_faulted) == len(hits_clean)
        assert [h.distance for h in hits_faulted] == pytest.approx(
            [h.distance for h in hits_clean]
        )
        assert ([h.clip_ref["video"] for h in hits_faulted]
                == [h.clip_ref["video"] for h in hits_clean])


class TestCrashSafePersistence:
    def test_interrupted_save_keeps_previous_snapshot(self, tmp_path):
        path = tmp_path / "index.npz"
        db = VideoDatabase()
        db.ingest_object_graphs(blob_ogs(seed=1))
        db.save(path)
        before = load_index(path).stats()

        db.ingest_object_graphs(blob_ogs(seed=2), source="more")
        with injected(FaultInjector().inject("storage.write", rate=1.0)):
            with pytest.raises(StorageError):
                db.save(path)
        # Previous complete snapshot is untouched.
        assert load_index(path).stats() == before
        # And no temp litter is left next to it.
        assert os.listdir(tmp_path) == ["index.npz"]

    def test_interrupted_first_save_leaves_nothing(self, tmp_path):
        path = tmp_path / "index.npz"
        db = VideoDatabase()
        db.ingest_object_graphs(blob_ogs())
        with injected(FaultInjector().inject("storage.write", rate=1.0)):
            with pytest.raises(StorageError):
                db.save(path)
        assert not path.exists()
        with pytest.raises(StorageError):
            load_index(path)

    def test_torn_write_detected_on_load(self, tmp_path):
        path = tmp_path / "index.npz"
        db = VideoDatabase()
        db.ingest_object_graphs(blob_ogs())
        injector = FaultInjector().inject("storage.write", kind="truncate",
                                          rate=1.0, truncate_to=0.5)
        with injected(injector):
            db.save(path)
        with pytest.raises(IndexCorruptionError):
            load_index(path)

    def test_injected_read_failure(self, tmp_path):
        path = tmp_path / "index.npz"
        db = VideoDatabase()
        db.ingest_object_graphs(blob_ogs())
        db.save(path)
        with injected(FaultInjector().inject("storage.read", rate=1.0)):
            with pytest.raises(OSError):
                load_index(path)


class TestJournalAndRecovery:
    def _build(self, tmp_path, n_before=2, n_after=1, quarantine_last=False):
        path = tmp_path / "db.npz"
        db = VideoDatabase(fault_policy="skip-and-quarantine",
                           journal_path=str(path) + ".journal")
        i = 0
        for _ in range(n_before):
            db.ingest(tiny_segment(i))
            i += 1
        db.save(path)
        for _ in range(n_after):
            db.ingest(tiny_segment(i))
            i += 1
        if quarantine_last:
            with injected(FaultInjector().inject("decomposition", rate=1.0)):
                db.ingest(tiny_segment(i))
        return path, db

    def test_journal_records_segments_and_checkpoints(self, tmp_path):
        path, _ = self._build(tmp_path, quarantine_last=True)
        records, truncated = read_journal(str(path) + ".journal")
        assert not truncated
        events = [r["event"] for r in records]
        assert events == ["segment", "segment", "checkpoint",
                          "segment", "segment"]
        assert records[2]["segments"] == 2
        assert records[-1]["status"] == "quarantined"

    def test_recover_reports_pending_after_checkpoint(self, tmp_path):
        path, db = self._build(tmp_path, n_before=2, n_after=2)
        recovered = VideoDatabase.recover(path)
        report = recovered.recovery
        assert report.snapshot_loaded
        assert report.snapshot_ogs == len(load_index(path))
        assert report.pending_segments == ["seg-002", "seg-003"]
        assert not report.journal_truncated
        # The recovered database keeps journaling to the same file.
        recovered.ingest(tiny_segment(9))
        records, _ = read_journal(report.journal_path)
        assert records[-1]["segment"] == "seg-009"

    def test_recover_with_no_pending(self, tmp_path):
        path, _ = self._build(tmp_path, n_before=2, n_after=0)
        report = VideoDatabase.recover(path).recovery
        assert report.pending_segments == []

    def test_recover_tolerates_torn_journal_tail(self, tmp_path):
        path, _ = self._build(tmp_path, n_before=1, n_after=1)
        journal = str(path) + ".journal"
        with open(journal, "a", encoding="utf-8") as fh:
            fh.write('{"event": "segment", "segment": "torn')  # kill mid-append
        recovered = VideoDatabase.recover(path)
        assert recovered.recovery.journal_truncated
        assert recovered.recovery.pending_segments == ["seg-001"]

    def test_recover_from_corrupt_snapshot_replays_everything(self, tmp_path):
        path, _ = self._build(tmp_path, n_before=2, n_after=1)
        with open(path, "r+b") as fh:
            fh.truncate(100)
        recovered = VideoDatabase.recover(path)
        report = recovered.recovery
        assert not report.snapshot_loaded
        assert "IndexCorruptionError" in report.snapshot_error
        assert report.pending_segments == ["seg-000", "seg-001", "seg-002"]
        assert recovered.index is None

    def test_recover_nothing_raises(self, tmp_path):
        with pytest.raises(RecoveryError) as excinfo:
            VideoDatabase.recover(tmp_path / "void.npz")
        assert excinfo.value.details["path"].endswith("void.npz")

    def test_replay_pending_resets_at_checkpoint(self):
        records = [
            {"event": "segment", "segment": "a", "status": "ok"},
            {"event": "checkpoint", "path": "x.npz"},
            {"event": "segment", "segment": "b", "status": "ok"},
            {"event": "segment", "segment": "c", "status": "quarantined"},
        ]
        pending, quarantined = replay_pending(records)
        assert pending == ["b"]
        assert quarantined == ["c"]

    def test_read_journal_missing_file(self, tmp_path):
        assert read_journal(tmp_path / "none.jsonl") == ([], False)

    def test_journal_lines_are_valid_json(self, tmp_path):
        path, _ = self._build(tmp_path)
        with open(str(path) + ".journal", encoding="utf-8") as fh:
            for line in fh:
                assert isinstance(json.loads(line), dict)


class TestPathNormalization:
    def test_npz_path_appends_suffix_once(self):
        assert npz_path("a/b/index") == "a/b/index.npz"
        assert npz_path("a/b/index.npz") == "a/b/index.npz"

    def test_suffixless_save_load_roundtrip(self, tmp_path):
        db = VideoDatabase()
        db.ingest_object_graphs(blob_ogs())
        stem = tmp_path / "snapshot"         # no .npz suffix
        db.save(stem)
        assert (tmp_path / "snapshot.npz").exists()
        restored = VideoDatabase.load(stem)
        assert restored.stats()["ogs"] == db.stats()["ogs"]
