"""Tests for the STRG-Index (Algorithms 2-3, Sections 5.1-5.5)."""

import numpy as np
import pytest

from repro.core.index import STRGIndex, STRGIndexConfig
from repro.core.nodes import LeafNode, LeafRecord
from repro.core.size import index_size_bytes, strg_raw_size_bytes
from repro.distance.base import CountingDistance
from repro.distance.eged import MetricEGED
from repro.errors import IndexStateError, InvalidParameterError
from repro.graph.attributes import NodeAttributes
from repro.graph.decomposition import BackgroundGraph
from repro.graph.object_graph import ObjectGraph
from repro.graph.rag import RegionAdjacencyGraph


def blob_ogs(k=4, n_per=8, separation=150.0, seed=0):
    rng = np.random.default_rng(seed)
    ogs = []
    for label in range(k):
        for _ in range(n_per):
            length = int(rng.integers(6, 12))
            base = np.linspace(0, 10, length)[:, None]
            values = np.hstack([base + label * separation, base])
            ogs.append(ObjectGraph.from_values(
                values + rng.normal(0, 0.5, values.shape), label=label
            ))
    return ogs


def make_background(color):
    rag = RegionAdjacencyGraph()
    rag.add_node(0, NodeAttributes(size=1000, color=color,
                                   centroid=(50.0, 50.0)))
    return BackgroundGraph(rag, frame_count=10)


class TestLeafNode:
    def test_sorted_insertion(self):
        leaf = LeafNode()
        for key in (3.0, 1.0, 2.0):
            leaf.insert(LeafRecord(key, ObjectGraph.from_values([[0.0]])))
        assert leaf.keys == [1.0, 2.0, 3.0]

    def test_max_key(self):
        leaf = LeafNode()
        assert leaf.max_key() == 0.0
        leaf.insert(LeafRecord(5.0, ObjectGraph.from_values([[0.0]])))
        assert leaf.max_key() == 5.0


class TestBuild:
    def test_build_structure(self):
        ogs = blob_ogs(k=4)
        index = STRGIndex(STRGIndexConfig(n_clusters=4))
        index.build(ogs)
        stats = index.stats()
        assert stats["root_records"] == 1
        assert stats["cluster_records"] == 4
        assert stats["leaf_records"] == len(ogs)

    def test_build_with_bic_selection(self):
        ogs = blob_ogs(k=3, n_per=8)
        index = STRGIndex(STRGIndexConfig(n_clusters=None, k_max=6))
        index.build(ogs)
        assert index.num_clusters() == 3

    def test_clusters_are_pure_on_separated_data(self):
        ogs = blob_ogs(k=4)
        index = STRGIndex(STRGIndexConfig(n_clusters=4))
        index.build(ogs)
        for record in index.root[0].cluster_node:
            labels = {r.og.label for r in record.leaf}
            assert len(labels) == 1

    def test_leaf_keys_are_metric_distances(self):
        ogs = blob_ogs(k=2)
        index = STRGIndex(STRGIndexConfig(n_clusters=2))
        index.build(ogs)
        d = MetricEGED()
        for record in index.root[0].cluster_node:
            for leaf_record in record.leaf:
                expected = d(leaf_record.og, record.centroid)
                assert leaf_record.key == pytest.approx(expected)

    def test_empty_build_rejected(self):
        with pytest.raises(IndexStateError):
            STRGIndex().build([])

    def test_clip_refs_attached(self):
        ogs = blob_ogs(k=2, n_per=3)
        refs = [f"clip-{i}" for i in range(len(ogs))]
        index = STRGIndex(STRGIndexConfig(n_clusters=2))
        index.build(ogs, clip_refs=refs)
        stored = {r.clip_ref
                  for rec in index.root[0].cluster_node for r in rec.leaf}
        assert stored == set(refs)

    def test_clip_ref_length_mismatch(self):
        ogs = blob_ogs(k=2, n_per=3)
        with pytest.raises(InvalidParameterError):
            STRGIndex(STRGIndexConfig(n_clusters=2)).build(ogs, clip_refs=["x"])


class TestKnn:
    def build_index(self, k=4):
        ogs = blob_ogs(k=k)
        index = STRGIndex(STRGIndexConfig(n_clusters=k))
        index.build(ogs)
        return index, ogs

    def test_matches_brute_force(self):
        index, ogs = self.build_index()
        d = MetricEGED()
        for q in (ogs[0], ogs[13], ogs[-1]):
            hits = index.knn(q, 5)
            brute = sorted(d(q, og) for og in ogs)[:5]
            assert [h[0] for h in hits] == pytest.approx(brute)

    def test_same_cluster_results(self):
        index, ogs = self.build_index()
        hits = index.knn(ogs[0], 5)
        assert all(og.label == ogs[0].label for _, og, _ in hits)

    def test_k_larger_than_data(self):
        index, ogs = self.build_index(k=2)
        hits = index.knn(ogs[0], 1000)
        assert len(hits) == len(ogs)

    def test_invalid_k(self):
        index, ogs = self.build_index(k=2)
        # k=0 is a legal no-op; only negative k is invalid.
        assert index.knn(ogs[0], 0) == []
        with pytest.raises(InvalidParameterError):
            index.knn(ogs[0], -1)

    def test_empty_index_rejected(self):
        with pytest.raises(IndexStateError):
            STRGIndex().knn(ObjectGraph.from_values([[0.0]]), 1)

    def test_saves_distance_computations(self):
        ogs = blob_ogs(k=6, n_per=15)
        counter = CountingDistance(MetricEGED())
        index = STRGIndex(STRGIndexConfig(n_clusters=6),
                          metric_distance=counter)
        index.build(ogs)
        counter.reset()
        index.knn(ogs[0], 5)
        assert counter.calls < len(ogs)

    def test_query_by_raw_array(self):
        index, ogs = self.build_index()
        hits = index.knn(ogs[0].values, 3)
        assert len(hits) == 3

    def test_results_sorted(self):
        index, ogs = self.build_index()
        hits = index.knn(ogs[2], 8)
        dists = [h[0] for h in hits]
        assert dists == sorted(dists)


class TestNProbeSearch:
    def test_nprobe_one_stays_in_best_cluster(self):
        ogs = blob_ogs(k=4)
        index = STRGIndex(STRGIndexConfig(n_clusters=4))
        index.build(ogs)
        hits = index.knn(ogs[0], 5, n_probe=1)
        assert len(hits) == 5
        assert all(og.label == ogs[0].label for _, og, _ in hits)

    def test_nprobe_full_equals_exact(self):
        ogs = blob_ogs(k=3)
        index = STRGIndex(STRGIndexConfig(n_clusters=3))
        index.build(ogs)
        exact = index.knn(ogs[1], 6)
        probed = index.knn(ogs[1], 6, n_probe=3)
        assert [h[0] for h in probed] == pytest.approx([h[0] for h in exact])

    def test_nprobe_reduces_distance_calls(self):
        ogs = blob_ogs(k=6, n_per=12)
        counter = CountingDistance(MetricEGED())
        index = STRGIndex(STRGIndexConfig(n_clusters=6),
                          metric_distance=counter)
        index.build(ogs)
        counter.reset()
        index.knn(ogs[0], 5)
        exact_calls = counter.calls
        counter.reset()
        index.knn(ogs[0], 5, n_probe=1)
        assert counter.calls <= exact_calls

    def test_invalid_nprobe(self):
        ogs = blob_ogs(k=2, n_per=3)
        index = STRGIndex(STRGIndexConfig(n_clusters=2))
        index.build(ogs)
        with pytest.raises(InvalidParameterError):
            index.knn(ogs[0], 2, n_probe=0)


class TestSampledBuild:
    def test_sampled_build_indexes_everything(self):
        ogs = blob_ogs(k=3, n_per=10)
        index = STRGIndex(STRGIndexConfig(n_clusters=3,
                                          cluster_sample_size=12))
        index.build(ogs)
        assert len(index) == len(ogs)

    def test_sampled_build_knn_still_exact(self):
        ogs = blob_ogs(k=3, n_per=10)
        index = STRGIndex(STRGIndexConfig(n_clusters=3,
                                          cluster_sample_size=12))
        index.build(ogs)
        d = MetricEGED()
        hits = index.knn(ogs[0], 5)
        brute = sorted(d(ogs[0], og) for og in ogs)[:5]
        assert [h[0] for h in hits] == pytest.approx(brute)

    def test_sample_larger_than_data_is_full_build(self):
        ogs = blob_ogs(k=2, n_per=4)
        index = STRGIndex(STRGIndexConfig(n_clusters=2,
                                          cluster_sample_size=1000))
        index.build(ogs)
        assert len(index) == len(ogs)

    def test_invalid_sample_size(self):
        with pytest.raises(InvalidParameterError):
            STRGIndexConfig(cluster_sample_size=1)


class TestRangeQuery:
    def test_matches_brute_force(self):
        ogs = blob_ogs(k=3)
        index = STRGIndex(STRGIndexConfig(n_clusters=3))
        index.build(ogs)
        d = MetricEGED()
        radius = 40.0
        hits = index.range_query(ogs[0], radius)
        expected = {og.og_id for og in ogs if d(ogs[0], og) <= radius}
        assert {og.og_id for _, og, _ in hits} == expected

    def test_invalid_radius(self):
        ogs = blob_ogs(k=2, n_per=3)
        index = STRGIndex(STRGIndexConfig(n_clusters=2))
        index.build(ogs)
        with pytest.raises(InvalidParameterError):
            index.range_query(ogs[0], -1.0)


class TestInsertAndSplit:
    def test_insert_grows_index(self):
        ogs = blob_ogs(k=2, n_per=4)
        index = STRGIndex(STRGIndexConfig(n_clusters=2))
        index.build(ogs[:-1])
        index.insert(ogs[-1])
        assert len(index) == len(ogs)

    def test_insert_into_empty_builds(self):
        index = STRGIndex(STRGIndexConfig(n_clusters=1))
        index.insert(ObjectGraph.from_values([[0.0, 0.0]]))
        assert len(index) == 1

    def test_bic_split_on_bimodal_leaf(self):
        # One cluster is force-fed two distinct blobs; on overflow the BIC
        # test must split it (Section 5.3).
        index = STRGIndex(STRGIndexConfig(n_clusters=1, leaf_capacity=10))
        seed_ogs = blob_ogs(k=1, n_per=4, seed=1)
        index.build(seed_ogs)
        rng = np.random.default_rng(2)
        for i in range(12):
            offset = 0.0 if i % 2 == 0 else 400.0
            base = np.linspace(0, 10, 8)[:, None]
            values = np.hstack([base + offset, base])
            index.insert(ObjectGraph.from_values(
                values + rng.normal(0, 0.5, values.shape)
            ))
        assert index.num_clusters() >= 2

    def test_unimodal_leaf_not_split(self):
        index = STRGIndex(STRGIndexConfig(n_clusters=1, leaf_capacity=8))
        rng = np.random.default_rng(3)
        base = np.linspace(0, 10, 8)[:, None]
        for _ in range(14):
            values = np.hstack([base, base])
            index.insert(ObjectGraph.from_values(
                values + rng.normal(0, 0.4, values.shape)
            ))
        assert index.num_clusters() == 1

    def test_knn_correct_after_inserts(self):
        ogs = blob_ogs(k=3, n_per=6)
        index = STRGIndex(STRGIndexConfig(n_clusters=3, leaf_capacity=6))
        index.build(ogs[:9])
        for og in ogs[9:]:
            index.insert(og)
        d = MetricEGED()
        hits = index.knn(ogs[0], 4)
        brute = sorted(d(ogs[0], og) for og in ogs)[:4]
        assert [h[0] for h in hits] == pytest.approx(brute)


class TestBackgroundRouting:
    def test_similar_background_shares_root(self):
        ogs = blob_ogs(k=2, n_per=4)
        bg = make_background((100.0, 100.0, 100.0))
        index = STRGIndex(STRGIndexConfig(n_clusters=2))
        index.build(ogs, background=bg)
        similar = make_background((105.0, 100.0, 100.0))
        index.insert(ogs[0], background=similar)
        assert len(index.root) == 1

    def test_dissimilar_background_new_root(self):
        ogs = blob_ogs(k=2, n_per=4)
        bg = make_background((100.0, 100.0, 100.0))
        index = STRGIndex(STRGIndexConfig(n_clusters=2))
        index.build(ogs, background=bg)
        different = make_background((250.0, 0.0, 0.0))
        index.insert(ogs[0], background=different)
        assert len(index.root) == 2

    def test_query_with_background_restricts_search(self):
        ogs_a = blob_ogs(k=2, n_per=4, seed=0)
        ogs_b = blob_ogs(k=2, n_per=4, seed=5)
        bg_a = make_background((100.0, 100.0, 100.0))
        bg_b = make_background((250.0, 0.0, 0.0))
        index = STRGIndex(STRGIndexConfig(n_clusters=2))
        index.build(ogs_a, background=bg_a)
        index.build(ogs_b, background=bg_b)
        hits = index.knn(ogs_a[0], 3, background=bg_a)
        hit_ids = {og.og_id for _, og, _ in hits}
        assert hit_ids <= {og.og_id for og in ogs_a}


class TestSizeAccounting:
    def test_index_smaller_than_raw_strg(self):
        # Eq. 9 vs Eq. 10: N x size(BG) dominates the raw STRG.
        ogs = blob_ogs(k=2, n_per=6)
        bg = make_background((100.0, 100.0, 100.0))
        index = STRGIndex(STRGIndexConfig(n_clusters=2))
        index.build(ogs, background=bg)
        num_frames = 10_000
        raw = strg_raw_size_bytes(ogs, bg, num_frames)
        compressed = index_size_bytes(index)
        assert compressed * 10 < raw

    def test_raw_size_accepts_byte_count(self):
        ogs = blob_ogs(k=1, n_per=2)
        assert strg_raw_size_bytes(ogs, 48, 100) == (
            sum(og.size_bytes() for og in ogs) + 4800
        )

    def test_invalid_frames(self):
        with pytest.raises(InvalidParameterError):
            strg_raw_size_bytes([], 48, 0)

    def test_index_size_includes_centroids(self):
        ogs = blob_ogs(k=2, n_per=4)
        index = STRGIndex(STRGIndexConfig(n_clusters=2))
        index.build(ogs)
        og_bytes = sum(og.size_bytes() for og in ogs)
        assert index_size_bytes(index) > og_bytes


class TestConfigValidation:
    def test_invalid_leaf_capacity(self):
        with pytest.raises(InvalidParameterError):
            STRGIndexConfig(leaf_capacity=1)

    def test_invalid_bg_threshold(self):
        with pytest.raises(InvalidParameterError):
            STRGIndexConfig(bg_similarity_threshold=2.0)
