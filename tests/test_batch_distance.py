"""Batched / parallel / cached distance engine.

Equivalence of the vectorized wavefront kernels of
:mod:`repro.distance.batch` with independent scalar references, the
paper's EGED triangle-violation worked example, the content-hash memo
cache, and serial-vs-parallel executor parity.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.distance.base import CountingDistance, Distance
from repro.distance.batch import (
    batch_dtw,
    batch_eged,
    batch_erp,
    batch_lcs,
    one_vs_many,
    pairwise_matrix,
    supports_batch,
)
from repro.distance.cache import (
    DistanceCache,
    cached_one_vs_many,
    get_default_cache,
    set_default_cache,
)
from repro.distance.dtw import DTW, dtw
from repro.distance.eged import EGED, MetricEGED, eged
from repro.distance.erp import ERP, erp
from repro.distance.lcs import LCSDistance, lcs_distance
from repro.distance.lp import LpDistance
from repro.errors import IndexStateError, InvalidParameterError
from repro.mtree.tree import MTree, MTreeConfig
from repro.parallel import DistanceExecutor
from repro.query import Query

TOL = 1e-9


# -- independent scalar EGED reference (kept deliberately naive) -------------

def naive_gap_values(seq: np.ndarray, mode: str) -> np.ndarray:
    m = seq.shape[0]
    out = np.empty((m + 1, seq.shape[1]), dtype=np.float64)
    out[0] = seq[0]
    if mode == "adaptive":
        out[m] = seq[m - 1]
        if m > 1:
            out[1:m] = (seq[:-1] + seq[1:]) / 2.0
    else:
        out[1:] = seq
    return out


def naive_eged(a: np.ndarray, b: np.ndarray, mode: str) -> float:
    """Definition 9's edit DP, row by row over plain Python floats."""
    n, m = a.shape[0], b.shape[0]
    sub = [[float(np.linalg.norm(a[i] - b[j])) for j in range(m)]
           for i in range(n)]
    mid_b = naive_gap_values(b, mode)
    del_cost = [[float(np.linalg.norm(a[i] - mid_b[j]))
                 for j in range(m + 1)] for i in range(n)]
    mid_a = naive_gap_values(a, mode)
    ins_cost = [[float(np.linalg.norm(b[j] - mid_a[i]))
                 for i in range(n + 1)] for j in range(m)]
    prev = [0.0] * (m + 1)
    for j in range(m):
        prev[j + 1] = prev[j] + ins_cost[j][0]
    for i in range(n):
        cur = [prev[0] + del_cost[i][0]]
        for j in range(m):
            best = min(
                prev[j] + sub[i][j],
                prev[j + 1] + del_cost[i][j + 1],
                cur[-1] + ins_cost[j][i + 1],
            )
            cur.append(best)
        prev = cur
    return float(prev[m])


def random_series(rng: np.random.Generator, dim: int,
                  max_len: int = 18) -> np.ndarray:
    n = int(rng.integers(1, max_len))
    return np.asarray(rng.normal(size=(n, dim)) * 3.0, dtype=np.float64)


# -- batch vs scalar equivalence ---------------------------------------------

class TestBatchEquivalence:
    @pytest.mark.parametrize("mode", ["adaptive", "dtw"])
    @pytest.mark.parametrize("dim", [1, 2, 3])
    def test_eged_matches_naive_reference(self, mode, dim):
        rng = np.random.default_rng(hash((mode, dim)) % 2**31)
        query = random_series(rng, dim)
        batch = [random_series(rng, dim) for _ in range(17)]
        got = batch_eged(query, batch, mode)
        want = [naive_eged(query, b, mode) for b in batch]
        np.testing.assert_allclose(got, want, rtol=0, atol=TOL)

    @pytest.mark.parametrize("dim", [1, 2])
    @pytest.mark.parametrize("gap", [0.0, 1.5])
    def test_erp_matches_scalar(self, dim, gap):
        rng = np.random.default_rng(7 + dim)
        query = random_series(rng, dim)
        batch = [random_series(rng, dim) for _ in range(15)]
        got = batch_erp(query, batch, gap)
        want = [erp(query, b, gap) for b in batch]
        np.testing.assert_allclose(got, want, rtol=0, atol=TOL)

    def test_erp_vector_gap_matches_scalar(self):
        rng = np.random.default_rng(11)
        gap = np.array([0.5, -1.0])
        query = random_series(rng, 2)
        batch = [random_series(rng, 2) for _ in range(12)]
        got = batch_erp(query, batch, gap)
        want = [erp(query, b, gap) for b in batch]
        np.testing.assert_allclose(got, want, rtol=0, atol=TOL)

    @pytest.mark.parametrize("dim", [1, 3])
    def test_dtw_matches_scalar(self, dim):
        rng = np.random.default_rng(13 + dim)
        query = random_series(rng, dim)
        batch = [random_series(rng, dim) for _ in range(15)]
        got = batch_dtw(query, batch)
        want = [dtw(query, b) for b in batch]
        np.testing.assert_allclose(got, want, rtol=0, atol=TOL)

    @pytest.mark.parametrize("delta", [None, 3])
    def test_lcs_matches_scalar(self, delta):
        rng = np.random.default_rng(17)
        query = random_series(rng, 2)
        batch = [random_series(rng, 2) for _ in range(15)]
        got = batch_lcs(query, batch, 2.0, delta)
        want = [lcs_distance(query, b, 2.0, delta) for b in batch]
        # LCS counts matches in integers — the kernels must agree exactly.
        np.testing.assert_array_equal(got, np.asarray(want))

    def test_single_point_series(self):
        a = np.array([[1.0, 2.0]])
        b = np.array([[0.0, 0.0]])
        for fn, args in [(batch_eged, ("adaptive",)), (batch_erp, (0.0,)),
                         (batch_dtw, ()), (batch_lcs, (1.0, None))]:
            out = fn(a, [b, a], *args)
            assert out.shape == (2,)
            assert out[1] == pytest.approx(0.0, abs=TOL)

    def test_empty_batch(self):
        a = np.array([[1.0]])
        for fn, args in [(batch_eged, ("adaptive",)), (batch_erp, (0.0,)),
                         (batch_dtw, ()), (batch_lcs, (1.0, None))]:
            assert fn(a, [], *args).shape == (0,)

    def test_paper_triangle_violation_example(self):
        """OG_r={0}, OG_s={1,1}, OG_t={2,2,3}: EGED(r,t)=7 > 2+4."""
        r = np.array([[0.0]])
        s = np.array([[1.0], [1.0]])
        t = np.array([[2.0], [2.0], [3.0]])
        d_rt, d_rs = batch_eged(r, [t, s], "adaptive")
        d_st = batch_eged(s, [t], "adaptive")[0]
        assert d_rt == pytest.approx(7.0, abs=TOL)
        assert d_rs == pytest.approx(2.0, abs=TOL)
        assert d_st == pytest.approx(4.0, abs=TOL)
        assert d_rt > d_rs + d_st
        # And the scalar entry point (now batch-backed) agrees.
        assert eged(r, t) == pytest.approx(7.0, abs=TOL)

    def test_chunking_is_bit_invariant(self, monkeypatch):
        """Tiny cell budget (many chunks) must not change a single bit."""
        rng = np.random.default_rng(23)
        query = random_series(rng, 2)
        batch = [random_series(rng, 2) for _ in range(40)]
        whole = batch_eged(query, batch, "adaptive")
        monkeypatch.setattr("repro.distance.batch.MAX_CELLS", 64)
        chunked = batch_eged(query, batch, "adaptive")
        assert np.array_equal(whole, chunked)

    def test_constrained_variants_fall_back_to_scalar(self):
        rng = np.random.default_rng(29)
        query = random_series(rng, 2)
        batch = [random_series(rng, 2) for _ in range(6)]
        for d in (DTW(window=2), ERP(band=2)):
            got = d.compute_many(query, batch)
            want = [d.compute(query, b) for b in batch]
            np.testing.assert_array_equal(got, np.asarray(want))


# -- dispatch helpers ---------------------------------------------------------

class TestDispatch:
    def test_supports_batch(self):
        assert supports_batch(EGED())
        assert supports_batch(MetricEGED())
        assert supports_batch(ERP())
        assert supports_batch(DTW())
        assert supports_batch(LCSDistance())
        assert supports_batch(CountingDistance(MetricEGED()))
        assert not supports_batch(LpDistance())
        assert not supports_batch(lambda a, b: 0.0)

    def test_one_vs_many_matches_scalar_calls(self):
        rng = np.random.default_rng(31)
        query = random_series(rng, 2)
        items = [random_series(rng, 2) for _ in range(9)]
        d = MetricEGED(0.5)
        got = one_vs_many(d, query, items)
        want = [d(query, b) for b in items]
        np.testing.assert_allclose(got, want, rtol=0, atol=TOL)

    def test_one_vs_many_plain_callable_preserves_order(self):
        calls = []

        def asym(a, b):
            calls.append((len(a), len(b)))
            return float(len(a) - 0.5 * len(b))

        query = np.zeros((3, 1))
        items = [np.zeros((n, 1)) for n in (1, 2, 4)]
        got = one_vs_many(asym, query, items)
        assert calls == [(3, 1), (3, 2), (3, 4)]
        np.testing.assert_allclose(got, [2.5, 2.0, 1.0])

    def test_counting_distance_counts_batched_evaluations(self):
        counter = CountingDistance(MetricEGED())
        rng = np.random.default_rng(37)
        items = [random_series(rng, 1) for _ in range(8)]
        one_vs_many(counter, items[0], items)
        assert counter.calls == 8

    def test_pairwise_matrix_symmetric(self):
        rng = np.random.default_rng(41)
        items = [random_series(rng, 2) for _ in range(7)]
        d = MetricEGED()
        mat = pairwise_matrix(d, items)
        assert mat.shape == (7, 7)
        np.testing.assert_array_equal(mat, mat.T)
        np.testing.assert_array_equal(np.diag(mat), np.zeros(7))
        for i in range(7):
            for j in range(i + 1, 7):
                assert mat[i, j] == pytest.approx(
                    d(items[i], items[j]), abs=TOL
                )

    def test_pairwise_matrix_rectangular(self):
        rng = np.random.default_rng(43)
        items = [random_series(rng, 1) for _ in range(4)]
        others = [random_series(rng, 1) for _ in range(6)]
        d = DTW()
        mat = pairwise_matrix(d, items, others)
        assert mat.shape == (4, 6)
        for i in range(4):
            for j in range(6):
                assert mat[i, j] == pytest.approx(
                    d(items[i], others[j]), abs=TOL
                )


# -- memo cache ---------------------------------------------------------------

class TestDistanceCache:
    def test_hits_and_misses(self):
        rng = np.random.default_rng(47)
        cache = DistanceCache()
        d = MetricEGED()
        query = random_series(rng, 2)
        items = [random_series(rng, 2) for _ in range(5)]
        first = cache.one_vs_many(d, query, items)
        assert (cache.stats.hits, cache.stats.misses) == (0, 5)
        second = cache.one_vs_many(d, query, items)
        assert (cache.stats.hits, cache.stats.misses) == (5, 5)
        np.testing.assert_array_equal(first, second)
        np.testing.assert_allclose(
            first, [d(query, b) for b in items], rtol=0, atol=TOL
        )

    def test_symmetry_shares_entries(self):
        rng = np.random.default_rng(53)
        cache = DistanceCache()
        d = EGED()
        a, b = random_series(rng, 1), random_series(rng, 1)
        cache.one_vs_many(d, a, [b])
        cache.one_vs_many(d, b, [a])
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_distinct_tokens_do_not_collide(self):
        rng = np.random.default_rng(59)
        cache = DistanceCache()
        a, b = random_series(rng, 1), random_series(rng, 1)
        v1 = cache.one_vs_many(EGED(), a, [b])[0]
        v2 = cache.one_vs_many(MetricEGED(), a, [b])[0]
        assert cache.stats.misses == 2
        assert v1 == pytest.approx(eged(a, b), abs=TOL)
        assert v2 == pytest.approx(erp(a, b, 0.0), abs=TOL)

    def test_counting_distance_bypasses(self):
        rng = np.random.default_rng(61)
        cache = DistanceCache()
        counter = CountingDistance(MetricEGED())
        query = random_series(rng, 1)
        items = [random_series(rng, 1) for _ in range(4)]
        cache.one_vs_many(counter, query, items)
        cache.one_vs_many(counter, query, items)
        assert counter.calls == 8  # every evaluation really ran
        assert cache.stats.bypasses == 8
        assert len(cache) == 0

    def test_lru_eviction(self):
        rng = np.random.default_rng(67)
        cache = DistanceCache(max_entries=2)
        d = DTW()
        query = random_series(rng, 1)
        items = [random_series(rng, 1) for _ in range(5)]
        cache.one_vs_many(d, query, items)
        assert len(cache) == 2
        assert cache.stats.evictions == 3

    def test_default_cache_swap(self):
        fresh = DistanceCache()
        previous = set_default_cache(fresh)
        try:
            assert get_default_cache() is fresh
            rng = np.random.default_rng(71)
            q = random_series(rng, 1)
            cached_one_vs_many(EGED(), q, [random_series(rng, 1)])
            assert fresh.stats.misses == 1
        finally:
            set_default_cache(previous)

    def test_invalid_capacity(self):
        with pytest.raises(InvalidParameterError):
            DistanceCache(max_entries=0)


# -- parallel executor --------------------------------------------------------

class TestDistanceExecutor:
    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            DistanceExecutor(workers=-1)
        with pytest.raises(InvalidParameterError):
            DistanceExecutor(chunks_per_worker=0)

    def test_small_jobs_stay_serial(self):
        rng = np.random.default_rng(73)
        with DistanceExecutor(workers=2, min_pairs=10_000) as ex:
            ex.one_vs_many(MetricEGED(), random_series(rng, 1),
                           [random_series(rng, 1) for _ in range(4)])
            assert ex._pool is None  # below min_pairs: no pool spawned

    def test_one_vs_many_parallel_parity(self):
        rng = np.random.default_rng(79)
        d = MetricEGED()
        query = random_series(rng, 2)
        items = [random_series(rng, 2) for _ in range(48)]
        serial = DistanceExecutor(workers=0).one_vs_many(d, query, items)
        with DistanceExecutor(workers=2, min_pairs=1,
                              chunks_per_worker=3) as ex:
            parallel = ex.one_vs_many(d, query, items)
        # Chunk boundaries must not change a single bit.
        assert np.array_equal(serial, parallel)
        np.testing.assert_array_equal(serial, one_vs_many(d, query, items))

    def test_pairwise_matrix_parallel_parity(self):
        rng = np.random.default_rng(83)
        d = EGED()
        items = [random_series(rng, 1) for _ in range(20)]
        serial = pairwise_matrix(d, items)
        with DistanceExecutor(workers=2, min_pairs=1) as ex:
            parallel = pairwise_matrix(d, items, executor=ex)
        assert np.array_equal(serial, parallel)

    def test_rectangular_parallel_parity(self):
        rng = np.random.default_rng(89)
        d = DTW()
        items = [random_series(rng, 1) for _ in range(6)]
        others = [random_series(rng, 1) for _ in range(9)]
        serial = pairwise_matrix(d, items, others)
        with DistanceExecutor(workers=2, min_pairs=1) as ex:
            parallel = ex.pairwise_matrix(d, items, others)
        assert np.array_equal(serial, parallel)

    def test_plain_callable_falls_back_to_serial(self):
        items = [np.full((n, 1), float(n)) for n in (1, 2, 3)]
        with DistanceExecutor(workers=2, min_pairs=1) as ex:
            out = ex.one_vs_many(lambda a, b: float(len(b)), items[0], items)
            assert ex._pool is None
        np.testing.assert_allclose(out, [1.0, 2.0, 3.0])


# -- Query.run ranking --------------------------------------------------------

class _SeriesIndex:
    """Minimal query source: a bag of trajectories + a metric."""

    def __init__(self, series):
        self._series = series
        self.metric_distance = MetricEGED()

    def object_graphs(self):
        yield from self._series


class TestQueryRanking:
    def test_limit_uses_partial_selection_consistently(self):
        rng = np.random.default_rng(97)
        series = [random_series(rng, 2) for _ in range(30)]
        query_series = random_series(rng, 2)
        full = Query(_SeriesIndex(series)).similar_to(query_series).run()
        top5 = (Query(_SeriesIndex(series))
                .similar_to(query_series).limit(5).run())
        assert len(top5) == 5
        assert [r.distance for r in top5] == [r.distance for r in full[:5]]
        assert [id(r.og) for r in top5] == [id(r.og) for r in full[:5]]

    def test_limit_larger_than_results(self):
        rng = np.random.default_rng(101)
        series = [random_series(rng, 1) for _ in range(4)]
        hits = (Query(_SeriesIndex(series))
                .similar_to(series[0]).limit(10).run())
        assert len(hits) == 4
        assert hits[0].distance == pytest.approx(0.0, abs=TOL)


# -- M-tree bulk load ---------------------------------------------------------

class TestMTreeBulkLoad:
    def _brute(self, d, items, query, k):
        dists = sorted(
            (float(d(query, obj)), i) for i, obj in enumerate(items)
        )
        return dists[:k]

    def test_matches_brute_force_knn(self):
        rng = np.random.default_rng(103)
        items = [random_series(rng, 2) for _ in range(40)]
        tree = MTree(MetricEGED(), MTreeConfig(node_capacity=4, seed=5))
        ids = tree.bulk_load(items)
        assert len(tree) == 40 and ids == list(range(40))
        query = random_series(rng, 2)
        got = tree.knn(query, 5)
        want = self._brute(MetricEGED(), items, query, 5)
        assert [oid for _, oid, _ in got] == [i for _, i in want]
        np.testing.assert_allclose(
            [dist for dist, _, _ in got], [dist for dist, _ in want],
            rtol=0, atol=TOL,
        )

    def test_matches_brute_force_range(self):
        rng = np.random.default_rng(107)
        items = [random_series(rng, 1) for _ in range(30)]
        tree = MTree(MetricEGED(), MTreeConfig(node_capacity=3, seed=2))
        tree.bulk_load(items)
        d = MetricEGED()
        query = items[7]
        radius = 5.0
        got = {oid for _, oid, _ in tree.range_query(query, radius)}
        want = {i for i, obj in enumerate(items) if d(query, obj) <= radius}
        assert got == want

    def test_duplicate_objects_terminate(self):
        base = np.array([[1.0, 2.0], [3.0, 4.0]])
        items = [base.copy() for _ in range(30)]
        tree = MTree(MetricEGED(), MTreeConfig(node_capacity=4))
        tree.bulk_load(items)
        assert len(tree) == 30
        hits = tree.knn(base, 7)
        assert len(hits) == 7
        assert all(dist == pytest.approx(0.0, abs=TOL)
                   for dist, _, _ in hits)

    def test_requires_empty_tree_and_matching_ids(self):
        tree = MTree(MetricEGED())
        tree.insert(np.array([[0.0]]))
        with pytest.raises(IndexStateError):
            tree.bulk_load([np.array([[1.0]])])
        empty = MTree(MetricEGED())
        with pytest.raises(InvalidParameterError):
            empty.bulk_load([np.array([[1.0]])], object_ids=[1, 2])

    def test_empty_bulk_load(self):
        tree = MTree(MetricEGED())
        assert tree.bulk_load([]) == []
        assert len(tree) == 0

    def test_bulk_load_with_executor(self):
        rng = np.random.default_rng(109)
        items = [random_series(rng, 1) for _ in range(25)]
        plain = MTree(MetricEGED(), MTreeConfig(node_capacity=4, seed=3))
        plain.bulk_load(items)
        with DistanceExecutor(workers=0) as ex:
            viaexec = MTree(MetricEGED(), MTreeConfig(node_capacity=4, seed=3))
            viaexec.bulk_load(items, executor=ex)
        query = random_series(rng, 1)
        assert ([oid for _, oid, _ in plain.knn(query, 6)]
                == [oid for _, oid, _ in viaexec.knn(query, 6)])

    def test_custom_distance_class_default_loop(self):
        """Distances without a batched kernel still bulk-load correctly."""

        class Manhattan1(Distance):
            def compute(self, a, b):
                return float(abs(a.sum() - b.sum()))

        rng = np.random.default_rng(113)
        items = [random_series(rng, 1) for _ in range(20)]
        tree = MTree(Manhattan1(), MTreeConfig(node_capacity=4, seed=1))
        tree.bulk_load(items)
        query = items[3]
        got = [oid for _, oid, _ in tree.knn(query, 3)]
        want = [i for _, i in self._brute(Manhattan1(), items, query, 3)]
        assert got == want
