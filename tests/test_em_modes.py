"""Tests for the EM configuration surface: textbook vs stabilized modes."""

import numpy as np

from repro.clustering.em import EMClustering, EMConfig
from repro.clustering.evaluation import clustering_error_rate
from repro.distance.base import FunctionDistance
from repro.distance.lp import lp_distance


def two_blob_ogs(n_per=8, rng=None):
    rng = rng or np.random.default_rng(0)
    ogs, labels = [], []
    for label, offset in ((0, 0.0), (1, 120.0)):
        for _ in range(n_per):
            length = int(rng.integers(6, 10))
            base = np.linspace(0, 10, length)[:, None]
            ogs.append(np.hstack([base + offset, base])
                       + rng.normal(0, 0.5, (length, 2)))
            labels.append(label)
    return ogs, labels


class TestTextbookMode:
    """The deviations of DESIGN.md §5.6 are all switchable off."""

    def test_weights_in_posterior_runs(self):
        ogs, labels = two_blob_ogs()
        em = EMClustering(EMConfig(n_clusters=2, weights_in_posterior=True))
        result = em.fit(ogs)
        assert clustering_error_rate(labels, result.assignments) == 0.0

    def test_no_warm_start_runs(self):
        ogs, labels = two_blob_ogs()
        em = EMClustering(EMConfig(n_clusters=2, warm_start_iterations=0))
        result = em.fit(ogs)
        assert clustering_error_rate(labels, result.assignments) == 0.0

    def test_full_sigma_band(self):
        ogs, _ = two_blob_ogs()
        em = EMClustering(EMConfig(n_clusters=2, sigma_band=1.0))
        result = em.fit(ogs)
        assert np.all(result.sigmas > 0)

    def test_fully_textbook_configuration(self):
        ogs, labels = two_blob_ogs()
        em = EMClustering(EMConfig(
            n_clusters=2, weights_in_posterior=True,
            warm_start_iterations=0, sigma_band=1.0,
        ))
        result = em.fit(ogs)
        # On two well-separated blobs even the fragile textbook recipe
        # must succeed.
        assert clustering_error_rate(labels, result.assignments) == 0.0


class TestCustomDistances:
    def test_function_distance_adapter(self):
        ogs, labels = two_blob_ogs()
        distance = FunctionDistance(
            lambda a, b: lp_distance(a, b, 2.0), name="resampled-L2"
        )
        assert distance.name == "resampled-L2"
        em = EMClustering(EMConfig(n_clusters=2), distance=distance)
        result = em.fit(ogs)
        assert clustering_error_rate(labels, result.assignments) == 0.0

    def test_distance_names(self):
        from repro.distance import (
            DTW, EGED, EditDistance, ERP, LCSDistance, LpDistance,
            MetricEGED,
        )
        names = {
            EGED().name, MetricEGED().name, DTW().name,
            LCSDistance().name, ERP().name, EditDistance().name,
            LpDistance().name,
        }
        assert len(names) == 7  # all distinct, human-readable identifiers


class TestDeterminism:
    def test_same_seed_same_result(self):
        ogs, _ = two_blob_ogs()
        a = EMClustering(EMConfig(n_clusters=2, seed=5)).fit(ogs)
        b = EMClustering(EMConfig(n_clusters=2, seed=5)).fit(ogs)
        np.testing.assert_array_equal(a.assignments, b.assignments)
        assert a.log_likelihood == b.log_likelihood

    def test_iteration_seconds_positive(self):
        ogs, _ = two_blob_ogs(n_per=4)
        result = EMClustering(EMConfig(n_clusters=2)).fit(ogs)
        assert all(s >= 0 for s in result.iteration_seconds)
