"""Tests for the EDR and discrete Frechet distances."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distance.base import check_metric_axioms
from repro.distance.edr import EDRDistance, edr, edr_distance
from repro.distance.frechet import FrechetDistance, discrete_frechet
from repro.errors import InvalidParameterError

series_strategy = st.lists(
    st.floats(min_value=-50, max_value=50, allow_nan=False),
    min_size=1, max_size=10,
).map(lambda xs: np.asarray(xs, dtype=np.float64).reshape(-1, 1))


class TestEDR:
    def test_identical_zero(self, rng):
        a = rng.normal(size=(8, 2))
        assert edr(a, a, epsilon=0.0) == 0

    def test_counts_mismatches(self):
        a = np.array([[0.0], [0.0], [0.0]])
        b = np.array([[0.0], [100.0], [0.0]])
        assert edr(a, b, epsilon=1.0) == 1

    def test_length_difference_cost(self):
        a = np.zeros((3, 1))
        b = np.zeros((7, 1))
        assert edr(a, b, epsilon=1.0) == 4

    def test_epsilon_widens_matching(self):
        a = np.array([[0.0], [1.0]])
        b = np.array([[0.4], [1.4]])
        assert edr(a, b, epsilon=0.1) == 2
        assert edr(a, b, epsilon=0.5) == 0

    def test_normalized_in_unit_interval(self, rng):
        a = rng.normal(size=(6, 2))
        b = rng.normal(size=(9, 2))
        assert 0.0 <= edr_distance(a, b) <= 1.0

    def test_robust_to_single_outlier(self, rng):
        # One wild outlier costs exactly one edit, not its magnitude.
        a = rng.normal(size=(10, 2))
        b = a.copy()
        b[4] += 1_000.0
        assert edr(a, b, epsilon=0.5) == pytest.approx(1, abs=1)

    def test_invalid_epsilon(self):
        with pytest.raises(InvalidParameterError):
            edr(np.ones((2, 1)), np.ones((2, 1)), epsilon=-1.0)
        with pytest.raises(InvalidParameterError):
            EDRDistance(epsilon=-0.1)

    @given(series_strategy, series_strategy)
    @settings(max_examples=50, deadline=None)
    def test_property_symmetric_and_bounded(self, a, b):
        d = edr_distance(a, b, epsilon=1.0)
        assert 0.0 <= d <= 1.0
        assert d == pytest.approx(edr_distance(b, a, epsilon=1.0))


class TestFrechet:
    def test_identical_zero(self, rng):
        a = rng.normal(size=(7, 2))
        assert discrete_frechet(a, a) == pytest.approx(0.0)

    def test_parallel_lines(self):
        a = np.stack([np.arange(5.0), np.zeros(5)], axis=1)
        b = np.stack([np.arange(5.0), np.full(5, 3.0)], axis=1)
        assert discrete_frechet(a, b) == pytest.approx(3.0)

    def test_single_points(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[3.0, 4.0]])
        assert discrete_frechet(a, b) == pytest.approx(5.0)

    def test_dominated_by_worst_node(self):
        a = np.zeros((5, 1))
        b = np.zeros((5, 1))
        b[2] = 50.0
        assert discrete_frechet(a, b) == pytest.approx(50.0)

    def test_at_least_endpoint_distances(self, rng):
        a = rng.normal(size=(6, 2))
        b = rng.normal(size=(8, 2))
        lower = max(
            float(np.linalg.norm(a[0] - b[0])),
            float(np.linalg.norm(a[-1] - b[-1])),
        )
        assert discrete_frechet(a, b) >= lower - 1e-9

    def test_metric_axioms(self, rng):
        points = [rng.normal(size=(int(rng.integers(2, 8)), 2))
                  for _ in range(6)]
        assert check_metric_axioms(FrechetDistance(), points) == []

    @given(series_strategy, series_strategy, series_strategy)
    @settings(max_examples=40, deadline=None)
    def test_property_triangle(self, a, b, c):
        d = FrechetDistance()
        assert d(a, c) <= d(a, b) + d(b, c) + 1e-7
