"""Multi-process shard serving + HTTP frontend (``repro.serving.workers``
/ ``repro.serving.net``).

The load-bearing claim is *bit-identity*: a k-NN or range answer served
by worker processes over the wire must equal the in-process
``ShardedIndex`` answer on the same snapshot — same distances (floats
compared exactly), same order — at every worker count and through every
failure drill short of losing a shard entirely.
"""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro.core.index import STRGIndexConfig
from repro.datasets.synthetic import SyntheticConfig, generate_synthetic_ogs
from repro.errors import (
    IndexStateError,
    InvalidParameterError,
    StorageError,
)
from repro.serving import (
    NetConfig,
    NetFrontend,
    ShardedIndex,
    ShardedIndexConfig,
    WorkerPool,
    WorkerPoolConfig,
)
from repro.serving.net import request_json
from repro.serving.workers import RemoteHit, RemoteSearchResult

K = 5
RADIUS = 60.0
NUM_OGS = 96


@pytest.fixture(scope="module")
def corpus():
    return generate_synthetic_ogs(SyntheticConfig(num_ogs=NUM_OGS, seed=0))


@pytest.fixture(scope="module")
def queries():
    return generate_synthetic_ogs(SyntheticConfig(num_ogs=4, seed=99))


@pytest.fixture(scope="module")
def store_path(tmp_path_factory, corpus):
    """A 4-shard columnar snapshot with unique clip refs."""
    from repro.storage.store import open_store

    index = ShardedIndex(ShardedIndexConfig(
        num_shards=4, placement="affine", eval_batch=16,
        index=STRGIndexConfig(n_clusters=4)))
    index.build(corpus, clip_refs=[f"clip-{i}" for i in range(len(corpus))])
    root = tmp_path_factory.mktemp("net-serving")
    store = open_store(os.path.join(root, "corpus.strg"), format="columnar")
    store.write_index(index)
    return store.path


@pytest.fixture(scope="module")
def reference(store_path):
    """The in-process answer key: the same snapshot, loaded directly."""
    from repro.storage.store import open_store

    return open_store(store_path).load_index(mmap=True)


def hits_of(result):
    return [(h.distance, h.clip_ref) for h in result.hits]


def expected_knn(reference, query, k, budget=None):
    return [(float(d), ref)
            for d, _og, ref in reference.knn(query, k, search_budget=budget)]


def expected_range(reference, query, radius):
    return [(float(d), ref)
            for d, _og, ref in reference.range_query(query, radius)]


class TestWorkerPoolParity:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_bit_identical_to_in_process(self, store_path, reference,
                                         queries, workers):
        with WorkerPool(store_path, WorkerPoolConfig(workers=workers)) as pool:
            assert len(pool) == NUM_OGS
            for query in queries:
                exact = pool.knn(query, K)
                assert not exact.degraded and exact.failed_shards == []
                assert hits_of(exact) == expected_knn(reference, query, K)
                ranged = pool.range_query(query, RADIUS)
                assert hits_of(ranged) == expected_range(
                    reference, query, RADIUS)
                approx = pool.knn(query, K, search_budget=24)
                assert hits_of(approx) == expected_knn(
                    reference, query, K, budget=24)

    def test_k_edges_and_validation(self, store_path, reference, queries):
        with WorkerPool(store_path, WorkerPoolConfig(workers=2)) as pool:
            query = queries[0]
            assert pool.knn(query, 0).hits == []
            everything = pool.knn(query, NUM_OGS + 50)
            assert len(everything.hits) == NUM_OGS
            assert hits_of(everything) == expected_knn(
                reference, query, NUM_OGS + 50)
            assert pool.range_query(query, 0.0).hits == []
            with pytest.raises(InvalidParameterError):
                pool.knn(query, -1)
            with pytest.raises(InvalidParameterError):
                pool.knn(query, K, search_budget=0)
            with pytest.raises(InvalidParameterError):
                pool.range_query(query, -1.0)

    def test_monolithic_store_served_as_one_shard(self, tmp_path, corpus,
                                                  queries):
        from repro.core.index import STRGIndex
        from repro.storage.store import open_store

        mono = STRGIndex(STRGIndexConfig(n_clusters=4))
        for i, og in enumerate(corpus):
            mono.insert(og, clip_ref=f"clip-{i}")
        store = open_store(os.path.join(tmp_path, "mono.strg"),
                           format="columnar")
        store.write_index(mono)
        loaded = open_store(store.path).load_index(mmap=True)
        with WorkerPool(store.path, WorkerPoolConfig(workers=3)) as pool:
            assert pool.num_slots == 1  # one shard caps the slots
            for query in queries[:2]:
                got = hits_of(pool.knn(query, K))
                assert got == expected_knn(loaded, query, K)

    def test_requires_columnar_store(self, tmp_path):
        with pytest.raises(StorageError, match="convert"):
            WorkerPool(os.path.join(tmp_path, "nothing.npz"))

    def test_config_validation(self):
        with pytest.raises(InvalidParameterError):
            WorkerPoolConfig(workers=0)
        with pytest.raises(InvalidParameterError):
            WorkerPoolConfig(replicas=0)
        with pytest.raises(InvalidParameterError):
            WorkerPoolConfig(rebalance_ratio=0.5)

    def test_unstarted_pool_raises(self, store_path, queries):
        pool = WorkerPool(store_path, WorkerPoolConfig(workers=1))
        with pytest.raises(IndexStateError, match="empty worker pool"):
            pool.knn(queries[0], K)


class TestFailover:
    def test_dead_slot_degrades_but_stays_correct(self, store_path, queries):
        config = WorkerPoolConfig(workers=2, restart=False,
                                  heartbeat_interval=30.0)
        with WorkerPool(store_path, config) as pool:
            lost = sorted(pool.assignment[0])
            # Answer key with per-shard attribution, taken before the kill.
            wanted = {}
            for i, query in enumerate(queries):
                full = pool.knn(query, NUM_OGS)
                wanted[i] = [(h.distance, h.shard, h.row, h.clip_ref)
                             for h in full.hits if h.shard not in lost][:K]
            pool.kill_worker(0)
            for i, query in enumerate(queries):
                got = pool.knn(query, K)
                assert got.degraded and got.failed_shards == lost
                assert [(h.distance, h.shard, h.row, h.clip_ref)
                        for h in got.hits] == wanted[i]
            with pytest.raises(Exception):
                pool.knn(queries[0], K, degrade=False)
            health = pool.health()
            assert health["status"] in ("degraded", "partial")

    def test_replica_failover_is_not_degraded(self, store_path, reference,
                                              queries):
        config = WorkerPoolConfig(workers=1, replicas=2, restart=False,
                                  heartbeat_interval=30.0)
        with WorkerPool(store_path, config) as pool:
            pool.kill_worker(0, replica=0)
            for query in queries:
                got = pool.knn(query, K)
                assert not got.degraded
                assert hits_of(got) == expected_knn(reference, query, K)

    def test_supervisor_respawns_crashed_worker(self, store_path, reference,
                                                queries):
        config = WorkerPoolConfig(workers=2, restart=True,
                                  heartbeat_interval=0.2)
        with WorkerPool(store_path, config) as pool:
            pool.kill_worker(0)
            assert pool.await_healthy(timeout=30.0)
            assert any(h.restarts > 0
                       for row in pool._handles for h in row)
            for query in queries[:2]:
                got = pool.knn(query, K)
                assert not got.degraded
                assert hits_of(got) == expected_knn(reference, query, K)


class TestRebalance:
    def test_moves_cold_shard_off_hot_slot(self, store_path, reference,
                                           queries):
        with WorkerPool(store_path, WorkerPoolConfig(workers=2)) as pool:
            # 4 shards over 2 slots: [0, 2] and [1, 3].  Inject skewed
            # busy time: slot 0 hot (shard 0 hottest), slot 1 near-idle.
            with pool._state_lock:
                pool._shard_stats[0]["busy_seconds"] = 10.0
                pool._shard_stats[2]["busy_seconds"] = 4.0
                pool._shard_stats[1]["busy_seconds"] = 0.1
                pool._shard_stats[3]["busy_seconds"] = 0.1
            before = [list(s) for s in pool.assignment]
            moves = pool.rebalance(ratio=2.0)
            assert moves == [(2, 0, 1)]  # coldest shard of the hot slot
            assert pool.assignment[0] == [0]
            assert sorted(pool.assignment[1]) == [1, 2, 3]
            assert pool.assignment != before
            assert pool.rebalances == 1
            # Counters reset so the next window measures the new layout.
            assert all(s["busy_seconds"] == 0.0
                       for s in pool.shard_stats().values())
            # Results still bit-identical after the migration.
            for query in queries:
                got = pool.knn(query, K)
                assert not got.degraded
                assert hits_of(got) == expected_knn(reference, query, K)

    def test_balanced_load_moves_nothing(self, store_path):
        with WorkerPool(store_path, WorkerPoolConfig(workers=2)) as pool:
            with pool._state_lock:
                for stats in pool._shard_stats.values():
                    stats["busy_seconds"] = 1.0
            assert pool.rebalance(ratio=2.0) == []
            with pytest.raises(InvalidParameterError):
                pool.rebalance(ratio=0.9)

    def test_slot_loads_tracks_busy_time(self, store_path, queries):
        with WorkerPool(store_path, WorkerPoolConfig(workers=2)) as pool:
            for query in queries:
                pool.knn(query, K)
            loads = pool.slot_loads()
            assert len(loads) == 2
            assert all(load > 0.0 for load in loads)
            stats = pool.shard_stats()
            assert all(s["queries"] > 0 for s in stats.values())


class TestTimeoutPoisoning:
    """A request timeout must retire the worker's pipe outright.

    Reusing the handle after a timeout would hand the worker's eventual
    (late) reply to the *next* request — silently wrong results.  The
    regression contract: after a timeout the handle is poisoned (pipe
    closed, process gone) and later queries are *degraded*, never
    answered with a stale payload.
    """

    def test_timeout_retires_the_pipe(self, store_path, queries):
        config = WorkerPoolConfig(workers=1, restart=False,
                                  heartbeat_interval=30.0)
        with WorkerPool(store_path, config) as pool:
            pool.config.request_timeout = 1e-6  # every reply "too late"
            got = pool.knn(queries[0], K)
            assert got.degraded and got.hits == []
            handle = pool._handles[0][0]
            assert handle.poisoned and not handle.alive
            assert handle.conn is None
            assert not handle.process.is_alive()
            # With the pipe gone, the late reply can never be mis-read
            # as the answer to a later request: still degraded, never
            # the previous query's hits.
            pool.config.request_timeout = 120.0
            again = pool.knn(queries[1], K)
            assert again.degraded and again.hits == []

    def test_supervisor_respawns_poisoned_worker(self, store_path,
                                                 reference, queries):
        config = WorkerPoolConfig(workers=2, restart=True,
                                  heartbeat_interval=0.2)
        with WorkerPool(store_path, config) as pool:
            pool.config.request_timeout = 1e-6
            assert pool.knn(queries[0], K).degraded
            pool.config.request_timeout = 120.0
            assert pool.await_healthy(timeout=30.0)
            for query in queries[:2]:
                again = pool.knn(query, K)
                assert not again.degraded
                assert hits_of(again) == expected_knn(reference, query, K)


def write_sharded_store(path, ogs, num_shards):
    from repro.storage.store import open_store

    index = ShardedIndex(ShardedIndexConfig(
        num_shards=num_shards, placement="affine", eval_batch=16,
        index=STRGIndexConfig(n_clusters=4)))
    index.build(ogs, clip_refs=[f"clip-{i}" for i in range(len(ogs))])
    store = open_store(path, format="columnar")
    store.write_index(index)
    return store.path


class TestReload:
    def test_reload_rejects_shard_set_change(self, tmp_path, corpus):
        path = write_sharded_store(
            os.path.join(tmp_path, "r.strg"), corpus[:32], 2)
        with WorkerPool(path, WorkerPoolConfig(workers=2)) as pool:
            before = pool.snapshot_version
            write_sharded_store(path, corpus[:32], 3)
            with pytest.raises(StorageError, match="shard set"):
                pool.reload()
            # A rejected reload must not move the published version.
            assert pool.snapshot_version == before

    def test_reload_publishes_version_only_after_acks(self, tmp_path,
                                                      corpus, queries):
        path = write_sharded_store(
            os.path.join(tmp_path, "r2.strg"), corpus[:32], 2)
        with WorkerPool(path, WorkerPoolConfig(workers=2)) as pool:
            before = pool.snapshot_version
            assert len(pool) == 32
            write_sharded_store(path, corpus[:48], 2)
            # The snapshot on disk changed, but nothing reloaded yet:
            # responses must keep carrying the version they are served
            # from, i.e. the old one.
            assert pool.snapshot_version == before
            after = pool.reload()
            assert after != before
            assert pool.snapshot_version == after
            assert len(pool) == 48
            got = pool.knn(queries[0], K)
            assert not got.degraded and len(got.hits) == K


class TestRebalanceConcurrency:
    def test_queries_stay_correct_through_moves(self, store_path,
                                                reference, queries):
        """Rebalance races a live query stream without degrading it.

        A scatter that loses the race with a shard move gets a
        worker-side ShardUnavailableError and must retry against the
        updated assignment — never report the moved shard failed.
        """
        with WorkerPool(store_path, WorkerPoolConfig(workers=2)) as pool:
            stop = threading.Event()
            failures: list = []

            def stream(query):
                expected = expected_knn(reference, query, K)
                while not stop.is_set():
                    got = pool.knn(query, K)
                    if got.degraded or hits_of(got) != expected:
                        failures.append(
                            (got.degraded, got.failed_shards))
                        return

            threads = [threading.Thread(target=stream, args=(q,))
                       for q in queries[:2]]
            for thread in threads:
                thread.start()
            try:
                for _ in range(6):
                    # Make the slot with the most shards hot (one hot
                    # shard, cold rest) so every pass migrates.
                    with pool._state_lock:
                        counts = [len(s) for s in pool.assignment]
                        hot = max(range(len(counts)),
                                  key=lambda i: counts[i])
                        for slot, shards in enumerate(pool.assignment):
                            for j, o in enumerate(shards):
                                pool._shard_stats[o]["busy_seconds"] = (
                                    10.0 if slot == hot and j == 0
                                    else 0.1)
                    assert pool.rebalance(ratio=2.0)
                    time.sleep(0.05)
            finally:
                stop.set()
                for thread in threads:
                    thread.join(timeout=60.0)
            assert failures == []
            # Every shard still has exactly one owner.
            owners = sorted(o for slot in pool.assignment for o in slot)
            assert owners == [0, 1, 2, 3]


class TestHttpFrontend:
    @pytest.fixture(scope="class")
    def frontend(self, store_path):
        with WorkerPool(store_path, WorkerPoolConfig(workers=2)) as pool:
            with NetFrontend(pool, config=NetConfig()) as served:
                yield served

    def get(self, frontend, path):
        return request_json("127.0.0.1", frontend.port, "GET", path)

    def post(self, frontend, path, payload):
        return request_json("127.0.0.1", frontend.port, "POST", path,
                            payload)

    def test_knn_round_trip_bit_identical(self, frontend, reference,
                                          queries):
        for query in queries:
            status, body = self.post(frontend, "/knn", {
                "query": query.values.tolist(), "k": K})
            assert status == 200
            assert body["snapshot"] == frontend.pool.snapshot_version
            assert not body["degraded"] and body["failed_shards"] == []
            assert body["latency"] > 0
            got = [(h["distance"], h["clip_ref"]) for h in body["hits"]]
            assert got == expected_knn(reference, query, K)
            assert all(set(h) == {"distance", "shard", "row", "clip_ref"}
                       for h in body["hits"])

    def test_range_and_query_envelope(self, frontend, reference, queries):
        query = queries[0]
        status, body = self.post(frontend, "/range", {
            "query": query.values.tolist(), "radius": RADIUS})
        assert status == 200
        got = [(h["distance"], h["clip_ref"]) for h in body["hits"]]
        assert got == expected_range(reference, query, RADIUS)
        status, enveloped = self.post(frontend, "/query", {
            "op": "range", "query": query.values.tolist(),
            "radius": RADIUS})
        assert status == 200 and enveloped["hits"] == body["hits"]
        status, body = self.post(frontend, "/query", {
            "op": "scan", "query": query.values.tolist()})
        assert status == 400 and "scan" in body["error"]

    def test_budgeted_knn_over_http(self, frontend, reference, queries):
        query = queries[0]
        status, body = self.post(frontend, "/knn", {
            "query": query.values.tolist(), "k": K, "search_budget": 24})
        assert status == 200
        got = [(h["distance"], h["clip_ref"]) for h in body["hits"]]
        assert got == expected_knn(reference, query, K, budget=24)

    def test_health_and_metrics(self, frontend):
        status, health = self.get(frontend, "/health")
        assert status == 200 and health["status"] == "ok"
        assert health["workers_alive"] == 2
        assert health["frontend"]["max_inflight"] == 64
        status, text = self.get(frontend, "/metrics")
        assert status == 200 and isinstance(text, str) and text

    def test_http_errors(self, frontend, queries):
        query = queries[0].values.tolist()
        status, body = self.get(frontend, "/nope")
        assert status == 404
        status, body = request_json("127.0.0.1", frontend.port, "GET",
                                    "/knn")
        assert status == 405
        status, body = self.post(frontend, "/knn", {"k": K})
        assert status == 400 and "query" in body["error"]
        status, body = self.post(frontend, "/knn", {"query": query})
        assert status == 400 and "'k'" in body["error"]
        status, body = self.post(frontend, "/knn",
                                 {"query": query, "k": -2})
        assert status == 400
        status, body = self.post(frontend, "/knn",
                                 {"query": query, "k": K, "deadline": 0})
        assert status == 400
        status, body = self.post(frontend, "/ingest", {"frames": []})
        assert status == 501  # frozen snapshot: no ingest service attached

    def test_non_numeric_inputs_are_400_not_500(self, frontend, queries):
        query = queries[0].values.tolist()
        for payload in (
            {"query": query, "k": "five"},
            {"query": query, "k": None},
            {"query": query, "k": K, "search_budget": "lots"},
            {"query": query, "k": K, "deadline": "soon"},
        ):
            status, body = self.post(frontend, "/knn", payload)
            assert status == 400, (payload, body)
        status, body = self.post(frontend, "/range",
                                 {"query": query, "radius": "wide"})
        assert status == 400 and "radius" in body["error"]
        status, body = self.post(frontend, "/admin/rebalance",
                                 {"ratio": "big"})
        assert status == 400 and "ratio" in body["error"]

    def test_malformed_content_length_is_400(self, frontend):
        import socket

        with socket.create_connection(("127.0.0.1", frontend.port),
                                      timeout=10) as sock:
            sock.sendall(b"POST /knn HTTP/1.1\r\nHost: t\r\n"
                         b"Content-Length: banana\r\n\r\n")
            reply = sock.recv(65536)
        assert reply.startswith(b"HTTP/1.1 400 ")

    def test_oversized_body_answers_413(self, frontend):
        import socket

        from repro.serving.net import MAX_BODY_BYTES

        with socket.create_connection(("127.0.0.1", frontend.port),
                                      timeout=10) as sock:
            head = (f"POST /ingest HTTP/1.1\r\nHost: t\r\n"
                    f"Content-Length: {MAX_BODY_BYTES + 1}\r\n\r\n")
            sock.sendall(head.encode("latin-1"))
            reply = sock.recv(65536)
        assert reply.startswith(b"HTTP/1.1 413 ")

    def test_admin_rebalance_endpoint(self, frontend):
        status, body = self.post(frontend, "/admin/rebalance", {})
        assert status == 200
        assert body["moves"] == []  # no load yet -> nothing to move
        assert sorted(o for slot in body["assignment"] for o in slot) \
            == [0, 1, 2, 3]

    def test_admin_reload_keeps_snapshot_version(self, frontend):
        before = frontend.pool.snapshot_version
        status, body = self.post(frontend, "/admin/reload", {})
        assert status == 200 and body["snapshot"] == before


class _StubPool:
    """Minimal pool double for frontend-only behaviors (no processes)."""

    def __init__(self):
        self.snapshot_version = "stub0000"
        self.release = threading.Event()
        self.release.set()
        self.assignment = [[0]]

    def knn(self, query, k, *, search_budget=None, degrade=True):
        self.release.wait(5.0)
        return RemoteSearchResult([RemoteHit(1.0, 0, 0, "clip-0")])

    def range_query(self, query, radius, *, degrade=True):
        return RemoteSearchResult([])

    def health(self):
        return {"status": "ok", "workers_alive": 1, "workers": []}

    def reload(self):
        return self.snapshot_version

    def rebalance(self, ratio=None):
        return []


class _StubJob:
    job_id = "job-1"
    clip_name = "clip-http"

    class state:
        value = "queued"


class _StubIngest:
    def submit(self, video, *, job_id=None):
        assert video.frames.shape[-1] == 3
        return _StubJob()

    def health(self):
        return {"queue_depth": 0}


class TestFrontendAdmissionAndDeadlines:
    def test_deadline_maps_to_504(self, queries):
        pool = _StubPool()
        pool.release.clear()  # knn blocks until released
        with NetFrontend(pool, config=NetConfig(handler_threads=2)) as fe:
            status, body = request_json(
                "127.0.0.1", fe.port, "POST", "/knn",
                {"query": [[0.0, 0.0]], "k": 1, "deadline": 0.05})
            assert status == 504
            assert body["type"] == "DeadlineExceededError"
            pool.release.set()

    def test_admission_control_maps_to_503(self):
        pool = _StubPool()
        pool.release.clear()
        config = NetConfig(max_inflight=1, handler_threads=4)
        with NetFrontend(pool, config=config) as fe:
            results = []

            def slow():
                results.append(request_json(
                    "127.0.0.1", fe.port, "POST", "/knn",
                    {"query": [[0.0, 0.0]], "k": 1}))

            first = threading.Thread(target=slow)
            first.start()
            deadline = time.monotonic() + 5.0
            while fe._inflight < 1 and time.monotonic() < deadline:
                time.sleep(0.01)
            status, body = request_json(
                "127.0.0.1", fe.port, "POST", "/knn",
                {"query": [[0.0, 0.0]], "k": 1})
            assert status == 503
            assert body["type"] == "ServiceOverloadError"
            pool.release.set()
            first.join(timeout=10.0)
            assert results and results[0][0] == 200
            assert fe.requests_rejected == 1

    def test_ingest_proxy_accepts_jobs(self):
        frames = [[[[0, 0, 0]] * 4] * 4] * 2  # (2, 4, 4, 3) uint8
        with NetFrontend(_StubPool(), ingest=_StubIngest(),
                         config=NetConfig()) as fe:
            status, body = request_json(
                "127.0.0.1", fe.port, "POST", "/ingest",
                {"frames": frames, "fps": 5.0, "name": "cam-1"})
            assert status == 202
            assert body == {"job": "job-1", "clip": "clip-http",
                            "state": "queued"}
            status, body = request_json(
                "127.0.0.1", fe.port, "POST", "/ingest", {})
            assert status == 400 and "frames" in body["error"]
            status, health = request_json(
                "127.0.0.1", fe.port, "GET", "/health")
            assert status == 200 and health["ingest"] == {"queue_depth": 0}


class TestServeHttpCli:
    def test_serve_http_smoke(self, store_path, capsys):
        from repro.cli import main

        code = main(["serve", store_path, "--http", "127.0.0.1:0",
                     "--workers", "2", "--duration", "0.6",
                     "--rate", "40"])
        assert code == 0
        out = capsys.readouterr().out
        assert "listening on http://127.0.0.1:" in out
        assert "snapshot" in out

    def test_serve_http_rejects_bad_spec(self, store_path, tmp_path,
                                         capsys):
        from repro.cli import main

        assert main(["serve", store_path, "--http", "nocolon"]) == 2
        assert "HOST:PORT" in capsys.readouterr().err

    def test_serve_http_rejects_npz(self, corpus, tmp_path, capsys):
        from repro.cli import main
        from repro.storage.store import open_store

        from repro.core.index import STRGIndex

        mono = STRGIndex(STRGIndexConfig(n_clusters=4))
        for og in corpus[:8]:
            mono.insert(og)
        store = open_store(os.path.join(tmp_path, "mono.npz"),
                           format="npz")
        store.write_index(mono)
        assert main(["serve", store.path, "--http", "127.0.0.1:0"]) == 2
        assert "convert" in capsys.readouterr().err
