"""Tests for EGED_M lower bounds, index deletion and motion queries."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.index import STRGIndex, STRGIndexConfig
from repro.distance.bounds import NormIndex, eged_metric_lower_bound, gap_mass
from repro.distance.eged import MetricEGED
from repro.errors import IndexStateError
from repro.graph.object_graph import ObjectGraph
from repro.storage.database import VideoDatabase

series_strategy = st.lists(
    st.floats(min_value=-50, max_value=50, allow_nan=False),
    min_size=1, max_size=10,
).map(lambda xs: np.asarray(xs, dtype=np.float64).reshape(-1, 1))


def blob_ogs(k=3, n_per=6, seed=0):
    rng = np.random.default_rng(seed)
    ogs = []
    for label in range(k):
        for _ in range(n_per):
            length = int(rng.integers(5, 10))
            base = np.linspace(0, 10, length)[:, None]
            values = np.hstack([base + label * 150.0, base])
            ogs.append(ObjectGraph.from_values(
                values + rng.normal(0, 0.5, values.shape), label=label
            ))
    return ogs


class TestLowerBound:
    def test_gap_mass_is_distance_to_empty_analogue(self):
        x = np.array([[3.0, 4.0], [0.0, 5.0]])
        assert gap_mass(x) == pytest.approx(10.0)

    def test_gap_mass_with_reference(self):
        x = np.array([[1.0]])
        assert gap_mass(x, gap=4.0) == pytest.approx(3.0)

    def test_bound_is_valid(self, rng):
        d = MetricEGED()
        for _ in range(20):
            a = rng.normal(size=(int(rng.integers(1, 12)), 2)) * 10
            b = rng.normal(size=(int(rng.integers(1, 12)), 2)) * 10
            assert eged_metric_lower_bound(a, b) <= d(a, b) + 1e-9

    @given(series_strategy, series_strategy)
    @settings(max_examples=60, deadline=None)
    def test_property_bound_never_exceeds_distance(self, a, b):
        assert eged_metric_lower_bound(a, b) <= MetricEGED()(a, b) + 1e-7

    def test_bound_with_nonzero_gap(self, rng):
        d = MetricEGED(gap=5.0)
        a = rng.normal(size=(6, 1))
        b = rng.normal(size=(9, 1))
        assert eged_metric_lower_bound(a, b, gap=5.0) <= d(a, b) + 1e-9


class TestNormIndex:
    def test_prefilter_keeps_all_true_neighbors(self, rng):
        d = MetricEGED()
        items = [rng.normal(size=(int(rng.integers(3, 9)), 2)) * 10
                 for _ in range(30)]
        norm_index = NormIndex(items)
        query = rng.normal(size=(5, 2)) * 10
        radius = 40.0
        survivors = set(norm_index.candidates_within(query, radius))
        truth = {i for i, item in enumerate(items) if d(query, item) <= radius}
        assert truth <= survivors  # no false dismissals

    def test_prefilter_discards_something(self, rng):
        items = [np.full((4, 2), v) for v in (0.0, 1000.0)]
        norm_index = NormIndex(items)
        assert norm_index.candidates_within(np.zeros((4, 2)), 10.0) == [0]

    def test_len(self):
        assert len(NormIndex([np.zeros((2, 2))])) == 1


class TestIndexDeletion:
    def test_delete_removes_og(self):
        ogs = blob_ogs()
        index = STRGIndex(STRGIndexConfig(n_clusters=3))
        index.build(ogs)
        assert index.delete(ogs[0].og_id)
        assert len(index) == len(ogs) - 1
        hits = index.knn(ogs[0], len(ogs) - 1)
        assert ogs[0].og_id not in {og.og_id for _, og, _ in hits}

    def test_delete_missing_returns_false(self):
        ogs = blob_ogs(k=1, n_per=3)
        index = STRGIndex(STRGIndexConfig(n_clusters=1))
        index.build(ogs)
        assert not index.delete(999_999)

    def test_delete_last_member_drops_cluster(self):
        ogs = blob_ogs(k=2, n_per=1)
        index = STRGIndex(STRGIndexConfig(n_clusters=2))
        index.build(ogs)
        before = index.num_clusters()
        index.delete(ogs[0].og_id)
        assert index.num_clusters() == before - 1

    def test_delete_everything_empties_index(self):
        ogs = blob_ogs(k=1, n_per=2)
        index = STRGIndex(STRGIndexConfig(n_clusters=1))
        index.build(ogs)
        for og in ogs:
            assert index.delete(og.og_id)
        assert len(index) == 0
        with pytest.raises(IndexStateError):
            index.knn(ogs[0], 1)

    def test_search_exact_after_deletions(self):
        ogs = blob_ogs(k=3, n_per=6)
        index = STRGIndex(STRGIndexConfig(n_clusters=3))
        index.build(ogs)
        for og in ogs[::4]:
            index.delete(og.og_id)
        remaining = [og for i, og in enumerate(ogs) if i % 4 != 0]
        d = MetricEGED()
        hits = index.knn(remaining[0], 4)
        brute = sorted(d(remaining[0], og) for og in remaining)[:4]
        assert [h[0] for h in hits] == pytest.approx(brute)


class TestMotionQueries:
    def make_db(self):
        db = VideoDatabase()
        rightward = ObjectGraph.from_values(
            np.stack([np.linspace(0, 90, 10), np.full(10, 20.0)], axis=1)
        )
        leftward = ObjectGraph.from_values(
            np.stack([np.linspace(90, 0, 10), np.full(10, 60.0)], axis=1)
        )
        slow = ObjectGraph.from_values(
            np.stack([np.linspace(0, 5, 10), np.full(10, 90.0)], axis=1)
        )
        db.ingest_object_graphs([rightward, leftward, slow])
        return db, rightward, leftward, slow

    def test_direction_filter(self):
        db, rightward, leftward, _ = self.make_db()
        east = db.query_by_motion(direction=0.0)
        assert rightward in east
        assert leftward not in east

    def test_velocity_band(self):
        db, rightward, leftward, slow = self.make_db()
        fast = db.query_by_motion(min_velocity=2.0)
        assert slow not in fast
        assert rightward in fast
        crawl = db.query_by_motion(max_velocity=1.0)
        assert crawl == [slow]

    def test_region_filter(self):
        db, rightward, leftward, slow = self.make_db()
        top = db.query_by_motion(region=(0.0, 0.0, 100.0, 30.0))
        assert top == [rightward]

    def test_min_duration(self):
        db, *_ = self.make_db()
        assert db.query_by_motion(min_duration=11) == []
        assert len(db.query_by_motion(min_duration=10)) == 3

    def test_database_delete(self):
        db, rightward, *_ = self.make_db()
        assert db.delete(rightward.og_id)
        assert rightward not in db.query_by_motion()

    def test_empty_database_rejected(self):
        with pytest.raises(IndexStateError):
            VideoDatabase().query_by_motion()


class TestExpiry:
    def make_db(self):
        db = VideoDatabase()
        ogs = []
        for start in (0, 100, 200):
            values = np.stack([
                np.linspace(0, 50, 10), np.full(10, 20.0)
            ], axis=1)
            ogs.append(ObjectGraph.from_values(
                values, frames=np.arange(start, start + 10)
            ))
        db.ingest_object_graphs(ogs)
        return db, ogs

    def test_expire_removes_old_tracks(self):
        db, ogs = self.make_db()
        removed = db.expire_before(150)
        assert removed == 2
        remaining = {og.og_id for og in db.index.object_graphs()}
        assert remaining == {ogs[2].og_id}

    def test_expire_nothing(self):
        db, _ = self.make_db()
        assert db.expire_before(0) == 0
        assert db.stats()["ogs"] == 3

    def test_expire_everything(self):
        db, _ = self.make_db()
        assert db.expire_before(10_000) == 3
        assert len(db.index) == 0

    def test_search_correct_after_expiry(self):
        db, ogs = self.make_db()
        db.expire_before(150)
        hits = db.index.knn(ogs[2], 1)
        assert hits[0][1].og_id == ogs[2].og_id
