"""Tests for the simulated Lab/Traffic streams (Table 1 substitute)."""

import numpy as np
import pytest

from repro.datasets.real import (
    STREAMS,
    render_stream_segment,
    simulate_stream_ogs,
    stream_frame_count,
)
from repro.errors import InvalidParameterError


class TestStreamSpecs:
    def test_four_streams(self):
        assert set(STREAMS) == {"Lab1", "Lab2", "Traffic1", "Traffic2"}

    def test_table1_og_counts(self):
        assert STREAMS["Lab1"].n_ogs == 411
        assert STREAMS["Lab2"].n_ogs == 147
        assert STREAMS["Traffic1"].n_ogs == 195
        assert STREAMS["Traffic2"].n_ogs == 203
        assert sum(s.n_ogs for s in STREAMS.values()) == 956  # Table 1 total

    def test_table1_durations(self):
        # 40h38m, 4h12m, 15m, 12m.
        assert STREAMS["Lab1"].duration_minutes == 2438
        assert STREAMS["Lab2"].duration_minutes == 252
        assert STREAMS["Traffic1"].duration_minutes == 15
        assert STREAMS["Traffic2"].duration_minutes == 12

    def test_table2_cluster_counts(self):
        assert STREAMS["Lab1"].n_clusters == 9
        assert STREAMS["Lab2"].n_clusters == 6
        assert STREAMS["Traffic1"].n_clusters == 6
        assert STREAMS["Traffic2"].n_clusters == 6

    def test_frame_count(self):
        assert stream_frame_count(STREAMS["Traffic2"]) == 12 * 60 * 10

    def test_traffic_less_irregular_than_lab(self):
        assert (STREAMS["Traffic1"].irregularity
                < STREAMS["Lab1"].irregularity)


class TestSimulatedOGs:
    @pytest.mark.parametrize("name", list(STREAMS))
    def test_og_count_matches_spec(self, name):
        spec = STREAMS[name]
        ogs = simulate_stream_ogs(spec)
        assert len(ogs) == spec.n_ogs

    def test_labels_cover_all_clusters(self):
        spec = STREAMS["Traffic1"]
        ogs = simulate_stream_ogs(spec)
        assert {og.label for og in ogs} == set(range(spec.n_clusters))

    def test_deterministic(self):
        spec = STREAMS["Lab2"]
        a = simulate_stream_ogs(spec)
        b = simulate_stream_ogs(spec)
        np.testing.assert_array_equal(a[0].values, b[0].values)

    def test_lab_noisier_than_traffic(self):
        # Irregularity scales point-level jitter, which shows up as
        # trajectory jaggedness (mean second difference).
        def jaggedness(name):
            total = 0.0
            ogs = simulate_stream_ogs(STREAMS[name])
            for og in ogs:
                second = np.diff(og.values, n=2, axis=0)
                total += float(np.mean(np.abs(second)))
            return total / len(ogs)
        assert jaggedness("Lab2") > jaggedness("Traffic1") * 1.3

    def test_meta_records_stream(self):
        ogs = simulate_stream_ogs(STREAMS["Traffic2"])
        assert ogs[0].meta["stream"] == "Traffic2"


class TestRenderedStreams:
    @pytest.mark.parametrize("name", ["Traffic1", "Lab1"])
    def test_render_shape(self, name):
        video = render_stream_segment(name, num_frames=8)
        assert video.num_frames == 8
        assert video.name == name
        assert video.frames.dtype == np.uint8

    def test_frames_change_over_time(self):
        video = render_stream_segment("Traffic1", num_frames=20)
        assert not np.array_equal(video.frame(0), video.frame(10))

    def test_unknown_stream(self):
        with pytest.raises(InvalidParameterError):
            render_stream_segment("Parking3")
