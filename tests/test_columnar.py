"""Columnar memory-mapped store and the ``open_store`` facade
(docs/STORAGE.md): round trips, mmap bit-identity, incremental append
+ replay, tombstones and merges, torn-write recovery, conversion, and
the wiring through ``LiveIndex`` / ``IngestService`` / the CLI."""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.core.index import STRGIndex, STRGIndexConfig
from repro.errors import (
    IndexCorruptionError,
    InvalidParameterError,
    StorageError,
)
from repro.graph.object_graph import ObjectGraph
from repro.resilience import FaultInjector, injected
from repro.serving.sharding import ShardedIndex, ShardedIndexConfig
from repro.serving.snapshot import LiveIndex, _BufferedWrite
from repro.storage.columnar import ColumnarStore, is_columnar_store
from repro.storage.serialize import (
    index_to_arrays,
    load_index,
    save_index,
)
from repro.storage.store import (
    NpzStore,
    convert,
    detect_format,
    open_store,
    snapshot_exists,
    store_path,
)


def blob_ogs(k=3, n_per=5, seed=0, length_range=(5, 10)):
    rng = np.random.default_rng(seed)
    ogs = []
    for label in range(k):
        for _ in range(n_per):
            length = int(rng.integers(*length_range))
            base = np.linspace(0, 10, length)[:, None]
            values = np.hstack([base + label * 150.0, base])
            ogs.append(ObjectGraph.from_values(
                values + rng.normal(0, 0.5, values.shape), label=label
            ))
    return ogs


def build_index(ogs=None, n_clusters=3, refs=True):
    ogs = blob_ogs() if ogs is None else ogs
    index = STRGIndex(STRGIndexConfig(n_clusters=n_clusters))
    index.build(ogs, clip_refs=[f"clip-{i}" for i in range(len(ogs))]
                if refs else None)
    return index, ogs


def knn_signature(index, queries, k=5):
    """Distances + refs of k-NN hits (og_ids are process-local)."""
    out = []
    for q in queries:
        out.append([(d, ref) for d, _, ref in index.knn(q, k)])
    return out


class TestColumnarRoundTrip:
    def test_write_load_bit_identical(self, tmp_path):
        index, ogs = build_index()
        store = ColumnarStore(tmp_path / "corpus")
        store.write_index(index)
        assert store.path.endswith(".strg")
        for mmap in (False, True):
            loaded = ColumnarStore(store.path).load_index(mmap=mmap)
            assert loaded.stats() == index.stats()
            assert knn_signature(loaded, ogs[:4]) \
                == knn_signature(index, ogs[:4])

    def test_mmap_slices_stay_on_disk(self, tmp_path):
        index, ogs = build_index()
        store = ColumnarStore(tmp_path / "corpus")
        store.write_index(index)
        loaded = store.load_index(mmap=True)
        first = next(loaded.object_graphs())
        assert isinstance(first.values.base, np.memmap) \
            or isinstance(first.values, np.memmap)

    def test_npz_columnar_npz_content_identical(self, tmp_path):
        index, _ = build_index()
        save_index(tmp_path / "a.npz", index)
        convert(tmp_path / "a.npz", tmp_path / "b", format="columnar")
        convert(tmp_path / "b.strg", tmp_path / "c", format="npz")
        final = load_index(tmp_path / "c.npz")
        before, meta_a = index_to_arrays(load_index(tmp_path / "a.npz"))
        after, meta_c = index_to_arrays(final)
        assert sorted(before) == sorted(after)
        for key, column in before.items():
            np.testing.assert_array_equal(after[key], column,
                                          err_msg=key)
        assert meta_a["refs"] == meta_c["refs"]
        assert meta_a["num_roots"] == meta_c["num_roots"]

    def test_sketches_survive(self, tmp_path):
        index, ogs = build_index()
        index.sketch_tier()  # force the approximate tier to exist
        store = ColumnarStore(tmp_path / "sk")
        store.write_index(index)
        loaded = store.load_index()
        assert loaded._sketches is not None
        want = index.knn(ogs[0], 3, search_budget=8)
        got = loaded.knn(ogs[0], 3, search_budget=8)
        assert [d for d, _, _ in want] == [d for d, _, _ in got]

    def test_empty_index_round_trips(self, tmp_path):
        index = STRGIndex(STRGIndexConfig(n_clusters=None, k_max=4))
        store = ColumnarStore(tmp_path / "empty")
        store.write_index(index)
        assert len(store.load_index()) == 0


class TestShardedColumnar:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_mmap_vs_ram_bit_identical(self, tmp_path, shards):
        ogs = blob_ogs(k=4, n_per=4)
        index = ShardedIndex(ShardedIndexConfig(
            num_shards=shards, index=STRGIndexConfig(n_clusters=2)))
        index.build(ogs)
        store = ColumnarStore(tmp_path / f"s{shards}")
        store.write_index(index)
        ram = store.load_index(mmap=False)
        mapped = store.load_index(mmap=True)
        assert knn_signature(ram, ogs[:4]) == knn_signature(index, ogs[:4])
        assert knn_signature(mapped, ogs[:4]) == knn_signature(ram, ogs[:4])
        want = [(d, ref) for d, _, ref in index.range_query(ogs[0], 30.0)]
        assert [(d, ref) for d, _, ref in mapped.range_query(ogs[0], 30.0)] \
            == want

    def test_sharded_store_rejects_append(self, tmp_path):
        ogs = blob_ogs(k=2, n_per=3)
        index = ShardedIndex(ShardedIndexConfig(
            num_shards=2, index=STRGIndexConfig(n_clusters=2)))
        index.build(ogs)
        store = ColumnarStore(tmp_path / "sharded")
        store.write_index(index)
        assert not store.supports_append
        with pytest.raises(StorageError, match="sharded"):
            store.append([_BufferedWrite("delete", og_id=1)])


class TestAppendAndReplay:
    def test_appended_deltas_replay_bit_identical(self, tmp_path):
        index, ogs = build_index()
        store = ColumnarStore(tmp_path / "delta")
        store.write_index(index)
        extra = blob_ogs(k=1, n_per=4, seed=9)
        writes = [_BufferedWrite("insert", og=og, clip_ref=f"x-{i}")
                  for i, og in enumerate(extra)]
        victim = ogs[2].og_id
        writes.append(_BufferedWrite("delete", og_id=victim))
        for write in writes:
            if write.op == "insert":
                index.insert(write.og, None, write.clip_ref)
            else:
                index.delete(write.og_id)
        assert store.append(writes) is not None
        loaded = store.load_index()
        queries = extra[:2] + ogs[:2]
        assert knn_signature(loaded, queries) \
            == knn_signature(index, queries)
        assert len(loaded) == len(index)

    def test_delete_of_unknown_og_is_noop(self, tmp_path):
        index, _ = build_index()
        store = ColumnarStore(tmp_path / "noop")
        store.write_index(index)
        assert store.append([_BufferedWrite("delete", og_id=10**9)]) is None
        assert len(store.load_index()) == len(index)

    def test_append_requires_binding(self, tmp_path):
        index, _ = build_index()
        ColumnarStore(tmp_path / "b").write_index(index)
        fresh = ColumnarStore(tmp_path / "b")  # same dir, no row map
        with pytest.raises(StorageError, match="not.*bound|bound"):
            fresh.append([_BufferedWrite("delete", og_id=0)])

    def test_checkpoint_appends_when_bound(self, tmp_path):
        index, _ = build_index()
        store = ColumnarStore(tmp_path / "ck")
        store.checkpoint(index)  # first: full write
        one = len(store._read_manifest()["segments"])
        og = ObjectGraph.from_values([[0.0, 0.0], [1.0, 1.0]])
        index.insert(og, None, "late")
        store.checkpoint(index, [_BufferedWrite("insert", og=og,
                                                clip_ref="late")])
        manifest = store._read_manifest()
        assert len(manifest["segments"]) == one + 1
        assert manifest["segments"][-1]["kind"] == "delta"
        assert len(store.load_index()) == len(index)


class TestMerge:
    def test_dead_rows_trigger_and_merge_folds(self, tmp_path):
        index, ogs = build_index()
        store = ColumnarStore(tmp_path / "merge")
        store.write_index(index)
        writes = []
        for og in ogs[: len(ogs) // 2]:
            index.delete(og.og_id)
            writes.append(_BufferedWrite("delete", og_id=og.og_id))
        store.append(writes)
        assert store.needs_merge()
        assert store.merge(index)
        manifest = store._read_manifest()
        assert len(manifest["segments"]) == 1
        assert manifest["rows_dead"] == 0
        survivors = ogs[len(ogs) // 2:]
        assert knn_signature(store.load_index(), survivors[:3]) \
            == knn_signature(index, survivors[:3])

    def test_offline_merge_preserves_live_bindings(self, tmp_path):
        index, ogs = build_index()
        store = ColumnarStore(tmp_path / "fold")
        store.write_index(index)
        index.delete(ogs[0].og_id)
        store.append([_BufferedWrite("delete", og_id=ogs[0].og_id)])
        assert store.merge(index=None)  # fold committed state offline
        # The live og_id binding must survive the fold: later deletes
        # through the same store still hit the right rows.
        index.delete(ogs[1].og_id)
        store.append([_BufferedWrite("delete", og_id=ogs[1].og_id)])
        assert len(store.load_index()) == len(index)

    def test_incremental_append_moves_o_delta_bytes(self, tmp_path):
        index, _ = build_index(blob_ogs(k=4, n_per=8, seed=3))
        store = ColumnarStore(tmp_path / "odelta")
        store.write_index(index)
        base_bytes = sum(entry["bytes"]
                         for seg in store._read_manifest()["segments"]
                         for entry in seg["files"].values())
        og = ObjectGraph.from_values([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]])
        index.insert(og, None, "tiny")
        name = store.append([_BufferedWrite("insert", og=og,
                                            clip_ref="tiny")])
        manifest = store._read_manifest()
        delta = next(s for s in manifest["segments"] if s["name"] == name)
        delta_bytes = sum(entry["bytes"]
                          for entry in delta["files"].values())
        assert delta_bytes < base_bytes / 5


class TestCorruptionDetection:
    def make_store(self, tmp_path):
        index, ogs = build_index()
        store = ColumnarStore(tmp_path / "c")
        store.write_index(index)
        return store, index, ogs

    def test_truncated_segment_raises_typed_error(self, tmp_path):
        store, _, _ = self.make_store(tmp_path)
        manifest = store._read_manifest()
        seg = manifest["segments"][0]["name"]
        target = os.path.join(store.path, seg, "og_values.npy")
        with open(target, "r+b") as fh:
            fh.truncate(os.path.getsize(target) // 2)
        with pytest.raises(IndexCorruptionError) as err:
            ColumnarStore(store.path).load_index()
        assert err.value.details

    def test_corrupt_manifest_raises_typed_error(self, tmp_path):
        store, _, _ = self.make_store(tmp_path)
        with open(os.path.join(store.path, "manifest.json"), "w") as fh:
            fh.write('{"format": "strg-columnar", "truncated')
        with pytest.raises(IndexCorruptionError):
            ColumnarStore(store.path).load_index()

    def test_flipped_segment_byte_fails_verify(self, tmp_path):
        store, _, _ = self.make_store(tmp_path)
        manifest = store._read_manifest()
        seg = manifest["segments"][0]["name"]
        target = os.path.join(store.path, seg, "og_values.npy")
        blob = bytearray(open(target, "rb").read())
        blob[len(blob) // 2] ^= 0xFF
        open(target, "wb").write(bytes(blob))
        with pytest.raises(IndexCorruptionError):
            ColumnarStore(store.path).verify()

    def test_row_count_mismatch_detected(self, tmp_path):
        store, _, _ = self.make_store(tmp_path)
        manifest = store._read_manifest()
        manifest["rows_total"] += 1
        store._commit_manifest(manifest, "storage.write")
        with pytest.raises(IndexCorruptionError):
            ColumnarStore(store.path).load_index()

    def test_crash_mid_append_keeps_previous_state(self, tmp_path):
        store, index, ogs = self.make_store(tmp_path)
        before = knn_signature(store.load_index(), ogs[:3])
        store.write_index(index)  # rebind after the load above
        og = ObjectGraph.from_values([[5.0, 5.0], [6.0, 6.0]])
        injector = FaultInjector().inject("storage.append", rate=1.0)
        with injected(injector):
            with pytest.raises((StorageError, OSError)):
                store.append([_BufferedWrite("insert", og=og,
                                             clip_ref="lost")])
        assert injector.fired["storage.append"] == 1
        # The manifest never committed: the store reopens at the
        # pre-append state, ignoring the orphaned segment directory.
        reopened = ColumnarStore(store.path)
        assert knn_signature(reopened.load_index(), ogs[:3]) == before
        reopened.verify()

    def test_torn_append_write_detected_on_load(self, tmp_path):
        store, index, ogs = self.make_store(tmp_path)
        og = ObjectGraph.from_values([[5.0, 5.0], [6.0, 6.0]])
        injector = FaultInjector().inject(
            "storage.append", kind="truncate", rate=1.0)
        with injected(injector):
            store.append([_BufferedWrite("insert", og=og, clip_ref="x")])
        with pytest.raises(IndexCorruptionError):
            ColumnarStore(store.path).load_index()

    def test_empty_store_dir_is_corruption_not_missing(self, tmp_path):
        # A .strg directory without a committed manifest is an
        # interrupted first write, not a store that never existed.
        empty = tmp_path / "empty.strg"
        empty.mkdir()
        assert not is_columnar_store(empty)
        assert detect_format(empty) is None
        store = open_store(empty)  # suffix routes to columnar
        assert isinstance(store, ColumnarStore)
        with pytest.raises(IndexCorruptionError) as err:
            store.load_index()
        details = err.value.details
        assert details["path"] == store.path
        assert details["missing"] == "manifest.json"
        assert details["contents"] == []

    def test_partially_written_dir_lists_contents(self, tmp_path):
        partial = tmp_path / "partial.strg"
        seg = partial / "seg-000000"
        seg.mkdir(parents=True)
        (seg / "og_values.npy").write_bytes(b"\x93NUMPY-but-torn")
        with pytest.raises(IndexCorruptionError) as err:
            open_store(partial).manifest()
        details = err.value.details
        assert details["missing"] == "manifest.json"
        assert details["contents"] == ["seg-000000"]

    def test_manifest_missing_keys_detected(self, tmp_path):
        store, _, _ = self.make_store(tmp_path)
        manifest = store._read_manifest()
        del manifest["segments"]
        del manifest["rows_total"]
        with open(os.path.join(store.path, "manifest.json"), "w") as fh:
            json.dump(manifest, fh)
        with pytest.raises(IndexCorruptionError) as err:
            ColumnarStore(store.path).load_index()
        details = err.value.details
        assert sorted(details["missing"]) == ["rows_total", "segments"]
        assert "partially written" in str(err.value)

    def test_wrong_format_version_detected(self, tmp_path):
        store, _, _ = self.make_store(tmp_path)
        manifest = store._read_manifest()
        manifest["format_version"] = 999
        with open(os.path.join(store.path, "manifest.json"), "w") as fh:
            json.dump(manifest, fh)
        with pytest.raises(IndexCorruptionError) as err:
            ColumnarStore(store.path).load_index()
        assert err.value.details["version"] == 999


class TestFacade:
    def test_autodetects_each_format(self, tmp_path):
        index, _ = build_index()
        save_index(tmp_path / "plain.npz", index)
        ColumnarStore(tmp_path / "col").write_index(index)
        assert detect_format(tmp_path / "plain") == "npz"
        assert detect_format(tmp_path / "col") == "columnar"
        assert detect_format(tmp_path / "nothing") is None
        assert isinstance(open_store(tmp_path / "plain"), NpzStore)
        assert isinstance(open_store(tmp_path / "col"), ColumnarStore)
        assert snapshot_exists(tmp_path / "col")
        assert not snapshot_exists(tmp_path / "nothing")

    def test_fresh_paths_resolve_by_suffix(self, tmp_path):
        assert isinstance(open_store(tmp_path / "new.strg"), ColumnarStore)
        assert isinstance(open_store(tmp_path / "new"), NpzStore)
        assert store_path(tmp_path / "new").endswith(".npz")
        assert store_path(tmp_path / "new", "columnar").endswith(".strg")

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            open_store(tmp_path / "x", format="parquet")

    def test_npz_store_refuses_mmap_with_guidance(self, tmp_path):
        index, _ = build_index()
        store = open_store(tmp_path / "x.npz", format="npz")
        store.write_index(index)
        with pytest.raises(StorageError, match="convert"):
            store.load_index(mmap=True)

    def test_convert_rejects_identical_paths(self, tmp_path):
        index, _ = build_index()
        save_index(tmp_path / "x.npz", index)
        with pytest.raises(InvalidParameterError):
            convert(tmp_path / "x.npz", tmp_path / "x.npz", format="npz")

    def test_convert_missing_source_raises(self, tmp_path):
        with pytest.raises(StorageError):
            convert(tmp_path / "ghost.npz")

    def test_deprecated_names_warn_but_work(self, tmp_path):
        import repro.storage as storage

        index, _ = build_index()
        with pytest.warns(DeprecationWarning, match="open_store"):
            storage.save_index(tmp_path / "legacy.npz", index)
        with pytest.warns(DeprecationWarning):
            loaded = storage.load_index(tmp_path / "legacy.npz")
        assert len(loaded) == len(index)


class TestLiveIndexPersistence:
    def make_live(self, tmp_path):
        index, ogs = build_index()
        live = LiveIndex(index)
        store = open_store(tmp_path / "live", format="columnar")
        live.attach_store(store)
        return live, store, ogs

    def test_compactions_append_and_reload(self, tmp_path):
        live, store, ogs = self.make_live(tmp_path)
        extra = blob_ogs(k=1, n_per=3, seed=7)
        live.bulk_insert(extra, clip_refs=["p", "q", "r"])
        live.compact()
        live.delete(next(live.snapshot.index.object_graphs()).og_id)
        live.compact()
        store.join_merges()
        loaded = ColumnarStore(store.path).load_index()
        assert len(loaded) == len(live.snapshot.index)
        assert knn_signature(loaded, extra[:2]) \
            == knn_signature(live.snapshot.index, extra[:2])

    def test_persist_failure_degrades_then_resyncs(self, tmp_path):
        live, store, ogs = self.make_live(tmp_path)
        boom = {"n": 0}
        real_checkpoint = store.checkpoint

        def flaky(index, writes=None):
            if boom["n"] == 0:
                boom["n"] += 1
                raise StorageError("injected persistence failure")
            return real_checkpoint(index, writes)

        store.checkpoint = flaky
        live.insert(blob_ogs(k=1, n_per=1, seed=11)[0], clip_ref="lost")
        live.compact()  # persistence fails; serving unaffected
        assert live._store_dirty
        live.insert(blob_ogs(k=1, n_per=1, seed=12)[0], clip_ref="back")
        live.compact()  # full resync
        store.join_merges()
        assert len(ColumnarStore(store.path).load_index()) \
            == len(live.snapshot.index)


class TestIngestServiceColumnar:
    def make_service(self, tmp_path, **overrides):
        from tests.test_ingest_service import (
            _StubPipeline,
            fast_config,
        )

        live = LiveIndex(STRGIndex(STRGIndexConfig(n_clusters=None,
                                                   k_max=8)))
        from repro.serving.ingest import IngestService

        config = fast_config(store_format="columnar", **overrides)
        return IngestService(live, _StubPipeline(),
                             state_dir=tmp_path / "state", config=config)

    def test_checkpoints_land_in_columnar_store(self, tmp_path):
        from tests.test_ingest_service import make_clip

        service = self.make_service(tmp_path)
        with service:
            for i, name in enumerate("abc"):
                service.submit(make_clip(name, shade=17 * i),
                               job_id=f"job-{name}")
            service.drain(timeout=60.0)
        assert service.snapshot_path.endswith(".strg")
        assert is_columnar_store(service.snapshot_path)
        loaded = ColumnarStore(service.snapshot_path).load_index()
        assert len(loaded) == 3
        # After the first full checkpoint, later ones append deltas.
        manifest = ColumnarStore(service.snapshot_path)._read_manifest()
        assert any(seg["kind"] == "delta" for seg in manifest["segments"])

    def test_recover_from_columnar_state_dir(self, tmp_path):
        from tests.test_ingest_service import _StubPipeline, make_clip

        from repro.serving.ingest import IngestService

        service = self.make_service(tmp_path, checkpoint_every=None)
        with service:
            service.submit(make_clip("durable"), job_id="job-durable")
            service.drain(timeout=30.0)
            service.checkpoint()
            service.submit(make_clip("tail", shade=5), job_id="job-tail")
            service.drain(timeout=30.0)
            expected = len(service.live)

        recovered = IngestService.recover(
            tmp_path / "state", pipeline=_StubPipeline(),
            config=service.config)
        with recovered:
            report = recovered.recovery
            assert report.snapshot_loaded
            assert report.snapshot_path.endswith(".strg")
            assert report.completed_jobs == ["job-durable"]
            assert report.replayed_jobs == ["job-tail"]
            recovered.drain(timeout=30.0)
            assert len(recovered.live) == expected
            # Post-recovery checkpoints append to the recovered store.
            recovered.checkpoint()
        loaded = ColumnarStore(report.snapshot_path).load_index()
        assert len(loaded) == expected


class TestDatabaseIntegration:
    def build_db(self, tmp_path, fmt):
        from repro.storage.database import VideoDatabase

        db = VideoDatabase()
        ogs = blob_ogs()
        db.ingest_object_graphs(ogs)
        db.save(tmp_path / "db", format=fmt)
        return db, ogs

    def test_save_format_columnar_and_lazy_open(self, tmp_path):
        import repro

        db, ogs = self.build_db(tmp_path, "columnar")
        assert db.path.endswith(".strg")
        opened = repro.open_database(tmp_path / "db", create=False)
        assert not opened.index_loaded  # mmap="auto" defers the build
        want = knn_signature(db.index, ogs[:3])
        got = [[(hit.distance, hit.clip_ref) for hit in opened.knn(q, 5)]
               for q in ogs[:3]]
        assert got == want
        assert opened.index_loaded

    def test_npz_open_stays_eager_and_identical(self, tmp_path):
        import repro

        db, ogs = self.build_db(tmp_path, "npz")
        assert db.path.endswith(".npz")
        opened = repro.open_database(tmp_path / "db", create=False)
        assert opened.index_loaded
        with pytest.raises(StorageError, match="convert"):
            repro.open_database(tmp_path / "db", create=False, mmap=True)

    def test_cli_convert_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        db, ogs = self.build_db(tmp_path, "npz")
        src = str(tmp_path / "db.npz")
        assert main(["convert", src]) == 0
        out = capsys.readouterr().out
        assert "columnar" in out
        dest = str(tmp_path / "db.strg")
        assert is_columnar_store(dest)
        assert main(["query", dest, "-k", "2"]) == 0
        assert main(["convert", str(tmp_path / "missing.npz")]) == 3
