"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.num_ogs == 240
        assert args.noise == 0.05

    def test_build_args(self):
        args = build_parser().parse_args(
            ["build", "out.npz", "--stream", "Lab2", "--frames", "30"]
        )
        assert args.output == "out.npz"
        assert args.stream == "Lab2"
        assert args.frames == 30

    def test_query_args(self):
        args = build_parser().parse_args(["query", "idx.npz", "-k", "3"])
        assert args.k == 3


class TestCommands:
    def test_demo_runs(self, capsys):
        code = main(["demo", "--num-ogs", "24", "--clusters", "4",
                     "--noise", "0.05"])
        assert code == 0
        out = capsys.readouterr().out
        assert "generated 24 synthetic OGs" in out
        assert "5-NN" in out

    def test_build_and_query_roundtrip(self, tmp_path, capsys):
        path = str(tmp_path / "idx.npz")
        code = main(["build", path, "--stream", "Traffic1", "--frames", "24"])
        assert code == 0
        assert "index saved" in capsys.readouterr().out
        code = main(["query", path, "--pattern", "12", "-k", "2"])
        assert code == 0
        assert "2-NN" in capsys.readouterr().out

    def test_build_unknown_stream(self, tmp_path, capsys):
        code = main(["build", str(tmp_path / "x.npz"), "--stream", "Nope"])
        assert code == 2

    def test_bench_runs(self, capsys):
        code = main(["bench", "--num-ogs", "48"])
        assert code == 0
        out = capsys.readouterr().out
        assert "STRG-Index" in out
        assert "M-tree" in out

    def test_shots_detects_scene_change(self, capsys):
        code = main(["shots", "Traffic1", "Lab2", "--frames", "12"])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 shot(s)" in out

    def test_shots_unknown_stream(self, capsys):
        assert main(["shots", "Nope"]) == 2

    def test_motion_query_roundtrip(self, tmp_path, capsys):
        path = str(tmp_path / "idx.npz")
        assert main(["build", path, "--stream", "Traffic1",
                     "--frames", "24"]) == 0
        capsys.readouterr()
        code = main(["motion", path, "--min-velocity", "0.1"])
        assert code == 0
        assert "trajectories match" in capsys.readouterr().out
