"""Tests for silhouette analysis."""

import numpy as np
import pytest

from repro.clustering.silhouette import silhouette_samples, silhouette_score
from repro.distance.lp import LpDistance
from repro.errors import InvalidParameterError


def blobs(separation=100.0, n_per=5, rng=None):
    rng = rng or np.random.default_rng(0)
    ogs, labels = [], []
    for label in range(2):
        for _ in range(n_per):
            base = np.linspace(0, 5, 6)[:, None]
            ogs.append(np.hstack([base + label * separation, base])
                       + rng.normal(0, 0.3, (6, 2)))
            labels.append(label)
    return ogs, labels


class TestSilhouette:
    def test_well_separated_near_one(self):
        ogs, labels = blobs(separation=200.0)
        assert silhouette_score(ogs, labels) > 0.9

    def test_random_assignment_near_zero_or_negative(self):
        ogs, labels = blobs(separation=200.0)
        rng = np.random.default_rng(1)
        shuffled = rng.permutation(labels)
        assert silhouette_score(ogs, shuffled) < 0.5

    def test_wrong_assignment_negative(self):
        ogs, labels = blobs(separation=200.0)
        flipped = [1 - l for l in labels]
        # Completely flipped labels are still a perfect partition, so the
        # score stays high; instead swap one point across clusters.
        labels_bad = list(labels)
        labels_bad[0] = 1
        samples = silhouette_samples(ogs, labels_bad)
        assert samples[0] < 0  # the misassigned point protests

    def test_samples_bounded(self):
        ogs, labels = blobs()
        samples = silhouette_samples(ogs, labels)
        assert np.all(samples >= -1.0)
        assert np.all(samples <= 1.0)

    def test_singleton_cluster_zero(self):
        ogs, _ = blobs(n_per=2)
        labels = [0, 0, 0, 1]  # last point is a singleton
        samples = silhouette_samples(ogs, labels)
        assert samples[3] == 0.0

    def test_custom_distance(self):
        ogs, labels = blobs(separation=200.0)
        assert silhouette_score(ogs, labels, LpDistance(2.0)) > 0.9

    def test_validation(self):
        ogs, labels = blobs()
        with pytest.raises(InvalidParameterError):
            silhouette_samples(ogs, labels[:-1])
        with pytest.raises(InvalidParameterError):
            silhouette_samples(ogs[:1], [0])
        with pytest.raises(InvalidParameterError):
            silhouette_samples(ogs, [0] * len(ogs))
