"""Tests for isomorphism (Defs. 3-5), most common subgraph (Def. 6),
SimGraph (Eq. 1) and neighborhood graphs (Def. 7)."""

import pytest

from repro.errors import GraphStructureError
from repro.graph.attributes import AttributeTolerance, NodeAttributes
from repro.graph.common_subgraph import most_common_subgraph, sim_graph
from repro.graph.isomorphism import (
    find_isomorphism,
    find_subgraph_isomorphism,
    is_isomorphic,
)
from repro.graph.neighborhood import neighborhood_graph
from repro.graph.rag import RegionAdjacencyGraph

LOOSE = AttributeTolerance(color=1000.0, size_ratio=0.0,
                           spatial_distance=float("inf"))


def node(size=10, color=(100.0, 100.0, 100.0), centroid=(0.0, 0.0)):
    return NodeAttributes(size=size, color=color, centroid=centroid)


def path_graph(colors, spacing=10.0):
    """A path graph with one node per color."""
    rag = RegionAdjacencyGraph()
    for i, c in enumerate(colors):
        rag.add_node(i, node(color=c, centroid=(i * spacing, 0.0)))
    for i in range(len(colors) - 1):
        rag.add_edge(i, i + 1)
    return rag


def star_graph(center_color, leaf_colors, radius=10.0):
    """A star: center node 0, leaves 1..n."""
    rag = RegionAdjacencyGraph()
    rag.add_node(0, node(color=center_color))
    for i, c in enumerate(leaf_colors, start=1):
        rag.add_node(i, node(color=c, centroid=(radius * i, 0.0)))
        rag.add_edge(0, i)
    return rag


RED = (200.0, 0.0, 0.0)
GREEN = (0.0, 200.0, 0.0)
BLUE = (0.0, 0.0, 200.0)
GRAY = (100.0, 100.0, 100.0)


class TestIsomorphism:
    def test_identical_graphs(self):
        a = path_graph([RED, GREEN, BLUE])
        b = path_graph([RED, GREEN, BLUE])
        assert is_isomorphic(a, b, LOOSE)

    def test_mapping_respects_colors(self):
        tol = AttributeTolerance(color=10.0, size_ratio=0.0,
                                 spatial_distance=float("inf"))
        a = path_graph([RED, GREEN])
        b = path_graph([GREEN, RED])
        mapping = find_isomorphism(a, b, tol)
        assert mapping == {0: 1, 1: 0}

    def test_different_sizes_not_isomorphic(self):
        a = path_graph([RED, GREEN])
        b = path_graph([RED, GREEN, BLUE])
        assert not is_isomorphic(a, b, LOOSE)

    def test_different_edge_counts_not_isomorphic(self):
        a = path_graph([GRAY, GRAY, GRAY])         # path: 2 edges
        b = star_graph(GRAY, [GRAY, GRAY])         # star: 2 edges, same
        c = RegionAdjacencyGraph()                 # 3 isolated nodes
        for i in range(3):
            c.add_node(i, node())
        assert not is_isomorphic(a, c, LOOSE)

    def test_color_mismatch_blocks(self):
        tol = AttributeTolerance(color=10.0, size_ratio=0.0)
        a = path_graph([RED, GREEN])
        b = path_graph([BLUE, GREEN])
        assert not is_isomorphic(a, b, tol)


class TestSubgraphIsomorphism:
    def test_path_embeds_in_longer_path(self):
        small = path_graph([GRAY, GRAY])
        big = path_graph([GRAY, GRAY, GRAY, GRAY])
        mapping = find_subgraph_isomorphism(small, big, LOOSE)
        assert mapping is not None
        u, v = mapping[0], mapping[1]
        assert big.graph.has_edge(u, v)

    def test_larger_pattern_fails(self):
        small = path_graph([GRAY, GRAY])
        big = path_graph([GRAY, GRAY, GRAY])
        assert find_subgraph_isomorphism(big, small, LOOSE) is None

    def test_star_embeds_in_bigger_star(self):
        small = star_graph(RED, [GREEN, BLUE])
        big = star_graph(RED, [GREEN, BLUE, GRAY])
        tol = AttributeTolerance(color=10.0, size_ratio=0.0,
                                 spatial_distance=float("inf"))
        assert find_subgraph_isomorphism(small, big, tol) is not None

    def test_induced_flag_forbids_extra_edges(self):
        # Pattern: two disconnected nodes; target: an edge between them.
        pattern = RegionAdjacencyGraph()
        pattern.add_node(0, node())
        pattern.add_node(1, node(centroid=(10.0, 0.0)))
        target = path_graph([GRAY, GRAY])
        assert find_subgraph_isomorphism(pattern, target, LOOSE) is not None
        assert find_subgraph_isomorphism(
            pattern, target, LOOSE, induced=True
        ) is None


class TestMostCommonSubgraph:
    def test_identical_graphs_full_correspondence(self):
        a = path_graph([RED, GREEN, BLUE])
        b = path_graph([RED, GREEN, BLUE])
        tol = AttributeTolerance(color=10.0, size_ratio=0.0,
                                 spatial_distance=float("inf"))
        common = most_common_subgraph(a, b, tol)
        assert len(common) == 3

    def test_partial_overlap(self):
        tol = AttributeTolerance(color=10.0, size_ratio=0.0,
                                 spatial_distance=float("inf"))
        a = path_graph([RED, GREEN, BLUE])
        b = path_graph([RED, GREEN, GRAY])
        common = most_common_subgraph(a, b, tol)
        assert len(common) == 2

    def test_no_compatible_nodes(self):
        tol = AttributeTolerance(color=10.0, size_ratio=0.0)
        a = path_graph([RED])
        b = path_graph([BLUE])
        assert most_common_subgraph(a, b, tol) == []

    def test_correspondence_pairs_reference_real_nodes(self):
        a = star_graph(GRAY, [GRAY, GRAY])
        b = star_graph(GRAY, [GRAY])
        common = most_common_subgraph(a, b, LOOSE)
        for u, v in common:
            assert u in a
            assert v in b


class TestSimGraph:
    def test_identical_is_one(self):
        a = path_graph([RED, GREEN, BLUE])
        tol = AttributeTolerance(color=10.0, size_ratio=0.0,
                                 spatial_distance=float("inf"))
        assert sim_graph(a, a, tol) == pytest.approx(1.0)

    def test_disjoint_is_zero(self):
        tol = AttributeTolerance(color=10.0, size_ratio=0.0)
        assert sim_graph(path_graph([RED]), path_graph([BLUE]), tol) == 0.0

    def test_smaller_graph_fully_embedded(self):
        # Eq. 1 normalizes by the smaller graph.
        small = path_graph([GRAY, GRAY])
        big = path_graph([GRAY, GRAY, GRAY, GRAY])
        assert sim_graph(small, big, LOOSE) == pytest.approx(1.0)

    def test_bounded(self):
        tol = AttributeTolerance(color=50.0, size_ratio=0.0,
                                 spatial_distance=float("inf"))
        a = path_graph([RED, GREEN, GRAY])
        b = path_graph([GREEN, GRAY, BLUE])
        s = sim_graph(a, b, tol)
        assert 0.0 <= s <= 1.0


class TestNeighborhoodGraph:
    def test_star_shape(self):
        rag = star_graph(GRAY, [RED, GREEN, BLUE])
        gn = neighborhood_graph(rag, 0)
        assert len(gn) == 4
        assert gn.number_of_edges() == 3

    def test_excludes_edges_between_neighbors(self):
        rag = path_graph([GRAY, GRAY, GRAY])
        rag.add_edge(0, 2)  # make a triangle
        gn = neighborhood_graph(rag, 1)
        # Nodes 0, 1, 2; star edges (1,0), (1,2) only — not (0,2).
        assert len(gn) == 3
        assert gn.number_of_edges() == 2
        assert not gn.graph.has_edge(0, 2)

    def test_leaf_node(self):
        rag = path_graph([GRAY, GRAY, GRAY])
        gn = neighborhood_graph(rag, 0)
        assert len(gn) == 2
        assert gn.number_of_edges() == 1

    def test_isolated_node(self):
        rag = RegionAdjacencyGraph()
        rag.add_node(0, node())
        gn = neighborhood_graph(rag, 0)
        assert len(gn) == 1
        assert gn.number_of_edges() == 0

    def test_unknown_node_rejected(self):
        rag = path_graph([GRAY])
        with pytest.raises(GraphStructureError):
            neighborhood_graph(rag, 42)
