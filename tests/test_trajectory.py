"""Tests for the trajectory preprocessing toolkit."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidParameterError
from repro.trajectory import (
    heading_angles,
    normalize,
    simplify,
    smooth,
    split_at_turns,
)

series_strategy = st.lists(
    st.tuples(
        st.floats(min_value=-100, max_value=100, allow_nan=False),
        st.floats(min_value=-100, max_value=100, allow_nan=False),
    ),
    min_size=2, max_size=15,
).map(lambda pts: np.asarray(pts, dtype=np.float64))


class TestSmooth:
    def test_window_one_identity(self):
        arr = np.arange(10, dtype=float).reshape(-1, 2)
        np.testing.assert_array_equal(smooth(arr, 1), arr)

    def test_reduces_noise(self, rng):
        clean = np.stack([np.linspace(0, 50, 40), np.zeros(40)], axis=1)
        noisy = clean + rng.normal(0, 2.0, clean.shape)
        smoothed = smooth(noisy, 5)
        assert (np.abs(smoothed - clean).mean()
                < np.abs(noisy - clean).mean())

    def test_even_window_rejected(self):
        with pytest.raises(InvalidParameterError):
            smooth(np.zeros((4, 2)), 2)

    def test_preserves_constant(self):
        arr = np.full((8, 2), 3.0)
        np.testing.assert_allclose(smooth(arr, 5), arr)

    @given(series_strategy)
    @settings(max_examples=30, deadline=None)
    def test_property_output_within_input_hull(self, arr):
        out = smooth(arr, 3)
        assert out.min() >= arr.min() - 1e-9
        assert out.max() <= arr.max() + 1e-9


class TestSimplify:
    def test_straight_line_collapses_to_endpoints(self):
        arr = np.stack([np.linspace(0, 10, 20), np.zeros(20)], axis=1)
        out = simplify(arr, tolerance=0.01)
        assert out.shape[0] == 2

    def test_corner_kept(self):
        arr = np.array([[0.0, 0.0], [5.0, 0.0], [5.0, 5.0]])
        out = simplify(arr, tolerance=0.5)
        assert out.shape[0] == 3

    def test_zero_tolerance_keeps_non_collinear(self):
        rng = np.random.default_rng(0)
        arr = rng.normal(size=(10, 2)) * 10
        out = simplify(arr, tolerance=0.0)
        assert out.shape[0] >= 9  # generic points are not collinear

    def test_endpoints_always_kept(self):
        arr = np.array([[0.0, 0.0], [1.0, 0.1], [2.0, 0.0]])
        out = simplify(arr, tolerance=10.0)
        np.testing.assert_array_equal(out[0], arr[0])
        np.testing.assert_array_equal(out[-1], arr[-1])

    def test_negative_tolerance_rejected(self):
        with pytest.raises(InvalidParameterError):
            simplify(np.zeros((3, 2)), -1.0)

    @given(series_strategy, st.floats(min_value=0.0, max_value=20.0))
    @settings(max_examples=30, deadline=None)
    def test_property_output_subset_of_input(self, arr, tol):
        out = simplify(arr, tol)
        in_rows = {tuple(row) for row in arr}
        assert all(tuple(row) in in_rows for row in out)


class TestNormalize:
    def test_translation_centers(self):
        arr = np.array([[10.0, 20.0], [12.0, 22.0]])
        out = normalize(arr)
        np.testing.assert_allclose(out.mean(axis=0), [0.0, 0.0], atol=1e-12)

    def test_scale_unit_radius(self):
        arr = np.array([[0.0, 0.0], [10.0, 0.0]])
        out = normalize(arr, scale=True)
        radius = np.sqrt(np.mean(np.sum(out ** 2, axis=1)))
        assert radius == pytest.approx(1.0)

    def test_no_translation_option(self):
        arr = np.array([[10.0, 10.0], [12.0, 10.0]])
        out = normalize(arr, translation=False)
        np.testing.assert_array_equal(out, arr)

    def test_degenerate_point_scale_safe(self):
        arr = np.array([[5.0, 5.0]])
        out = normalize(arr, scale=True)
        np.testing.assert_allclose(out, [[0.0, 0.0]])

    def test_translation_invariance_for_eged(self):
        from repro.distance.eged import eged

        rng = np.random.default_rng(1)
        a = rng.normal(size=(8, 2))
        b = rng.normal(size=(10, 2))
        shift = np.array([100.0, -50.0])
        # Non-metric EGED's gaps reference the other sequence, so a common
        # translation cancels out.
        assert eged(a + shift, b + shift) == pytest.approx(eged(a, b))


class TestHeadings:
    def test_straight_right(self):
        arr = np.stack([np.arange(5.0), np.zeros(5)], axis=1)
        np.testing.assert_allclose(heading_angles(arr), 0.0)

    def test_up(self):
        arr = np.stack([np.zeros(3), np.arange(3.0)], axis=1)
        np.testing.assert_allclose(heading_angles(arr), math.pi / 2)

    def test_stationary_repeats_previous(self):
        arr = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 0.0], [2.0, 0.0]])
        angles = heading_angles(arr)
        np.testing.assert_allclose(angles, [0.0, 0.0, 0.0])


class TestSplitAtTurns:
    def test_l_shape_splits_in_two(self):
        leg1 = np.stack([np.arange(8.0), np.zeros(8)], axis=1)
        leg2 = np.stack([np.full(8, 7.0), np.arange(1.0, 9.0)], axis=1)
        arr = np.vstack([leg1, leg2])
        segments = split_at_turns(arr)
        assert len(segments) == 2

    def test_straight_line_one_segment(self):
        arr = np.stack([np.arange(12.0), np.zeros(12)], axis=1)
        segments = split_at_turns(arr)
        assert len(segments) == 1
        assert segments[0].shape[0] == 12

    def test_short_trajectory_unsplit(self):
        arr = np.zeros((3, 2))
        assert len(split_at_turns(arr)) == 1

    def test_segments_cover_all_nodes(self):
        rng = np.random.default_rng(2)
        arr = np.cumsum(rng.normal(size=(30, 2)), axis=0)
        segments = split_at_turns(arr, angle_threshold=math.pi / 2)
        assert sum(s.shape[0] for s in segments) == 30

    def test_invalid_parameters(self):
        arr = np.zeros((10, 2))
        with pytest.raises(InvalidParameterError):
            split_at_turns(arr, angle_threshold=0.0)
        with pytest.raises(InvalidParameterError):
            split_at_turns(arr, min_segment_length=1)
