"""Tests for the 48 motion patterns (Section 6.1 workload)."""

import numpy as np
import pytest

from repro.datasets.patterns import (
    ALL_PATTERNS,
    CANVAS,
    pattern_by_id,
)
from repro.errors import InvalidParameterError


class TestPatternInventory:
    def test_exactly_48_patterns(self):
        assert len(ALL_PATTERNS) == 48

    def test_category_counts_match_paper(self):
        # 12 vertical, 12 horizontal, 8 diagonal, 16 U-turn.
        counts = {}
        for p in ALL_PATTERNS:
            counts[p.category] = counts.get(p.category, 0) + 1
        assert counts == {
            "vertical": 12, "horizontal": 12, "diagonal": 8, "uturn": 16,
        }

    def test_ids_are_contiguous(self):
        assert sorted(p.pattern_id for p in ALL_PATTERNS) == list(range(48))

    def test_every_pattern_has_two_directions(self):
        # Each base shape appears as -fwd and -rev.
        names = {p.name for p in ALL_PATTERNS}
        for p in ALL_PATTERNS:
            base, _, suffix = p.name.rpartition("-")
            partner = f"{base}-rev" if suffix == "fwd" else f"{base}-fwd"
            assert partner in names

    def test_reverse_pattern_reverses_path(self):
        fwd = pattern_by_id(0)
        rev = pattern_by_id(1)
        path_f = fwd.generate(10)
        path_r = rev.generate(10)
        np.testing.assert_allclose(path_f, path_r[::-1], atol=1e-9)

    def test_multiple_object_sizes(self):
        sizes = {p.object_size for p in ALL_PATTERNS}
        assert len(sizes) >= 3

    def test_lookup_by_id(self):
        assert pattern_by_id(5).pattern_id == 5

    def test_lookup_invalid_id(self):
        with pytest.raises(InvalidParameterError):
            pattern_by_id(48)
        with pytest.raises(InvalidParameterError):
            pattern_by_id(-1)


class TestPatternGeneration:
    def test_requested_length(self):
        for length in (1, 2, 17, 64):
            assert pattern_by_id(0).generate(length).shape == (length, 2)

    def test_zero_length_rejected(self):
        with pytest.raises(InvalidParameterError):
            pattern_by_id(0).generate(0)

    def test_within_canvas(self):
        for p in ALL_PATTERNS:
            path = p.generate(40)
            assert np.all(path >= 0.0)
            assert np.all(path <= CANVAS)

    def test_endpoints_are_waypoints(self):
        for p in ALL_PATTERNS:
            path = p.generate(25)
            np.testing.assert_allclose(path[0], p.waypoints[0])
            np.testing.assert_allclose(path[-1], p.waypoints[-1])

    def test_constant_speed_sampling(self):
        p = pattern_by_id(0)  # straight vertical line
        path = p.generate(20)
        steps = np.linalg.norm(np.diff(path, axis=0), axis=1)
        np.testing.assert_allclose(steps, steps[0], rtol=1e-6)

    def test_uturn_returns_near_start(self):
        uturns = [p for p in ALL_PATTERNS if p.category == "uturn"]
        for p in uturns:
            path = p.generate(30)
            out = np.linalg.norm(path[len(path) // 2] - path[0])
            back = np.linalg.norm(path[-1] - path[0])
            assert back < out  # comes back toward where it entered

    def test_sample_length_in_range(self, rng):
        p = pattern_by_id(3)
        for _ in range(20):
            length = p.sample_length(rng)
            assert p.length_range[0] <= length <= p.length_range[1]

    def test_path_length_positive(self):
        for p in ALL_PATTERNS:
            assert p.path_length() > 0

    def test_distinct_patterns_have_distinct_paths(self):
        paths = [p.generate(16).tobytes() for p in ALL_PATTERNS]
        assert len(set(paths)) == 48
