"""Invariance and homogeneity properties of the EGED family."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distance.dtw import dtw
from repro.distance.eged import eged
from repro.distance.erp import erp

series_strategy = st.lists(
    st.tuples(
        st.floats(min_value=-50, max_value=50, allow_nan=False),
        st.floats(min_value=-50, max_value=50, allow_nan=False),
    ),
    min_size=1, max_size=10,
).map(lambda pts: np.asarray(pts, dtype=np.float64))


class TestTranslationInvariance:
    """Non-metric EGED references only the *other* sequence's values, so a
    common translation of both inputs cancels exactly."""

    @given(series_strategy, series_strategy,
           st.floats(min_value=-100, max_value=100, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_nonmetric_translation_invariant(self, a, b, shift):
        offset = np.array([shift, -shift])
        assert eged(a + offset, b + offset) == pytest.approx(
            eged(a, b), rel=1e-9, abs=1e-6
        )

    def test_metric_not_translation_invariant(self):
        # EGED_M's fixed gap anchors the space: translating unequal-length
        # inputs changes the deletion costs.
        a = np.array([[0.0, 0.0]])
        b = np.array([[0.0, 0.0], [1.0, 0.0]])
        near = erp(a, b, gap=0.0)
        far = erp(a + 100.0, b + 100.0, gap=0.0)
        assert far > near


class TestHomogeneity:
    """ERP with gap 0 is positively homogeneous: d(c a, c b) = c d(a, b)."""

    @given(series_strategy, series_strategy,
           st.floats(min_value=0.1, max_value=10.0, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_metric_scaling(self, a, b, c):
        assert erp(c * a, c * b, gap=0.0) == pytest.approx(
            c * erp(a, b, gap=0.0), rel=1e-9, abs=1e-6
        )

    @given(series_strategy, series_strategy,
           st.floats(min_value=0.1, max_value=10.0, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_nonmetric_scaling(self, a, b, c):
        assert eged(c * a, c * b) == pytest.approx(
            c * eged(a, b), rel=1e-9, abs=1e-6
        )


class TestGapModeRelations:
    def test_dtw_gap_mode_bounded_by_dtw(self, rng):
        # With repeat-gap semantics, the EGED DP has at least DTW's
        # options, so it can never exceed DTW.
        for _ in range(10):
            a = rng.normal(size=(int(rng.integers(2, 10)), 2)) * 10
            b = rng.normal(size=(int(rng.integers(2, 10)), 2)) * 10
            assert eged(a, b, gap="dtw") <= dtw(a, b) + 1e-9

    def test_adaptive_midpoint_cheaper_on_dense_resample(self, rng):
        # Inserting midpoints is free for the adaptive gap but not for the
        # repeat gap.
        a = np.stack([np.arange(0.0, 10.0, 2.0), np.zeros(5)], axis=1)
        dense = np.stack([np.arange(0.0, 9.0, 1.0), np.zeros(9)], axis=1)
        assert eged(a, dense) == pytest.approx(0.0, abs=1e-9)
        assert eged(a, dense, gap="dtw") >= 0.0

    def test_concatenation_monotone(self, rng):
        # Appending extra nodes to one side cannot decrease the metric
        # distance to a fixed query (gap costs are non-negative).
        q = rng.normal(size=(6, 2))
        t = rng.normal(size=(8, 2))
        extended = np.vstack([t, rng.normal(size=(3, 2)) + 50.0])
        assert erp(q, extended) >= erp(q, t) - erp(t, extended) - 1e-9
