"""Tests for the Extended Graph Edit Distance (Definition 9, Theorem 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distance.base import check_metric_axioms
from repro.distance.dtw import dtw
from repro.distance.eged import EGED, MetricEGED, eged
from repro.distance.erp import erp
from repro.errors import InvalidParameterError

# Reusable hypothesis strategy: short scalar-valued series.
series_strategy = st.lists(
    st.floats(min_value=-100, max_value=100, allow_nan=False),
    min_size=1, max_size=12,
).map(lambda xs: np.asarray(xs, dtype=np.float64).reshape(-1, 1))


class TestPaperExample:
    """The worked example of Section 3.1 pins the semantics exactly."""

    R = [0.0]
    S = [1.0, 1.0]
    T = [2.0, 2.0, 3.0]

    def test_nonmetric_values(self):
        assert eged(self.R, self.T) == pytest.approx(7.0)
        assert eged(self.R, self.S) == pytest.approx(2.0)
        assert eged(self.S, self.T) == pytest.approx(4.0)

    def test_nonmetric_triangle_violation(self):
        # 7 > 2 + 4: the paper's reason EGED is not a metric.
        assert eged(self.R, self.T) > eged(self.R, self.S) + eged(self.S, self.T)

    def test_metric_values_with_g0(self):
        assert eged(self.R, self.T, gap=0.0) == pytest.approx(7.0)
        assert eged(self.R, self.S, gap=0.0) == pytest.approx(2.0)
        assert eged(self.S, self.T, gap=0.0) == pytest.approx(5.0)

    def test_metric_triangle_holds(self):
        d_rt = eged(self.R, self.T, gap=0.0)
        d_rs = eged(self.R, self.S, gap=0.0)
        d_st = eged(self.S, self.T, gap=0.0)
        assert d_rt <= d_rs + d_st


class TestNonMetricEGED:
    def test_reflexive(self, rng):
        a = rng.normal(size=(20, 2))
        assert eged(a, a) == pytest.approx(0.0)

    def test_symmetric(self, rng):
        a = rng.normal(size=(15, 2))
        b = rng.normal(size=(18, 2))
        assert eged(a, b) == pytest.approx(eged(b, a))

    def test_non_negative(self, rng):
        for _ in range(10):
            a = rng.normal(size=(rng.integers(1, 15), 2))
            b = rng.normal(size=(rng.integers(1, 15), 2))
            assert eged(a, b) >= 0.0

    def test_handles_local_time_shift_cheaply(self):
        # A trajectory and the same one with an extra interpolated node:
        # the adaptive gap charges only the interpolation residual (~0).
        a = np.array([[0.0], [2.0], [4.0], [6.0]])
        shifted = np.array([[0.0], [1.0], [2.0], [4.0], [6.0]])  # 1 = midpoint(0, 2)
        assert eged(a, shifted) == pytest.approx(0.0, abs=1e-9)

    def test_dtw_gap_mode_matches_dtw_on_equal_series(self, rng):
        # For identical series both are 0; for near series the DTW-gap mode
        # should stay close to true DTW (same repeat semantics).
        a = rng.normal(size=(10, 2))
        assert eged(a, a, gap="dtw") == pytest.approx(dtw(a, a))

    def test_invalid_gap_string(self):
        with pytest.raises(InvalidParameterError):
            eged([1.0], [2.0], gap="bogus")

    def test_class_name(self):
        assert EGED().name == "EGED"
        assert EGED(mode="dtw").name == "EGED(dtw-gap)"

    def test_class_invalid_mode(self):
        with pytest.raises(InvalidParameterError):
            EGED(mode="nope")

    def test_vector_valued_nodes(self, rng):
        a = rng.normal(size=(8, 3))
        b = rng.normal(size=(9, 3))
        assert eged(a, b) > 0

    @given(series_strategy, series_strategy)
    @settings(max_examples=60, deadline=None)
    def test_property_symmetry(self, a, b):
        assert eged(a, b) == pytest.approx(eged(b, a), rel=1e-9, abs=1e-9)

    @given(series_strategy)
    @settings(max_examples=60, deadline=None)
    def test_property_reflexivity(self, a):
        assert eged(a, a) == pytest.approx(0.0, abs=1e-9)


class TestMetricEGED:
    def test_equals_erp(self, rng):
        a = rng.normal(size=(12, 2))
        b = rng.normal(size=(9, 2))
        assert eged(a, b, gap=0.0) == pytest.approx(erp(a, b, 0.0))

    def test_metric_axioms_empirically(self, rng):
        points = [
            rng.normal(size=(int(rng.integers(2, 10)), 2)) for _ in range(6)
        ]
        assert check_metric_axioms(MetricEGED(), points) == []

    def test_nonzero_constant_gap_still_metric(self, rng):
        points = [
            rng.normal(size=(int(rng.integers(2, 8)), 1)) for _ in range(6)
        ]
        assert check_metric_axioms(MetricEGED(gap=3.0), points) == []

    def test_is_metric_flag(self):
        assert MetricEGED().is_metric
        assert not EGED().is_metric

    def test_identity_of_indiscernibles(self, rng):
        a = rng.normal(size=(7, 2))
        b = a + 0.5
        assert MetricEGED()(a, a) == 0.0
        assert MetricEGED()(a, b) > 0.0

    @given(series_strategy, series_strategy, series_strategy)
    @settings(max_examples=40, deadline=None)
    def test_property_triangle_inequality(self, a, b, c):
        d = MetricEGED()
        assert d(a, c) <= d(a, b) + d(b, c) + 1e-7

    @given(series_strategy, series_strategy)
    @settings(max_examples=40, deadline=None)
    def test_property_symmetry(self, a, b):
        d = MetricEGED()
        assert d(a, b) == pytest.approx(d(b, a), rel=1e-9, abs=1e-9)

    def test_key_difference_lower_bounds_distance(self, rng):
        # |d(q, c) - d(o, c)| <= d(q, o): the pruning bound of the
        # STRG-Index leaf scan.
        d = MetricEGED()
        centroid = rng.normal(size=(10, 2))
        for _ in range(10):
            q = rng.normal(size=(int(rng.integers(2, 12)), 2))
            o = rng.normal(size=(int(rng.integers(2, 12)), 2))
            assert abs(d(q, centroid) - d(o, centroid)) <= d(q, o) + 1e-9
