"""Tests for background-subtraction segmentation."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError, SegmentationError
from repro.video.background_model import BackgroundSubtractionSegmenter
from repro.video.synthesize import (
    Actor,
    BackgroundSpec,
    SceneRenderer,
    linear_trajectory,
)


def moving_square_video(num_frames=10):
    bg = BackgroundSpec(width=48, height=32, base_color=(100, 100, 100))
    actor = Actor(
        linear_trajectory((6.0, 16.0), (42.0, 16.0), num_frames),
        [(0.0, 0.0, 6.0, 6.0, (220, 40, 40))],
    )
    return SceneRenderer(bg, [actor]).render(num_frames)


class TestFitting:
    def test_fit_recovers_static_background(self):
        video = moving_square_video()
        seg = BackgroundSubtractionSegmenter().fit(video)
        # The mover occupies any pixel in a minority of frames, so the
        # median is the clean background everywhere.
        np.testing.assert_allclose(
            seg.background_image,
            np.full((32, 48, 3), 100.0),
            atol=1.0,
        )

    def test_unfitted_raises(self):
        seg = BackgroundSubtractionSegmenter()
        with pytest.raises(SegmentationError):
            seg.segment(np.zeros((32, 48, 3), dtype=np.uint8))

    def test_fit_accepts_raw_array(self):
        frames = np.zeros((4, 8, 8, 3), dtype=np.uint8)
        seg = BackgroundSubtractionSegmenter().fit(frames)
        assert seg.background_image.shape == (8, 8, 3)

    def test_fit_rejects_bad_shape(self):
        with pytest.raises(SegmentationError):
            BackgroundSubtractionSegmenter().fit(np.zeros((4, 8, 8)))

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            BackgroundSubtractionSegmenter(threshold=0.0)
        with pytest.raises(InvalidParameterError):
            BackgroundSubtractionSegmenter(min_region_size=0)
        with pytest.raises(InvalidParameterError):
            BackgroundSubtractionSegmenter(max_model_frames=0)


class TestSegmentation:
    def test_mover_becomes_own_region(self):
        video = moving_square_video()
        seg = BackgroundSubtractionSegmenter(min_region_size=8).fit(video)
        labels = seg.segment(video.frame(4))
        assert len(np.unique(labels)) == 2  # background + the square

    def test_foreground_mask_localizes_mover(self):
        video = moving_square_video()
        seg = BackgroundSubtractionSegmenter().fit(video)
        mask = seg.foreground_mask(video.frame(0))
        ys, xs = np.where(mask)
        assert xs.mean() < 16  # mover starts on the left
        assert 20 < mask.sum() < 80  # roughly the 6x6 square

    def test_two_separate_movers_two_regions(self):
        bg = BackgroundSpec(width=48, height=32, base_color=(100, 100, 100))
        actors = [
            Actor(linear_trajectory((8.0, 8.0), (40.0, 8.0), 8),
                  [(0.0, 0.0, 5.0, 5.0, (220, 40, 40))]),
            Actor(linear_trajectory((40.0, 24.0), (8.0, 24.0), 8),
                  [(0.0, 0.0, 5.0, 5.0, (40, 40, 220))]),
        ]
        video = SceneRenderer(bg, actors).render(8)
        seg = BackgroundSubtractionSegmenter(min_region_size=8).fit(video)
        labels = seg.segment(video.frame(3))
        assert len(np.unique(labels)) == 3

    def test_enclosed_background_merges_with_outer(self):
        # A ring-shaped foreground: the hole must still join the outer
        # background region.
        frames = np.full((6, 20, 20, 3), 100, dtype=np.uint8)
        ring = frames.copy()
        ring[:, 5:15, 5:15] = (250, 0, 0)
        ring[:, 8:12, 8:12] = (100, 100, 100)
        seg = BackgroundSubtractionSegmenter(min_region_size=4).fit(frames)
        labels = seg.segment(ring[0])
        # Exactly two regions: the ring and the (merged) background.
        assert len(np.unique(labels)) == 2
        assert labels[0, 0] == labels[10, 10]  # outer bg == hole bg

    def test_frame_shape_mismatch(self):
        seg = BackgroundSubtractionSegmenter().fit(
            np.zeros((3, 8, 8, 3), dtype=np.uint8)
        )
        with pytest.raises(SegmentationError):
            seg.segment(np.zeros((16, 16, 3), dtype=np.uint8))

    def test_pipeline_compatible(self):
        # The segmenter plugs into build_rag like any other Segmenter.
        video = moving_square_video()
        seg = BackgroundSubtractionSegmenter(min_region_size=8).fit(video)
        rag = seg.build_rag(video.frame(4), frame_index=4)
        assert len(rag) == 2
        assert rag.number_of_edges() == 1
