"""Concurrency contracts: snapshot isolation under live inserts, metrics
registry exactness under contention, and distance-cache thread safety."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.index import STRGIndexConfig
from repro.datasets.synthetic import SyntheticConfig, generate_synthetic_ogs
from repro.distance.batch import one_vs_many
from repro.distance.cache import DistanceCache
from repro.distance.eged import MetricEGED
from repro.observability.registry import MetricsRegistry
from repro.serving import (
    LiveIndex,
    QueryService,
    ServiceConfig,
    ShardedIndex,
    ShardedIndexConfig,
)


@pytest.fixture(scope="module")
def corpus():
    return generate_synthetic_ogs(SyntheticConfig(num_ogs=80, seed=0))


def _run_threads(workers):
    threads = [threading.Thread(target=fn) for fn in workers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


class TestSnapshotIsolation:
    def test_queries_survive_concurrent_inserts_and_swaps(self, corpus):
        base, incoming = corpus[:48], corpus[48:]
        index = ShardedIndex(ShardedIndexConfig(
            num_shards=2, placement="hash",
            index=STRGIndexConfig(n_clusters=4),
        ))
        index.build(base)
        live = LiveIndex(index)
        errors: list[BaseException] = []
        versions_seen: list[list[int]] = [[], []]

        def writer():
            try:
                for i, og in enumerate(incoming):
                    live.insert(og)
                    if (i + 1) % 8 == 0:
                        live.compact()
                live.compact()
            except BaseException as exc:  # pragma: no cover - fails test
                errors.append(exc)

        def reader(slot):
            def run():
                try:
                    for i in range(24):
                        response = service.knn(corpus[i % 8], 5)
                        # Snapshot isolation: every response is complete
                        # and stamped with the snapshot that served it.
                        assert len(response.hits) == 5
                        assert not response.degraded
                        versions_seen[slot].append(
                            response.snapshot_version)
                except BaseException as exc:  # pragma: no cover
                    errors.append(exc)
            return run

        with QueryService(live, ServiceConfig(workers=2,
                                              queue_depth=64)) as service:
            _run_threads([writer, reader(0), reader(1)])

        assert not errors, errors
        assert len(live) == len(corpus)
        assert live.pending_writes == 0
        for seen in versions_seen:
            # Versions are monotone per reader: a later request never
            # lands on an older snapshot.
            assert seen == sorted(seen)
        final = live.knn_detailed(incoming[-1], 1)
        assert final.hits[0][1].og_id == incoming[-1].og_id

    def test_compactions_serialize(self, corpus):
        live = LiveIndex(_tiny_index(corpus[:24]))
        for og in corpus[24:40]:
            live.insert(og)
        results: list[int] = []

        def compactor():
            results.append(live.compact().version)

        _run_threads([compactor] * 4)
        # One compaction wins the buffer; the rest see an empty buffer
        # and return the published snapshot (same or newer version).
        assert len(live) == 40
        assert live.version == 2
        assert all(v == 2 for v in results)


def _tiny_index(ogs):
    index = ShardedIndex(ShardedIndexConfig(
        num_shards=2, placement="hash", index=STRGIndexConfig(n_clusters=3),
    ))
    index.build(ogs)
    return index


class TestRegistryThreadSafety:
    THREADS = 8
    ITERATIONS = 5_000

    def test_counter_increments_are_exact(self):
        registry = MetricsRegistry()

        def work():
            counter = registry.counter("stress.counter")
            for _ in range(self.ITERATIONS):
                counter.inc()

        _run_threads([work] * self.THREADS)
        assert registry.value("stress.counter") == \
            self.THREADS * self.ITERATIONS

    def test_gauge_adjustments_are_exact(self):
        registry = MetricsRegistry()

        def work():
            gauge = registry.gauge("stress.gauge")
            for _ in range(self.ITERATIONS):
                gauge.inc(2.0)
                gauge.dec(1.0)

        _run_threads([work] * self.THREADS)
        assert registry.value("stress.gauge") == \
            pytest.approx(self.THREADS * self.ITERATIONS)

    def test_histogram_counts_are_exact(self):
        registry = MetricsRegistry()
        values = [0.0005, 0.003, 0.2, 7.0]

        def work():
            histogram = registry.histogram("stress.latency")
            for i in range(self.ITERATIONS):
                histogram.observe(values[i % len(values)])

        _run_threads([work] * self.THREADS)
        total = self.THREADS * self.ITERATIONS
        histogram = registry.histogram("stress.latency")
        assert histogram.count == total
        assert histogram.cumulative()[-1][1] == total
        assert histogram.total == pytest.approx(
            sum(values) / len(values) * total)

    def test_concurrent_creation_yields_one_instrument(self):
        registry = MetricsRegistry()
        instruments = []
        barrier = threading.Barrier(self.THREADS)

        def work():
            barrier.wait()
            instruments.append(registry.counter("race.counter"))

        _run_threads([work] * self.THREADS)
        assert len(set(map(id, instruments))) == 1
        assert len(registry) == 1

    def test_export_during_registration(self):
        registry = MetricsRegistry()
        stop = threading.Event()

        def register():
            for i in range(400):
                registry.counter(f"churn.{i}").inc()
            stop.set()

        def export():
            while not stop.is_set():
                registry.as_dict()
                registry.to_prometheus()

        _run_threads([register, export])
        assert len(registry.as_dict()) == 400


class TestDistanceCacheThreadSafety:
    def test_concurrent_lookups_stay_consistent(self):
        rng = np.random.default_rng(3)
        items = [rng.normal(size=(8, 2)) * 20 for _ in range(12)]
        queries = [rng.normal(size=(8, 2)) * 20 for _ in range(4)]
        distance = MetricEGED()
        expected = [one_vs_many(distance, q, items) for q in queries]

        cache = DistanceCache(max_entries=4096)
        failures: list[str] = []
        rounds = 8

        def work(offset):
            def run():
                for i in range(rounds):
                    qi = (i + offset) % len(queries)
                    got = cache.one_vs_many(distance, queries[qi], items)
                    if not np.array_equal(got, expected[qi]):
                        failures.append(f"mismatch for query {qi}")
            return run

        _run_threads([work(n) for n in range(6)])
        assert not failures, failures
        stats = cache.stats
        lookups = 6 * rounds * len(items)
        # Counters stay exact under contention: every lookup is either a
        # hit or a miss, and every distinct pair is computed at most the
        # number of threads that raced its first miss.
        assert stats.hits + stats.misses == lookups
        assert stats.misses >= len(queries) * len(items)
        assert stats.bypasses == 0

    def test_eviction_under_contention(self):
        rng = np.random.default_rng(4)
        items = [rng.normal(size=(6, 2)) * 20 for _ in range(16)]
        distance = MetricEGED()
        cache = DistanceCache(max_entries=8)

        def work(offset):
            def run():
                for i in range(6):
                    q = items[(i + offset) % len(items)]
                    cache.one_vs_many(distance, q, items)
            return run

        _run_threads([work(n) for n in range(4)])
        assert len(cache) <= 8
        assert cache.stats.evictions > 0

    def test_clear_is_safe_with_readers(self):
        rng = np.random.default_rng(5)
        items = [rng.normal(size=(6, 2)) * 20 for _ in range(8)]
        distance = MetricEGED()
        cache = DistanceCache()
        stop = threading.Event()
        errors: list[BaseException] = []

        def reader():
            try:
                while not stop.is_set():
                    cache.one_vs_many(distance, items[0], items)
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        def clearer():
            try:
                for _ in range(20):
                    cache.clear()
            finally:
                stop.set()

        _run_threads([reader, clearer])
        assert not errors, errors
