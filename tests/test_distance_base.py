"""Tests for repro.distance.base: coercion, counting, metric checking."""

import numpy as np
import pytest

from repro.distance.base import (
    CountingDistance,
    as_series,
    check_metric_axioms,
    node_cost_matrix,
    pairwise_matrix,
    resample_series,
)
from repro.distance.eged import MetricEGED
from repro.errors import DimensionMismatchError, EmptySequenceError
from repro.graph.object_graph import ObjectGraph


class TestAsSeries:
    def test_1d_becomes_column(self):
        out = as_series([1.0, 2.0, 3.0])
        assert out.shape == (3, 1)

    def test_2d_passthrough(self):
        arr = np.ones((4, 2))
        assert as_series(arr).shape == (4, 2)

    def test_scalar_becomes_1x1(self):
        assert as_series(5.0).shape == (1, 1)

    def test_object_graph_values_used(self):
        og = ObjectGraph.from_values(np.arange(6).reshape(3, 2))
        out = as_series(og)
        np.testing.assert_array_equal(out, og.values)

    def test_empty_raises(self):
        with pytest.raises(EmptySequenceError):
            as_series(np.zeros((0, 2)))

    def test_3d_raises(self):
        with pytest.raises(DimensionMismatchError):
            as_series(np.zeros((2, 2, 2)))

    def test_output_is_float64(self):
        assert as_series([1, 2, 3]).dtype == np.float64


class TestCountingDistance:
    def test_counts_calls(self):
        counter = CountingDistance(MetricEGED())
        a, b = np.ones((3, 1)), np.zeros((4, 1))
        counter(a, b)
        counter(a, b)
        assert counter.calls == 2

    def test_reset(self):
        counter = CountingDistance(MetricEGED())
        counter(np.ones((2, 1)), np.ones((2, 1)))
        counter.reset()
        assert counter.calls == 0

    def test_preserves_value(self):
        inner = MetricEGED()
        counter = CountingDistance(inner)
        a, b = np.ones((3, 2)), np.zeros((4, 2))
        assert counter(a, b) == inner(a, b)

    def test_inherits_metric_flag(self):
        assert CountingDistance(MetricEGED()).is_metric


class TestPairwiseMatrix:
    def test_symmetric_self_matrix(self):
        items = [np.array([[float(i)]]) for i in range(4)]
        mat = pairwise_matrix(MetricEGED(), items)
        np.testing.assert_allclose(mat, mat.T)
        assert np.all(np.diag(mat) == 0)

    def test_rectangular(self):
        a = [np.array([[0.0]]), np.array([[1.0]])]
        b = [np.array([[2.0]])]
        mat = pairwise_matrix(MetricEGED(), a, b)
        assert mat.shape == (2, 1)


class TestCheckMetricAxioms:
    def test_metric_distance_passes(self, rng):
        points = [rng.normal(size=(5, 2)) for _ in range(5)]
        assert check_metric_axioms(MetricEGED(), points) == []

    def test_detects_triangle_violation(self):
        # A deliberately broken "distance".
        def broken(x, y):
            a = float(np.sum(x))
            b = float(np.sum(y))
            if a == b:
                return 0.0
            return (a - b) ** 2  # squared L1 violates the triangle inequality

        points = [np.array([[0.0]]), np.array([[1.0]]), np.array([[2.0]])]
        violations = check_metric_axioms(broken, points)
        assert any("triangle" in v for v in violations)


class TestResampleSeries:
    def test_same_length_identity(self):
        arr = np.arange(8, dtype=float).reshape(4, 2)
        np.testing.assert_array_equal(resample_series(arr, 4), arr)

    def test_upsample_preserves_endpoints(self):
        arr = np.array([[0.0, 0.0], [10.0, 10.0]])
        out = resample_series(arr, 5)
        np.testing.assert_allclose(out[0], arr[0])
        np.testing.assert_allclose(out[-1], arr[-1])

    def test_downsample_monotone(self):
        arr = np.linspace(0, 1, 20).reshape(-1, 1)
        out = resample_series(arr, 5)
        assert np.all(np.diff(out[:, 0]) > 0)

    def test_length_one_repeats(self):
        arr = np.array([[3.0, 4.0]])
        out = resample_series(arr, 3)
        assert out.shape == (3, 2)
        np.testing.assert_array_equal(out, np.tile(arr, (3, 1)))

    def test_invalid_length_raises(self):
        with pytest.raises(EmptySequenceError):
            resample_series(np.ones((3, 1)), 0)


class TestNodeCostMatrix:
    def test_shape_and_values(self):
        a = np.array([[0.0, 0.0], [3.0, 4.0]])
        b = np.array([[0.0, 0.0]])
        mat = node_cost_matrix(a, b)
        assert mat.shape == (2, 1)
        np.testing.assert_allclose(mat[:, 0], [0.0, 5.0])
