"""Out-of-core approximate search (blocked scan + store-streamed sketch).

The load-bearing claims, each enforced bit-exactly (floats compared
with ``==``, orders compared as lists):

- the blocked candidate scan equals the monolithic global-lexsort
  shortlist at *any* block size (property-tested at 1, 7, 64, n);
- ``knn(search_budget=N)`` is bit-identical between in-RAM and mmap
  sketch modes at every layer — SketchIndex, ColumnarStore.load_sketch,
  VideoDatabase (sketch-only path, tree never built), ShardedIndex at
  1/2/4 shards, and the PR 9 worker pool;
- tombstoned deletion equals eager physical deletion under interleaved
  add/remove;
- the row-addressed reader returns the same records the materialized
  index holds, without loading whole segments.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.index import STRGIndex, STRGIndexConfig
from repro.datasets.synthetic import SyntheticConfig, generate_synthetic_ogs
from repro.distance.base import as_series
from repro.distance.batch import one_vs_many
from repro.distance.bounds import pivot_lower_bounds
from repro.distance.eged import MetricEGED
from repro.errors import InvalidParameterError, StorageError
from repro.graph.object_graph import ObjectGraph
from repro.search import SketchConfig, SketchIndex, approx_knn
from repro.serving import ShardedIndex, ShardedIndexConfig
from repro.storage.columnar import ColumnarStore
from repro.storage.database import VideoDatabase


def corpus(n=120, seed=0):
    return generate_synthetic_ogs(SyntheticConfig(num_ogs=n, seed=seed))


def built_sketch(ogs, distance, **cfg):
    refs = [f"clip-{i}" for i in range(len(ogs))]
    return SketchIndex.build(distance, ogs, refs,
                             SketchConfig(**cfg))


def hit_sig(hits):
    """Process-portable hit signature: exact distances + clip refs."""
    return [(float(d), ref) for d, _og, ref in hits]


def db_sig(hits):
    return [(float(h.distance), h.clip_ref) for h in hits]


def monolithic_candidates(sketch, distance, series, budget, k):
    """The pre-blocked-scan algorithm: one global lexsort per channel.

    Reimplemented over the sketch's live arrays as the oracle the
    blocked scan must match row-for-row (valid whenever the sketch has
    no tombstones, so raw rows == live rows).
    """
    assert sketch.dead_rows == 0
    og_ids = np.asarray(sketch.og_ids)
    pd = np.asarray(sketch.pivot_dists)
    sig = np.asarray(sketch.sig)
    n = len(og_ids)
    pivot_evals = len(sketch.pivots)
    qd = (np.asarray(one_vs_many(distance, series, sketch.pivots),
                     dtype=np.float64) if pivot_evals else None)
    if qd is not None and pd.shape[1]:
        lbs = pivot_lower_bounds(qd, pd)
    else:
        lbs = np.zeros(n, dtype=np.float64)
    shortlist = max(k, budget - pivot_evals)
    if shortlist >= n:
        rows = np.arange(n, dtype=np.int64)
        return rows, lbs, pivot_evals
    n_vote = min(shortlist, int(round(shortlist * sketch.config.vote_share)))
    n_bound = shortlist - n_vote
    chosen = [int(i) for i in np.lexsort((og_ids, lbs))[:n_bound]]
    taken = set(chosen)
    if n_vote:
        qsig = sketch.signature(series)
        votes = (sig == qsig).sum(axis=1)
        for i in np.lexsort((og_ids, lbs, -votes)):
            if len(chosen) >= shortlist:
                break
            if int(i) not in taken:
                chosen.append(int(i))
                taken.add(int(i))
    rows = np.array(sorted(chosen), dtype=np.int64)
    return rows, lbs[rows], pivot_evals


class TestBlockedScanParity:
    @pytest.mark.parametrize("block_rows", [1, 7, 64, None])
    def test_matches_monolithic_oracle(self, block_rows):
        distance = MetricEGED(1.0)
        ogs = corpus(90, seed=3)
        sketch = built_sketch(ogs, distance)
        n = len(sketch)
        sketch.config.block_rows = n if block_rows is None else block_rows
        for q in corpus(4, seed=91):
            series = as_series(q)
            for budget, k in ((20, 5), (45, 3), (n + 100, 5), (8, 7)):
                got = sketch.candidates(distance, series, budget, k)
                want = monolithic_candidates(sketch, distance, series,
                                             budget, k)
                assert np.array_equal(got[0], want[0])
                assert got[1].tolist() == want[1].tolist()
                assert got[2] == want[2]

    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 10**6), budget=st.integers(1, 200),
           vote_share=st.sampled_from([0.0, 0.25, 0.6, 1.0]))
    def test_property_block_size_invariance(self, seed, budget, vote_share):
        distance = MetricEGED(1.0)
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 60))
        ogs = corpus(n, seed=seed % 997)
        sketch = built_sketch(ogs, distance, vote_share=vote_share,
                              num_pivots=int(rng.integers(1, 5)))
        series = as_series(corpus(1, seed=seed % 991)[0])
        results = []
        for block in (1, 7, 64, len(sketch)):
            sketch.config.block_rows = max(1, block)
            idx, lbs, evals = sketch.candidates(distance, series, budget, 5)
            results.append((idx.tolist(), lbs.tolist(), evals))
        assert all(r == results[0] for r in results[1:])
        oracle = monolithic_candidates(sketch, distance, series, budget, 5)
        assert results[0] == (oracle[0].tolist(), oracle[1].tolist(),
                              oracle[2])

    def test_block_rows_validation(self):
        with pytest.raises(InvalidParameterError):
            SketchConfig(block_rows=0)
        assert SketchConfig().to_dict()["block_rows"] >= 1


class TestTombstoneParity:
    def interleave(self, sketch, distance, extra, victims, *, eager):
        """Apply the same add/remove schedule, compacting iff eager."""
        for i, og in enumerate(extra):
            sketch.add(distance, [og], [f"extra-{i}"])
            if i < len(victims):
                assert sketch.remove(victims[i])
                if eager:
                    assert sketch.compact_tombstones()

    def test_tombstones_equal_eager_deletion(self):
        distance = MetricEGED(1.0)
        ogs = corpus(80, seed=5)
        extra = corpus(12, seed=55)
        lazy = built_sketch(ogs, distance)
        eager = built_sketch(ogs, distance)
        victims = [ogs[j].og_id for j in (3, 17, 44, 8, 60, 21)]
        self.interleave(lazy, distance, extra, victims, eager=False)
        self.interleave(eager, distance, extra, victims, eager=True)
        assert lazy.dead_rows == len(victims)
        assert eager.dead_rows == 0
        assert len(lazy) == len(eager)
        assert lazy.og_ids.tolist() == eager.og_ids.tolist()
        assert lazy.pivot_dists.tolist() == eager.pivot_dists.tolist()
        assert lazy.sig.tolist() == eager.sig.tolist()
        for q in corpus(3, seed=77):
            got = approx_knn(lazy, distance, q, 5, 40)
            want = approx_knn(eager, distance, q, 5, 40)
            assert hit_sig(got) == hit_sig(want)
            assert [og.og_id for _, og, _ in got] \
                == [og.og_id for _, og, _ in want]

    def test_owned_sketch_autocompacts_past_threshold(self):
        from repro.search import sketch as sketch_mod

        distance = MetricEGED(1.0)
        ogs = corpus(24, seed=9)
        sketch = built_sketch(ogs, distance)
        threshold = sketch_mod.TOMBSTONE_COMPACT_MIN
        try:
            sketch_mod.TOMBSTONE_COMPACT_MIN = 4
            # Compaction needs both the count floor AND the dead
            # fraction (25% of 24 rows = 6).
            for og in ogs[:5]:
                assert sketch.remove(og.og_id)
            assert sketch.dead_rows == 5
            assert sketch.remove(ogs[5].og_id)
            assert sketch.dead_rows == 0  # compacted in place
            assert len(sketch) == len(ogs) - 6
        finally:
            sketch_mod.TOMBSTONE_COMPACT_MIN = threshold

    def test_remove_missing_and_double_remove(self):
        distance = MetricEGED(1.0)
        ogs = corpus(10, seed=1)
        sketch = built_sketch(ogs, distance)
        assert not sketch.remove(10**9)
        assert sketch.remove(ogs[4].og_id)
        assert not sketch.remove(ogs[4].og_id)
        assert len(sketch) == len(ogs) - 1


def store_with_sketch(tmp_path, ogs, name="corpus", shards=None):
    """Columnar snapshot whose sketch tier was built before saving."""
    if shards is None:
        index = STRGIndex(STRGIndexConfig(n_clusters=4))
    else:
        index = ShardedIndex(ShardedIndexConfig(
            num_shards=shards, index=STRGIndexConfig(n_clusters=4)))
    index.build(ogs, clip_refs=[f"clip-{i}" for i in range(len(ogs))])
    index.knn(ogs[0], 3, search_budget=24)  # builds + persists the sketch
    store = ColumnarStore(tmp_path / name)
    store.write_index(index)
    return store, index


class TestStoreAttachedSketch:
    def test_load_sketch_matches_materialized_index(self, tmp_path):
        ogs = corpus(100, seed=11)
        store, index = store_with_sketch(tmp_path, ogs)
        sketch = store.load_sketch(mmap=True)
        assert sketch is not None and len(sketch) == len(ogs)
        for q in corpus(4, seed=19):
            ooc = approx_knn(sketch, sketch.replay_distance, q, 5, 30)
            assert hit_sig(ooc) == hit_sig(index.knn(q, 5, search_budget=30))

    def test_mmap_and_ram_sketches_bit_identical(self, tmp_path):
        ogs = corpus(100, seed=11)
        store, _ = store_with_sketch(tmp_path, ogs)
        mm = store.load_sketch(mmap=True)
        ram = store.load_sketch(mmap=False)
        assert np.array_equal(mm.pivot_dists, ram.pivot_dists)
        assert np.array_equal(mm.sig, ram.sig)
        for q in corpus(3, seed=23):
            assert hit_sig(approx_knn(mm, mm.replay_distance, q, 5, 28)) \
                == hit_sig(approx_knn(ram, ram.replay_distance, q, 5, 28))

    def test_delta_replay_and_tombstones(self, tmp_path):
        from repro.serving.snapshot import _BufferedWrite

        ogs = corpus(60, seed=31)
        store, index = store_with_sketch(tmp_path, ogs, name="delta")
        extra = corpus(8, seed=41)
        writes = [_BufferedWrite("insert", og=og, clip_ref=f"x-{i}")
                  for i, og in enumerate(extra)]
        writes.append(_BufferedWrite("delete", og_id=ogs[5].og_id))
        writes.append(_BufferedWrite("delete", og_id=ogs[20].og_id))
        for write in writes:
            if write.op == "insert":
                index.insert(write.og, None, write.clip_ref)
            else:
                index.delete(write.og_id)
        assert store.append(writes) is not None
        sketch = store.load_sketch(mmap=True)
        assert len(sketch) == len(index)
        assert sketch.dead_rows == 2
        for q in extra[:2] + ogs[:2]:
            assert hit_sig(approx_knn(sketch, sketch.replay_distance,
                                      q, 5, 30)) \
                == hit_sig(index.knn(q, 5, search_budget=30))

    def test_live_adds_go_to_tail_not_mmap_base(self, tmp_path):
        ogs = corpus(40, seed=51)
        store, _ = store_with_sketch(tmp_path, ogs, name="tail")
        sketch = store.load_sketch(mmap=True)
        base = sketch._pd
        extra = corpus(3, seed=52)
        sketch.add(sketch.replay_distance, extra, ["a", "b", "c"])
        assert sketch._pd is base  # mmap base untouched by the add
        assert len(sketch) == len(ogs) + 3
        got = approx_knn(sketch, sketch.replay_distance, extra[0], 1,
                         len(sketch) + 20)
        assert got[0][2] == "a"

    def test_store_without_sketch_returns_none(self, tmp_path):
        index = STRGIndex(STRGIndexConfig(n_clusters=3))
        index.build(corpus(30, seed=61))  # no budgeted query -> no sketch
        store = ColumnarStore(tmp_path / "bare")
        store.write_index(index)
        assert store.load_sketch() is None

    def test_sharded_store_raises(self, tmp_path):
        ogs = corpus(40, seed=71)
        store, _ = store_with_sketch(tmp_path, ogs, name="sh", shards=2)
        with pytest.raises(StorageError):
            store.load_sketch()
        with pytest.raises(StorageError):
            store.row_reader()

    def test_parallel_scan_matches_serial(self, tmp_path):
        ogs = corpus(120, seed=81)
        store, _ = store_with_sketch(tmp_path, ogs, name="par")
        sketch = store.load_sketch(mmap=True)
        sketch.config.block_rows = 16
        distance = sketch.replay_distance
        for q in corpus(2, seed=83):
            serial = approx_knn(sketch, distance, q, 5, 30)
            fanned = approx_knn(sketch, distance, q, 5, 30, scan_workers=2)
            assert hit_sig(serial) == hit_sig(fanned)

    def test_parallel_scan_with_tail_and_tombstones(self, tmp_path):
        ogs = corpus(90, seed=85)
        store, _ = store_with_sketch(tmp_path, ogs, name="part")
        sketch = store.load_sketch(mmap=True)
        sketch.config.block_rows = 8
        distance = sketch.replay_distance
        sketch.add(distance, corpus(5, seed=86), list("abcde"))
        for row in (2, 30, 77):
            assert sketch.remove(row)  # og_id == row ordinal here
        q = corpus(1, seed=87)[0]
        assert hit_sig(approx_knn(sketch, distance, q, 5, 26)) \
            == hit_sig(approx_knn(sketch, distance, q, 5, 26,
                                  scan_workers=3))


class TestRowReader:
    def test_records_match_materialized_index(self, tmp_path):
        ogs = corpus(50, seed=91)
        store, index = store_with_sketch(tmp_path, ogs, name="rows")
        reader = store.row_reader(mmap=True)
        assert len(reader) == len(ogs)
        ordinals = store.row_ordinals()
        by_row = {row: og_id for og_id, row in ordinals.items()}
        id_to_og = {og.og_id: og for og in ogs}
        for row in (0, 1, 17, len(ogs) - 1):
            og, ref = reader.record(row)
            assert og.og_id == row
            orig = id_to_og[by_row[row]]
            assert np.array_equal(og.values, orig.values)
            assert np.array_equal(reader.series(row), as_series(orig))
            assert ref == f"clip-{ogs.index(orig)}"

    def test_series_is_zero_copy_mmap_slice(self, tmp_path):
        import mmap as mmap_mod

        ogs = corpus(30, seed=92)
        store, _ = store_with_sketch(tmp_path, ogs, name="zc")
        series = store.row_reader(mmap=True).series(3)
        base = series
        while getattr(base, "base", None) is not None:
            base = base.base
        assert isinstance(base, (np.memmap, mmap_mod.mmap))

    def test_bounds_and_alive_mask(self, tmp_path):
        from repro.serving.snapshot import _BufferedWrite

        ogs = corpus(20, seed=93)
        store, index = store_with_sketch(tmp_path, ogs, name="alive")
        store.append([_BufferedWrite("delete", og_id=ogs[4].og_id)])
        reader = store.row_reader()
        with pytest.raises(InvalidParameterError):
            reader.record(-1)
        with pytest.raises(InvalidParameterError):
            reader.record(len(ogs))
        mask = reader.alive_mask()
        assert mask.sum() == len(ogs) - 1
        dead_row = int(np.flatnonzero(~mask)[0])
        assert not reader.is_alive(dead_row)
        assert reader.is_alive(int(np.flatnonzero(mask)[0]))

    def test_lazy_rows_lru_caches_records(self, tmp_path):
        from repro.search.sketch import LazyRows

        ogs = corpus(25, seed=94)
        store, _ = store_with_sketch(tmp_path, ogs, name="lru")
        rows = LazyRows(store.row_reader(), len(ogs), cache_size=2)
        first = rows.record(0)
        assert rows.record(0) is first          # cache hit
        rows.record(1), rows.record(2)          # evicts row 0
        assert rows.record(0) is not first      # refetched, equal content
        assert np.array_equal(rows.record(0)[0].values, first[0].values)
        with pytest.raises(InvalidParameterError):
            rows.compact(np.arange(3))


class TestDatabaseOutOfCore:
    def make_db(self, tmp_path, n=90, budgeted=True):
        ogs = corpus(n, seed=13)
        db = VideoDatabase()
        db.ingest_object_graphs(ogs)
        if budgeted:
            db.knn(ogs[0], 3, search_budget=24)  # persistable sketch
        db.save(tmp_path / "db", format="columnar")
        return db, ogs

    def test_budgeted_knn_never_builds_the_tree(self, tmp_path):
        import repro

        db, ogs = self.make_db(tmp_path)
        want = [db_sig(db.knn(q, 5, search_budget=30)) for q in ogs[:4]]
        opened = repro.open_database(tmp_path / "db", create=False)
        assert not opened.index_loaded
        got = [db_sig(opened.knn(q, 5, search_budget=30)) for q in ogs[:4]]
        assert not opened.index_loaded
        assert got == want
        # Exact queries still materialize; budgeted queries then route
        # through the index and keep answering identically.
        exact = db_sig(opened.knn(ogs[0], 5))
        assert opened.index_loaded
        assert exact == db_sig(db.knn(ogs[0], 5))
        assert db_sig(opened.knn(ogs[1], 5, search_budget=30)) == want[1]

    def test_snapshot_without_sketch_falls_back(self, tmp_path):
        import repro

        db, ogs = self.make_db(tmp_path, budgeted=False)
        opened = repro.open_database(tmp_path / "db", create=False)
        assert not opened.index_loaded
        got = db_sig(opened.knn(ogs[0], 5, search_budget=30))
        assert opened.index_loaded  # fell back to materialization
        assert got == db_sig(db.knn(ogs[0], 5, search_budget=30))

    def test_mmap_never_stays_in_ram(self, tmp_path):
        import repro

        db, ogs = self.make_db(tmp_path)
        opened = repro.open_database(tmp_path / "db", create=False,
                                     mmap=False)
        assert opened.index_loaded  # eager load, no OOC path
        assert db_sig(opened.knn(ogs[0], 5, search_budget=30)) \
            == db_sig(db.knn(ogs[0], 5, search_budget=30))


class TestShardedMmapParity:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_mmap_vs_ram_bit_identity(self, tmp_path, shards):
        ogs = corpus(80, seed=17)
        store, index = store_with_sketch(
            tmp_path, ogs, name=f"s{shards}",
            shards=None if shards == 1 else shards)
        mm = store.load_index(mmap=True)
        ram = store.load_index(mmap=False)
        for q in corpus(3, seed=29):
            live = hit_sig(index.knn(q, 5, search_budget=26))
            assert hit_sig(mm.knn(q, 5, search_budget=26)) == live
            assert hit_sig(ram.knn(q, 5, search_budget=26)) == live


class TestWorkerPoolOutOfCore:
    def test_mmap_pool_matches_in_ram_pool(self, tmp_path):
        from repro.serving import WorkerPool, WorkerPoolConfig

        ogs = corpus(48, seed=37)
        store, index = store_with_sketch(tmp_path, ogs, name="pool",
                                         shards=2)
        queries = corpus(2, seed=43)
        want = [hit_sig(index.knn(q, 4, search_budget=22)) for q in queries]

        def pool_sig(mmap):
            cfg = WorkerPoolConfig(workers=2, mmap=mmap)
            with WorkerPool(store.path, cfg) as pool:
                return [[(float(h.distance), h.clip_ref)
                         for h in pool.knn(q, 4, search_budget=22).hits]
                        for q in queries]

        assert pool_sig(True) == want
        assert pool_sig(False) == want


class TestCliMmapFlag:
    def test_query_mmap_modes(self, tmp_path, capsys):
        from repro.cli import main
        from repro.datasets.patterns import pattern_by_id

        db = VideoDatabase()
        ogs = corpus(60, seed=47)
        db.ingest_object_graphs(ogs)
        db.knn(pattern_by_id(0).generate(32), 3, search_budget=24)
        db.save(tmp_path / "db", format="columnar")
        path = str(tmp_path / "db.strg")

        def hit_lines(out):
            # og_ids are process-local (row ordinals vs minted ids), so
            # compare the portable fields: distance and clip ref.
            return [(line.split()[0], line.split()[-1])
                    for line in out.splitlines() if "d=" in line]

        assert main(["query", path, "-k", "3", "--search-budget", "24",
                     "--mmap", "auto"]) == 0
        ooc = capsys.readouterr().out
        assert "out-of-core" in ooc
        assert main(["query", path, "-k", "3", "--search-budget", "24",
                     "--mmap", "never"]) == 0
        eager = capsys.readouterr().out
        assert "out-of-core" not in eager
        assert hit_lines(ooc) == hit_lines(eager)
