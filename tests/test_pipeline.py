"""Integration tests: the full frames -> STRG -> OG/BG -> index pipeline."""

import numpy as np
import pytest

from repro.core.index import STRGIndexConfig
from repro.graph.decomposition import DecompositionConfig
from repro.pipeline import PipelineConfig, VideoPipeline
from repro.video.segmentation import GridSegmenter
from repro.video.synthesize import (
    Actor,
    BackgroundSpec,
    SceneRenderer,
    linear_trajectory,
    make_person,
    make_vehicle,
)


def render_crossing(num_frames=12):
    """Two vehicles crossing a static background in opposite directions."""
    background = BackgroundSpec(
        width=96, height=72, base_color=(100, 100, 100),
        zones=[(0, 0, 96, 24, (60, 60, 140))],
    )
    scene = SceneRenderer(background)
    scene.add_actor(Actor(
        linear_trajectory((5.0, 40.0), (90.0, 40.0), num_frames),
        make_vehicle((200, 40, 40)),
    ))
    scene.add_actor(Actor(
        linear_trajectory((90.0, 58.0), (5.0, 58.0), num_frames),
        make_vehicle((40, 200, 40)),
    ))
    return scene.render(num_frames, name="crossing")


@pytest.fixture(scope="module")
def pipeline():
    return VideoPipeline(PipelineConfig(
        segmenter=GridSegmenter(min_region_size=10),
        index=STRGIndexConfig(n_clusters=2, em_iterations=8),
    ))


class TestBuildSTRG:
    def test_strg_dimensions(self, pipeline, tiny_video):
        strg = pipeline.build_strg(tiny_video)
        assert strg.num_frames == tiny_video.num_frames
        assert strg.number_of_nodes() > 0
        assert strg.number_of_temporal_edges() > 0

    def test_tracking_links_most_regions(self, pipeline, tiny_video):
        strg = pipeline.build_strg(tiny_video)
        # The static background must be tracked across every frame pair.
        per_pair = strg.number_of_temporal_edges() / (tiny_video.num_frames - 1)
        assert per_pair >= 2.0


class TestDecompose:
    def test_two_movers_found(self, pipeline):
        video = render_crossing()
        decomposition = pipeline.decompose(video)
        assert len(decomposition.object_graphs) == 2

    def test_directions_opposite(self, pipeline):
        video = render_crossing()
        ogs = pipeline.decompose(video).object_graphs
        dx = sorted(og.values[-1, 0] - og.values[0, 0] for og in ogs)
        assert dx[0] < 0 < dx[1]

    def test_background_has_regions(self, pipeline):
        video = render_crossing()
        decomposition = pipeline.decompose(video)
        assert len(decomposition.background) >= 2  # wall zone + base

    def test_trajectory_tracks_actor(self, pipeline):
        video = render_crossing()
        ogs = pipeline.decompose(video).object_graphs
        rightward = max(ogs, key=lambda og: og.values[-1, 0] - og.values[0, 0])
        # Actor 1 moves ~5 -> ~90 in x at y ~= 40.
        assert rightward.values[0, 0] < 30.0
        assert rightward.values[-1, 0] > 60.0
        assert abs(np.mean(rightward.values[:, 1]) - 40.0) < 8.0


class TestProcess:
    def test_builds_index(self, pipeline):
        video = render_crossing()
        decomposition, index = pipeline.process(video)
        assert len(index) == len(decomposition.object_graphs)

    def test_incremental_ingest(self, pipeline):
        first = render_crossing()
        second = render_crossing(num_frames=10)
        _, index = pipeline.process(first)
        before = len(index)
        decomposition, index = pipeline.process(second, index)
        assert len(index) == before + len(decomposition.object_graphs)
        # Same background -> still one root record.
        assert len(index.root) == 1

    def test_query_roundtrip(self, pipeline):
        video = render_crossing()
        decomposition, index = pipeline.process(video)
        query = decomposition.object_graphs[0]
        hits = index.knn(query, 1)
        assert hits[0][0] == pytest.approx(0.0)
        assert hits[0][1].og_id == query.og_id


class TestPersonScene:
    def test_multi_part_person_merged(self):
        # A person is rendered as 3 differently colored parts; ORG merging
        # must produce a single OG (Fig. 3 scenario).
        background = BackgroundSpec(width=96, height=72,
                                    base_color=(100, 100, 100))
        scene = SceneRenderer(background)
        scene.add_actor(Actor(
            linear_trajectory((15.0, 40.0), (80.0, 40.0), 12),
            make_person(),
        ))
        video = scene.render(12, name="walker")
        pipeline = VideoPipeline(PipelineConfig(
            segmenter=GridSegmenter(min_region_size=8),
            decomposition=DecompositionConfig(gap_tolerance=25.0),
            index=STRGIndexConfig(n_clusters=1, em_iterations=5),
        ))
        decomposition = pipeline.decompose(video)
        assert len(decomposition.object_graphs) == 1
        og = decomposition.object_graphs[0]
        assert og.meta["num_orgs"] >= 2
