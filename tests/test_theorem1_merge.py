"""Tests for the Theorem 1 machinery: graph union + merged embeddings."""

import pytest

from repro.errors import GraphStructureError
from repro.graph.attributes import AttributeTolerance, NodeAttributes
from repro.graph.isomorphism import find_subgraph_isomorphism
from repro.graph.merge import (
    combine_mappings,
    is_embedding,
    merge_isomorphic_pairs,
    union_graphs,
)
from repro.graph.rag import RegionAdjacencyGraph

LOOSE = AttributeTolerance(color=1000.0, size_ratio=0.0,
                           spatial_distance=float("inf"))


def node(color=(100.0, 100.0, 100.0), centroid=(0.0, 0.0)):
    return NodeAttributes(size=10, color=color, centroid=centroid)


def path(ids, colors=None):
    rag = RegionAdjacencyGraph()
    for i, nid in enumerate(ids):
        color = colors[i] if colors else (100.0, 100.0, 100.0)
        rag.add_node(nid, node(color=color, centroid=(float(nid) * 10, 0.0)))
    for a, b in zip(ids, ids[1:]):
        rag.add_edge(a, b)
    return rag


class TestUnionGraphs:
    def test_disjoint_union(self):
        a = path([0, 1])
        b = path([10, 11])
        u = union_graphs(a, b)
        assert len(u) == 4
        assert u.number_of_edges() == 2

    def test_overlapping_identical_nodes_merge(self):
        a = path([0, 1])
        b = path([1, 2])
        u = union_graphs(a, b)
        assert len(u) == 3
        assert u.number_of_edges() == 2

    def test_conflicting_attributes_rejected(self):
        a = RegionAdjacencyGraph()
        a.add_node(0, node(color=(0.0, 0.0, 0.0)))
        b = RegionAdjacencyGraph()
        b.add_node(0, node(color=(255.0, 0.0, 0.0)))
        with pytest.raises(GraphStructureError):
            union_graphs(a, b)


class TestCombineMappings:
    def test_disjoint_sources(self):
        assert combine_mappings({0: 5}, {1: 6}) == {0: 5, 1: 6}

    def test_agreeing_overlap(self):
        assert combine_mappings({0: 5, 1: 6}, {1: 6}) == {0: 5, 1: 6}

    def test_disagreeing_overlap_rejected(self):
        with pytest.raises(GraphStructureError):
            combine_mappings({0: 5}, {0: 6})

    def test_non_injective_rejected(self):
        with pytest.raises(GraphStructureError):
            combine_mappings({0: 5}, {1: 5})


class TestIsEmbedding:
    def test_valid_embedding(self):
        small = path([0, 1])
        big = path([0, 1, 2])
        mapping = find_subgraph_isomorphism(small, big, LOOSE)
        assert is_embedding(small, big, mapping, LOOSE)

    def test_missing_edge_detected(self):
        pattern = path([0, 1])
        target = RegionAdjacencyGraph()
        target.add_node(5, node())
        target.add_node(6, node(centroid=(50.0, 0.0)))
        assert not is_embedding(pattern, target, {0: 5, 1: 6}, LOOSE)

    def test_non_injective_detected(self):
        pattern = path([0, 1])
        target = path([5, 6])
        assert not is_embedding(pattern, target, {0: 5, 1: 5}, LOOSE)

    def test_incomplete_mapping_detected(self):
        pattern = path([0, 1])
        target = path([5, 6])
        assert not is_embedding(pattern, target, {0: 5}, LOOSE)


class TestTheorem1:
    def test_merged_pairs_embed(self):
        # G1 embeds in target1, G2 in target2; the merged pair embeds too.
        g1 = path([0, 1])
        target1 = path([100, 101, 102])
        g2 = path([10, 11])
        target2 = path([200, 201, 202])
        f1 = find_subgraph_isomorphism(g1, target1, LOOSE)
        f2 = find_subgraph_isomorphism(g2, target2, LOOSE)
        union_pattern, union_target, combined = merge_isomorphic_pairs(
            g1, f1, g2, f2, target1, target2, LOOSE
        )
        assert len(union_pattern) == 4
        assert len(union_target) == 6
        assert is_embedding(union_pattern, union_target, combined, LOOSE)

    def test_violated_premises_detected(self):
        # f2 deliberately maps into target1's id space, colliding with f1.
        g1 = path([0, 1])
        g2 = path([2, 3])
        target = path([100, 101])
        f1 = {0: 100, 1: 101}
        f2 = {2: 100, 3: 101}  # collides -> combined not injective
        with pytest.raises(GraphStructureError):
            merge_isomorphic_pairs(g1, f1, g2, f2, target, target, LOOSE)
