"""Robustness of the pipeline under degraded video conditions.

The paper chose EDISON for stability "to small changes over the frames";
these tests inject the degradations a real camera produces — sensor
noise, slow lighting drift, camera shake — and check that the pipeline
still extracts the moving object.
"""

import numpy as np
import pytest

from repro.graph.decomposition import DecompositionConfig
from repro.pipeline import PipelineConfig, VideoPipeline
from repro.resilience import FaultInjector, RetryPolicy, injected
from repro.storage.database import VideoDatabase
from repro.video.background_model import BackgroundSubtractionSegmenter
from repro.video.segmentation import GridSegmenter, MeanShiftSegmenter
from repro.video.synthesize import (
    Actor,
    BackgroundSpec,
    SceneRenderer,
    linear_trajectory,
    make_vehicle,
)


def render_mover(noise_std=0.0, lighting_drift=0.0, camera_jitter=0,
                 num_frames=10):
    background = BackgroundSpec(
        width=96, height=72, base_color=(100, 100, 100),
        zones=[(0, 0, 96, 20, (60, 60, 140))],
    )
    scene = SceneRenderer(
        background,
        [Actor(linear_trajectory((8.0, 45.0), (88.0, 45.0), num_frames),
               make_vehicle((210, 40, 40)))],
        noise_std=noise_std,
        lighting_drift=lighting_drift,
        camera_jitter=camera_jitter,
        rng=np.random.default_rng(5),
    )
    return scene.render(num_frames)


def pipeline_with(segmenter):
    return VideoPipeline(PipelineConfig(
        segmenter=segmenter,
        decomposition=DecompositionConfig(min_velocity=1.0),
    ))


class TestCleanBaseline:
    def test_grid_segmenter_finds_mover(self):
        video = render_mover()
        pipeline = pipeline_with(GridSegmenter(min_region_size=10))
        ogs = pipeline.decompose(video).object_graphs
        assert len(ogs) == 1
        assert ogs[0].values[-1, 0] > ogs[0].values[0, 0]  # moves right


class TestSensorNoise:
    def test_mean_shift_survives_noise(self):
        video = render_mover(noise_std=5.0)
        segmenter = MeanShiftSegmenter(spatial_bandwidth=2,
                                       range_bandwidth=12.0,
                                       min_region_size=24,
                                       max_iterations=3)
        pipeline = pipeline_with(segmenter)
        ogs = pipeline.decompose(video).object_graphs
        assert len(ogs) >= 1
        rightward = max(ogs, key=lambda og: og.values[-1, 0] - og.values[0, 0])
        assert rightward.values[-1, 0] - rightward.values[0, 0] > 30.0

    def test_background_subtraction_survives_noise(self):
        video = render_mover(noise_std=5.0)
        segmenter = BackgroundSubtractionSegmenter(
            threshold=40.0, min_region_size=16
        ).fit(video)
        pipeline = pipeline_with(segmenter)
        ogs = pipeline.decompose(video).object_graphs
        assert len(ogs) >= 1


class TestLightingDrift:
    def test_slow_drift_does_not_cut_track(self):
        # A 20-level brightness ramp over 10 frames: per-frame change is
        # small, so tracking must keep a single unbroken trajectory.
        video = render_mover(lighting_drift=20.0)
        segmenter = MeanShiftSegmenter(spatial_bandwidth=2,
                                       range_bandwidth=14.0,
                                       min_region_size=24,
                                       max_iterations=3)
        pipeline = pipeline_with(segmenter)
        ogs = pipeline.decompose(video).object_graphs
        spans = [og.values[-1, 0] - og.values[0, 0] for og in ogs]
        assert max(spans) > 40.0  # one track covers most of the crossing

    def test_drift_does_not_split_background(self):
        video = render_mover(lighting_drift=20.0)
        segmenter = MeanShiftSegmenter(spatial_bandwidth=2,
                                       range_bandwidth=14.0,
                                       min_region_size=24,
                                       max_iterations=3)
        first = len(np.unique(segmenter.segment(video.frame(0))))
        last = len(np.unique(segmenter.segment(video.frame(9))))
        assert first == last


class TestCameraJitter:
    def test_small_jitter_tolerated(self):
        video = render_mover(camera_jitter=1, num_frames=10)
        pipeline = pipeline_with(GridSegmenter(min_region_size=10))
        decomposition = pipeline.decompose(video)
        # The mover must still be detected despite 1 px shake (the
        # tracker's centroid gate absorbs it).
        rightward = [og for og in decomposition.object_graphs
                     if og.values[-1, 0] - og.values[0, 0] > 30.0]
        assert rightward


def _segmenters():
    """The two fast segmenters, as (name, factory(video)) pairs."""
    return [
        ("grid", lambda video: GridSegmenter(min_region_size=10)),
        ("bgsub", lambda video: BackgroundSubtractionSegmenter(
            threshold=40.0, min_region_size=16).fit(video)),
    ]


#: (scenario name, injector factory) — the degraded-input scenarios a
#: long-running deployment must contain rather than crash on.
DEGRADATION_SCENARIOS = [
    ("corrupt-frames", lambda: FaultInjector().inject(
        "segmentation", kind="corrupt", rate=1.0)),
    ("segmenter-crash", lambda: FaultInjector().inject(
        "segmentation", rate=1.0)),
    ("tracking-crash", lambda: FaultInjector().inject(
        "tracking", rate=1.0)),
    ("decomposition-crash", lambda: FaultInjector().inject(
        "decomposition", rate=1.0)),
]


class TestDegradedIngestion:
    """Under the default fault policy a bad segment is quarantined —
    ingestion survives and subsequent clean segments still index."""

    @pytest.mark.parametrize("seg_name,seg_factory", _segmenters(),
                             ids=[n for n, _ in _segmenters()])
    @pytest.mark.parametrize("scenario,make_injector", DEGRADATION_SCENARIOS,
                             ids=[n for n, _ in DEGRADATION_SCENARIOS])
    def test_quarantine_not_crash(self, seg_name, seg_factory,
                                  scenario, make_injector):
        video = render_mover()
        db = VideoDatabase(
            PipelineConfig(segmenter=seg_factory(video),
                           decomposition=DecompositionConfig(
                               min_velocity=1.0)),
            retry_policy=RetryPolicy(max_attempts=2, base_delay=0.0),
        )
        with injected(make_injector()):
            assert db.ingest(video) == 0          # quarantined, not raised
        health = db.health()
        assert health["quarantined"] == 1
        assert health["retries"] >= 1             # default policy retried
        assert health["last_error"] is not None
        # The database is still healthy: a clean segment ingests fine.
        assert db.ingest(video) >= 1
        assert db.health()["segments_ingested"] == 1
        assert db.health()["quarantined"] == 1
