"""Tests for the approximate search tier (repro.search).

Covers the sketch index itself (pivot selection, signatures, candidate
generation), the ``search_budget=`` plumbing through every entry point
(STRGIndex, ShardedIndex, VideoDatabase, Query, QueryService), the k=0 /
k>corpus contract, incremental sketch maintenance under writes, snapshot
persistence, and the pinned recall/cost gate from ``docs/SEARCH.md``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.observability as obs
from repro.core.index import STRGIndex, STRGIndexConfig
from repro.datasets.synthetic import SyntheticConfig, generate_synthetic_ogs
from repro.distance.base import CountingDistance
from repro.distance.batch import one_vs_many
from repro.distance.bounds import pivot_lower_bounds
from repro.distance.eged import MetricEGED
from repro.errors import IndexStateError, InvalidParameterError
from repro.graph.object_graph import ObjectGraph
from repro.observability import MetricsRegistry, Tracer
from repro.query import Query
from repro.search import (
    SketchConfig,
    approx_knn,
    sketch_from_meta,
    sketch_meta_json,
)
from repro.serving import (
    LiveIndex,
    QueryService,
    ServiceConfig,
    ShardedIndex,
    ShardedIndexConfig,
)
from repro.storage.database import VideoDatabase
from repro.storage.serialize import load_index, save_index


def corpus(n=120, seed=0):
    return generate_synthetic_ogs(SyntheticConfig(num_ogs=n, seed=seed))


def ids(hits):
    return [og.og_id for _, og, _ in hits]


def built_index(ogs, metric=None):
    index = STRGIndex(STRGIndexConfig(), metric_distance=metric)
    index.build(ogs)
    return index


@pytest.fixture
def small():
    ogs = corpus(120, seed=7)
    return built_index(ogs), ogs


class TestSketchConfig:
    def test_defaults_valid(self):
        cfg = SketchConfig()
        assert cfg.num_pivots >= 1
        assert cfg.to_dict()["num_pivots"] == cfg.num_pivots

    @pytest.mark.parametrize("kwargs", [
        {"num_pivots": 0},
        {"sig_length": 0},
        {"grid": 0},
        {"heading_sectors": 0},
        {"vote_share": -0.1},
        {"vote_share": 1.5},
        {"pivot_sample_size": 0},
        {"rerank_batch": 0},
    ])
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(InvalidParameterError):
            SketchConfig(**kwargs)


class TestPivotLowerBounds:
    """Triangle-inequality soundness: |d(q,p) - d(s,p)| <= d(q,s)."""

    def test_zero_pivots_gives_zeros(self):
        lbs = pivot_lower_bounds(np.zeros(0), np.zeros((5, 0)))
        assert lbs.shape == (5,)
        assert np.all(lbs == 0.0)

    @pytest.mark.parametrize("gap", [0.0, 5.0])
    def test_bound_never_exceeds_true_distance(self, gap, rng):
        d = MetricEGED(gap=gap)
        series = [rng.normal(size=(int(rng.integers(2, 12)), 2)) * 10
                  for _ in range(30)]
        pivots = series[:4]
        rest = series[4:]
        corpus_pd = np.stack(
            [one_vs_many(d, p, rest) for p in pivots], axis=1)
        query = rng.normal(size=(8, 2)) * 10
        query_pd = np.array([d(query, p) for p in pivots])
        lbs = pivot_lower_bounds(query_pd, corpus_pd)
        true = one_vs_many(d, query, rest)
        assert np.all(lbs <= true + 1e-6)

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_property_no_true_neighbor_prunable(self, seed):
        """No true top-k neighbor ever has a lower bound above the true
        kth distance — the invariant rerank pruning relies on."""
        rng = np.random.default_rng(seed)
        d = MetricEGED()
        series = [rng.normal(size=(int(rng.integers(2, 9)), 2)) * 20
                  for _ in range(20)]
        pivots = series[:3]
        rest = series[3:]
        corpus_pd = np.stack(
            [one_vs_many(d, p, rest) for p in pivots], axis=1)
        query = rng.normal(size=(6, 2)) * 20
        query_pd = np.array([d(query, p) for p in pivots])
        lbs = pivot_lower_bounds(query_pd, corpus_pd)
        true = one_vs_many(d, query, rest)
        k = 5
        kth = np.sort(true)[k - 1]
        top = np.argsort(true)[:k]
        # A top-k member pruned by "lb > kth" would be a soundness bug.
        assert np.all(lbs[top] <= kth + 1e-6)


class TestSketchIndex:
    def test_build_shapes(self, small):
        index, ogs = small
        sketch = index.sketch_tier()
        cfg = sketch.config
        assert len(sketch) == len(ogs)
        assert sketch.pivot_dists.shape == (len(ogs), len(sketch.pivots))
        assert sketch.sig.shape == (len(ogs), cfg.sig_length)
        assert sketch.sig.dtype == np.int16
        assert 1 <= len(sketch.pivots) <= cfg.num_pivots

    def test_sketch_tier_cached(self, small):
        index, _ = small
        assert index.sketch_tier() is index.sketch_tier()

    def test_signature_deterministic(self, small):
        index, ogs = small
        sketch = index.sketch_tier()
        sig1 = sketch.signature(ogs[0].values)
        sig2 = sketch.signature(ogs[0].values)
        assert np.array_equal(sig1, sig2)
        assert np.all(sig1 >= 0)
        cfg = sketch.config
        assert np.all(sig1 < cfg.grid * cfg.grid * cfg.heading_sectors)

    def test_meta_round_trip(self, small):
        index, _ = small
        sketch = index.sketch_tier()
        clone = sketch_from_meta(sketch_meta_json(sketch))
        assert clone.config == sketch.config
        assert np.allclose(clone.bbox[0], sketch.bbox[0])
        assert np.allclose(clone.bbox[1], sketch.bbox[1])

    def test_remove_keeps_alignment(self, small):
        index, ogs = small
        sketch = index.sketch_tier()
        victim = ogs[5].og_id
        before = len(sketch)
        sketch.remove(victim)
        assert len(sketch) == before - 1
        assert victim not in set(sketch.og_ids.tolist())
        assert sketch.pivot_dists.shape[0] == len(sketch)
        assert sketch.sig.shape[0] == len(sketch)


class TestApproxKnn:
    def test_default_path_unchanged(self, small):
        """Without search_budget the exact path runs and no sketch is
        ever built — the default is bit-identical to before."""
        index, ogs = small
        hits = index.knn(ogs[0], 10)
        assert index._sketches is None
        assert hits[0][1].og_id == ogs[0].og_id

    def test_large_budget_degenerates_to_exact(self, small):
        index, ogs = small
        exact = index.knn(ogs[3], 10)
        budgeted = index.knn(ogs[3], 10, search_budget=10 * len(ogs))
        assert [(d, og.og_id) for d, og, _ in exact] \
            == [(d, og.og_id) for d, og, _ in budgeted]

    def test_budget_validation(self, small):
        index, ogs = small
        with pytest.raises(InvalidParameterError):
            index.knn(ogs[0], 5, search_budget=0)
        with pytest.raises(InvalidParameterError):
            index.knn(ogs[0], 5, search_budget=-3)

    def test_k_edge_cases(self, small):
        index, ogs = small
        assert index.knn(ogs[0], 0) == []
        assert index.knn(ogs[0], 0, search_budget=10) == []
        assert len(index.knn(ogs[0], 10_000)) == len(ogs)
        assert len(index.knn(ogs[0], 10_000, search_budget=30)) == len(ogs)
        with pytest.raises(InvalidParameterError):
            index.knn(ogs[0], -1)

    def test_results_sorted_and_self_first(self, small):
        index, ogs = small
        hits = index.knn(ogs[9], 10, search_budget=40)
        dists = [d for d, _, _ in hits]
        assert dists == sorted(dists)
        assert hits[0][1].og_id == ogs[9].og_id
        assert hits[0][0] == 0.0

    def test_pinned_recall_and_cost(self):
        """The docs/SEARCH.md gate at smoke scale: >=90% recall@10 while
        spending <=10% of the corpus size in exact distance evaluations
        (pivot distances included)."""
        ogs = corpus(800, seed=6)
        counting = CountingDistance(MetricEGED())
        index = built_index(ogs, metric=counting)
        index.sketch_tier()  # build outside the measured window
        recalls = []
        budget = len(ogs) // 10
        for q in (ogs[5], ogs[111], ogs[412]):
            exact = set(ids(index.knn(q, 10)))
            counting.reset()
            hits = index.knn(q, 10, search_budget=budget)
            assert counting.calls <= budget
            recalls.append(len(exact & set(ids(hits))) / 10)
        assert sum(recalls) / len(recalls) >= 0.9

    def test_counters_emitted(self, small):
        index, ogs = small
        obs.configure(enabled=True, registry=MetricsRegistry(),
                      tracer=Tracer())
        try:
            index.knn(ogs[0], 5, search_budget=30)
            snap = obs.metrics()
            assert snap.get("search.knn_queries", 0) >= 1
            assert snap.get("search.candidates_generated", 0) >= 1
            assert snap.get("search.distances_computed", 0) >= 1
            assert "search.distances_saved" in snap
        finally:
            obs.configure(enabled=False, registry=MetricsRegistry(),
                          tracer=Tracer())

    def test_approx_knn_direct_validation(self, small):
        index, ogs = small
        sketch = index.sketch_tier()
        with pytest.raises(InvalidParameterError):
            approx_knn(sketch, index.metric_distance, ogs[0], 0, 10)
        with pytest.raises(InvalidParameterError):
            approx_knn(sketch, index.metric_distance, ogs[0], 5, 0)


class TestSketchMaintenance:
    def test_insert_appends_row(self, small):
        index, ogs = small
        sketch = index.sketch_tier()
        extra = corpus(5, seed=42)
        for og in extra:
            index.insert(og)
        assert len(sketch) == len(ogs) + len(extra)
        # The maintained row must equal a from-scratch recomputation.
        row = np.where(sketch.og_ids == extra[0].og_id)[0][0]
        series = np.asarray(extra[0].values, dtype=np.float64)
        expect_pd = np.array([index.metric_distance(series, p)
                              for p in sketch.pivots])
        assert np.allclose(sketch.pivot_dists[row], expect_pd)
        assert np.array_equal(sketch.sig[row], sketch.signature(series))

    def test_delete_drops_row(self, small):
        index, ogs = small
        sketch = index.sketch_tier()
        assert index.delete(ogs[4].og_id)
        assert ogs[4].og_id not in set(sketch.og_ids.tolist())
        hits = index.knn(ogs[0], 10, search_budget=40)
        assert ogs[4].og_id not in ids(hits)

    def test_recall_survives_interleaved_writes_and_compaction(self):
        ogs = corpus(240, seed=3)
        live = LiveIndex(built_index(ogs[:160]))
        live.snapshot.index.sketch_tier()
        q = ogs[1]
        for batch in (ogs[160:200], ogs[200:240]):
            live.bulk_insert(batch)
            live.compact()
        exact = set(ids(live.knn(q, 10)))
        approx = set(ids(live.knn(q, 10, search_budget=80)))
        assert len(exact & approx) / 10 >= 0.9

    def test_database_incremental_ingest(self):
        ogs = corpus(150, seed=5)
        db = VideoDatabase()
        db.ingest_object_graphs(ogs[:100])
        db.knn(ogs[0].values, k=5, search_budget=30)  # builds the sketch
        db.ingest_object_graphs(ogs[100:])
        exact = {h.og.og_id for h in db.knn(ogs[0].values, k=10)}
        approx = {h.og.og_id
                  for h in db.knn(ogs[0].values, k=10, search_budget=50)}
        assert len(exact & approx) / 10 >= 0.9


class TestSketchPersistence:
    def test_round_trip_preserves_budgeted_results(self, small, tmp_path):
        index, ogs = small
        q = ogs[3]
        before = index.knn(q, 8, search_budget=30)
        path = tmp_path / "index.npz"
        save_index(path, index)
        loaded = load_index(path)
        assert loaded._sketches is not None  # came from the archive
        after = loaded.knn(q, 8, search_budget=30)
        # og_ids are re-minted on load; compare by distance ordering.
        assert [d for d, _, _ in before] \
            == pytest.approx([d for d, _, _ in after])

    def test_old_archive_without_sketch_falls_back(self, small, tmp_path):
        index, ogs = small
        # Never touch the sketch tier -> the archive carries none.
        fresh = built_index(ogs)
        path = tmp_path / "plain.npz"
        save_index(path, fresh)
        loaded = load_index(path)
        assert loaded._sketches is None
        hits = loaded.knn(ogs[0], 8, search_budget=30)  # lazy rebuild
        assert len(hits) == 8
        assert loaded._sketches is not None


class TestShardedBudget:
    @pytest.fixture
    def sharded(self):
        ogs = corpus(240, seed=3)
        index = ShardedIndex(ShardedIndexConfig(num_shards=3))
        index.build(ogs)
        return index, ogs

    def test_budget_split_recall(self, sharded):
        index, ogs = sharded
        q = ogs[11]
        exact = set(ids(index.knn(q, 10)))
        approx = set(ids(index.knn(q, 10, search_budget=72)))
        assert len(exact & approx) / 10 >= 0.9

    def test_k_edge_cases(self, sharded):
        index, ogs = sharded
        assert index.knn(ogs[0], 0) == []
        assert index.knn(ogs[0], 0, search_budget=10) == []
        with pytest.raises(InvalidParameterError):
            index.knn(ogs[0], -1)
        with pytest.raises(InvalidParameterError):
            index.knn(ogs[0], 5, search_budget=0)

    def test_detailed_carries_budget(self, sharded):
        index, ogs = sharded
        result = index.knn_detailed(ogs[0], 5, search_budget=60)
        assert len(result.hits) == 5
        assert not result.degraded


class TestServiceBudget:
    def test_service_forwards_budget(self):
        ogs = corpus(120, seed=8)
        live = LiveIndex(built_index(ogs))
        with QueryService(live, ServiceConfig(workers=1)) as service:
            exact = service.knn(ogs[2], 10)
            approx = service.knn(ogs[2], 10, search_budget=60)
            overlap = {og.og_id for _, og, _ in exact.hits} \
                & {og.og_id for _, og, _ in approx.hits}
            assert len(overlap) / 10 >= 0.9


class TestQueryBudget:
    def test_budgeted_query_matches_exact_with_big_budget(self, small):
        index, ogs = small
        exact = Query(index).similar_to(ogs[0]).limit(5).run()
        budgeted = (Query(index).similar_to(ogs[0]).limit(5)
                    .budget(10 * len(ogs)).run())
        assert [r.og.og_id for r in exact] == [r.og.og_id for r in budgeted]

    def test_budget_applies_predicates_after_ranking(self, small):
        index, ogs = small
        results = (Query(index).similar_to(ogs[0]).limit(10)
                   .budget(40).where(lambda og: og.og_id != ogs[0].og_id)
                   .run())
        assert all(r.og.og_id != ogs[0].og_id for r in results)
        assert len(results) <= 10

    def test_budget_requires_ranking_and_limit(self, small):
        index, ogs = small
        with pytest.raises(InvalidParameterError):
            Query(index).limit(5).budget(10).run()
        with pytest.raises(InvalidParameterError):
            Query(index).similar_to(ogs[0]).budget(10).run()
        with pytest.raises(InvalidParameterError):
            (Query(index).similar_to(ogs[0], distance=MetricEGED())
             .limit(5).budget(10).run())
        with pytest.raises(InvalidParameterError):
            Query(index).similar_to(ogs[0]).limit(5).budget(0)


class TestDatabaseBudget:
    def test_knn_contract(self):
        ogs = corpus(150, seed=5)
        db = VideoDatabase()
        db.ingest_object_graphs(ogs)
        q = ogs[2].values
        assert db.knn(q, k=0) == []
        assert len(db.knn(q, k=999)) == len(ogs)
        assert len(db.knn(q, k=999, search_budget=40)) == len(ogs)
        exact = {h.og.og_id for h in db.knn(q, k=8)}
        approx = {h.og.og_id for h in db.knn(q, k=8, search_budget=40)}
        assert len(exact & approx) / 8 >= 0.875

    def test_empty_database_k0(self):
        db = VideoDatabase()
        assert db.knn(np.zeros((4, 2)), k=0) == []
        with pytest.raises(IndexStateError):
            db.knn(np.zeros((4, 2)), k=1)


class TestSingleOgSketch:
    def test_tiny_corpus(self):
        og = ObjectGraph.from_values(np.linspace(0, 5, 8)[:, None])
        index = STRGIndex(STRGIndexConfig())
        index.build([og])
        hits = index.knn(og, 3, search_budget=5)
        assert len(hits) == 1
        assert hits[0][0] == 0.0
