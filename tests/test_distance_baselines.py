"""Tests for the DTW / LCS / ERP / edit-distance / Lp baselines."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distance.base import check_metric_axioms
from repro.distance.dtw import DTW, dtw
from repro.distance.edit import EditDistance, edit_distance
from repro.distance.erp import ERP, erp
from repro.distance.lcs import LCSDistance, lcs_distance, lcs_length
from repro.distance.lp import LpDistance, lp_distance
from repro.errors import InvalidParameterError

series_strategy = st.lists(
    st.floats(min_value=-50, max_value=50, allow_nan=False),
    min_size=1, max_size=10,
).map(lambda xs: np.asarray(xs, dtype=np.float64).reshape(-1, 1))


class TestDTW:
    def test_identical_series_zero(self, rng):
        a = rng.normal(size=(10, 2))
        assert dtw(a, a) == pytest.approx(0.0)

    def test_known_value(self):
        a = np.array([[0.0], [1.0], [2.0]])
        b = np.array([[0.0], [2.0]])
        # Path: (0,0)->(1,1)->(2,1): 0 + 1 + 0 = 1.
        assert dtw(a, b) == pytest.approx(1.0)

    def test_symmetric(self, rng):
        a = rng.normal(size=(8, 2))
        b = rng.normal(size=(11, 2))
        assert dtw(a, b) == pytest.approx(dtw(b, a))

    def test_window_constrains(self, rng):
        a = rng.normal(size=(12, 1))
        b = rng.normal(size=(12, 1))
        assert dtw(a, b, window=1) >= dtw(a, b) - 1e-12

    def test_window_zero_is_lockstep(self):
        a = np.array([[0.0], [1.0], [2.0]])
        b = np.array([[1.0], [1.0], [1.0]])
        assert dtw(a, b, window=0) == pytest.approx(2.0)

    def test_negative_window_rejected(self):
        with pytest.raises(InvalidParameterError):
            dtw(np.ones((2, 1)), np.ones((2, 1)), window=-1)
        with pytest.raises(InvalidParameterError):
            DTW(window=-2)

    def test_time_shift_tolerance(self):
        # DTW absorbs a time shift that lock-step L2 cannot.
        a = np.array([[0.0], [0.0], [1.0], [2.0], [3.0]])
        b = np.array([[0.0], [1.0], [2.0], [3.0], [3.0]])
        assert dtw(a, b) < lp_distance(a, b, 2.0)

    def test_violates_triangle_inequality(self):
        # Classic counterexample (repeated elements are free under DTW):
        # d(a, c) = 3 but d(a, b) + d(b, c) = 1 + 0.
        a = np.array([[0.0]])
        b = np.array([[1.0]])
        c = np.array([[1.0], [1.0], [1.0]])
        assert dtw(a, c) > dtw(a, b) + dtw(b, c)

    @given(series_strategy, series_strategy)
    @settings(max_examples=50, deadline=None)
    def test_property_symmetry_nonneg(self, a, b):
        d1, d2 = dtw(a, b), dtw(b, a)
        assert d1 >= 0
        assert d1 == pytest.approx(d2, rel=1e-9, abs=1e-9)


class TestLCS:
    def test_identical_full_match(self, rng):
        a = rng.normal(size=(8, 2))
        assert lcs_length(a, a, epsilon=0.0) == 8
        assert lcs_distance(a, a, epsilon=0.0) == pytest.approx(0.0)

    def test_disjoint_no_match(self):
        a = np.zeros((4, 1))
        b = np.full((4, 1), 100.0)
        assert lcs_length(a, b, epsilon=1.0) == 0
        assert lcs_distance(a, b, epsilon=1.0) == pytest.approx(1.0)

    def test_partial_subsequence(self):
        a = np.array([[1.0], [5.0], [2.0], [3.0]])
        b = np.array([[1.0], [2.0], [3.0]])
        assert lcs_length(a, b, epsilon=0.1) == 3

    def test_epsilon_widens_matching(self):
        a = np.array([[0.0], [10.0]])
        b = np.array([[0.4], [10.4]])
        assert lcs_length(a, b, epsilon=0.1) == 0
        assert lcs_length(a, b, epsilon=0.5) == 2

    def test_delta_restricts_displacement(self):
        a = np.array([[1.0], [0.0], [0.0], [0.0]])
        b = np.array([[0.0], [0.0], [0.0], [1.0]])
        with_delta = lcs_length(a, b, epsilon=0.1, delta=1)
        without = lcs_length(a, b, epsilon=0.1)
        assert with_delta <= without

    def test_distance_in_unit_interval(self, rng):
        a = rng.normal(size=(6, 2))
        b = rng.normal(size=(9, 2))
        d = lcs_distance(a, b)
        assert 0.0 <= d <= 1.0

    def test_invalid_parameters(self):
        a = np.ones((2, 1))
        with pytest.raises(InvalidParameterError):
            lcs_length(a, a, epsilon=-1.0)
        with pytest.raises(InvalidParameterError):
            lcs_length(a, a, delta=-1)
        with pytest.raises(InvalidParameterError):
            LCSDistance(epsilon=-0.5)

    @given(series_strategy, series_strategy)
    @settings(max_examples=50, deadline=None)
    def test_property_bounded_and_symmetric(self, a, b):
        d = lcs_distance(a, b, epsilon=1.0)
        assert 0.0 <= d <= 1.0
        assert d == pytest.approx(lcs_distance(b, a, epsilon=1.0))


class TestERP:
    def test_identical_zero(self, rng):
        a = rng.normal(size=(9, 2))
        assert erp(a, a) == pytest.approx(0.0)

    def test_known_value_scalar(self):
        # From the ERP paper's intuition: gaps charged against g = 0.
        a = np.array([[1.0], [2.0]])
        b = np.array([[1.0], [2.0], [3.0]])
        assert erp(a, b, gap=0.0) == pytest.approx(3.0)

    def test_metric_axioms(self, rng):
        points = [rng.normal(size=(int(rng.integers(1, 8)), 2)) for _ in range(6)]
        assert check_metric_axioms(ERP(), points) == []

    def test_vector_gap(self):
        a = np.array([[1.0, 1.0]])
        b = np.array([[1.0, 1.0], [4.0, 5.0]])
        assert erp(a, b, gap=np.array([0.0, 0.0])) == pytest.approx(np.hypot(4, 5))

    def test_gap_constant_affects_value(self, rng):
        a = rng.normal(size=(5, 1))
        b = rng.normal(size=(8, 1))
        assert erp(a, b, gap=0.0) != pytest.approx(erp(a, b, gap=100.0))

    @given(series_strategy, series_strategy, series_strategy)
    @settings(max_examples=40, deadline=None)
    def test_property_triangle(self, a, b, c):
        assert erp(a, c) <= erp(a, b) + erp(b, c) + 1e-7

    def test_band_upper_bounds_exact(self, rng):
        for _ in range(10):
            a = rng.normal(size=(int(rng.integers(4, 20)), 2))
            b = rng.normal(size=(int(rng.integers(4, 20)), 2))
            exact = erp(a, b)
            assert erp(a, b, band=2) >= exact - 1e-9
            assert erp(a, b, band=100) == pytest.approx(exact)

    def test_band_reflexive(self, rng):
        a = rng.normal(size=(12, 2))
        assert erp(a, a, band=1) == pytest.approx(0.0)

    def test_banded_erp_not_flagged_metric(self):
        assert not ERP(band=3).is_metric
        assert ERP().is_metric

    def test_negative_band_rejected(self):
        with pytest.raises(ValueError):
            erp(np.ones((2, 1)), np.ones((2, 1)), band=-1)


class TestEditDistance:
    def test_identical_zero(self):
        a = np.arange(5, dtype=float).reshape(-1, 1)
        assert edit_distance(a, a) == 0

    def test_classic_levenshtein(self):
        # "kitten" -> "sitting" analogue with numeric codes: distance 3.
        kitten = np.array([10, 8, 19, 19, 4, 13], dtype=float).reshape(-1, 1)
        sitting = np.array([18, 8, 19, 19, 8, 13, 6], dtype=float).reshape(-1, 1)
        assert edit_distance(kitten, sitting) == 3

    def test_length_difference_lower_bound(self, rng):
        a = rng.normal(size=(3, 1))
        b = rng.normal(size=(9, 1))
        assert edit_distance(a, b) >= 6

    def test_tolerance_reduces_distance(self):
        a = np.array([[0.0], [1.0]])
        b = np.array([[0.3], [1.3]])
        assert edit_distance(a, b, tolerance=0.0) == 2
        assert edit_distance(a, b, tolerance=0.5) == 0

    def test_metric_flag(self):
        assert EditDistance(0.0).is_metric
        assert not EditDistance(1.0).is_metric

    def test_negative_tolerance_rejected(self):
        with pytest.raises(InvalidParameterError):
            edit_distance(np.ones((1, 1)), np.ones((1, 1)), tolerance=-1.0)


class TestLp:
    def test_euclidean_equal_length(self):
        a = np.zeros((2, 2))
        b = np.array([[3.0, 4.0], [0.0, 0.0]])
        assert lp_distance(a, b, 2.0) == pytest.approx(5.0)

    def test_chebyshev(self):
        a = np.zeros((3, 1))
        b = np.array([[1.0], [7.0], [2.0]])
        assert lp_distance(a, b, np.inf) == pytest.approx(7.0)

    def test_manhattan(self):
        a = np.zeros((2, 1))
        b = np.array([[1.0], [2.0]])
        assert lp_distance(a, b, 1.0) == pytest.approx(3.0)

    def test_unequal_lengths_resampled(self, rng):
        a = rng.normal(size=(10, 2))
        b = rng.normal(size=(4, 2))
        assert np.isfinite(lp_distance(a, b))

    def test_invalid_p(self):
        with pytest.raises(InvalidParameterError):
            lp_distance(np.ones((2, 1)), np.ones((2, 1)), p=0.0)
        with pytest.raises(InvalidParameterError):
            LpDistance(p=-1.0)

    def test_name(self):
        assert LpDistance(2.0).name == "L2"
