"""Property-based tests for graph matching on random attributed graphs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.attributes import AttributeTolerance, NodeAttributes
from repro.graph.common_subgraph import most_common_subgraph, sim_graph
from repro.graph.isomorphism import (
    find_isomorphism,
    find_subgraph_isomorphism,
    is_isomorphic,
)
from repro.graph.merge import is_embedding
from repro.graph.rag import RegionAdjacencyGraph

LOOSE = AttributeTolerance(color=1e9, size_ratio=0.0,
                           spatial_distance=float("inf"))


def random_graph(seed: int, n_nodes: int, edge_prob: float
                 ) -> RegionAdjacencyGraph:
    """A random attributed graph with distinct per-node colors."""
    rng = np.random.default_rng(seed)
    rag = RegionAdjacencyGraph()
    for i in range(n_nodes):
        rag.add_node(i, NodeAttributes(
            size=int(rng.integers(10, 200)),
            color=tuple(rng.uniform(0, 255, 3)),
            centroid=(float(rng.uniform(0, 100)), float(rng.uniform(0, 100))),
        ))
    for i in range(n_nodes):
        for j in range(i + 1, n_nodes):
            if rng.random() < edge_prob:
                rag.add_edge(i, j)
    return rag


def relabeled_copy(rag: RegionAdjacencyGraph, seed: int
                   ) -> tuple[RegionAdjacencyGraph, dict[int, int]]:
    """An isomorphic copy with permuted node ids."""
    rng = np.random.default_rng(seed)
    nodes = list(rag.nodes())
    permuted = rng.permutation(len(nodes))
    relabel = {old: int(new) for old, new in zip(nodes, permuted)}
    out = RegionAdjacencyGraph(rag.frame_index)
    for old in nodes:
        out.add_node(relabel[old], rag.node_attrs(old))
    for u, v in rag.edges():
        out.add_edge(relabel[u], relabel[v], rag.edge_attrs(u, v))
    return out, relabel


class TestIsomorphismProperties:
    @given(seed=st.integers(0, 10_000), n=st.integers(2, 7),
           p=st.floats(0.0, 0.9))
    @settings(max_examples=25, deadline=None)
    def test_relabeled_copy_is_isomorphic(self, seed, n, p):
        g = random_graph(seed, n, p)
        h, _ = relabeled_copy(g, seed + 1)
        mapping = find_isomorphism(g, h, LOOSE)
        assert mapping is not None
        assert is_embedding(g, h, mapping, LOOSE)

    @given(seed=st.integers(0, 10_000), n=st.integers(3, 7))
    @settings(max_examples=20, deadline=None)
    def test_induced_subgraph_embeds(self, seed, n):
        g = random_graph(seed, n, 0.5)
        keep = list(g.nodes())[: n - 1]
        sub = g.subgraph(keep)
        mapping = find_subgraph_isomorphism(sub, g, LOOSE)
        assert mapping is not None
        assert is_embedding(sub, g, mapping, LOOSE)

    @given(seed=st.integers(0, 10_000), n=st.integers(2, 6))
    @settings(max_examples=20, deadline=None)
    def test_isomorphism_is_symmetric(self, seed, n):
        g = random_graph(seed, n, 0.4)
        h, _ = relabeled_copy(g, seed + 1)
        assert is_isomorphic(g, h, LOOSE) == is_isomorphic(h, g, LOOSE)


class TestCommonSubgraphProperties:
    @given(seed=st.integers(0, 10_000), n=st.integers(2, 6),
           p=st.floats(0.0, 0.8))
    @settings(max_examples=20, deadline=None)
    def test_self_mcs_is_full(self, seed, n, p):
        g = random_graph(seed, n, p)
        common = most_common_subgraph(g, g, LOOSE)
        assert len(common) == n

    @given(seed=st.integers(0, 10_000), n=st.integers(2, 6))
    @settings(max_examples=20, deadline=None)
    def test_mcs_size_bounded(self, seed, n):
        g = random_graph(seed, n, 0.4)
        h = random_graph(seed + 1, n + 1, 0.4)
        common = most_common_subgraph(g, h, LOOSE)
        assert len(common) <= min(len(g), len(h))
        # Pairs are injective on both sides.
        lefts = [u for u, _ in common]
        rights = [v for _, v in common]
        assert len(set(lefts)) == len(lefts)
        assert len(set(rights)) == len(rights)

    @given(seed=st.integers(0, 10_000), n=st.integers(2, 6),
           m=st.integers(2, 6))
    @settings(max_examples=20, deadline=None)
    def test_sim_graph_bounded_and_symmetric(self, seed, n, m):
        g = random_graph(seed, n, 0.4)
        h = random_graph(seed + 1, m, 0.4)
        s = sim_graph(g, h, LOOSE)
        assert 0.0 <= s <= 1.0
        assert s == pytest.approx(sim_graph(h, g, LOOSE))
