"""Tests for BIC model selection (Eq. 8) and evaluation metrics."""

import numpy as np
import pytest

from repro.clustering.bic import (
    bic_curve,
    bic_score,
    num_free_parameters,
    select_num_clusters,
)
from repro.clustering.em import EMClustering, EMConfig
from repro.clustering.evaluation import (
    clustering_error_rate,
    distortion,
    precision_recall,
)
from repro.clustering.kmeans import KMeansClustering, KMeansConfig
from repro.errors import ClusteringError, InvalidParameterError


def blob_ogs(k=3, n_per=6, separation=120.0, rng=None):
    """k well-separated groups of short trajectories."""
    rng = rng or np.random.default_rng(0)
    ogs, labels = [], []
    for label in range(k):
        for _ in range(n_per):
            length = int(rng.integers(6, 10))
            base = np.linspace(0, 10, length)[:, None]
            values = np.hstack([base + label * separation, base])
            ogs.append(values + rng.normal(0, 0.5, values.shape))
            labels.append(label)
    return ogs, labels


class TestFreeParameters:
    def test_formula_d1(self):
        # eta = (K - 1) + K d (d + 3) / 2 with d = 1 -> 3K - 1.
        assert num_free_parameters(1) == 2
        assert num_free_parameters(5) == 14

    def test_invalid_k(self):
        with pytest.raises(InvalidParameterError):
            num_free_parameters(0)


class TestBicScore:
    def test_penalizes_parameters(self):
        ogs, _ = blob_ogs(k=2)
        result = EMClustering(EMConfig(n_clusters=2)).fit(ogs)
        assert (bic_score(result, len(ogs))
                < result.classification_log_likelihood)
        assert (bic_score(result, len(ogs), likelihood="mixture")
                < result.log_likelihood)

    def test_classification_likelihood_finite(self):
        ogs, _ = blob_ogs(k=2)
        result = EMClustering(EMConfig(n_clusters=2)).fit(ogs)
        assert np.isfinite(result.classification_log_likelihood)
        # Winning-component likelihood upper-bounds each point's weighted
        # mixture contribution minus the weight term, so it sits above
        # the mixture likelihood for peaked responsibilities.
        assert (result.classification_log_likelihood
                >= result.log_likelihood - 1e-6)

    def test_invalid_likelihood_kind(self):
        ogs, _ = blob_ogs(k=2)
        result = EMClustering(EMConfig(n_clusters=2)).fit(ogs)
        with pytest.raises(InvalidParameterError):
            bic_score(result, len(ogs), likelihood="bogus")

    def test_requires_likelihood(self):
        ogs, _ = blob_ogs(k=2)
        km = KMeansClustering(KMeansConfig(n_clusters=2)).fit(ogs)
        with pytest.raises(ClusteringError):
            bic_score(km, len(ogs))

    def test_invalid_num_items(self):
        ogs, _ = blob_ogs(k=2)
        result = EMClustering(EMConfig(n_clusters=2)).fit(ogs)
        with pytest.raises(InvalidParameterError):
            bic_score(result, 0)


class TestSelectNumClusters:
    def test_finds_true_k(self):
        ogs, _ = blob_ogs(k=3, n_per=8)
        best_k, scores = select_num_clusters(ogs, 1, 6, seed=1)
        assert best_k == 3
        assert len(scores) == 6

    def test_peak_at_best_k(self):
        ogs, _ = blob_ogs(k=2, n_per=8)
        best_k, scores = select_num_clusters(ogs, 1, 5, seed=1)
        assert scores[best_k - 1] == max(scores)

    def test_k_range_clamped_to_data(self):
        ogs, _ = blob_ogs(k=2, n_per=2)  # only 4 OGs
        best_k, scores = select_num_clusters(ogs, 1, 15)
        assert len(scores) == 4

    def test_invalid_range(self):
        ogs, _ = blob_ogs(k=2)
        with pytest.raises(InvalidParameterError):
            select_num_clusters(ogs, 3, 2)

    def test_bic_curve_matches_select(self):
        ogs, _ = blob_ogs(k=2, n_per=6)
        scores = bic_curve(ogs, [1, 2, 3], seed=1)
        assert len(scores) == 3


class TestClusteringErrorRate:
    def test_perfect(self):
        assert clustering_error_rate([0, 0, 1, 1], [5, 5, 9, 9]) == 0.0

    def test_half_wrong(self):
        assert clustering_error_rate([0, 0, 1, 1], [0, 1, 0, 1]) == pytest.approx(50.0)

    def test_label_permutation_invariant(self):
        true = [0, 0, 1, 1, 2, 2]
        pred = [2, 2, 0, 0, 1, 1]
        assert clustering_error_rate(true, pred) == 0.0

    def test_more_clusters_than_classes(self):
        true = [0, 0, 0, 0]
        pred = [0, 0, 1, 1]
        assert clustering_error_rate(true, pred) == pytest.approx(50.0)

    def test_shape_mismatch(self):
        with pytest.raises(InvalidParameterError):
            clustering_error_rate([0, 1], [0, 1, 2])

    def test_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            clustering_error_rate([], [])


class TestDistortion:
    def test_zero_for_identical(self):
        centroids = [np.zeros((4, 2)), np.ones((4, 2)) * 50]
        assert distortion(centroids, centroids) == pytest.approx(0.0)

    def test_matching_is_order_invariant(self):
        a = [np.zeros((4, 2)), np.ones((4, 2)) * 50]
        b = [np.ones((4, 2)) * 50, np.zeros((4, 2))]
        assert distortion(a, b) == pytest.approx(0.0)

    def test_positive_when_displaced(self):
        true = [np.zeros((4, 2))]
        found = [np.ones((4, 2)) * 3]
        assert distortion(true, found) > 0.0

    def test_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            distortion([], [np.zeros((2, 2))])


class TestPrecisionRecall:
    def test_perfect_retrieval(self):
        p, r = precision_recall([1, 2, 3], [1, 2, 3])
        assert p == 1.0 and r == 1.0

    def test_half_precision(self):
        p, r = precision_recall([1, 2, 3, 4], [1, 2])
        assert p == 0.5 and r == 1.0

    def test_half_recall(self):
        p, r = precision_recall([1], [1, 2])
        assert p == 1.0 and r == 0.5

    def test_disjoint(self):
        p, r = precision_recall([5, 6], [1, 2])
        assert p == 0.0 and r == 0.0
