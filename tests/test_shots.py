"""Tests for shot boundary detection and video parsing."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.video.frames import VideoSegment
from repro.video.shots import (
    ShotDetectorConfig,
    color_histogram,
    detect_shot_boundaries,
    histogram_differences,
    split_into_shots,
)


def two_scene_video(len_a=10, len_b=8):
    """A hard cut between a dark scene and a bright scene."""
    frames = np.empty((len_a + len_b, 12, 16, 3), dtype=np.uint8)
    frames[:len_a] = (30, 40, 50)
    frames[len_a:] = (220, 200, 180)
    return VideoSegment(frames, name="twoscene")


class TestHistogram:
    def test_normalized(self):
        frame = np.random.default_rng(0).integers(
            0, 255, (10, 10, 3)
        ).astype(np.uint8)
        hist = color_histogram(frame)
        assert hist.sum() == pytest.approx(1.0)

    def test_identical_frames_zero_difference(self):
        video = VideoSegment(np.zeros((3, 8, 8, 3), dtype=np.uint8))
        diffs = histogram_differences(video)
        np.testing.assert_allclose(diffs, 0.0)

    def test_cut_spikes(self):
        video = two_scene_video()
        diffs = histogram_differences(video)
        assert np.argmax(diffs) == 9  # between frame 9 and 10
        assert diffs.max() > 1.0


class TestDetection:
    def test_single_cut_found(self):
        boundaries = detect_shot_boundaries(two_scene_video())
        assert boundaries == [10]

    def test_no_cut_in_static_video(self):
        video = VideoSegment(np.zeros((12, 8, 8, 3), dtype=np.uint8))
        assert detect_shot_boundaries(video) == []

    def test_gradual_change_below_threshold(self):
        frames = np.stack([
            np.full((8, 8, 3), 100 + t, dtype=np.uint8) for t in range(10)
        ])
        video = VideoSegment(frames)
        assert detect_shot_boundaries(video) == []

    def test_min_shot_length_suppresses_double_cuts(self):
        # Three scenes with the middle one only 2 frames long.
        frames = np.empty((14, 8, 8, 3), dtype=np.uint8)
        frames[:6] = (20, 20, 20)
        frames[6:8] = (230, 230, 230)
        frames[8:] = (20, 120, 230)
        video = VideoSegment(frames)
        config = ShotDetectorConfig(min_shot_length=5)
        boundaries = detect_shot_boundaries(video, config)
        # The cut at t=8 falls within 5 frames of the first cut and is
        # suppressed; by the time a new cut would be admissible the
        # content no longer changes.
        assert boundaries == [6]
        # Without the suppression both cuts are reported.
        eager = detect_shot_boundaries(
            video, ShotDetectorConfig(min_shot_length=1)
        )
        assert eager == [6, 8]

    def test_single_frame_video(self):
        video = VideoSegment(np.zeros((1, 8, 8, 3), dtype=np.uint8))
        assert detect_shot_boundaries(video) == []

    def test_invalid_config(self):
        with pytest.raises(InvalidParameterError):
            ShotDetectorConfig(bins=1)
        with pytest.raises(InvalidParameterError):
            ShotDetectorConfig(threshold=0.0)
        with pytest.raises(InvalidParameterError):
            ShotDetectorConfig(min_shot_length=0)


class TestSplit:
    def test_split_covers_everything(self):
        video = two_scene_video()
        shots = split_into_shots(video)
        assert sum(s.num_frames for s in shots) == video.num_frames
        assert len(shots) == 2
        assert shots[0].num_frames == 10

    def test_static_video_single_shot(self):
        video = VideoSegment(np.zeros((6, 8, 8, 3), dtype=np.uint8))
        shots = split_into_shots(video)
        assert len(shots) == 1
        assert shots[0].num_frames == 6

    def test_shot_contents_match_source(self):
        video = two_scene_video()
        shots = split_into_shots(video)
        np.testing.assert_array_equal(shots[1].frame(0), video.frame(10))
