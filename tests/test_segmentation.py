"""Tests for the mean-shift (EDISON substitute) and grid segmenters."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError, SegmentationError
from repro.video.segmentation import (
    GridSegmenter,
    MeanShiftSegmenter,
    _connected_components,
    _merge_small_regions,
)


def two_tone_image(height=24, width=32):
    """Left half dark, right half bright."""
    image = np.full((height, width, 3), 40, dtype=np.uint8)
    image[:, width // 2:] = 220
    return image


def three_region_image():
    """Background plus two colored squares."""
    image = np.full((40, 60, 3), 90, dtype=np.uint8)
    image[5:15, 5:15] = (220, 40, 40)
    image[25:35, 40:55] = (40, 40, 220)
    return image


class TestConnectedComponents:
    def test_uniform_image_single_region(self):
        features = np.zeros((5, 5, 3))
        labels = _connected_components(features, 1.0)
        assert len(np.unique(labels)) == 1

    def test_two_halves(self):
        features = np.zeros((4, 8, 3))
        features[:, 4:] = 100.0
        labels = _connected_components(features, 10.0)
        assert len(np.unique(labels)) == 2

    def test_threshold_merges(self):
        features = np.zeros((4, 8, 3))
        features[:, 4:] = 5.0
        labels = _connected_components(features, 10.0)
        assert len(np.unique(labels)) == 1

    def test_disconnected_same_color_distinct(self):
        features = np.zeros((5, 9, 3))
        features[:, 4] = 100.0  # wall splits left/right
        labels = _connected_components(features, 10.0)
        assert len(np.unique(labels)) == 3


class TestMergeSmallRegions:
    def test_small_region_absorbed(self):
        features = np.zeros((6, 6, 3))
        features[2, 2] = 50.0  # single odd pixel
        labels = _connected_components(features, 10.0)
        assert len(np.unique(labels)) == 2
        merged = _merge_small_regions(labels, features, min_size=4)
        assert len(np.unique(merged)) == 1

    def test_large_regions_kept(self):
        features = np.zeros((4, 8, 3))
        features[:, 4:] = 100.0
        labels = _connected_components(features, 10.0)
        merged = _merge_small_regions(labels, features, min_size=4)
        assert len(np.unique(merged)) == 2

    def test_labels_compacted(self):
        features = np.zeros((6, 6, 3))
        features[0, 0] = 50.0
        labels = _connected_components(features, 10.0)
        merged = _merge_small_regions(labels, features, min_size=3)
        uniq = np.unique(merged)
        np.testing.assert_array_equal(uniq, np.arange(len(uniq)))


class TestGridSegmenter:
    def test_two_tone(self):
        labels = GridSegmenter(min_region_size=4).segment(two_tone_image())
        assert len(np.unique(labels)) == 2

    def test_three_regions(self):
        labels = GridSegmenter(min_region_size=4).segment(three_region_image())
        assert len(np.unique(labels)) == 3

    def test_invalid_levels(self):
        with pytest.raises(InvalidParameterError):
            GridSegmenter(levels=1)

    def test_invalid_shape(self):
        with pytest.raises(SegmentationError):
            GridSegmenter().segment(np.zeros((4, 4)))

    def test_build_rag(self):
        rag = GridSegmenter(min_region_size=4).build_rag(
            three_region_image(), frame_index=7
        )
        assert len(rag) == 3
        assert rag.frame_index == 7
        # Both squares touch only the background.
        assert rag.number_of_edges() == 2


class TestMeanShiftSegmenter:
    def test_two_tone(self):
        seg = MeanShiftSegmenter(spatial_bandwidth=2, range_bandwidth=10.0,
                                 min_region_size=8, max_iterations=3)
        labels = seg.segment(two_tone_image())
        assert len(np.unique(labels)) == 2

    def test_three_regions(self):
        seg = MeanShiftSegmenter(spatial_bandwidth=2, range_bandwidth=10.0,
                                 min_region_size=8, max_iterations=3)
        labels = seg.segment(three_region_image())
        assert len(np.unique(labels)) == 3

    def test_noise_robustness(self, rng):
        # The paper chose EDISON for stability under small frame changes:
        # mild pixel noise must not shatter the segmentation.
        image = two_tone_image().astype(np.float64)
        noisy = np.clip(image + rng.normal(0, 4.0, image.shape), 0, 255)
        seg = MeanShiftSegmenter(spatial_bandwidth=2, range_bandwidth=12.0,
                                 min_region_size=16, max_iterations=4)
        labels = seg.segment(noisy.astype(np.uint8))
        assert len(np.unique(labels)) == 2

    def test_region_count_stable_across_frames(self, rng):
        # Simulated consecutive frames = same scene + independent noise.
        base = three_region_image().astype(np.float64)
        seg = MeanShiftSegmenter(spatial_bandwidth=2, range_bandwidth=12.0,
                                 min_region_size=16, max_iterations=4)
        counts = []
        for _ in range(3):
            frame = np.clip(base + rng.normal(0, 3.0, base.shape), 0, 255)
            counts.append(len(np.unique(seg.segment(frame.astype(np.uint8)))))
        assert len(set(counts)) == 1

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            MeanShiftSegmenter(spatial_bandwidth=0)
        with pytest.raises(InvalidParameterError):
            MeanShiftSegmenter(range_bandwidth=0.0)
        with pytest.raises(InvalidParameterError):
            MeanShiftSegmenter(min_region_size=0)

    def test_invalid_shape(self):
        with pytest.raises(SegmentationError):
            MeanShiftSegmenter().segment(np.zeros((4, 4)))

    def test_rgb_mode(self):
        seg = MeanShiftSegmenter(spatial_bandwidth=2, range_bandwidth=30.0,
                                 min_region_size=8, max_iterations=2,
                                 use_luv=False)
        labels = seg.segment(two_tone_image())
        assert len(np.unique(labels)) == 2
