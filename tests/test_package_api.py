"""Package-level API contract: exports, error hierarchy, version."""

import pytest

import repro
from repro import errors


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_version_present(self):
        major, minor, patch = repro.__version__.split(".")
        assert int(major) >= 1

    def test_version_matches_pyproject(self):
        """Guard against version skew: the installable metadata and the
        runtime ``repro.__version__`` must always agree."""
        import re
        from pathlib import Path

        pyproject = Path(__file__).resolve().parents[1] / "pyproject.toml"
        match = re.search(r'^version\s*=\s*"([^"]+)"',
                          pyproject.read_text(encoding="utf-8"), flags=re.M)
        assert match is not None, "pyproject.toml has no version field"
        assert match.group(1) == repro.__version__

    def test_core_types_importable(self):
        from repro import (
            EGED,
            MetricEGED,
            ObjectGraph,
            STRGIndex,
            SpatioTemporalRegionGraph,
            VideoDatabase,
            VideoPipeline,
        )
        assert all(t is not None for t in (
            EGED, MetricEGED, ObjectGraph, STRGIndex,
            SpatioTemporalRegionGraph, VideoDatabase, VideoPipeline,
        ))


class TestSubpackageExports:
    @pytest.mark.parametrize("module_name", [
        "repro.distance", "repro.graph", "repro.clustering",
        "repro.mtree", "repro.core", "repro.datasets",
        "repro.storage", "repro.video", "repro.rtree3d",
    ])
    def test_subpackage_all_resolves(self, module_name):
        import importlib

        module = importlib.import_module(module_name)
        for name in module.__all__:
            assert getattr(module, name) is not None, f"{module_name}.{name}"


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        error_types = [
            errors.EmptySequenceError,
            errors.DimensionMismatchError,
            errors.InvalidParameterError,
            errors.GraphStructureError,
            errors.IndexStateError,
            errors.ClusteringError,
            errors.StorageError,
            errors.SegmentationError,
        ]
        for error_type in error_types:
            assert issubclass(error_type, errors.ReproError)

    def test_value_errors_are_value_errors(self):
        # Parameter/validation errors must also be ValueErrors so generic
        # callers can catch them idiomatically.
        assert issubclass(errors.InvalidParameterError, ValueError)
        assert issubclass(errors.EmptySequenceError, ValueError)
        assert issubclass(errors.GraphStructureError, ValueError)

    def test_runtime_errors_are_runtime_errors(self):
        assert issubclass(errors.IndexStateError, RuntimeError)
        assert issubclass(errors.StorageError, RuntimeError)

    def test_single_except_catches_everything(self):
        from repro.distance.base import as_series

        with pytest.raises(errors.ReproError):
            as_series([])
