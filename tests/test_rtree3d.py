"""Tests for the 3DR-tree baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IndexStateError, InvalidParameterError
from repro.graph.object_graph import ObjectGraph
from repro.rtree3d.mbr import MBR3
from repro.rtree3d.tree import RTree3D, RTree3DConfig


def make_og(x0, y0, x1, y1, start_frame=0, length=5):
    values = np.stack([
        np.linspace(x0, x1, length), np.linspace(y0, y1, length)
    ], axis=1)
    return ObjectGraph.from_values(values)


class TestMBR3:
    def test_of_trajectory(self):
        og = make_og(0, 5, 10, 15, length=4)
        box = MBR3.of_trajectory(og)
        assert box.mins == (0.0, 5.0, 0.0)
        assert box.maxs == (10.0, 15.0, 3.0)

    def test_invalid_bounds(self):
        with pytest.raises(InvalidParameterError):
            MBR3((1.0, 0.0, 0.0), (0.0, 1.0, 1.0))

    def test_volume_and_margin(self):
        box = MBR3((0.0, 0.0, 0.0), (2.0, 3.0, 4.0))
        assert box.volume() == 24.0
        assert box.margin() == 9.0

    def test_union(self):
        a = MBR3((0.0, 0.0, 0.0), (1.0, 1.0, 1.0))
        b = MBR3((2.0, 2.0, 2.0), (3.0, 3.0, 3.0))
        u = a.union(b)
        assert u.mins == (0.0, 0.0, 0.0)
        assert u.maxs == (3.0, 3.0, 3.0)

    def test_enlargement(self):
        a = MBR3((0.0, 0.0, 0.0), (1.0, 1.0, 1.0))
        b = MBR3((0.0, 0.0, 0.0), (2.0, 1.0, 1.0))
        assert a.enlargement(b) == pytest.approx(1.0)

    def test_intersects(self):
        a = MBR3((0.0, 0.0, 0.0), (2.0, 2.0, 2.0))
        b = MBR3((1.0, 1.0, 1.0), (3.0, 3.0, 3.0))
        c = MBR3((5.0, 5.0, 5.0), (6.0, 6.0, 6.0))
        assert a.intersects(b)
        assert not a.intersects(c)

    def test_touching_counts_as_intersecting(self):
        a = MBR3((0.0, 0.0, 0.0), (1.0, 1.0, 1.0))
        b = MBR3((1.0, 0.0, 0.0), (2.0, 1.0, 1.0))
        assert a.intersects(b)

    def test_contains(self):
        outer = MBR3((0.0, 0.0, 0.0), (10.0, 10.0, 10.0))
        inner = MBR3((1.0, 1.0, 1.0), (2.0, 2.0, 2.0))
        assert outer.contains(inner)
        assert not inner.contains(outer)

    def test_min_distance(self):
        a = MBR3((0.0, 0.0, 0.0), (1.0, 1.0, 1.0))
        b = MBR3((4.0, 5.0, 1.0), (6.0, 6.0, 2.0))
        assert a.min_distance(b) == pytest.approx(5.0)  # 3-4-5 in (x, y)
        assert a.min_distance(a) == 0.0


class TestRTree3D:
    def build(self, n=40, capacity=4, seed=0):
        rng = np.random.default_rng(seed)
        tree = RTree3D(RTree3DConfig(node_capacity=capacity))
        ogs = []
        for i in range(n):
            x = float(rng.uniform(0, 100))
            y = float(rng.uniform(0, 100))
            og = make_og(x, y, x + 10, y + 5, length=int(rng.integers(3, 8)))
            ogs.append(og)
            tree.insert(og, og.og_id)
        return tree, ogs

    def test_size_and_height(self):
        tree, _ = self.build()
        assert len(tree) == 40
        assert tree.height() >= 2

    def test_range_query_matches_brute_force(self):
        tree, ogs = self.build()
        box = MBR3((20.0, 20.0, 0.0), (60.0, 60.0, 10.0))
        hits = set(tree.range_query(box))
        expected = {
            og.og_id for og in ogs
            if MBR3.of_trajectory(og).intersects(box)
        }
        assert hits == expected

    def test_range_query_empty_region(self):
        tree, _ = self.build()
        box = MBR3((1000.0, 1000.0, 0.0), (1001.0, 1001.0, 1.0))
        assert tree.range_query(box) == []

    def test_knn_self_first(self):
        tree, ogs = self.build()
        hits = tree.knn(ogs[0], 1)
        assert hits[0][0] == 0.0

    def test_knn_matches_brute_force_distances(self):
        tree, ogs = self.build()
        query = ogs[5]
        hits = tree.knn(query, 8)
        qbox = MBR3.of_trajectory(query)
        brute = sorted(
            qbox.min_distance(MBR3.of_trajectory(og)) for og in ogs
        )[:8]
        assert [h[0] for h in hits] == pytest.approx(brute)

    def test_knn_invalid_k(self):
        tree, ogs = self.build(n=3)
        with pytest.raises(InvalidParameterError):
            tree.knn(ogs[0], 0)

    def test_empty_search_raises(self):
        with pytest.raises(IndexStateError):
            RTree3D().knn(make_og(0, 0, 1, 1), 1)

    def test_invalid_capacity(self):
        with pytest.raises(InvalidParameterError):
            RTree3DConfig(node_capacity=2)

    @given(seed=st.integers(0, 5000), k=st.integers(1, 6))
    @settings(max_examples=10, deadline=None)
    def test_property_knn_distances_sorted_and_correct(self, seed, k):
        tree, ogs = self.build(n=15, capacity=4, seed=seed)
        hits = tree.knn(ogs[0], k)
        dists = [h[0] for h in hits]
        assert dists == sorted(dists)
        qbox = MBR3.of_trajectory(ogs[0])
        brute = sorted(
            qbox.min_distance(MBR3.of_trajectory(og)) for og in ogs
        )[:k]
        assert dists == pytest.approx(brute)
