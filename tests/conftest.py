"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.synthetic import SyntheticConfig, generate_synthetic_ogs


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_og_set():
    """A small labeled OG data set reused across clustering/index tests.

    Six patterns, eight instances each (48 OGs), low noise — small enough
    to keep the suite fast, structured enough to cluster correctly.
    """
    from repro.datasets.patterns import ALL_PATTERNS

    config = SyntheticConfig(
        num_ogs=48,
        noise_fraction=0.05,
        seed=7,
        patterns=ALL_PATTERNS[:6],
    )
    return generate_synthetic_ogs(config)


@pytest.fixture(scope="session")
def tiny_video():
    """A tiny rendered video segment with two moving objects."""
    from repro.video.synthesize import (
        Actor,
        BackgroundSpec,
        SceneRenderer,
        linear_trajectory,
        make_vehicle,
    )

    background = BackgroundSpec(
        width=96, height=72, base_color=(100, 100, 100),
        zones=[(0, 0, 96, 24, (60, 60, 140))],
    )
    scene = SceneRenderer(background)
    scene.add_actor(Actor(
        linear_trajectory((5.0, 40.0), (90.0, 40.0), 12),
        make_vehicle((200, 40, 40)), name="car-right",
    ))
    scene.add_actor(Actor(
        linear_trajectory((90.0, 58.0), (5.0, 58.0), 12),
        make_vehicle((40, 200, 40)), name="car-left",
    ))
    return scene.render(12, fps=10.0, name="tiny")
