"""Property-based invariants of the STRG-Index under mixed workloads.

These tests drive the index with randomized build/insert/delete sequences
and check the invariants that make it a correct metric index:

- exact k-NN always equals brute force under EGED_M;
- leaf keys always equal the metric distance to the owning centroid;
- leaf key order is maintained under arbitrary insertion order;
- the index never loses or duplicates OGs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.index import STRGIndex, STRGIndexConfig
from repro.distance.eged import MetricEGED
from repro.graph.object_graph import ObjectGraph


def random_ogs(rng, count, n_blobs=3):
    ogs = []
    for i in range(count):
        blob = i % n_blobs
        length = int(rng.integers(4, 10))
        base = np.linspace(0, 10, length)[:, None]
        values = np.hstack([base + blob * 120.0, base])
        ogs.append(ObjectGraph.from_values(
            values + rng.normal(0, 1.0, values.shape), label=blob
        ))
    return ogs


def collect_ids(index):
    return [og.og_id for og in index.object_graphs()]


class TestInvariants:
    @given(seed=st.integers(0, 10_000),
           n_initial=st.integers(4, 12),
           n_inserts=st.integers(0, 10),
           k=st.integers(1, 6))
    @settings(max_examples=12, deadline=None)
    def test_knn_matches_brute_force_after_mixed_workload(
            self, seed, n_initial, n_inserts, k):
        rng = np.random.default_rng(seed)
        ogs = random_ogs(rng, n_initial + n_inserts)
        index = STRGIndex(STRGIndexConfig(
            n_clusters=min(3, n_initial), em_iterations=5,
            leaf_capacity=8, seed=seed,
        ))
        index.build(ogs[:n_initial])
        for og in ogs[n_initial:]:
            index.insert(og)
        # Delete every third OG.
        alive = []
        for i, og in enumerate(ogs):
            if i % 3 == 0 and len(ogs) - (i // 3) > k:
                assert index.delete(og.og_id)
            else:
                alive.append(og)
        d = MetricEGED()
        query = alive[0]
        hits = index.knn(query, k)
        brute = sorted(d(query, og) for og in alive)[:k]
        assert [h[0] for h in hits] == pytest.approx(brute)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_no_ogs_lost_or_duplicated(self, seed):
        rng = np.random.default_rng(seed)
        ogs = random_ogs(rng, 15)
        index = STRGIndex(STRGIndexConfig(n_clusters=3, em_iterations=4,
                                          leaf_capacity=6, seed=seed))
        index.build(ogs[:8])
        for og in ogs[8:]:
            index.insert(og)
        ids = collect_ids(index)
        assert sorted(ids) == sorted(og.og_id for og in ogs)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_leaf_keys_consistent_with_centroids(self, seed):
        rng = np.random.default_rng(seed)
        ogs = random_ogs(rng, 12)
        index = STRGIndex(STRGIndexConfig(n_clusters=3, em_iterations=4,
                                          leaf_capacity=5, seed=seed))
        index.build(ogs[:6])
        for og in ogs[6:]:
            index.insert(og)
        d = MetricEGED()
        for root_record in index.root:
            for record in root_record.cluster_node:
                for leaf_record in record.leaf:
                    expected = d(leaf_record.og, record.centroid)
                    assert leaf_record.key == pytest.approx(expected)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_leaf_keys_sorted(self, seed):
        rng = np.random.default_rng(seed)
        ogs = random_ogs(rng, 14)
        order = rng.permutation(len(ogs))
        index = STRGIndex(STRGIndexConfig(n_clusters=2, em_iterations=4,
                                          leaf_capacity=50, seed=seed))
        index.build([ogs[int(order[0])], ogs[int(order[1])]])
        for i in order[2:]:
            index.insert(ogs[int(i)])
        for root_record in index.root:
            for record in root_record.cluster_node:
                keys = record.leaf.keys
                assert keys == sorted(keys)

    @given(seed=st.integers(0, 10_000), radius=st.floats(0.0, 500.0))
    @settings(max_examples=10, deadline=None)
    def test_range_query_matches_brute_force(self, seed, radius):
        rng = np.random.default_rng(seed)
        ogs = random_ogs(rng, 12)
        index = STRGIndex(STRGIndexConfig(n_clusters=3, em_iterations=4,
                                          seed=seed))
        index.build(ogs)
        d = MetricEGED()
        hits = {og.og_id for _, og, _ in index.range_query(ogs[0], radius)}
        truth = {og.og_id for og in ogs if d(ogs[0], og) <= radius}
        assert hits == truth
