"""Streaming ingest service: backpressure, retries, timeouts, scaling,
journaled crash recovery (docs/STREAMING.md)."""

from __future__ import annotations

import json
import threading
import time
from types import SimpleNamespace

import numpy as np
import pytest

from repro.errors import (
    CorruptSegmentError,
    IngestOverloadError,
    IngestTimeoutError,
    InvalidParameterError,
    ServiceStoppedError,
)
from repro.graph.object_graph import ObjectGraph
from repro.pipeline import ClipResult, PipelineConfig, VideoPipeline
from repro.resilience import FaultInjector, injected, replay_jobs
from repro.resilience.retry import RetryPolicy
from repro.serving.ingest import (
    IngestService,
    IngestServiceConfig,
    JobState,
)
from repro.serving.snapshot import LiveIndex
from repro.video.frames import VideoSegment
from repro.video.segmentation import GridSegmenter
from repro.video.synthesize import (
    Actor,
    BackgroundSpec,
    SceneRenderer,
    linear_trajectory,
    make_vehicle,
)


def fast_config(**overrides) -> IngestServiceConfig:
    defaults = dict(
        queue_depth=8,
        retry_policy=RetryPolicy(max_attempts=2, base_delay=0.001, seed=0),
        checkpoint_every=1,
        watchdog_interval=0.01,
    )
    defaults.update(overrides)
    return IngestServiceConfig(**defaults)


def make_clip(name: str, shade: int = 0, frames: int = 4) -> VideoSegment:
    """A tiny deterministic clip whose content encodes ``shade``."""
    data = np.full((frames, 8, 8, 3), 40 + (shade % 100), dtype=np.uint8)
    for t in range(frames):
        data[t, t % 8, :, 0] = 200  # a moving stripe, unique per frame
    return VideoSegment(data, name=name)


def render_clip(name: str, x0: float = 5.0, frames: int = 6) -> VideoSegment:
    """A rendered clip the *real* pipeline extracts one vehicle from."""
    background = BackgroundSpec(width=64, height=48,
                                base_color=(100, 100, 100))
    scene = SceneRenderer(background)
    scene.add_actor(Actor(
        linear_trajectory((x0, 24.0), (x0 + 36.0, 24.0), frames),
        make_vehicle((200, 40, 40)),
    ))
    return scene.render(frames, name=name)


def real_pipeline() -> VideoPipeline:
    return VideoPipeline(PipelineConfig(
        segmenter=GridSegmenter(min_region_size=10)))


class _StubPipeline:
    """Deterministic, content-derived stand-in for the extraction
    pipeline: one OG per clip, values a function of the frame bytes."""

    def __init__(self, delay: float = 0.0, gate: threading.Event | None = None):
        self.delay = delay
        self.gate = gate
        self.entered = threading.Event()  # a worker reached process_clip
        self.processed: list[str] = []

    def process_clip(self, video: VideoSegment, **kwargs) -> ClipResult:
        self.entered.set()
        if self.gate is not None:
            assert self.gate.wait(10.0), "test never opened the gate"
        if self.delay:
            time.sleep(self.delay)
        means = [float(video.frame(t).mean()) for t in range(video.num_frames)]
        og = ObjectGraph.from_values(
            [[t, m] for t, m in enumerate(means)], source=video.name)
        self.processed.append(video.name)
        return ClipResult(
            decomposition=SimpleNamespace(object_graphs=[og], background=None),
            refs=[{"video": video.name, "og": og.og_id}],
        )


def make_service(tmp_path=None, pipeline=None, **overrides) -> IngestService:
    from repro.core.index import STRGIndex, STRGIndexConfig

    live = LiveIndex(STRGIndex(STRGIndexConfig(n_clusters=None, k_max=8)))
    return IngestService(
        live, pipeline or _StubPipeline(),
        state_dir=None if tmp_path is None else tmp_path / "state",
        config=fast_config(**overrides),
    )


def hit_names(live: LiveIndex, query: ObjectGraph, k: int) -> list[str]:
    return [ref["video"] for _, _, ref in live.knn(query, k)]


class TestSubmitAndIndex:
    def test_upload_becomes_queryable(self, tmp_path):
        with make_service(tmp_path) as service:
            jobs = [service.submit(make_clip(f"c{i}", shade=7 * i))
                    for i in range(3)]
            states = [service.wait(job, timeout=30.0) for job in jobs]
            assert states == [JobState.INDEXED] * 3
            assert all(job.og_ids for job in jobs)
            assert all(job.freshness is not None and job.freshness >= 0
                       for job in jobs)
            # Every ingested clip must be findable through the live index.
            probe = ObjectGraph.from_values(
                [[t, 40.0] for t in range(4)])
            assert set(hit_names(service.live, probe, 3)) == {
                "c0", "c1", "c2"}
            health = service.health()
            assert health["indexed_jobs"] == 3
            assert health["quarantined"] == 0
            assert health["snapshot_version"] > 1
            assert health["freshness_lag"] is not None

    def test_in_memory_service_works_without_state_dir(self):
        with make_service() as service:
            job = service.submit(make_clip("mem"))
            assert service.wait(job, timeout=30.0) is JobState.INDEXED
            assert service.health()["journal"] is None

    def test_job_ids_and_status(self, tmp_path):
        with make_service(tmp_path) as service:
            job = service.submit(make_clip("named"), job_id="my-job")
            assert job.job_id == "my-job"
            assert service.job_status("my-job") is job
            assert service.job_status("missing") is None
            service.wait("my-job", timeout=30.0)
            with pytest.raises(InvalidParameterError):
                service.wait("missing")

    def test_completed_resubmission_is_noop(self, tmp_path):
        with make_service(tmp_path) as service:
            job = service.submit(make_clip("once"), job_id="dup")
            service.wait(job, timeout=30.0)
            before = len(service.live)
            again = service.submit(make_clip("once"), job_id="dup")
            assert again.state is JobState.INDEXED
            service.drain(timeout=30.0)
            assert len(service.live) == before  # never indexed twice

    def test_stopped_service_rejects(self, tmp_path):
        service = make_service(tmp_path)
        service.shutdown()
        with pytest.raises(ServiceStoppedError):
            service.submit(make_clip("late"))
        service.shutdown()  # idempotent

    def test_config_validation(self):
        with pytest.raises(InvalidParameterError):
            IngestServiceConfig(queue_depth=0)
        with pytest.raises(InvalidParameterError):
            IngestServiceConfig(min_workers=0)
        with pytest.raises(InvalidParameterError):
            IngestServiceConfig(min_workers=3, max_workers=2)
        with pytest.raises(InvalidParameterError):
            IngestServiceConfig(job_timeout=0.0)
        with pytest.raises(InvalidParameterError):
            IngestServiceConfig(checkpoint_every=0)
        with pytest.raises(InvalidParameterError):
            IngestServiceConfig(retry_budget=-1)
        with pytest.raises(InvalidParameterError):
            IngestServiceConfig(watchdog_interval=0.0)


class TestAdmissionControl:
    def test_overload_rejects_when_queue_full(self):
        gate = threading.Event()
        stub = _StubPipeline(gate=gate)
        service = make_service(pipeline=stub, queue_depth=2, max_workers=1)
        submitted = []
        try:
            submitted.append(service.submit(make_clip("q0")))
            assert stub.entered.wait(10.0)  # worker holds q0, queue empty
            submitted.append(service.submit(make_clip("q1")))
            submitted.append(service.submit(make_clip("q2")))  # queue full
            with pytest.raises(IngestOverloadError):
                service.submit(make_clip("overflow"))
        finally:
            gate.set()
            for job in submitted:
                service.wait(job, timeout=30.0)
            service.shutdown()

    def test_backpressure_blocks_until_space(self):
        gate = threading.Event()
        stub = _StubPipeline(gate=gate)
        service = make_service(pipeline=stub, queue_depth=1, max_workers=1)
        try:
            first = service.submit(make_clip("a"))
            assert stub.entered.wait(10.0)  # worker holds it, queue empty
            second = service.submit(make_clip("b"))  # fills the queue
            admitted = []

            def blocked_submit():
                admitted.append(service.submit(
                    make_clip("c"), backpressure=True, timeout=30.0))

            thread = threading.Thread(target=blocked_submit)
            thread.start()
            thread.join(0.1)
            assert thread.is_alive()  # genuinely blocked, not rejected
            gate.set()  # workers drain; space frees; submit completes
            thread.join(30.0)
            assert not thread.is_alive() and len(admitted) == 1
            for job in (first, second, admitted[0]):
                assert service.wait(job, timeout=30.0) is JobState.INDEXED
        finally:
            gate.set()
            service.shutdown()

    def test_backpressure_timeout_raises_overload(self):
        gate = threading.Event()
        stub = _StubPipeline(gate=gate)
        service = make_service(pipeline=stub, queue_depth=1, max_workers=1)
        try:
            service.submit(make_clip("a"))
            assert stub.entered.wait(10.0)
            service.submit(make_clip("b"))
            with pytest.raises(IngestOverloadError):
                service.submit(make_clip("c"), backpressure=True,
                               timeout=0.05)
        finally:
            gate.set()
            service.shutdown()


class TestFaultHandling:
    def test_transient_fault_retried_then_indexed(self, tmp_path):
        injector = FaultInjector().inject("ingest.process", at={0})
        with injected(injector):
            with make_service(tmp_path, pipeline=real_pipeline()) as service:
                job = service.submit(render_clip("flaky"))
                assert service.wait(job, timeout=60.0) is JobState.INDEXED
                assert job.attempts == 2
                assert service.health()["retries"] == 1

    def test_poison_job_quarantined_others_survive(self, tmp_path):
        # Ordinals 0 and 1 are the poison job's two attempts (it is
        # submitted first and the pool is one worker); the good job's
        # attempt draws ordinal 2 and runs clean.
        injector = FaultInjector().inject("ingest.process", at={0, 1})
        with injected(injector):
            with make_service(tmp_path, pipeline=real_pipeline(),
                              max_workers=1) as service:
                bad = service.submit(render_clip("poison"))
                good = service.submit(render_clip("good", x0=12.0))
                assert service.wait(bad, timeout=60.0) is JobState.QUARANTINED
                assert service.wait(good, timeout=60.0) is JobState.INDEXED
                assert len(service.quarantine) == 1
                record = service.quarantine[0]
                assert record.error_type == "CorruptSegmentError"
                assert record.details["job"] == bad.job_id
                assert bad.error and "injected" in bad.error

    def test_commit_fault_is_retryable(self, tmp_path):
        injector = FaultInjector().inject("ingest.commit", at={0})
        with injected(injector):
            with make_service(tmp_path, pipeline=real_pipeline()) as service:
                job = service.submit(render_clip("commit-flake"))
                assert service.wait(job, timeout=60.0) is JobState.INDEXED
                assert job.attempts == 2
                assert len(service.live) == len(job.og_ids)  # exactly once

    def test_accept_fault_surfaces_to_submitter(self, tmp_path):
        injector = FaultInjector().inject("ingest.accept", at={0})
        with injected(injector):
            with make_service(tmp_path) as service:
                with pytest.raises(OSError):
                    service.submit(make_clip("rejected-upload"))
                assert service.health()["queue_depth"] == 0  # no slot leaked
                job = service.submit(make_clip("accepted"))
                assert service.wait(job, timeout=30.0) is JobState.INDEXED

    def test_retry_budget_exhaustion_quarantines_immediately(self, tmp_path):
        injector = FaultInjector().inject("ingest.process", at={0, 1})
        with injected(injector):
            with make_service(tmp_path, pipeline=real_pipeline(),
                              retry_budget=0) as service:
                job = service.submit(render_clip("no-budget"))
                assert service.wait(job, timeout=60.0) is JobState.QUARANTINED
                assert job.attempts == 1  # no token left, no second attempt

    def test_unexpected_error_contained_not_worker_fatal(self, tmp_path):
        class _BrokenPipeline(_StubPipeline):
            def process_clip(self, video, **kwargs):
                if video.name == "broken":
                    raise TypeError("programming error in pipeline")
                return super().process_clip(video, **kwargs)

        with make_service(tmp_path, pipeline=_BrokenPipeline(),
                          max_workers=1) as service:
            bad = service.submit(make_clip("broken"))
            good = service.submit(make_clip("fine"))
            assert service.wait(bad, timeout=30.0) is JobState.QUARANTINED
            assert service.quarantine[0].error_type == "TypeError"
            # The worker that hit the TypeError must still be alive.
            assert service.wait(good, timeout=30.0) is JobState.INDEXED


class TestTimeoutsAndScaling:
    def test_watchdog_quarantines_overrunning_job(self, tmp_path):
        with make_service(tmp_path, pipeline=_StubPipeline(delay=0.3),
                          job_timeout=0.05) as service:
            job = service.submit(make_clip("slow"))
            assert service.wait(job, timeout=30.0) is JobState.QUARANTINED
            assert service.quarantine[0].error_type == "IngestTimeoutError"
            assert job.cancel.is_set()  # cancelled by the watchdog

    def test_fast_jobs_beat_the_timeout(self, tmp_path):
        with make_service(tmp_path, job_timeout=30.0) as service:
            job = service.submit(make_clip("quick"))
            assert service.wait(job, timeout=30.0) is JobState.INDEXED

    def test_worker_pool_scales_with_backlog(self):
        service = make_service(pipeline=_StubPipeline(delay=0.05),
                               min_workers=1, max_workers=3, queue_depth=32)
        try:
            jobs = [service.submit(make_clip(f"s{i}")) for i in range(12)]
            for job in jobs:
                assert service.wait(job, timeout=60.0) is JobState.INDEXED
            assert service.health()["peak_workers"] > 1  # scaled up
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if service.health()["workers"] == 1:
                    break
                time.sleep(0.02)
            assert service.health()["workers"] == 1  # retired back to min
        finally:
            service.shutdown()

    def test_wait_timeout_raises(self):
        gate = threading.Event()
        service = make_service(pipeline=_StubPipeline(gate=gate))
        try:
            job = service.submit(make_clip("held"))
            with pytest.raises(IngestTimeoutError):
                service.wait(job, timeout=0.05)
        finally:
            gate.set()
            service.shutdown()


class TestJournalReplay:
    def job(self, jid, state, **extra):
        return {"event": "job", "job": jid, "state": state, **extra}

    def test_checkpoint_splits_durable_from_pending(self):
        replay = replay_jobs([
            self.job("a", "QUEUED", spool="a.npz"),
            self.job("a", "RUNNING"),
            self.job("a", "INDEXED"),
            {"event": "checkpoint", "path": "index.npz"},
            self.job("b", "QUEUED", spool="b.npz"),
            self.job("b", "RUNNING"),
            self.job("b", "INDEXED"),
            self.job("c", "QUEUED", spool="c.npz"),
            self.job("c", "RUNNING"),
        ])
        assert replay.completed == ["a"]
        assert [info["job"] for info in replay.pending] == ["b", "c"]
        assert replay.pending[0]["spool"] == "b.npz"
        assert replay.quarantined == []

    def test_quarantine_is_terminal(self):
        replay = replay_jobs([
            self.job("p", "QUEUED"),
            self.job("p", "RUNNING"),
            self.job("p", "QUARANTINED", error="CorruptSegmentError"),
            {"event": "checkpoint"},
        ])
        assert replay.completed == []
        assert replay.pending == []
        assert [info["job"] for info in replay.quarantined] == ["p"]

    def test_merged_info_keeps_submission_fields(self):
        replay = replay_jobs([
            self.job("x", "QUEUED", clip="clip-x", spool="x.npz", frames=6),
            self.job("x", "RUNNING", attempt=1),
        ])
        info = replay.pending[0]
        assert info["clip"] == "clip-x" and info["spool"] == "x.npz"
        assert info["frames"] == 6

    def test_empty_and_unknown_records(self):
        replay = replay_jobs([])
        assert not replay.jobs_in_order
        replay = replay_jobs([{"event": "segment", "segment": "legacy"}])
        assert not replay.jobs_in_order


def index_contents(live: LiveIndex) -> set[tuple[str, bytes]]:
    """Content signature of an index: (clip name, trajectory bytes) per
    indexed OG.  Process-local og ids are deliberately excluded — a
    recovered process mints different ids for identical content."""
    index = live.snapshot.index
    out = set()
    for root_record in index.root:
        for cluster_record in root_record.cluster_node:
            for leaf_record in cluster_record.leaf:
                ref = leaf_record.clip_ref or {}
                out.add((str(ref.get("video", "")),
                         np.round(leaf_record.og.values, 6).tobytes()))
    return out


class TestCrashRecovery:
    def run_uninterrupted(self, tmp_path, names):
        service = IngestService(
            _fresh_live(), _StubPipeline(),
            state_dir=tmp_path / "clean", config=fast_config(max_workers=1))
        with service:
            for i, name in enumerate(names):
                service.submit(make_clip(name, shade=11 * i),
                               job_id=f"job-{name}")
            service.drain(timeout=60.0)
            return index_contents(service.live)

    def test_crash_mid_job_recovers_exactly_once(self, tmp_path):
        names = ["a", "b", "c", "d"]
        expected = self.run_uninterrupted(tmp_path, names)

        class SimulatedCrash(BaseException):
            pass

        state = tmp_path / "crashed"
        # Jobs a, b commit cleanly (ordinals 0, 1); job c dies mid-commit.
        injector = FaultInjector().inject("ingest.commit", at={2},
                                          error=SimulatedCrash)
        service = IngestService(
            _fresh_live(), _StubPipeline(), state_dir=state,
            config=fast_config(max_workers=1))
        crashed = []
        orig_hook = threading.excepthook
        threading.excepthook = lambda args: crashed.append(args.exc_type)
        try:
            with injected(injector):
                for i, name in enumerate(names[:3]):
                    service.submit(make_clip(name, shade=11 * i),
                                   job_id=f"job-{name}")
                deadline = time.monotonic() + 30.0
                while not crashed and time.monotonic() < deadline:
                    time.sleep(0.01)
        finally:
            threading.excepthook = orig_hook
        assert crashed == [SimulatedCrash]  # the worker thread died
        service._journal.close()  # what a real crash would leave behind

        recovered = IngestService.recover(
            state, pipeline=_StubPipeline(),
            config=fast_config(max_workers=1))
        with recovered:
            report = recovered.recovery
            assert report.snapshot_loaded
            assert sorted(report.completed_jobs) == ["job-a", "job-b"]
            assert report.replayed_jobs == ["job-c"]  # re-run from spool
            recovered.submit(make_clip("d", shade=33), job_id="job-d")
            recovered.drain(timeout=60.0)
            # No lost OGs, no duplicates: content matches a run that
            # never crashed (og ids are process-local and excluded).
            assert index_contents(recovered.live) == expected
            assert recovered.health()["indexed_jobs"] == 2  # c + d only

    def test_indexed_after_checkpoint_is_rerun_not_doubled(self, tmp_path):
        state = tmp_path / "state"
        service = IngestService(
            _fresh_live(), _StubPipeline(), state_dir=state,
            config=fast_config(max_workers=1, checkpoint_every=None))
        with service:
            service.submit(make_clip("only"), job_id="job-only")
            service.drain(timeout=30.0)
            service.checkpoint()  # durable now
            service.submit(make_clip("tail", shade=5), job_id="job-tail")
            service.drain(timeout=30.0)
            expected = index_contents(service.live)
        # job-tail is INDEXED in the journal but absent from the
        # checkpointed snapshot — recovery must re-run it, exactly once.
        recovered = IngestService.recover(
            state, pipeline=_StubPipeline(),
            config=fast_config(max_workers=1))
        with recovered:
            assert recovered.recovery.completed_jobs == ["job-only"]
            assert recovered.recovery.replayed_jobs == ["job-tail"]
            recovered.drain(timeout=30.0)
            assert index_contents(recovered.live) == expected

    def test_quarantine_decisions_survive_recovery(self, tmp_path):
        state = tmp_path / "state"
        injector = FaultInjector().inject("ingest.process", at={0, 1})
        with injected(injector):
            service = IngestService(
                _fresh_live(), _StubPipeline(), state_dir=state,
                config=fast_config(max_workers=1))
            with service:
                bad = service.submit(make_clip("toxic"), job_id="job-toxic")
                assert service.wait(bad, timeout=30.0) is JobState.QUARANTINED
        recovered = IngestService.recover(
            state, pipeline=_StubPipeline(),
            config=fast_config(max_workers=1))
        with recovered:
            assert recovered.recovery.quarantined_jobs == ["job-toxic"]
            assert recovered.recovery.replayed_jobs == []  # never re-run
            assert recovered.quarantine[0].details["job"] == "job-toxic"
            assert len(recovered.live) == 0

    def test_torn_journal_tail_tolerated(self, tmp_path):
        state = tmp_path / "state"
        service = IngestService(
            _fresh_live(), _StubPipeline(), state_dir=state,
            config=fast_config(max_workers=1))
        with service:
            service.submit(make_clip("ok"), job_id="job-ok")
            service.drain(timeout=30.0)
        with open(state / "ingest.journal", "a", encoding="utf-8") as fh:
            fh.write('{"event": "job", "job": "job-torn", "sta')  # torn line
        recovered = IngestService.recover(
            state, pipeline=_StubPipeline(),
            config=fast_config(max_workers=1))
        with recovered:
            assert recovered.recovery.journal_truncated
            assert recovered.recovery.completed_jobs == ["job-ok"]

    def test_missing_spool_quarantined_as_lost(self, tmp_path):
        state = tmp_path / "state"
        service = IngestService(
            _fresh_live(), _StubPipeline(), state_dir=state,
            config=fast_config(max_workers=1))
        with service:
            service.submit(make_clip("doomed"), job_id="job-doomed")
            service.drain(timeout=30.0)
        # Simulate INDEXED-but-not-durable with the payload gone: drop
        # the snapshot AND the spool file.
        (state / "index.npz").unlink()
        (state / "spool" / "job-doomed.npz").unlink()
        recovered = IngestService.recover(
            state, pipeline=_StubPipeline(),
            config=fast_config(max_workers=1))
        with recovered:
            assert recovered.recovery.lost_jobs == ["job-doomed"]
            assert recovered.quarantine[0].details["lost_payload"] is True
            assert len(recovered.live) == 0

    def test_recovery_with_real_pipeline_round_trips(self, tmp_path):
        state = tmp_path / "state"
        with IngestService(_fresh_live(), real_pipeline(), state_dir=state,
                           config=fast_config(max_workers=1)) as service:
            job = service.submit(render_clip("real"), job_id="job-real")
            assert service.wait(job, timeout=60.0) is JobState.INDEXED
            expected_len = len(service.live)
            assert expected_len > 0
        recovered = IngestService.recover(state, pipeline=real_pipeline(),
                                          config=fast_config(max_workers=1))
        with recovered:
            assert recovered.recovery.snapshot_loaded
            assert recovered.recovery.completed_jobs == ["job-real"]
            assert len(recovered.live) == expected_len
            # Idempotency: re-uploading the same job id is a no-op.
            again = recovered.submit(render_clip("real"), job_id="job-real")
            assert again.state is JobState.INDEXED
            recovered.drain(timeout=30.0)
            assert len(recovered.live) == expected_len

    def test_journal_records_are_wellformed(self, tmp_path):
        state = tmp_path / "state"
        with IngestService(_fresh_live(), _StubPipeline(), state_dir=state,
                           config=fast_config(max_workers=1)) as service:
            service.submit(make_clip("j"), job_id="job-j")
            service.drain(timeout=30.0)
        records = [json.loads(line) for line in
                   (state / "ingest.journal").read_text().splitlines()]
        states = [r["state"] for r in records if r["event"] == "job"]
        assert states == ["QUEUED", "RUNNING", "INDEXED"]
        assert any(r["event"] == "checkpoint" for r in records)


class TestDatabaseIntegration:
    def test_database_ingest_service_binding(self, tmp_path):
        from repro.storage.database import VideoDatabase

        db = VideoDatabase(PipelineConfig(
            segmenter=GridSegmenter(min_region_size=10)))
        db.ingest(render_clip("seed"))
        with db.ingest_service(state_dir=tmp_path / "state",
                               config=fast_config()) as service:
            job = service.submit(render_clip("streamed", x0=12.0))
            assert service.wait(job, timeout=60.0) is JobState.INDEXED
            # The database's read path tracks the newest snapshot.
            assert db.index is service.live.snapshot.index
            refs = {ref["video"] for _, _, ref in
                    db.index.knn(_probe(), 10)}
            assert {"seed", "streamed"} <= refs


def _fresh_live() -> LiveIndex:
    from repro.core.index import STRGIndex, STRGIndexConfig

    return LiveIndex(STRGIndex(STRGIndexConfig(n_clusters=None, k_max=8)))


def _probe() -> ObjectGraph:
    return ObjectGraph.from_values([[10.0 + 3 * t, 24.0] for t in range(6)])
