"""Tests for graph-based tracking (Algorithm 1)."""

import pytest

from repro.errors import InvalidParameterError
from repro.graph.attributes import NodeAttributes
from repro.graph.rag import RegionAdjacencyGraph
from repro.graph.tracking import GraphTracker, TrackerConfig


def node(size=100, color=(100.0, 100.0, 100.0), centroid=(0.0, 0.0)):
    return NodeAttributes(size=size, color=color, centroid=centroid)


RED = (200.0, 0.0, 0.0)
GREEN = (0.0, 200.0, 0.0)
BLUE = (0.0, 0.0, 200.0)


def scene_frame(object_positions, frame_index=0):
    """A RAG with one big background node plus colored object nodes.

    ``object_positions`` maps (region_id, color) -> centroid.
    """
    rag = RegionAdjacencyGraph(frame_index)
    rag.add_node(0, node(size=10000, color=(50.0, 50.0, 50.0),
                         centroid=(50.0, 50.0)))
    for rid, color, centroid in object_positions:
        rag.add_node(rid, node(size=100, color=color, centroid=centroid))
        rag.add_edge(0, rid)
    return rag


class TestTrackerConfig:
    def test_invalid_threshold(self):
        with pytest.raises(InvalidParameterError):
            TrackerConfig(sim_threshold=1.5)

    def test_invalid_gate(self):
        with pytest.raises(InvalidParameterError):
            TrackerConfig(max_candidate_distance=0.0)


class TestTrackPair:
    def test_stationary_objects_matched(self):
        a = scene_frame([(1, RED, (10.0, 10.0)), (2, GREEN, (80.0, 80.0))], 0)
        b = scene_frame([(1, RED, (10.0, 10.0)), (2, GREEN, (80.0, 80.0))], 1)
        edges = GraphTracker().track_pair(a, b)
        assert (1, 1) in edges
        assert (2, 2) in edges

    def test_moving_object_tracked(self):
        a = scene_frame([(1, RED, (10.0, 50.0))], 0)
        b = scene_frame([(5, RED, (15.0, 50.0))], 1)  # same object, new id
        edges = GraphTracker().track_pair(a, b)
        assert (1, 5) in edges

    def test_color_swap_not_confused(self):
        # Two objects swap nothing; each should track to its own color.
        a = scene_frame([(1, RED, (10.0, 50.0)), (2, BLUE, (30.0, 50.0))], 0)
        b = scene_frame([(7, BLUE, (32.0, 50.0)), (8, RED, (12.0, 50.0))], 1)
        edges = dict(GraphTracker().track_pair(a, b))
        assert edges.get(1) == 8
        assert edges.get(2) == 7

    def test_centroid_gate_blocks_teleport(self):
        a = scene_frame([(1, RED, (0.0, 0.0))], 0)
        b = scene_frame([(1, RED, (99.0, 99.0))], 1)
        config = TrackerConfig(max_candidate_distance=20.0)
        edges = GraphTracker(config).track_pair(a, b)
        assert (1, 1) not in edges

    def test_disappearing_object_no_edge(self):
        a = scene_frame([(1, RED, (10.0, 10.0))], 0)
        b = scene_frame([], 1)
        edges = GraphTracker().track_pair(a, b)
        assert all(src != 1 for src, _ in edges)

    def test_appearing_object_no_source_edge(self):
        a = scene_frame([], 0)
        b = scene_frame([(1, RED, (10.0, 10.0))], 1)
        edges = GraphTracker().track_pair(a, b)
        assert all(dst != 1 for _, dst in edges)


class TestBuildSTRG:
    def test_chain_across_frames(self):
        frames = [
            scene_frame([(1, RED, (10.0 + 5.0 * t, 50.0))], t)
            for t in range(4)
        ]
        strg = GraphTracker().build_strg(frames)
        assert strg.num_frames == 4
        # The object forms a 3-edge chain.
        key = (0, 1)
        chain = [key]
        while strg.successors(chain[-1]):
            chain.append(strg.successors(chain[-1])[0])
        assert len(chain) == 4

    def test_temporal_attrs_velocity(self):
        frames = [
            scene_frame([(1, RED, (10.0 + 5.0 * t, 50.0))], t)
            for t in range(2)
        ]
        strg = GraphTracker().build_strg(frames)
        succ = strg.successors((0, 1))
        assert succ
        attrs = strg.temporal_attrs((0, 1), succ[0])
        assert attrs.velocity == pytest.approx(5.0)

    def test_single_frame_no_edges(self):
        strg = GraphTracker().build_strg([scene_frame([(1, RED, (0, 0))])])
        assert strg.number_of_temporal_edges() == 0
