"""Tests for RAG (Definition 1) and STRG (Definition 2) containers."""

import math

import numpy as np
import pytest

from repro.errors import GraphStructureError
from repro.graph.attributes import (
    AttributeTolerance,
    NodeAttributes,
    SpatialEdgeAttributes,
    TemporalEdgeAttributes,
    angle_difference,
)
from repro.graph.rag import RegionAdjacencyGraph
from repro.graph.strg import SpatioTemporalRegionGraph
from repro.errors import InvalidParameterError


def node(size=10, color=(100, 100, 100), centroid=(0.0, 0.0)):
    return NodeAttributes(size=size, color=color, centroid=centroid)


class TestNodeAttributes:
    def test_vector_layout(self):
        attrs = node(5, (1, 2, 3), (4.0, 6.0))
        np.testing.assert_array_equal(
            attrs.as_vector(), [5, 1, 2, 3, 4.0, 6.0]
        )

    def test_invalid_size(self):
        with pytest.raises(InvalidParameterError):
            NodeAttributes(size=0, color=(0, 0, 0), centroid=(0, 0))

    def test_color_distance(self):
        a = node(color=(0, 0, 0))
        b = node(color=(3, 4, 0))
        assert a.color_distance(b) == pytest.approx(5.0)

    def test_centroid_distance(self):
        a = node(centroid=(0.0, 0.0))
        b = node(centroid=(3.0, 4.0))
        assert a.centroid_distance(b) == pytest.approx(5.0)

    def test_size_ratio(self):
        assert node(size=50).size_ratio(node(size=100)) == pytest.approx(0.5)
        assert node(size=100).size_ratio(node(size=50)) == pytest.approx(0.5)


class TestEdgeAttributes:
    def test_spatial_between(self):
        a = node(centroid=(0.0, 0.0))
        b = node(centroid=(1.0, 1.0))
        edge = SpatialEdgeAttributes.between(a, b)
        assert edge.distance == pytest.approx(math.sqrt(2))
        assert edge.orientation == pytest.approx(math.pi / 4)

    def test_temporal_between(self):
        prev = node(centroid=(0.0, 0.0))
        cur = node(centroid=(0.0, 2.0))
        edge = TemporalEdgeAttributes.between(prev, cur)
        assert edge.velocity == pytest.approx(2.0)
        assert edge.direction == pytest.approx(math.pi / 2)

    def test_angle_difference_wraps(self):
        assert angle_difference(3.0, -3.0) == pytest.approx(
            2 * math.pi - 6.0
        )
        assert angle_difference(0.1, 0.1) == 0.0


class TestTolerance:
    def test_compatible_nodes(self):
        tol = AttributeTolerance(color=10.0, size_ratio=0.5)
        a = node(size=100, color=(100, 100, 100))
        b = node(size=60, color=(105, 100, 100))
        assert tol.nodes_compatible(a, b)

    def test_color_gate(self):
        tol = AttributeTolerance(color=10.0)
        a = node(color=(0, 0, 0))
        b = node(color=(50, 0, 0))
        assert not tol.nodes_compatible(a, b)

    def test_size_gate(self):
        tol = AttributeTolerance(size_ratio=0.8)
        assert not tol.nodes_compatible(node(size=10), node(size=100))

    def test_centroid_gate(self):
        tol = AttributeTolerance(centroid=5.0)
        a = node(centroid=(0, 0))
        b = node(centroid=(100, 0))
        assert not tol.nodes_compatible(a, b)


class TestRAG:
    def build_triangle(self):
        rag = RegionAdjacencyGraph(frame_index=2)
        for i, c in enumerate([(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)]):
            rag.add_node(i, node(centroid=c))
        rag.add_edge(0, 1)
        rag.add_edge(1, 2)
        rag.add_edge(0, 2)
        return rag

    def test_counts(self):
        rag = self.build_triangle()
        assert len(rag) == 3
        assert rag.number_of_edges() == 3

    def test_edge_attrs_derived(self):
        rag = self.build_triangle()
        assert rag.edge_attrs(0, 1).distance == pytest.approx(10.0)

    def test_missing_node_edge_rejected(self):
        rag = self.build_triangle()
        with pytest.raises(GraphStructureError):
            rag.add_edge(0, 99)

    def test_self_loop_rejected(self):
        rag = self.build_triangle()
        with pytest.raises(GraphStructureError):
            rag.add_edge(1, 1)

    def test_neighbors_and_degree(self):
        rag = self.build_triangle()
        assert sorted(rag.neighbors(0)) == [1, 2]
        assert rag.degree(0) == 2

    def test_subgraph_induced(self):
        rag = self.build_triangle()
        sub = rag.subgraph([0, 1])
        assert len(sub) == 2
        assert sub.number_of_edges() == 1

    def test_from_regions(self):
        regions = {7: node(), 9: node(centroid=(5.0, 0.0))}
        rag = RegionAdjacencyGraph.from_regions(regions, [(7, 9)], 3)
        assert 7 in rag and 9 in rag
        assert rag.frame_index == 3
        assert rag.number_of_edges() == 1

    def test_size_bytes(self):
        rag = self.build_triangle()
        assert rag.size_bytes() == 8 * (6 * 3 + 2 * 3)


class TestSTRG:
    def build(self, num_frames=3):
        rags = []
        for t in range(num_frames):
            rag = RegionAdjacencyGraph()
            rag.add_node(0, node(centroid=(float(t), 0.0)))
            rag.add_node(1, node(centroid=(float(t), 10.0)))
            rag.add_edge(0, 1)
            rags.append(rag)
        return SpatioTemporalRegionGraph(rags)

    def test_frame_indices_normalized(self):
        strg = self.build()
        assert [r.frame_index for r in strg.rags] == [0, 1, 2]

    def test_node_count(self):
        strg = self.build()
        assert strg.number_of_nodes() == 6
        assert len(list(strg.nodes())) == 6

    def test_temporal_edge_roundtrip(self):
        strg = self.build()
        strg.add_temporal_edge((0, 0), (1, 0))
        assert strg.has_temporal_edge((0, 0), (1, 0))
        assert strg.successors((0, 0)) == [(1, 0)]
        assert strg.predecessors((1, 0)) == [(0, 0)]
        attrs = strg.temporal_attrs((0, 0), (1, 0))
        assert attrs.velocity == pytest.approx(1.0)

    def test_non_consecutive_edge_rejected(self):
        strg = self.build()
        with pytest.raises(GraphStructureError):
            strg.add_temporal_edge((0, 0), (2, 0))

    def test_unknown_node_rejected(self):
        strg = self.build()
        with pytest.raises(GraphStructureError):
            strg.add_temporal_edge((0, 5), (1, 0))
        with pytest.raises(GraphStructureError):
            strg.add_temporal_edge((0, 0), (1, 5))

    def test_size_bytes_grows_with_frames(self):
        small = self.build(2)
        big = self.build(10)
        assert big.size_bytes() > small.size_bytes()

    def test_size_includes_temporal_edges(self):
        strg = self.build()
        before = strg.size_bytes()
        strg.add_temporal_edge((0, 0), (1, 0))
        assert strg.size_bytes() == before + 16


class TestTemporalSubgraph:
    def build(self):
        """3 frames x 2 regions, fully tracked, spatial edge per frame."""
        from repro.graph.rag import RegionAdjacencyGraph

        rags = []
        for t in range(3):
            rag = RegionAdjacencyGraph()
            rag.add_node(0, node(centroid=(float(t), 0.0)))
            rag.add_node(1, node(centroid=(float(t), 10.0)))
            rag.add_edge(0, 1)
            rags.append(rag)
        strg = SpatioTemporalRegionGraph(rags)
        for t in range(2):
            strg.add_temporal_edge((t, 0), (t + 1, 0))
            strg.add_temporal_edge((t, 1), (t + 1, 1))
        return strg

    def test_restriction_keeps_selected_nodes_only(self):
        strg = self.build()
        sub = strg.temporal_subgraph([(0, 0), (1, 0), (2, 0)])
        assert sub.number_of_nodes() == 3
        assert sub.number_of_temporal_edges() == 2

    def test_spatial_edges_restricted(self):
        strg = self.build()
        # Keep both regions of frame 0 only: spatial edge survives.
        sub = strg.temporal_subgraph([(0, 0), (0, 1)])
        assert sub.rag(0).number_of_edges() == 1
        # Keep one region per frame: no spatial edges survive.
        chain = strg.temporal_subgraph([(0, 0), (1, 0)])
        assert all(r.number_of_edges() == 0 for r in chain.rags)

    def test_unknown_node_rejected(self):
        strg = self.build()
        with pytest.raises(GraphStructureError):
            strg.temporal_subgraph([(0, 99)])

    def test_org_shape_detection(self):
        strg = self.build()
        chain = strg.temporal_subgraph([(0, 0), (1, 0), (2, 0)])
        assert chain.is_linear_chain()
        assert not strg.is_linear_chain()  # has spatial edges

    def test_attrs_preserved(self):
        strg = self.build()
        sub = strg.temporal_subgraph([(0, 0), (1, 0)])
        assert sub.temporal_attrs((0, 0), (1, 0)).velocity == pytest.approx(1.0)
