"""Tests for ``repro.observability``: registry, tracer, facade and hooks."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import observability as obs
from repro.errors import InvalidParameterError
from repro.graph.object_graph import ObjectGraph
from repro.observability.registry import (
    CacheStats,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.observability.trace import Tracer


@pytest.fixture(autouse=True)
def clean_observability():
    """Every test runs against fresh, disabled observability state."""
    obs.configure(enabled=False, registry=MetricsRegistry(), tracer=Tracer())
    yield
    obs.configure(enabled=False, registry=MetricsRegistry(), tracer=Tracer())


def blob_ogs(k=3, n_per=5, seed=0):
    rng = np.random.default_rng(seed)
    ogs = []
    for c in range(k):
        center = np.array([c * 150.0, c * 90.0])
        for _ in range(n_per):
            steps = rng.normal(0, 2.0, size=(10, 2))
            ogs.append(ObjectGraph.from_values(center + np.cumsum(steps, 0)))
    return ogs


class TestRegistry:
    def test_counter_monotone(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.counter("a").inc(4)
        assert reg.value("a") == 5
        with pytest.raises(InvalidParameterError):
            reg.counter("a").inc(-1)

    def test_gauge_set_inc_dec(self):
        g = Gauge("g")
        g.set(2.5)
        g.inc()
        g.dec(0.5)
        assert g.value == 3.0

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(InvalidParameterError):
            reg.gauge("x")

    def test_histogram_buckets_cumulative(self):
        h = Histogram("h", buckets=(1.0, 2.0, 5.0))
        for v in (0.5, 1.5, 1.7, 3.0, 100.0):
            h.observe(v)
        assert h.count == 5
        assert h.cumulative() == [(1.0, 1), (2.0, 3), (5.0, 4),
                                  (float("inf"), 5)]

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(InvalidParameterError):
            Histogram("bad", buckets=(2.0, 1.0))

    def test_as_dict_flat_and_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b.count").inc(2)
        reg.gauge("a.level").set(7)
        snap = reg.as_dict()
        assert snap == {"a.level": 7.0, "b.count": 2}
        assert list(snap) == sorted(snap)

    def test_prometheus_format(self):
        reg = MetricsRegistry()
        reg.counter("distance.pairs_computed").inc(10)
        reg.histogram("query.latency", (0.1, 1.0)).observe(0.05)
        text = reg.to_prometheus()
        assert "# TYPE repro_distance_pairs_computed counter" in text
        assert "repro_distance_pairs_computed 10" in text
        assert 'repro_query_latency_bucket{le="0.1"} 1' in text
        assert 'repro_query_latency_bucket{le="+Inf"} 1' in text
        assert "repro_query_latency_count 1" in text

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.reset()
        assert reg.value("a", default=None) is None


class TestTracer:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner1"):
                pass
            with tracer.span("inner2"):
                with tracer.span("leaf"):
                    pass
        assert len(tracer.roots) == 1
        root = tracer.roots[0]
        assert root.name == "outer"
        assert [c.name for c in root.children] == ["inner1", "inner2"]
        assert [c.name for c in root.children[1].children] == ["leaf"]

    def test_jsonl_parent_links(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        records = [json.loads(line)
                   for line in tracer.to_jsonl().strip().splitlines()]
        by_name = {r["name"]: r for r in records}
        assert by_name["a"]["parent_id"] is None
        assert by_name["b"]["parent_id"] == by_name["a"]["span_id"]
        assert by_name["a"]["wall_ms"] >= 0.0

    def test_error_recorded_and_propagated(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("nope")
        assert tracer.roots[0].error == "ValueError"

    def test_attrs_and_render_tree(self):
        tracer = Tracer()
        with tracer.span("op", k=5) as sp:
            sp.set(hits=3)
        text = tracer.render_tree()
        assert "op" in text and "k=5" in text and "hits=3" in text

    def test_max_roots_bound(self):
        tracer = Tracer(max_roots=3)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert [s.name for s in tracer.roots] == ["s2", "s3", "s4"]


class TestFacade:
    def test_disabled_span_is_shared_noop(self):
        assert obs.span("x") is obs.span("y")
        obs.count("c")
        obs.observe("h", 1.0)
        assert obs.registry().as_dict() == {}
        assert obs.tracer().roots == []

    def test_enabled_records(self):
        obs.configure(enabled=True)
        with obs.span("op"):
            obs.count("c", 3)
        assert obs.registry().value("c") == 3
        assert obs.tracer().span_names() == {"op"}

    def test_metrics_includes_ambient_cache_stats(self):
        # Works even while disabled: cache stats are collected at call time.
        snap = obs.metrics()
        assert "cache.hits" in snap and "cache.hit_rate" in snap

    def test_exports_write_files(self, tmp_path):
        obs.configure(enabled=True)
        with obs.span("op"):
            obs.count("c")
        json_path = tmp_path / "metrics.json"
        prom_path = tmp_path / "metrics.prom"
        trace_path = tmp_path / "trace.jsonl"
        obs.export_metrics_json(json_path)
        obs.export_metrics_prometheus(prom_path)
        obs.export_trace_jsonl(trace_path)
        assert json.loads(json_path.read_text())["c"] == 1
        assert "repro_c 1" in prom_path.read_text()
        assert json.loads(trace_path.read_text())["name"] == "op"

    def test_reset_keeps_switch(self):
        obs.configure(enabled=True)
        obs.count("c")
        obs.reset()
        assert obs.is_enabled()
        assert obs.registry().as_dict() == {}


class TestInstrumentation:
    def test_knn_increments_counters_and_spans(self):
        from repro.core.index import STRGIndex, STRGIndexConfig

        index = STRGIndex(STRGIndexConfig(n_clusters=3))
        index.build(blob_ogs())
        obs.configure(enabled=True)
        index.knn(blob_ogs()[0], k=3)
        snap = obs.metrics()
        assert snap["index.knn_queries"] == 1
        assert snap["index.leaf_scans"] >= 1
        assert snap["distance.pairs_computed"] > 0
        assert "index.knn" in obs.tracer().span_names()

    def test_build_emits_clustering_spans(self):
        obs.configure(enabled=True)
        from repro.core.index import STRGIndex, STRGIndexConfig

        index = STRGIndex(STRGIndexConfig(n_clusters=3))
        index.build(blob_ogs())
        names = obs.tracer().span_names()
        assert "index.build" in names
        assert "clustering.em.fit" in names
        assert obs.metrics()["em.iterations"] >= 1
        # em.fit spans nest under the build span.
        root = obs.tracer().roots[-1]
        assert root.name == "index.build"
        nested = {c.name for c in root.children}
        assert "clustering.em.fit" in nested

    def test_executor_fanout_nests_under_caller_span(self):
        from repro.distance.eged import MetricEGED
        from repro.parallel import DistanceExecutor

        obs.configure(enabled=True)
        rng = np.random.default_rng(0)
        items = [rng.normal(size=(8, 2)) for _ in range(6)]
        with DistanceExecutor(workers=0) as executor:
            with obs.span("caller"):
                executor.one_vs_many(MetricEGED(), items[0], items[1:])
        root = obs.tracer().roots[-1]
        assert root.name == "caller"
        assert [c.name for c in root.children] == ["parallel.one_vs_many"]
        assert root.children[0].attrs["mode"] == "serial"

    def test_mtree_counts_node_visits(self):
        from repro.distance.eged import MetricEGED
        from repro.mtree.tree import MTree, MTreeConfig

        tree = MTree(MetricEGED(), MTreeConfig(node_capacity=4))
        ogs = blob_ogs()
        for og in ogs:
            tree.insert(og, og.og_id)
        obs.configure(enabled=True)
        tree.knn(ogs[0], k=3)
        assert obs.metrics()["mtree.node_visits"] >= 1

    def test_ingest_spans_and_counters(self, tiny_video):
        from repro.storage.database import VideoDatabase

        obs.configure(enabled=True)
        db = VideoDatabase()
        db.ingest(tiny_video)
        names = obs.tracer().span_names()
        for expected in ("ingest.segment", "pipeline.segmentation",
                         "pipeline.tracking", "pipeline.decomposition",
                         "index.build"):
            assert expected in names, expected
        assert obs.metrics()["ingest.segments_ok"] == 1

    def test_quarantine_counter(self, tiny_video):
        from repro.resilience import FaultInjector, injected
        from repro.storage.database import VideoDatabase

        obs.configure(enabled=True)
        injector = FaultInjector(seed=0)
        injector.inject("decomposition", rate=1.0)
        db = VideoDatabase(fault_policy="skip-and-quarantine")
        with injected(injector):
            assert db.ingest(tiny_video) == 0
        assert obs.metrics()["ingest.segments_quarantined"] == 1

    def test_disabled_hooks_record_nothing(self, tiny_video):
        from repro.storage.database import VideoDatabase

        db = VideoDatabase()
        db.ingest(tiny_video)
        db.knn(np.zeros((4, 2)), k=1)
        assert obs.registry().as_dict() == {}
        assert obs.tracer().roots == []


class TestDeprecationShims:
    def test_cache_stats_moved(self):
        import repro.distance.cache as cache_mod

        with pytest.warns(DeprecationWarning, match="CacheStats moved"):
            shimmed = cache_mod.CacheStats
        assert shimmed is CacheStats

    def test_blessed_import_paths_do_not_warn(self, recwarn):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            from repro.distance import CacheStats as from_distance
            from repro.observability import CacheStats as from_obs
        assert from_distance is from_obs is CacheStats

    def test_cache_counters_surface_in_metrics(self):
        from repro.distance.cache import DistanceCache, set_default_cache
        from repro.distance.eged import MetricEGED

        previous = set_default_cache(DistanceCache())
        try:
            from repro.distance.cache import cached_one_vs_many

            rng = np.random.default_rng(1)
            items = [rng.normal(size=(6, 2)) for _ in range(4)]
            cached_one_vs_many(MetricEGED(), items[0], items[1:])
            cached_one_vs_many(MetricEGED(), items[0], items[1:])
            snap = obs.metrics()
            assert snap["cache.hits"] == 3
            assert snap["cache.misses"] == 3
        finally:
            set_default_cache(previous)

    def test_counter_class_exported(self):
        assert obs.Counter is Counter
        assert isinstance(obs.registry(), MetricsRegistry)
