"""Tests for serialization and the VideoDatabase facade."""

import numpy as np
import pytest

from repro.core.index import STRGIndex, STRGIndexConfig
from repro.errors import IndexCorruptionError, IndexStateError, StorageError
from repro.graph.object_graph import ObjectGraph
from repro.storage.database import VideoDatabase
from repro.storage.serialize import (
    FORMAT_VERSION,
    load_index,
    load_object_graphs,
    save_index,
    save_object_graphs,
)


def blob_ogs(k=3, n_per=5, seed=0):
    rng = np.random.default_rng(seed)
    ogs = []
    for label in range(k):
        for _ in range(n_per):
            length = int(rng.integers(5, 10))
            base = np.linspace(0, 10, length)[:, None]
            values = np.hstack([base + label * 150.0, base])
            ogs.append(ObjectGraph.from_values(
                values + rng.normal(0, 0.5, values.shape), label=label
            ))
    return ogs


class TestObjectGraphSerialization:
    def test_roundtrip(self, tmp_path):
        ogs = blob_ogs()
        path = tmp_path / "ogs.npz"
        save_object_graphs(path, ogs)
        loaded = load_object_graphs(path)
        assert len(loaded) == len(ogs)
        for orig, back in zip(ogs, loaded):
            np.testing.assert_allclose(back.values, orig.values)
            assert back.label == orig.label
            assert back.og_id == orig.og_id

    def test_unlabeled_roundtrip(self, tmp_path):
        ogs = [ObjectGraph.from_values([[1.0, 2.0]])]
        path = tmp_path / "ogs.npz"
        save_object_graphs(path, ogs)
        assert load_object_graphs(path)[0].label is None

    def test_empty_set(self, tmp_path):
        path = tmp_path / "empty.npz"
        save_object_graphs(path, [])
        assert load_object_graphs(path) == []

    def test_missing_file(self, tmp_path):
        with pytest.raises(StorageError):
            load_object_graphs(tmp_path / "nope.npz")


class TestIndexSerialization:
    def test_roundtrip_structure(self, tmp_path):
        ogs = blob_ogs()
        index = STRGIndex(STRGIndexConfig(n_clusters=3))
        index.build(ogs, clip_refs=[f"c{i}" for i in range(len(ogs))])
        path = tmp_path / "index.npz"
        save_index(path, index)
        loaded = load_index(path)
        assert loaded.stats() == index.stats()

    def test_roundtrip_search_identical(self, tmp_path):
        ogs = blob_ogs()
        index = STRGIndex(STRGIndexConfig(n_clusters=3))
        index.build(ogs)
        path = tmp_path / "index.npz"
        save_index(path, index)
        loaded = load_index(path)
        orig_hits = index.knn(ogs[0], 5)
        back_hits = loaded.knn(ogs[0], 5)
        assert [h[0] for h in back_hits] == pytest.approx(
            [h[0] for h in orig_hits]
        )

    def test_clip_refs_survive(self, tmp_path):
        ogs = blob_ogs(k=1, n_per=3)
        index = STRGIndex(STRGIndexConfig(n_clusters=1))
        index.build(ogs, clip_refs=["a", "b", "c"])
        path = tmp_path / "index.npz"
        save_index(path, index)
        loaded = load_index(path)
        refs = {r.clip_ref
                for rec in loaded.root[0].cluster_node for r in rec.leaf}
        assert refs == {"a", "b", "c"}

    def test_config_survives(self, tmp_path):
        index = STRGIndex(STRGIndexConfig(n_clusters=2, leaf_capacity=17))
        index.build(blob_ogs(k=2, n_per=3))
        path = tmp_path / "index.npz"
        save_index(path, index)
        assert load_index(path).config.leaf_capacity == 17

    def test_backgrounds_survive(self, tmp_path):
        from repro.graph.attributes import NodeAttributes
        from repro.graph.decomposition import BackgroundGraph
        from repro.graph.rag import RegionAdjacencyGraph

        rag = RegionAdjacencyGraph()
        rag.add_node(0, NodeAttributes(500, (10.0, 20.0, 30.0), (5.0, 6.0)))
        rag.add_node(1, NodeAttributes(300, (200.0, 0.0, 0.0), (20.0, 6.0)))
        rag.add_edge(0, 1)
        bg = BackgroundGraph(rag, frame_count=40)
        index = STRGIndex(STRGIndexConfig(n_clusters=2))
        index.build(blob_ogs(k=2, n_per=3), background=bg)
        path = tmp_path / "index.npz"
        save_index(path, index)
        loaded = load_index(path)
        restored = loaded.root[0].background
        assert restored is not None
        assert restored.frame_count == 40
        assert len(restored) == 2
        assert restored.rag.number_of_edges() == 1
        # Background routing still works after the roundtrip.
        assert restored.similarity(bg) == pytest.approx(1.0)

    def test_mixed_none_and_real_backgrounds(self, tmp_path):
        from repro.graph.attributes import NodeAttributes
        from repro.graph.decomposition import BackgroundGraph
        from repro.graph.rag import RegionAdjacencyGraph

        rag = RegionAdjacencyGraph()
        rag.add_node(0, NodeAttributes(100, (1.0, 2.0, 3.0), (0.0, 0.0)))
        bg = BackgroundGraph(rag, frame_count=7)
        index = STRGIndex(STRGIndexConfig(n_clusters=1))
        index.build(blob_ogs(k=1, n_per=3, seed=1))          # no background
        index.build(blob_ogs(k=1, n_per=3, seed=2), background=bg)
        path = tmp_path / "index.npz"
        save_index(path, index)
        loaded = load_index(path)
        assert loaded.root[0].background is None
        assert loaded.root[1].background is not None
        assert loaded.root[1].background.frame_count == 7


class TestCorruptionDetection:
    """Persisted archives must fail loudly, never load silently wrong."""

    def _saved_index(self, tmp_path, name="index.npz"):
        index = STRGIndex(STRGIndexConfig(n_clusters=3))
        index.build(blob_ogs())
        path = tmp_path / name
        save_index(path, index)
        return path

    def test_truncated_npz_raises_typed_error(self, tmp_path):
        path = self._saved_index(tmp_path)
        size = path.stat().st_size
        with open(path, "r+b") as fh:
            fh.truncate(size // 2)
        with pytest.raises(IndexCorruptionError) as excinfo:
            load_index(path)
        assert excinfo.value.details["path"].endswith("index.npz")

    @pytest.mark.parametrize("position", [0.1, 0.2, 0.3, 0.4, 0.5,
                                          0.6, 0.7, 0.8, 0.9])
    def test_flipped_byte_never_loads_silently_wrong(self, tmp_path, position):
        # Some offsets land in benign zip metadata (timestamps, attrs):
        # those loads may succeed, but then MUST return the exact index.
        # Payload flips must raise the typed corruption error.
        path = self._saved_index(tmp_path)
        reference = load_index(path)
        size = path.stat().st_size
        offset = int(size * position)
        with open(path, "r+b") as fh:
            fh.seek(offset)
            byte = fh.read(1)
            fh.seek(offset)
            fh.write(bytes([byte[0] ^ 0xFF]))
        try:
            loaded = load_index(path)
        except IndexCorruptionError:
            return
        assert loaded.stats() == reference.stats()
        for og_ref, og_new in zip(reference.object_graphs(),
                                  loaded.object_graphs()):
            np.testing.assert_array_equal(og_ref.values, og_new.values)

    def test_wrong_version_header_raises(self, tmp_path):
        path = self._saved_index(tmp_path)
        with np.load(path, allow_pickle=False) as data:
            arrays = {name: np.array(data[name]) for name in data.files}
        arrays["__format_version__"] = np.int64(FORMAT_VERSION + 99)
        np.savez_compressed(path, **arrays)
        with pytest.raises(IndexCorruptionError, match="version"):
            load_index(path)

    def test_corrupt_og_file_raises(self, tmp_path):
        path = tmp_path / "ogs.npz"
        save_object_graphs(path, blob_ogs())
        with open(path, "r+b") as fh:
            fh.truncate(60)
        with pytest.raises(IndexCorruptionError):
            load_object_graphs(path)

    def test_checksum_survives_clean_roundtrip(self, tmp_path):
        # The integrity header must not interfere with normal loads.
        path = self._saved_index(tmp_path)
        with np.load(path, allow_pickle=False) as data:
            assert "__checksum__" in data.files
            assert int(data["__format_version__"]) == FORMAT_VERSION
        assert len(load_index(path)) == len(blob_ogs())

    def test_legacy_archive_without_header_still_loads(self, tmp_path):
        # Pre-resilience (v1) archives carry no header keys.
        path = self._saved_index(tmp_path)
        with np.load(path, allow_pickle=False) as data:
            arrays = {name: np.array(data[name]) for name in data.files
                      if not name.startswith("__")}
        np.savez_compressed(path, **arrays)
        index = load_index(path)
        assert len(index) == len(blob_ogs())


class TestPathHandling:
    def test_suffixless_og_roundtrip(self, tmp_path):
        ogs = blob_ogs(k=1, n_per=2)
        stem = tmp_path / "ogs"                  # numpy will append .npz
        save_object_graphs(stem, ogs)
        assert (tmp_path / "ogs.npz").exists()
        assert len(load_object_graphs(stem)) == len(ogs)

    def test_suffixless_index_roundtrip(self, tmp_path):
        index = STRGIndex(STRGIndexConfig(n_clusters=2))
        index.build(blob_ogs(k=2, n_per=3))
        stem = tmp_path / "nested" / "idx"
        stem.parent.mkdir()
        save_index(stem, index)
        assert load_index(stem).stats() == index.stats()

    def test_error_messages_use_normalized_path(self, tmp_path):
        with pytest.raises(StorageError, match=r"missing\.npz"):
            load_index(tmp_path / "missing")


class TestVideoDatabase:
    def test_ingest_and_query(self, tiny_video):
        db = VideoDatabase()
        n = db.ingest(tiny_video)
        assert n >= 1
        stats = db.stats()
        assert stats["ogs"] == n
        assert stats["raw_strg_bytes"] > stats["index_bytes"]

    def test_knn_by_trajectory(self, tiny_video):
        db = VideoDatabase()
        db.ingest(tiny_video)
        trajectory = np.stack([
            np.linspace(5, 90, 12), np.full(12, 40.0)
        ], axis=1)
        hits = db.knn(trajectory, k=1)
        assert len(hits) == 1
        assert hits[0].distance >= 0.0

    def test_query_trajectory_deprecated_alias(self, tiny_video):
        db = VideoDatabase()
        db.ingest(tiny_video)
        trajectory = np.stack([
            np.linspace(5, 90, 12), np.full(12, 40.0)
        ], axis=1)
        with pytest.warns(DeprecationWarning, match="query_trajectory"):
            hits = db.query_trajectory(trajectory, k=1)
        assert [h.og.og_id for h in hits] == [
            h.og.og_id for h in db.knn(trajectory, k=1)
        ]

    def test_query_clip(self, tiny_video):
        db = VideoDatabase()
        db.ingest(tiny_video)
        hits = db.query_clip(tiny_video.slice(0, 8), k=2)
        assert hits
        assert hits[0].distance <= hits[-1].distance

    def test_empty_query_rejected(self):
        db = VideoDatabase()
        with pytest.raises(IndexStateError):
            db.knn(np.zeros((3, 2)))

    def test_ingest_object_graphs(self):
        db = VideoDatabase()
        assert db.ingest_object_graphs(blob_ogs(k=2, n_per=3)) == 6
        assert db.stats()["ogs"] == 6

    def test_ingest_empty_og_list(self):
        db = VideoDatabase()
        assert db.ingest_object_graphs([]) == 0

    def test_save_load(self, tmp_path):
        db = VideoDatabase()
        db.ingest_object_graphs(blob_ogs())
        path = tmp_path / "db.npz"
        db.save(path)
        restored = VideoDatabase.load(path)
        assert restored.stats()["ogs"] == db.stats()["ogs"]

    def test_save_empty_rejected(self, tmp_path):
        with pytest.raises(IndexStateError):
            VideoDatabase().save(tmp_path / "x.npz")

    def test_ingest_with_shot_parsing(self, tiny_video):
        # Concatenate two scenes: the tiny video and an inverted-color
        # copy.  With shot parsing each scene is its own segment and the
        # distinct backgrounds occupy separate root records.
        inverted = 255 - tiny_video.frames
        frames = np.concatenate([tiny_video.frames, inverted])
        from repro.video.frames import VideoSegment

        video = VideoSegment(frames, name="two-scenes")
        db = VideoDatabase()
        n = db.ingest(video, parse_shots=True)
        assert n >= 2
        assert db.stats()["backgrounds"] == 2
