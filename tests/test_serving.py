"""Sharded serving: bit-identity, placement, persistence, degradation,
snapshots, the query service and the load generators."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.index import STRGIndex, STRGIndexConfig
from repro.datasets.synthetic import SyntheticConfig, generate_synthetic_ogs
from repro.errors import (
    DeadlineExceededError,
    IndexStateError,
    InvalidParameterError,
    ServiceOverloadError,
    ServiceStoppedError,
    ShardUnavailableError,
)
from repro.resilience import FaultInjector, injected
from repro.serving import (
    LiveIndex,
    LiveIndexConfig,
    QueryService,
    ServiceConfig,
    ShardedIndex,
    ShardedIndexConfig,
    run_closed_loop,
    run_open_loop,
)
from repro.serving.sharding import ShardedSearchResult

K = 5
RADIUS = 60.0


@pytest.fixture(scope="module")
def corpus():
    return generate_synthetic_ogs(SyntheticConfig(num_ogs=96, seed=0))


@pytest.fixture(scope="module")
def queries():
    return generate_synthetic_ogs(SyntheticConfig(num_ogs=6, seed=99))


@pytest.fixture(scope="module")
def mono(corpus):
    index = STRGIndex(STRGIndexConfig(n_clusters=4))
    index.build(corpus)
    return index


def _sharded(corpus, num_shards, placement):
    index = ShardedIndex(ShardedIndexConfig(
        num_shards=num_shards, placement=placement,
        index=STRGIndexConfig(n_clusters=4),
    ))
    index.build(corpus)
    return index


@pytest.fixture(scope="module",
                params=[(n, p) for p in ("hash", "affine")
                        for n in (1, 2, 4)],
                ids=lambda sp: f"{sp[1]}-{sp[0]}")
def sharded(request, corpus):
    num_shards, placement = request.param
    return _sharded(corpus, num_shards, placement)


class TestBitIdentity:
    def test_knn_matches_monolithic(self, sharded, mono, queries):
        for query in queries:
            expected = mono.knn(query, K)
            got = sharded.knn(query, K)
            assert [(d, og.og_id) for d, og, _ in got] == \
                   [(d, og.og_id) for d, og, _ in expected]

    def test_range_matches_monolithic(self, sharded, mono, queries):
        for query in queries:
            expected = mono.range_query(query, RADIUS)
            got = sharded.range_query(query, RADIUS)
            assert [(d, og.og_id) for d, og, _ in got] == \
                   [(d, og.og_id) for d, og, _ in expected]

    def test_shards_partition_corpus(self, sharded, corpus):
        assert sum(sharded.shard_sizes()) == len(corpus) == len(sharded)
        ids = sorted(og.og_id for og in sharded.object_graphs())
        assert ids == sorted(og.og_id for og in corpus)


class TestShardedIndexBasics:
    def test_invalid_config(self):
        with pytest.raises(InvalidParameterError):
            ShardedIndexConfig(num_shards=0)
        with pytest.raises(InvalidParameterError):
            ShardedIndexConfig(placement="mystery")
        with pytest.raises(InvalidParameterError):
            ShardedIndexConfig(eval_batch=0)

    def test_invalid_queries(self, sharded):
        # k=0 is a legal no-op (see docs/SEARCH.md); negative k is not.
        assert sharded.knn(np.zeros((4, 2)), 0) == []
        with pytest.raises(InvalidParameterError):
            sharded.knn(np.zeros((4, 2)), -1)
        with pytest.raises(InvalidParameterError):
            sharded.range_query(np.zeros((4, 2)), -1.0)

    def test_empty_index_rejects_search(self):
        empty = ShardedIndex(ShardedIndexConfig(num_shards=2))
        with pytest.raises(IndexStateError):
            empty.knn(np.zeros((4, 2)), 1)

    def test_insert_and_delete(self, corpus):
        index = _sharded(corpus[:32], 2, "hash")
        extra = corpus[32]
        index.insert(extra)
        index.refresh_bounds()
        assert len(index) == 33
        hits = index.knn(extra, 1)
        assert hits[0][1].og_id == extra.og_id
        assert index.delete(extra.og_id)
        assert not index.delete(extra.og_id)
        assert len(index) == 32

    def test_freeze_blocks_mutation(self, corpus):
        index = _sharded(corpus[:16], 2, "hash")
        index.freeze()
        with pytest.raises(IndexStateError):
            index.insert(corpus[20])
        with pytest.raises(IndexStateError):
            index.delete(corpus[0].og_id)

    def test_clone_is_mutable_and_independent(self, corpus):
        index = _sharded(corpus[:16], 2, "hash").freeze()
        dup = index.clone()
        dup.insert(corpus[30])
        assert len(dup) == 17
        assert len(index) == 16

    def test_stats_shape(self, sharded):
        stats = sharded.stats()
        assert stats["leaf_records"] == len(sharded)
        assert len(stats["shard_sizes"]) == stats["shards"]


class TestPersistence:
    @pytest.mark.parametrize("placement", ["hash", "affine"])
    def test_round_trip(self, corpus, queries, tmp_path, placement):
        from repro.storage.serialize import is_sharded_snapshot

        index = _sharded(corpus[:48], 3, placement)
        expected = [index.knn(q, K) for q in queries]
        path = tmp_path / "serving-idx"
        index.save(path)
        assert is_sharded_snapshot(path)
        loaded = ShardedIndex.load(path)
        assert len(loaded) == len(index)
        assert loaded.config.placement == placement
        for exp, query in zip(expected, queries):
            got = loaded.knn(query, K)
            assert [d for d, _, _ in got] == [d for d, _, _ in exp]

    def test_monolithic_snapshot_not_sharded(self, mono, tmp_path):
        from repro.storage.serialize import is_sharded_snapshot, save_index

        path = tmp_path / "mono"
        save_index(path, mono)
        assert not is_sharded_snapshot(path)
        assert not is_sharded_snapshot(tmp_path / "missing")


class TestDegradedReads:
    def test_shard_failure_degrades(self, corpus, queries):
        index = _sharded(corpus, 2, "hash")
        lost = {og.og_id for og in index.shards[0].object_graphs()}
        with injected(FaultInjector().inject("serving.shard", at={0})):
            result = index.knn_detailed(queries[0], K)
        assert result.degraded
        assert result.failed_shards == [0]
        assert len(result.hits) == K
        assert all(og.og_id not in lost for _, og, _ in result.hits)
        # Next query runs clean: the injector fired only at ordinal 0.

    def test_strict_path_raises(self, corpus, queries):
        index = _sharded(corpus, 2, "hash")
        with injected(FaultInjector().inject("serving.shard", at={0})):
            with pytest.raises(ShardUnavailableError):
                index.knn(queries[0], K)

    def test_range_degrades_too(self, corpus, queries):
        index = _sharded(corpus, 2, "hash")
        clean = index.range_query(queries[0], RADIUS)
        with injected(FaultInjector().inject("serving.shard", at={0})):
            result = index.range_query_detailed(queries[0], RADIUS)
        assert result.degraded and result.failed_shards == [0]
        assert len(result.hits) <= len(clean)


class TestLiveIndex:
    def test_writes_invisible_until_compact(self, corpus):
        live = LiveIndex(_sharded(corpus[:32], 2, "hash"))
        assert live.version == 1
        for og in corpus[32:40]:
            live.insert(og)
        assert live.pending_writes == 8
        assert len(live) == 32  # readers still see snapshot v1
        snapshot = live.compact()
        assert snapshot.version == 2 and live.version == 2
        assert len(live) == 40 and live.pending_writes == 0

    def test_buffered_delete(self, corpus):
        live = LiveIndex(_sharded(corpus[:16], 2, "hash"))
        live.delete(corpus[0].og_id)
        assert len(live) == 16
        live.compact()
        assert len(live) == 15

    def test_empty_compact_keeps_snapshot(self, corpus):
        live = LiveIndex(_sharded(corpus[:16], 2, "hash"))
        before = live.snapshot
        assert live.compact() is before

    def test_auto_compact(self, corpus):
        live = LiveIndex(_sharded(corpus[:16], 2, "hash"),
                         LiveIndexConfig(auto_compact_threshold=4))
        live.bulk_insert(corpus[16:20])
        assert live.version == 2 and len(live) == 20

    def test_monolithic_index_works_too(self, mono, queries):
        import copy

        live = LiveIndex(copy.deepcopy(mono))
        hits = live.knn_detailed(queries[0], K)
        assert isinstance(hits, ShardedSearchResult)
        assert not hits.degraded and len(hits.hits) == K


class _BlockingIndex:
    """Stub index whose queries block until released (service tests)."""

    def __init__(self):
        self.entered = threading.Event()
        self.release = threading.Event()
        self.frozen = False

    def freeze(self):
        self.frozen = True
        return self

    def __len__(self):
        return 1

    def knn_detailed(self, query, k, background=None):
        self.entered.set()
        assert self.release.wait(10.0), "test never released the stub"
        return ShardedSearchResult(hits=[(0.0, query, None)])

    def range_query_detailed(self, query, radius, background=None):
        return self.knn_detailed(query, radius, background)


class TestQueryService:
    def test_serves_real_queries(self, corpus, queries):
        live = LiveIndex(_sharded(corpus[:32], 2, "affine"))
        with QueryService(live, ServiceConfig(workers=2)) as service:
            response = service.knn(queries[0], K)
        assert len(response.hits) == K
        assert response.snapshot_version == 1
        assert not response.degraded and response.latency > 0
        payload = response.as_dict()
        assert payload["snapshot_version"] == 1
        assert len(payload["hits"]) == K

    def test_admission_control_rejects_when_full(self, corpus):
        stub = _BlockingIndex()
        live = LiveIndex(stub)
        service = QueryService(live, ServiceConfig(workers=1, queue_depth=1))
        try:
            first = service.submit_knn(corpus[0], 1)
            assert stub.entered.wait(5.0)
            second = service.submit_knn(corpus[1], 1)  # fills the queue
            with pytest.raises(ServiceOverloadError):
                service.submit_knn(corpus[2], 1)
        finally:
            stub.release.set()
            service.shutdown()
        assert first.result(5.0).hits and second.result(5.0).hits

    def test_deadline_exceeded_in_queue(self, corpus):
        stub = _BlockingIndex()
        service = QueryService(LiveIndex(stub),
                               ServiceConfig(workers=1, queue_depth=4))
        try:
            blocker = service.submit_knn(corpus[0], 1)
            assert stub.entered.wait(5.0)
            doomed = service.submit_knn(corpus[1], 1, deadline=0.01)
            threading.Event().wait(0.05)  # let the deadline lapse
        finally:
            stub.release.set()
            service.shutdown()
        assert blocker.result(5.0).hits
        with pytest.raises(DeadlineExceededError) as excinfo:
            doomed.result(5.0)
        assert excinfo.value.phase == "queued"

    def test_deadline_exceeded_mid_execution(self, corpus):
        stub = _BlockingIndex()
        service = QueryService(LiveIndex(stub),
                               ServiceConfig(workers=1, queue_depth=4))
        try:
            doomed = service.submit_knn(corpus[0], 1, deadline=0.2)
            assert stub.entered.wait(5.0)  # executing before expiry check
            threading.Event().wait(0.4)  # deadline lapses mid-execution
        finally:
            stub.release.set()
            service.shutdown()
        with pytest.raises(DeadlineExceededError) as excinfo:
            doomed.result(5.0)
        assert excinfo.value.phase == "execution"

    def test_full_queue_purges_expired_requests(self, corpus):
        stub = _BlockingIndex()
        service = QueryService(LiveIndex(stub),
                               ServiceConfig(workers=1, queue_depth=1))
        try:
            blocker = service.submit_knn(corpus[0], 1)
            assert stub.entered.wait(5.0)
            doomed = service.submit_knn(corpus[1], 1, deadline=0.01)
            threading.Event().wait(0.05)  # doomed expires while queued
            # The queue is full, but the expired request is dead weight:
            # it is failed on the spot and the live request admitted.
            third = service.submit_knn(corpus[2], 1)
        finally:
            stub.release.set()
            service.shutdown()
        assert blocker.result(5.0).hits and third.result(5.0).hits
        with pytest.raises(DeadlineExceededError) as excinfo:
            doomed.result(5.0)
        assert excinfo.value.phase == "queued"

    def test_stopped_service_rejects(self, corpus, queries):
        live = LiveIndex(_sharded(corpus[:16], 1, "hash"))
        service = QueryService(live, ServiceConfig(workers=1))
        service.shutdown()
        with pytest.raises(ServiceStoppedError):
            service.knn(queries[0], 1)
        service.shutdown()  # idempotent

    def test_query_errors_relayed(self, corpus):
        live = LiveIndex(_sharded(corpus[:16], 1, "hash"))
        with QueryService(live, ServiceConfig(workers=1)) as service:
            with pytest.raises(InvalidParameterError):
                service.knn(corpus[0], -1)

    def test_bounded_shutdown_reports_stragglers(self, corpus):
        stub = _BlockingIndex()
        service = QueryService(LiveIndex(stub),
                               ServiceConfig(workers=1, queue_depth=4))
        try:
            grinding = service.submit_knn(corpus[0], 1)
            assert stub.entered.wait(5.0)
            # The worker is mid-request and will not finish inside the
            # budget: shutdown returns anyway and flags the straggler.
            service.shutdown(timeout=0.1)
            health = service.health()
            assert health["stopped"]
            assert len(health["stragglers"]) == 1
        finally:
            stub.release.set()
        assert grinding.result(5.0).hits
        # A later bounded retry joins the now-finished worker and the
        # straggler report clears.
        service.shutdown(timeout=5.0)
        assert service.health()["stragglers"] == []
        assert service.health()["workers_alive"] == 0

    def test_shutdown_timeout_validation(self, corpus):
        live = LiveIndex(_sharded(corpus[:16], 1, "hash"))
        service = QueryService(live, ServiceConfig(workers=1))
        with pytest.raises(InvalidParameterError):
            service.shutdown(timeout=0.0)
        with pytest.raises(InvalidParameterError):
            service.shutdown(timeout=-1.0)
        service.shutdown(timeout=5.0)
        assert service.health()["stragglers"] == []


class TestLoadGenerators:
    def test_closed_loop(self, corpus, queries):
        live = LiveIndex(_sharded(corpus[:32], 2, "affine"))
        with QueryService(live, ServiceConfig(workers=2)) as service:
            report = run_closed_loop(service, queries, k=K,
                                     num_requests=12, concurrency=2)
        assert report.requests_sent == 12 and report.responses == 12
        assert report.rejected == 0 and report.errors == 0
        assert report.throughput > 0
        assert report.percentile(50) <= report.percentile(99)
        payload = report.as_dict()
        assert payload["latency"]["p99"] >= payload["latency"]["p50"]
        assert "closed-loop" in str(report)

    def test_open_loop(self, corpus, queries):
        live = LiveIndex(_sharded(corpus[:32], 2, "affine"))
        with QueryService(live, ServiceConfig(workers=2)) as service:
            report = run_open_loop(service, queries, k=K,
                                   rate=100.0, duration=0.3)
        assert report.requests_sent > 0
        assert report.responses + report.rejected + report.errors \
            + report.deadline_exceeded == report.requests_sent

    def test_parameter_validation(self, corpus, queries):
        live = LiveIndex(_sharded(corpus[:16], 1, "hash"))
        with QueryService(live, ServiceConfig(workers=1)) as service:
            with pytest.raises(InvalidParameterError):
                run_closed_loop(service, queries, num_requests=4,
                                duration=1.0)
            with pytest.raises(InvalidParameterError):
                run_closed_loop(service, queries)
            with pytest.raises(InvalidParameterError):
                run_open_loop(service, queries, rate=0.0, duration=1.0)


class TestDatabaseIntegration:
    def test_sharded_database_round_trip(self, corpus, tmp_path):
        from repro.api import open_database

        db = open_database(tmp_path / "db", shards=2, placement="hash")
        db.ingest_object_graphs(corpus[:24])
        assert db.index.num_shards == 2
        stats = db.stats()
        assert stats["shards"] == 2 and sum(stats["shard_sizes"]) == 24
        expected = [(h.distance, h.og.og_id) for h in db.knn(corpus[0], K)]
        db.save()
        reopened = open_database(tmp_path / "db", create=False)
        assert reopened.shards == 2
        got = [(h.distance, h.og.og_id) for h in reopened.knn(corpus[0], K)]
        assert [d for d, _ in got] == [d for d, _ in expected]

    def test_service_config_validation(self):
        with pytest.raises(InvalidParameterError):
            ServiceConfig(workers=0)
        with pytest.raises(InvalidParameterError):
            ServiceConfig(queue_depth=0)
        with pytest.raises(InvalidParameterError):
            ServiceConfig(default_deadline=0.0)
        with pytest.raises(InvalidParameterError):
            LiveIndexConfig(auto_compact_threshold=0)


class TestServingCLI:
    def test_bench_load_smoke(self, capsys):
        from repro.cli import main

        assert main(["bench-load", "--shards", "1", "2", "--num-ogs", "48",
                     "--clusters", "3", "--requests", "8",
                     "--concurrency", "1", "--workers", "1"]) == 0
        out = capsys.readouterr().out
        assert "1 shard(s)" in out and "2 shard(s)" in out
        assert "speedup" in out

    def test_serve_smoke(self, corpus, tmp_path, capsys):
        from repro.cli import main

        index = _sharded(corpus[:24], 2, "hash")
        path = tmp_path / "served"
        index.save(path)
        assert main(["serve", str(path), "--rate", "20", "--duration",
                     "0.3", "--workers", "1", "-k", "3"]) == 0
        out = capsys.readouterr().out
        assert "open-loop" in out

    def test_serve_reshards_monolithic(self, mono, tmp_path, capsys):
        from repro.cli import main
        from repro.storage.serialize import save_index

        path = tmp_path / "mono"
        save_index(path, mono)
        assert main(["serve", str(path), "--shards", "2", "--rate", "20",
                     "--duration", "0.2", "-k", "3"]) == 0
        assert "resharding" in capsys.readouterr().out
