"""Tests for X-means-style cluster-count discovery."""

import numpy as np
import pytest

from repro.clustering.evaluation import clustering_error_rate
from repro.clustering.xmeans import XMeansClustering, XMeansConfig
from repro.errors import InvalidParameterError


def blob_ogs(k=4, n_per=8, separation=150.0, seed=0):
    rng = np.random.default_rng(seed)
    ogs, labels = [], []
    for label in range(k):
        for _ in range(n_per):
            length = int(rng.integers(6, 10))
            base = np.linspace(0, 10, length)[:, None]
            values = np.hstack([base + label * separation, base])
            ogs.append(values + rng.normal(0, 0.5, values.shape))
            labels.append(label)
    return ogs, labels


class TestConfig:
    def test_invalid_range(self):
        with pytest.raises(InvalidParameterError):
            XMeansConfig(k_min=5, k_max=3)
        with pytest.raises(InvalidParameterError):
            XMeansConfig(k_min=0)

    def test_invalid_min_cluster_size(self):
        with pytest.raises(InvalidParameterError):
            XMeansConfig(min_cluster_size=1)


class TestDiscovery:
    def test_finds_four_blobs_from_two(self):
        ogs, labels = blob_ogs(k=4, n_per=8)
        xm = XMeansClustering(XMeansConfig(k_min=2, k_max=8, seed=1))
        result = xm.fit(ogs)
        assert result.num_clusters == 4
        assert clustering_error_rate(labels, result.assignments) == 0.0

    def test_respects_k_max(self):
        ogs, _ = blob_ogs(k=6, n_per=6)
        xm = XMeansClustering(XMeansConfig(k_min=2, k_max=3, seed=1))
        result = xm.fit(ogs)
        assert result.num_clusters <= 3

    def test_no_split_on_single_blob(self):
        ogs, _ = blob_ogs(k=1, n_per=16)
        xm = XMeansClustering(XMeansConfig(k_min=1, k_max=6, seed=1))
        result = xm.fit(ogs)
        assert result.num_clusters == 1

    def test_small_clusters_not_split(self):
        ogs, _ = blob_ogs(k=2, n_per=3)  # below 2 * min_cluster_size
        xm = XMeansClustering(XMeansConfig(k_min=2, k_max=8,
                                           min_cluster_size=4, seed=1))
        result = xm.fit(ogs)
        assert result.num_clusters == 2

    def test_agrees_with_bic_sweep_on_clean_data(self):
        from repro.clustering.bic import select_num_clusters

        ogs, _ = blob_ogs(k=3, n_per=8)
        sweep_k, _ = select_num_clusters(ogs, 1, 6, seed=1)
        xm_result = XMeansClustering(
            XMeansConfig(k_min=1, k_max=6, seed=1)
        ).fit(ogs)
        assert xm_result.num_clusters == sweep_k == 3
