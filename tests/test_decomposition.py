"""Tests for STRG decomposition (Section 2.3): ORGs, OG merging, BG."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.graph.attributes import NodeAttributes
from repro.graph.decomposition import (
    DecompositionConfig,
    decompose,
    extract_background_graph,
    extract_object_region_graphs,
    merge_object_region_graphs,
)
from repro.graph.object_graph import ObjectRegionGraph
from repro.graph.rag import RegionAdjacencyGraph
from repro.graph.strg import SpatioTemporalRegionGraph


def node(size=100, color=(100.0, 100.0, 100.0), centroid=(0.0, 0.0)):
    return NodeAttributes(size=size, color=color, centroid=centroid)


def build_strg_with_mover(num_frames=5, speed=5.0):
    """STRG: one static background region (id 0) and one mover (id 1)."""
    strg = SpatioTemporalRegionGraph()
    for t in range(num_frames):
        rag = RegionAdjacencyGraph()
        rag.add_node(0, node(size=5000, centroid=(50.0, 50.0)))
        rag.add_node(1, node(size=100, color=(200.0, 0.0, 0.0),
                             centroid=(10.0 + speed * t, 20.0)))
        rag.add_edge(0, 1)
        strg.append_rag(rag)
    for t in range(num_frames - 1):
        strg.add_temporal_edge((t, 0), (t + 1, 0))
        strg.add_temporal_edge((t, 1), (t + 1, 1))
    return strg


def make_org(start_frame, centroids, size=100):
    keys = [(start_frame + i, 1) for i in range(len(centroids))]
    attrs = [node(size=size, centroid=tuple(c)) for c in centroids]
    return ObjectRegionGraph(keys, attrs)


class TestConfig:
    def test_invalid_min_length(self):
        with pytest.raises(InvalidParameterError):
            DecompositionConfig(min_org_length=0)

    def test_invalid_velocity(self):
        with pytest.raises(InvalidParameterError):
            DecompositionConfig(min_velocity=-1.0)


class TestExtractORGs:
    def test_mover_is_foreground(self):
        strg = build_strg_with_mover()
        fg, bg = extract_object_region_graphs(strg)
        assert len(fg) == 1
        assert len(bg) == 1
        assert fg[0].mean_velocity() == pytest.approx(5.0)

    def test_static_region_is_background(self):
        strg = build_strg_with_mover(speed=0.0)
        fg, bg = extract_object_region_graphs(strg)
        assert len(fg) == 0
        assert len(bg) == 2

    def test_short_chain_is_background(self):
        strg = build_strg_with_mover(num_frames=2)
        config = DecompositionConfig(min_org_length=3)
        fg, _ = extract_object_region_graphs(strg, config)
        assert len(fg) == 0

    def test_chains_cover_all_nodes(self):
        strg = build_strg_with_mover()
        fg, bg = extract_object_region_graphs(strg)
        covered = set()
        for org in fg + bg:
            covered.update(org.node_keys)
        assert covered == set(strg.nodes())


class TestMergeORGs:
    def test_co_moving_parts_merge(self):
        # Head and body of one person: parallel trajectories, 4 px apart.
        head = make_org(0, [(10.0 + 3 * t, 20.0) for t in range(5)])
        body = make_org(0, [(10.0 + 3 * t, 24.0) for t in range(5)])
        ogs = merge_object_region_graphs([head, body])
        assert len(ogs) == 1
        assert ogs[0].meta["num_orgs"] == 2

    def test_opposite_directions_stay_separate(self):
        right = make_org(0, [(10.0 + 3 * t, 20.0) for t in range(5)])
        left = make_org(0, [(25.0 - 3 * t, 20.0) for t in range(5)])
        ogs = merge_object_region_graphs([right, left])
        assert len(ogs) == 2

    def test_different_speeds_stay_separate(self):
        slow = make_org(0, [(10.0 + 1 * t, 20.0) for t in range(5)])
        fast = make_org(0, [(10.0 + 9 * t, 20.0) for t in range(5)])
        ogs = merge_object_region_graphs([slow, fast])
        assert len(ogs) == 2

    def test_far_apart_stay_separate(self):
        a = make_org(0, [(10.0 + 3 * t, 20.0) for t in range(5)])
        b = make_org(0, [(10.0 + 3 * t, 150.0) for t in range(5)])
        config = DecompositionConfig(gap_tolerance=40.0)
        ogs = merge_object_region_graphs([a, b], config)
        assert len(ogs) == 2

    def test_non_overlapping_in_time_stay_separate(self):
        a = make_org(0, [(10.0 + 3 * t, 20.0) for t in range(3)])
        b = make_org(10, [(10.0 + 3 * t, 20.0) for t in range(3)])
        ogs = merge_object_region_graphs([a, b])
        assert len(ogs) == 2

    def test_empty_input(self):
        assert merge_object_region_graphs([]) == []

    def test_transitive_merging(self):
        # a-b close, b-c close, a-c far: union-find joins all three.
        a = make_org(0, [(10.0 + 3 * t, 0.0) for t in range(5)])
        b = make_org(0, [(10.0 + 3 * t, 30.0) for t in range(5)])
        c = make_org(0, [(10.0 + 3 * t, 60.0) for t in range(5)])
        config = DecompositionConfig(gap_tolerance=35.0)
        ogs = merge_object_region_graphs([a, b, c], config)
        assert len(ogs) == 1


class TestBackgroundGraph:
    def test_single_bg_node_per_chain(self):
        strg = build_strg_with_mover(speed=0.0, num_frames=6)
        _, bg_orgs = extract_object_region_graphs(strg)
        bg = extract_background_graph(strg, bg_orgs)
        assert len(bg) == 2  # two static chains -> two BG nodes
        assert bg.frame_count == 6

    def test_bg_size_much_smaller_than_per_frame_sum(self):
        strg = build_strg_with_mover(speed=0.0, num_frames=20)
        _, bg_orgs = extract_object_region_graphs(strg)
        bg = extract_background_graph(strg, bg_orgs)
        per_frame_total = sum(r.size_bytes() for r in strg.rags)
        assert bg.size_bytes() * 5 < per_frame_total

    def test_bg_inherits_spatial_adjacency(self):
        strg = build_strg_with_mover(speed=0.0)
        _, bg_orgs = extract_object_region_graphs(strg)
        bg = extract_background_graph(strg, bg_orgs)
        assert bg.rag.number_of_edges() == 1

    def test_bg_self_similarity(self):
        strg = build_strg_with_mover(speed=0.0)
        _, bg_orgs = extract_object_region_graphs(strg)
        bg = extract_background_graph(strg, bg_orgs)
        assert bg.similarity(bg) == pytest.approx(1.0)

    def test_large_bg_similarity_uses_matching_fallback(self):
        # Two 20-region backgrounds: the exact clique search would blow
        # up; the matching fallback must stay fast and score identical
        # backgrounds as 1.0.
        from repro.graph.decomposition import BackgroundGraph

        rag = RegionAdjacencyGraph()
        for i in range(20):
            rag.add_node(i, node(size=100 + i,
                                 color=(10.0 * i % 255, 50.0, 50.0),
                                 centroid=(float(i) * 9.0, 5.0)))
        bg = BackgroundGraph(rag, frame_count=5)
        assert len(bg) * len(bg) > BackgroundGraph.MAX_EXACT_ASSOCIATION
        assert bg.similarity(bg) == pytest.approx(1.0)

    def test_large_dissimilar_bgs_score_low(self):
        from repro.graph.decomposition import BackgroundGraph

        a = RegionAdjacencyGraph()
        b = RegionAdjacencyGraph()
        for i in range(15):
            a.add_node(i, node(color=(250.0, 0.0, 0.0),
                               centroid=(float(i), 0.0)))
            b.add_node(i, node(color=(0.0, 0.0, 250.0),
                               centroid=(float(i), 0.0)))
        bg_a = BackgroundGraph(a, 5)
        bg_b = BackgroundGraph(b, 5)
        assert bg_a.similarity(bg_b) == 0.0

    def test_empty_bg_similarity(self):
        strg = build_strg_with_mover(speed=0.0)
        _, bg_orgs = extract_object_region_graphs(strg)
        bg = extract_background_graph(strg, bg_orgs)
        empty = extract_background_graph(SpatioTemporalRegionGraph(), [])
        assert empty.similarity(empty) == 1.0
        assert empty.similarity(bg) == 0.0


class TestDecompose:
    def test_full_decomposition(self):
        strg = build_strg_with_mover()
        result = decompose(strg)
        assert len(result.object_graphs) == 1
        assert len(result.background) == 1
        og = result.object_graphs[0]
        assert len(og) == 5
        assert og.mean_velocity() == pytest.approx(5.0)

    def test_og_trajectory_matches_motion(self):
        strg = build_strg_with_mover(speed=4.0)
        result = decompose(strg)
        og = result.object_graphs[0]
        np.testing.assert_allclose(
            og.values[:, 0], [10.0, 14.0, 18.0, 22.0, 26.0]
        )
