"""Tests for the synthetic OG workload generator."""

import numpy as np
import pytest

from repro.datasets.patterns import ALL_PATTERNS
from repro.datasets.synthetic import SyntheticConfig, generate_synthetic_ogs
from repro.errors import InvalidParameterError
from repro.graph.object_graph import ObjectGraph


class TestSyntheticConfig:
    def test_defaults_valid(self):
        config = SyntheticConfig()
        assert config.num_ogs == 480
        assert config.noise_fraction == 0.05

    def test_invalid_num_ogs(self):
        with pytest.raises(InvalidParameterError):
            SyntheticConfig(num_ogs=0)

    def test_invalid_noise(self):
        with pytest.raises(InvalidParameterError):
            SyntheticConfig(noise_fraction=1.5)
        with pytest.raises(InvalidParameterError):
            SyntheticConfig(noise_fraction=-0.1)

    def test_invalid_sigma(self):
        with pytest.raises(InvalidParameterError):
            SyntheticConfig(sigma=-1.0)

    def test_empty_patterns_rejected(self):
        with pytest.raises(InvalidParameterError):
            SyntheticConfig(patterns=[])


class TestGeneration:
    def test_count_and_type(self):
        ogs = generate_synthetic_ogs(SyntheticConfig(num_ogs=25, seed=1))
        assert len(ogs) == 25
        assert all(isinstance(og, ObjectGraph) for og in ogs)

    def test_round_robin_labels(self):
        ogs = generate_synthetic_ogs(SyntheticConfig(num_ogs=96, seed=1))
        labels = {og.label for og in ogs}
        assert labels == {p.pattern_id for p in ALL_PATTERNS}

    def test_lengths_within_pattern_range(self):
        ogs = generate_synthetic_ogs(SyntheticConfig(num_ogs=48, seed=2))
        for og in ogs:
            lo, hi = ALL_PATTERNS[og.label].length_range
            assert lo <= len(og) <= hi

    def test_deterministic_for_seed(self):
        a = generate_synthetic_ogs(SyntheticConfig(num_ogs=10, seed=3))
        b = generate_synthetic_ogs(SyntheticConfig(num_ogs=10, seed=3))
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x.values, y.values)

    def test_different_seeds_differ(self):
        a = generate_synthetic_ogs(SyntheticConfig(num_ogs=5, seed=1))
        b = generate_synthetic_ogs(SyntheticConfig(num_ogs=5, seed=2))
        assert not np.array_equal(a[0].values, b[0].values)

    def test_zero_noise_stays_near_pattern(self):
        config = SyntheticConfig(num_ogs=48, noise_fraction=0.0, sigma=0.0,
                                 seed=4)
        ogs = generate_synthetic_ogs(config)
        for og in ogs:
            pattern_path = ALL_PATTERNS[og.label].generate(len(og))
            np.testing.assert_allclose(og.values, pattern_path, atol=1e-9)

    def test_noise_increases_deviation(self):
        base = SyntheticConfig(num_ogs=96, noise_fraction=0.05, sigma=0.0, seed=5)
        noisy = SyntheticConfig(num_ogs=96, noise_fraction=0.30, sigma=0.0, seed=5)
        def mean_dev(cfg):
            total = 0.0
            for og in generate_synthetic_ogs(cfg):
                path = ALL_PATTERNS[og.label].generate(len(og))
                total += float(np.mean(np.abs(og.values - path)))
            return total / cfg.num_ogs
        assert mean_dev(noisy) > mean_dev(base) * 2

    def test_outliers_present_at_high_noise(self):
        config = SyntheticConfig(num_ogs=48, noise_fraction=0.30, sigma=0.0,
                                 jitter_scale=0.0, seed=6)
        ogs = generate_synthetic_ogs(config)
        out_of_line = 0
        for og in ogs:
            path = ALL_PATTERNS[og.label].generate(len(og))
            deviation = np.linalg.norm(og.values - path, axis=1)
            out_of_line += int(np.sum(deviation > 20.0))
        assert out_of_line > 0

    def test_metadata_attached(self):
        ogs = generate_synthetic_ogs(SyntheticConfig(num_ogs=3, seed=7))
        assert "pattern" in ogs[0].meta
        assert "object_size" in ogs[0].meta

    def test_subset_of_patterns(self):
        config = SyntheticConfig(num_ogs=12, patterns=ALL_PATTERNS[:3], seed=8)
        ogs = generate_synthetic_ogs(config)
        assert {og.label for og in ogs} == {0, 1, 2}
