"""Tests for subsequence EGED matching."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distance.erp import erp
from repro.distance.subsequence import eged_subsequence
from repro.graph.object_graph import ObjectGraph
from repro.storage.database import VideoDatabase

series_strategy = st.lists(
    st.floats(min_value=-50, max_value=50, allow_nan=False),
    min_size=1, max_size=8,
).map(lambda xs: np.asarray(xs, dtype=np.float64).reshape(-1, 1))


class TestEgedSubsequence:
    def test_exact_window_found(self):
        target = np.arange(20, dtype=float).reshape(-1, 1) * 10
        query = target[7:12]
        match = eged_subsequence(query, target)
        assert match.cost == pytest.approx(0.0)
        assert (match.start, match.stop) == (7, 12)

    def test_whole_target_match(self):
        target = np.arange(6, dtype=float).reshape(-1, 1)
        match = eged_subsequence(target, target)
        assert match.cost == pytest.approx(0.0)
        assert (match.start, match.stop) == (0, 6)

    def test_cost_at_most_full_distance(self, rng):
        for _ in range(10):
            q = rng.normal(size=(int(rng.integers(2, 8)), 2)) * 10
            t = rng.normal(size=(int(rng.integers(2, 15)), 2)) * 10
            assert eged_subsequence(q, t).cost <= erp(q, t) + 1e-9

    def test_noisy_window_still_localized(self, rng):
        target = np.zeros((30, 2))
        target[:, 0] = np.arange(30)
        query = target[10:18] + rng.normal(0, 0.1, (8, 2))
        match = eged_subsequence(query, target)
        assert 8 <= match.start <= 12
        assert 16 <= match.stop <= 20

    def test_window_bounds_valid(self, rng):
        q = rng.normal(size=(5, 2))
        t = rng.normal(size=(12, 2))
        match = eged_subsequence(q, t)
        assert 0 <= match.start <= match.stop <= 12

    @given(series_strategy, series_strategy)
    @settings(max_examples=40, deadline=None)
    def test_property_bounded_by_full_erp(self, q, t):
        assert eged_subsequence(q, t).cost <= erp(q, t) + 1e-7

    def test_2d_query_in_trajectory(self):
        # A U-turn hidden inside a longer wandering track.
        leg = np.stack([np.arange(10.0), np.zeros(10)], axis=1)
        uturn = np.vstack([
            np.stack([np.arange(5.0) + 10, np.zeros(5)], axis=1),
            np.stack([14.0 - np.arange(5.0), np.full(5, 2.0)], axis=1),
        ])
        tail = np.stack([np.arange(10.0), np.full(10, 2.0)], axis=1)[::-1]
        target = np.vstack([leg, uturn, tail])
        match = eged_subsequence(uturn, target)
        assert match.cost == pytest.approx(0.0, abs=1e-9)
        assert match.start == 10


class TestDatabaseSubtrajectoryQuery:
    def test_finds_containing_track(self):
        db = VideoDatabase()
        long_track = np.stack([np.arange(40.0) * 3, np.zeros(40)], axis=1)
        other = np.stack([np.zeros(40), np.arange(40.0) * 3], axis=1)
        ogs = [ObjectGraph.from_values(long_track),
               ObjectGraph.from_values(other)]
        db.ingest_object_graphs(ogs)
        query = long_track[15:25]
        hits = db.query_subtrajectory(query, k=2)
        assert hits[0].og.og_id == ogs[0].og_id
        assert hits[0].distance == pytest.approx(0.0, abs=1e-9)
        assert hits[0].clip_ref == (15, 25)
        assert hits[1].distance > hits[0].distance
