"""Tests of the vectorized + frame-parallel ingestion engine.

Three independent guarantees are pinned here:

1. the vectorized kernels (min-label-propagation components, padded-array
   mean-shift filtering, bincount region merging) match the seed
   implementations — labelings up to label permutation, filtering
   bit-exactly;
2. the :func:`repro.parallel.ordered_chunk_map` primitive preserves item
   order and values regardless of chunking or pooling;
3. serial and parallel ingest produce bit-identical STRG / OG / index
   contents and identical quarantine decisions at every worker count.

Seed reference implementations are copied verbatim (like the bench
baselines) so the comparison target cannot drift.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.graph.tracking import GraphTracker
from repro.parallel import chunk_bounds, ordered_chunk_map, usable_cpus
from repro.pipeline import PipelineConfig, VideoPipeline
from repro.resilience import FaultInjector, injected
from repro.storage.database import VideoDatabase
from repro.video.regions import adjacent_label_pairs, region_adjacency
from repro.video.segmentation import (
    GridSegmenter,
    MeanShiftSegmenter,
    _connected_components,
    _label_transitions,
    _merge_small_regions,
)

# --------------------------------------------------------------------------
# Seed reference implementations (verbatim copies of the pre-vectorization
# code) — the ground truth the numpy kernels must reproduce.
# --------------------------------------------------------------------------


class _SeedUnionFind:
    def __init__(self, n: int):
        self.parent = list(range(n))

    def find(self, x: int) -> int:
        parent = self.parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


def seed_connected_components(features: np.ndarray,
                              threshold: float) -> np.ndarray:
    h, w = features.shape[:2]
    uf = _SeedUnionFind(h * w)
    flat = features.reshape(h * w, -1)
    for y in range(h):
        base = y * w
        for x in range(w - 1):
            i = base + x
            diff = flat[i] - flat[i + 1]
            if np.sqrt(np.sum(diff * diff)) <= threshold:
                uf.union(i, i + 1)
    for y in range(h - 1):
        base = y * w
        for x in range(w):
            i = base + x
            diff = flat[i] - flat[i + w]
            if np.sqrt(np.sum(diff * diff)) <= threshold:
                uf.union(i, i + w)
    roots = np.fromiter((uf.find(i) for i in range(h * w)), dtype=np.int64)
    _, labels = np.unique(roots, return_inverse=True)
    return labels.reshape(h, w).astype(np.int64)


def seed_filter(segmenter: MeanShiftSegmenter,
                features: np.ndarray) -> np.ndarray:
    h, w, _ = features.shape
    hr2 = segmenter.range_bandwidth ** 2
    offsets = segmenter._offsets()
    current = features.copy()
    for _ in range(segmenter.max_iterations):
        acc = np.zeros_like(current)
        cnt = np.zeros((h, w, 1), dtype=np.float64)
        for dy, dx in offsets:
            shifted = np.roll(np.roll(current, dy, axis=0), dx, axis=1)
            valid = np.ones((h, w), dtype=bool)
            if dy > 0:
                valid[:dy, :] = False
            elif dy < 0:
                valid[dy:, :] = False
            if dx > 0:
                valid[:, :dx] = False
            elif dx < 0:
                valid[:, dx:] = False
            diff = shifted - current
            in_range = np.sum(diff * diff, axis=2) <= hr2
            mask = (in_range & valid)[..., None].astype(np.float64)
            acc += shifted * mask
            cnt += mask
        new = acc / np.maximum(cnt, 1.0)
        converged = np.max(np.abs(new - current)) < 0.05
        current = new
        if converged:
            break
    return current


def assert_same_partition(a: np.ndarray, b: np.ndarray) -> None:
    """Two label images describe the same partition (up to permutation)."""
    assert a.shape == b.shape
    pairs = np.unique(np.stack([a.ravel(), b.ravel()], axis=1), axis=0)
    # A bijection between label sets: every a-label maps to exactly one
    # b-label and vice versa.
    assert len(pairs) == len(np.unique(a)) == len(np.unique(b))


def _adversarial_images() -> dict[str, np.ndarray]:
    h, w = 17, 23
    yy, xx = np.mgrid[0:h, 0:w]
    rng = np.random.default_rng(42)
    snake = ((yy % 4 == 0) | ((xx == 0) & (yy % 4 == 1))
             | ((xx == w - 1) & (yy % 4 == 3)))
    return {
        "all_equal": np.full((h, w, 3), 7.0),
        "all_distinct": np.arange(h * w * 3, dtype=np.float64
                                  ).reshape(h, w, 3) * 100.0,
        "checkerboard": np.where(((yy + xx) % 2)[..., None], 200.0, 0.0)
        * np.ones((h, w, 3)),
        "h_stripes": np.where((yy % 2)[..., None], 200.0, 0.0)
        * np.ones((h, w, 3)),
        "v_stripes": np.where((xx % 2)[..., None], 200.0, 0.0)
        * np.ones((h, w, 3)),
        # A single serpentine component threading the whole image —
        # worst case for label propagation (diameter ~ h*w).
        "snake": np.where(snake[..., None], 0.0, 250.0)
        * np.ones((h, w, 3)),
        "noise": rng.uniform(0, 255, size=(h, w, 3)),
    }


class TestConnectedComponents:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("threshold", [0.0, 8.0, 40.0])
    def test_matches_seed_on_random_images(self, seed, threshold):
        rng = np.random.default_rng(seed)
        features = rng.uniform(0, 100, size=(13, 19, 3))
        new = _connected_components(features, threshold)
        old = seed_connected_components(features, threshold)
        assert_same_partition(new, old)

    @pytest.mark.parametrize("name", sorted(_adversarial_images()))
    def test_matches_seed_on_adversarial_images(self, name):
        image = _adversarial_images()[name]
        for threshold in (0.0, 10.0):
            new = _connected_components(image, threshold)
            old = seed_connected_components(image, threshold)
            assert_same_partition(new, old)

    def test_quantized_colors_match_seed_at_threshold_zero(self):
        rng = np.random.default_rng(9)
        quantized = np.floor(rng.uniform(0, 8, size=(11, 14, 3)))
        new = _connected_components(quantized, 0.0)
        old = seed_connected_components(quantized, 0.0)
        assert_same_partition(new, old)

    def test_threshold_zero_fallback_for_unencodable_features(self):
        # Values outside the int64 packing range (negative / huge /
        # non-integral) must still label correctly via exact equality.
        for img in (
            np.array([[[-1.0], [-1.0], [2.0]], [[-1.0], [3.0], [2.0]]]),
            np.full((3, 4, 3), 2.0 ** 40),
            np.array([[[0.5], [0.5], [1.5]]]),
        ):
            new = _connected_components(img, 0.0)
            old = seed_connected_components(img, 0.0)
            assert_same_partition(new, old)

    def test_compact_labels(self):
        rng = np.random.default_rng(5)
        features = rng.uniform(0, 60, size=(9, 9, 3))
        labels = _connected_components(features, 12.0)
        assert labels.dtype == np.int64
        assert set(np.unique(labels)) == set(range(labels.max() + 1))

    def test_single_pixel_and_single_row(self):
        one = np.zeros((1, 1, 3))
        assert _connected_components(one, 0.0).tolist() == [[0]]
        row = np.array([[[0.0] * 3, [0.0] * 3, [90.0] * 3, [0.0] * 3]])
        labels = _connected_components(row, 1.0)
        assert labels[0, 0] == labels[0, 1]
        assert labels[0, 2] != labels[0, 0]
        assert labels[0, 3] != labels[0, 2]


class TestMergeSmallRegions:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_deterministic_and_respects_min_size(self, seed):
        rng = np.random.default_rng(seed)
        features = rng.uniform(0, 255, size=(16, 16, 3))
        labels = _connected_components(np.floor(features / 64), 0.0)
        merged_a = _merge_small_regions(labels, features, min_size=6)
        merged_b = _merge_small_regions(labels, features, min_size=6)
        assert np.array_equal(merged_a, merged_b)
        # Compacted output.
        assert set(np.unique(merged_a)) == set(range(merged_a.max() + 1))

    def test_absorbs_single_small_region(self):
        # One 2-pixel island inside a uniform sea; the island must join
        # the sea (its only neighbor).
        image = np.zeros((8, 8, 3))
        image[3, 3:5] = 200.0
        labels = _connected_components(image, 1.0)
        assert labels.max() == 1
        merged = _merge_small_regions(labels, image, min_size=5)
        assert merged.max() == 0

    def test_closest_color_neighbor_wins(self):
        # A small middle stripe with two big neighbors; it must merge
        # into the color-closer (left) one.
        image = np.zeros((6, 9, 3))
        image[:, 3:5] = 40.0    # small-ish stripe: 12 px
        image[:, 5:] = 200.0
        labels = _connected_components(image, 1.0)
        merged = _merge_small_regions(labels, image, min_size=13)
        left = merged[0, 0]
        assert merged[0, 3] == left
        assert merged[0, 8] != left

    def test_label_transitions_matches_adjacency(self):
        rng = np.random.default_rng(3)
        labels = rng.integers(0, 5, size=(10, 12))
        transitions = _label_transitions(labels)
        assert transitions == region_adjacency(labels)


class TestAdjacentLabelPairs:
    def test_matches_bruteforce(self):
        rng = np.random.default_rng(11)
        labels = rng.integers(0, 7, size=(9, 13))
        brute = set()
        h, w = labels.shape
        for y in range(h):
            for x in range(w):
                for dy, dx in ((0, 1), (1, 0)):
                    if y + dy < h and x + dx < w:
                        a, b = labels[y, x], labels[y + dy, x + dx]
                        if a != b:
                            brute.add((min(a, b), max(a, b)))
        pairs = adjacent_label_pairs(labels)
        assert set(map(tuple, pairs.tolist())) == brute
        # Sorted, deduplicated, lo < hi.
        assert np.all(pairs[:, 0] < pairs[:, 1])
        assert len(np.unique(pairs, axis=0)) == len(pairs)

    def test_uniform_image_has_no_pairs(self):
        assert adjacent_label_pairs(np.zeros((4, 5), dtype=int)).shape \
            == (0, 2)


class TestMeanShiftFilter:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_bit_identical_to_seed_roll_filter(self, seed):
        rng = np.random.default_rng(seed)
        features = rng.uniform(0, 255, size=(14, 17, 3))
        segmenter = MeanShiftSegmenter(spatial_bandwidth=2,
                                       range_bandwidth=25.0,
                                       max_iterations=4)
        assert np.array_equal(segmenter._filter(features),
                              seed_filter(segmenter, features))

    def test_segment_matches_seed_composition(self):
        rng = np.random.default_rng(7)
        image = (rng.uniform(0, 255, size=(12, 15, 3))).astype(np.uint8)
        segmenter = MeanShiftSegmenter(spatial_bandwidth=2,
                                       range_bandwidth=30.0,
                                       max_iterations=3, min_region_size=4)
        from repro.video.color import rgb_to_luv

        filtered = seed_filter(segmenter, rgb_to_luv(image))
        seed_labels = seed_connected_components(
            filtered, segmenter.range_bandwidth)
        new = segmenter.segment(image)
        # Pre-merge partitions agree; post-merge region count does too.
        assert_same_partition(
            _connected_components(filtered, segmenter.range_bandwidth),
            seed_labels,
        )
        assert new.max() >= 0


class TestOrderedChunkMap:
    @staticmethod
    def _double(start, chunk):
        return [(start + i, 2 * x) for i, x in enumerate(chunk)]

    def test_preserves_order_serial(self):
        out = list(ordered_chunk_map(self._double, list(range(20)),
                                     workers=1))
        assert out == [(i, 2 * i) for i in range(20)]

    @pytest.mark.parametrize("workers", [2, 4])
    def test_pool_matches_serial(self, workers):
        items = list(range(23))
        serial = list(ordered_chunk_map(self._double, items, workers=1))
        pooled = list(ordered_chunk_map(self._double, items,
                                        workers=workers, force_pool=True))
        assert pooled == serial

    def test_worker_error_propagates(self):
        with pytest.raises(ZeroDivisionError):
            list(ordered_chunk_map(_chunk_that_raises, [1, 0, 2],
                                   workers=2, force_pool=True))

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            list(ordered_chunk_map(self._double, [1], workers=-1))
        with pytest.raises(InvalidParameterError):
            list(ordered_chunk_map(self._double, [1], chunks_per_worker=0))

    def test_empty_items(self):
        assert list(ordered_chunk_map(self._double, [], workers=4)) == []

    def test_chunk_bounds_cover_range(self):
        for n, k in ((10, 3), (3, 10), (0, 4), (7, 1)):
            bounds = chunk_bounds(n, k)
            flat = [i for lo, hi in bounds for i in range(lo, hi)]
            assert flat == list(range(n))

    def test_usable_cpus_positive(self):
        assert usable_cpus() >= 1


def _chunk_that_raises(start, chunk):
    return [1 // x for x in chunk]


# --------------------------------------------------------------------------
# Serial vs parallel pipeline / ingest identity
# --------------------------------------------------------------------------


def _strg_signature(strg):
    sig = []
    for m in range(strg.num_frames):
        rag = strg.rag(m)
        sig.append(sorted(
            (v, rag.node_attrs(v).size,
             tuple(rag.node_attrs(v).color),
             tuple(rag.node_attrs(v).centroid))
            for v in rag.nodes()
        ))
        sig.append(sorted(map(tuple, rag.edges())))
    sig.append(sorted(map(tuple, strg.temporal_edges())))
    return sig


def _decomposition_signature(decomposition):
    ogs = []
    for og in decomposition.object_graphs:
        ogs.append((og.values.tobytes(), og.frames.tobytes(),
                    None if og.sizes is None else og.sizes.tobytes()))
    return ogs, len(decomposition.background)


@pytest.fixture(scope="module")
def traffic_video():
    from repro.datasets.real import render_stream_segment

    return render_stream_segment("Traffic1", num_frames=6,
                                 rng=np.random.default_rng(0))


class TestParallelPipeline:
    def test_track_stream_equals_build_strg(self, traffic_video):
        segmenter = GridSegmenter()
        rags = [segmenter.build_rag(traffic_video.frame(t), t)
                for t in range(traffic_video.num_frames)]
        tracker = GraphTracker()
        a = tracker.build_strg(rags)
        b = tracker.track_stream(iter(rags))
        assert _strg_signature(a) == _strg_signature(b)

    def test_workers_do_not_change_strg(self, traffic_video):
        serial = VideoPipeline().build_strg(traffic_video)
        w2 = VideoPipeline().build_strg(traffic_video, workers=2)
        pooled = VideoPipeline().build_strg(traffic_video, workers=3,
                                            force_pool=True)
        assert _strg_signature(serial) == _strg_signature(w2)
        assert _strg_signature(serial) == _strg_signature(pooled)

    def test_workers_do_not_change_meanshift_strg(self):
        from repro.datasets.real import render_stream_segment

        video = render_stream_segment("Traffic1", num_frames=3,
                                      rng=np.random.default_rng(1))
        config = PipelineConfig(segmenter=MeanShiftSegmenter(
            spatial_bandwidth=2, range_bandwidth=10.0, max_iterations=2,
            min_region_size=16))
        serial = VideoPipeline(config).build_strg(video)
        pooled = VideoPipeline(config).build_strg(video, workers=2,
                                                  force_pool=True)
        assert _strg_signature(serial) == _strg_signature(pooled)

    def test_negative_workers_rejected(self, traffic_video):
        with pytest.raises(InvalidParameterError):
            VideoPipeline().build_strg(traffic_video, workers=-2)

    def test_decompose_workers_identical(self, traffic_video):
        serial = VideoPipeline().decompose(traffic_video)
        parallel = VideoPipeline().decompose(traffic_video, workers=2)
        assert _decomposition_signature(serial) \
            == _decomposition_signature(parallel)


def _make_segments(count=4, frames=5):
    from repro.datasets.real import render_stream_segment

    rng = np.random.default_rng(0)
    videos = []
    for i in range(count):
        video = render_stream_segment("Traffic1", num_frames=frames, rng=rng)
        video.name = f"seg-{i:02d}"
        videos.append(video)
    return videos


def _run_ingest(workers, tmp_path, tag, inject_rate=0.0):
    db = VideoDatabase(fault_policy="retry-then-skip", drop_tolerance=1.0,
                       journal_path=tmp_path / f"journal-{tag}.jsonl")
    injector = FaultInjector(seed=7)
    if inject_rate > 0:
        injector.inject("segmentation", rate=inject_rate, kind="corrupt")
    with injected(injector):
        report = db.ingest_many(_make_segments(), workers=workers)
    journal = (tmp_path / f"journal-{tag}.jsonl").read_text()
    quarantine = [rec.to_dict() for rec in db.quarantine]
    return db, report, journal, quarantine


class TestParallelIngest:
    def test_bit_identical_ingest_across_worker_counts(self, tmp_path):
        db1, rep1, journal1, q1 = _run_ingest(None, tmp_path, "serial")
        db2, rep2, journal2, q2 = _run_ingest(2, tmp_path, "w2")
        db4, rep4, journal4, q4 = _run_ingest(4, tmp_path, "w4")
        assert rep1 == rep2 == rep4
        assert journal1 == journal2 == journal4
        assert q1 == q2 == q4 == []
        # Index contents answer queries identically (og_id is a
        # process-global counter, so refs are compared by video name).
        probe = np.cumsum(np.ones((6, 2)), axis=0) * 10.0
        hits1 = [(f"{h.distance:.12e}", h.clip_ref["video"], h.og.values.tobytes())
                 for h in db1.knn(probe, k=5)]
        hits2 = [(f"{h.distance:.12e}", h.clip_ref["video"], h.og.values.tobytes())
                 for h in db2.knn(probe, k=5)]
        hits4 = [(f"{h.distance:.12e}", h.clip_ref["video"], h.og.values.tobytes())
                 for h in db4.knn(probe, k=5)]
        assert hits1 == hits2 == hits4

    def test_quarantine_decisions_identical_with_workers(self, tmp_path):
        # High corruption rate: some segments must quarantine, and the
        # decisions must not depend on the worker count.
        _, rep1, journal1, q1 = _run_ingest(None, tmp_path, "s-f",
                                            inject_rate=0.12)
        _, rep2, journal2, q2 = _run_ingest(2, tmp_path, "w2-f",
                                            inject_rate=0.12)
        _, rep4, journal4, q4 = _run_ingest(4, tmp_path, "w4-f",
                                            inject_rate=0.12)
        assert rep1["quarantined"] >= 1
        assert q1 and q1 == q2 == q4
        assert rep1 == rep2 == rep4
        assert journal1 == journal2 == journal4
        assert all(rec["error_type"] == "CorruptSegmentError" for rec in q1)


class TestCLIWorkers:
    def test_ingest_workers_flag(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "idx.npz"
        code = main(["ingest", str(out), "--segments", "2", "--frames", "4",
                     "--workers", "2"])
        assert code == 0
        assert "ingested 2 segment(s)" in capsys.readouterr().out
        assert out.exists()

    def test_parser_default_workers(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["ingest", "out.npz"])
        assert args.workers is None
