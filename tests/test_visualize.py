"""Tests for the ASCII visualization helpers."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.graph.attributes import NodeAttributes
from repro.graph.object_graph import ObjectGraph
from repro.graph.rag import RegionAdjacencyGraph
from repro.video.visualize import (
    describe_rag,
    render_label_image,
    render_trajectories,
)


class TestRenderLabelImage:
    def test_distinct_regions_distinct_glyphs(self):
        labels = np.zeros((4, 8), dtype=int)
        labels[:, 4:] = 1
        art = render_label_image(labels)
        glyphs = set(art.replace("\n", ""))
        assert len(glyphs) == 2

    def test_downsamples_wide_images(self):
        labels = np.zeros((10, 500), dtype=int)
        art = render_label_image(labels, max_width=50)
        assert max(len(line) for line in art.split("\n")) <= 72

    def test_rejects_non_2d(self):
        with pytest.raises(InvalidParameterError):
            render_label_image(np.zeros((2, 2, 3)))


class TestRenderTrajectories:
    def test_marks_start(self):
        og = ObjectGraph.from_values(
            np.stack([np.linspace(0, 10, 5), np.zeros(5)], axis=1)
        )
        art = render_trajectories([og], width=20, height=4)
        assert "S" in art

    def test_canvas_dimensions(self):
        og = ObjectGraph.from_values([[0.0, 0.0], [5.0, 5.0]])
        art = render_trajectories([og], width=30, height=10)
        lines = art.split("\n")
        assert len(lines) == 10
        assert all(len(line) == 30 for line in lines)

    def test_multiple_trajectories_distinct_glyphs(self):
        a = ObjectGraph.from_values([[0.0, 0.0], [10.0, 0.0]])
        b = ObjectGraph.from_values([[0.0, 10.0], [10.0, 10.0]])
        art = render_trajectories([a, b], width=20, height=6)
        inked = set(art.replace("\n", "").replace(" ", ""))
        assert len(inked) >= 2  # S plus at least two glyphs collapse to >= 2

    def test_explicit_bounds(self):
        og = ObjectGraph.from_values([[5.0, 5.0]])
        art = render_trajectories([og], width=10, height=4,
                                  bounds=(0.0, 0.0, 10.0, 10.0))
        assert "S" in art

    def test_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            render_trajectories([])

    def test_tiny_canvas_rejected(self):
        og = ObjectGraph.from_values([[0.0, 0.0]])
        with pytest.raises(InvalidParameterError):
            render_trajectories([og], width=1, height=1)


class TestDescribeRag:
    def test_summary_lines(self):
        rag = RegionAdjacencyGraph(frame_index=3)
        rag.add_node(0, NodeAttributes(500, (10, 20, 30), (5.0, 5.0)))
        rag.add_node(1, NodeAttributes(100, (200, 0, 0), (20.0, 5.0)))
        rag.add_edge(0, 1)
        lines = describe_rag(rag)
        assert "2 regions" in lines[0]
        assert "1 spatial edges" in lines[0]
        assert "region 0" in lines[1]  # largest first

    def test_top_limits_output(self):
        rag = RegionAdjacencyGraph()
        for i in range(10):
            rag.add_node(i, NodeAttributes(10 + i, (0, 0, 0), (float(i), 0.0)))
        assert len(describe_rag(rag, top=3)) == 4
