"""The unified public surface: ``open_database``, uniform ``Query`` sources.

These tests pin the PR-3 API contract: one front door
(``repro.open_database``), one query builder that accepts a database, a
bare index or a pipeline, and a top-level ``__all__`` that is sorted and
complete.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core.index import STRGIndex, STRGIndexConfig
from repro.errors import StorageError
from repro.query import Query
from repro.storage.database import VideoDatabase


@pytest.fixture(scope="module")
def populated(tmp_path_factory, tiny_video):
    """A database with one ingested segment, saved to disk."""
    path = tmp_path_factory.mktemp("facade") / "corpus.npz"
    db = repro.open_database(path)
    db.ingest(tiny_video)
    db.save()
    return path, db


class TestOpenDatabase:
    def test_none_gives_unbound_empty_database(self):
        db = repro.open_database()
        assert isinstance(db, VideoDatabase)
        assert db.path is None
        assert db.stats()["ogs"] == 0

    def test_fresh_path_binds_for_later_save(self, tmp_path, tiny_video):
        db = repro.open_database(tmp_path / "new")
        assert db.path == str(tmp_path / "new.npz")
        db.ingest(tiny_video)
        db.save()                       # no argument: uses the bound path
        assert (tmp_path / "new.npz").exists()

    def test_round_trip(self, populated):
        path, original = populated
        reopened = repro.open_database(path)
        assert reopened.path == str(path)
        assert reopened.stats()["ogs"] == original.stats()["ogs"]
        example = next(original.index.object_graphs())
        got = [h.distance for h in reopened.knn(example, k=3)]
        want = [h.distance for h in original.knn(example, k=3)]
        assert got == pytest.approx(want)

    def test_missing_with_create_false_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            repro.open_database(tmp_path / "absent.npz", create=False)

    def test_kwargs_forwarded(self):
        db = repro.open_database(fault_policy="fail-fast")
        assert db.fault_policy.value == "fail-fast"

    def test_unbound_save_requires_path(self):
        db = repro.open_database()
        with pytest.raises(StorageError):
            db.save()


class TestUniformQuerySources:
    def test_db_query_matches_explicit_query(self, populated):
        _, db = populated
        assert isinstance(db.query(), Query)
        via_method = [r.og.og_id for r in db.query().run()]
        via_class = [r.og.og_id for r in Query(db).run()]
        assert via_method == via_class and via_method

    def test_db_knn_matches_index_knn(self, populated):
        _, db = populated
        example = next(db.index.object_graphs())
        from_db = [(h.og.og_id, h.distance) for h in db.knn(example, k=3)]
        from_index = [(og.og_id, d)
                      for d, og, _ in db.index.knn(example, k=3)]
        assert from_db == from_index

    def test_knn_accepts_raw_trajectory(self, populated):
        _, db = populated
        walk = np.stack([np.linspace(5, 90, 12), np.full(12, 40.0)], axis=1)
        hits = db.knn(walk, k=2)
        assert len(hits) == 2
        assert hits[0].distance <= hits[1].distance

    def test_bare_index_is_queryable(self, small_og_set):
        index = STRGIndex(STRGIndexConfig(n_clusters=3))
        index.build(small_og_set)
        results = Query(index).limit(4).run()
        assert len(results) == 4

    def test_pipeline_is_queryable(self, tiny_video):
        from repro.pipeline import VideoPipeline

        pipeline = VideoPipeline()
        assert Query(pipeline).run() == []      # nothing processed yet
        pipeline.process(tiny_video)
        assert pipeline.index is not None
        assert Query(pipeline).count() == len(
            list(pipeline.index.object_graphs())
        )


class TestBlessedSurface:
    def test_all_is_sorted_and_complete(self):
        assert list(repro.__all__) == sorted(repro.__all__)
        for name in ("open_database", "observability", "Query",
                     "QueryResult", "STRGIndexConfig", "VideoDatabase"):
            assert name in repro.__all__, name

    def test_all_names_resolve_without_warnings(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            for name in repro.__all__:
                assert getattr(repro, name) is not None, name
