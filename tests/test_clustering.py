"""Tests for EM / K-Means / KHM clustering and centroid synthesis."""

import numpy as np
import pytest

from repro.clustering.base import kmeanspp_init, validate_inputs
from repro.clustering.centroid import synthesize_centroid, weighted_mean_og
from repro.clustering.em import EMClustering, EMConfig
from repro.clustering.evaluation import clustering_error_rate
from repro.clustering.khm import KHMClustering, KHMConfig
from repro.clustering.kmeans import KMeansClustering, KMeansConfig
from repro.distance.eged import EGED, MetricEGED
from repro.errors import ClusteringError, EmptySequenceError, InvalidParameterError


def two_blob_ogs(n_per=8, separation=100.0, rng=None):
    """Two well-separated groups of short 2-D trajectories."""
    rng = rng or np.random.default_rng(0)
    ogs = []
    for label, offset in ((0, 0.0), (1, separation)):
        for _ in range(n_per):
            length = int(rng.integers(6, 12))
            base = np.linspace(0, 10, length)[:, None]
            values = np.hstack([base + offset, base]) + rng.normal(0, 0.5, (length, 2))
            ogs.append(values)
    labels = [0] * n_per + [1] * n_per
    return ogs, labels


class TestWeightedMeanOG:
    def test_uniform_mean_of_identical(self):
        series = [np.ones((5, 2)) for _ in range(3)]
        out = weighted_mean_og(series)
        np.testing.assert_allclose(out, np.ones((5, 2)))

    def test_weighted_pull(self):
        a = np.zeros((4, 1))
        b = np.ones((4, 1))
        out = weighted_mean_og([a, b], weights=[3.0, 1.0])
        np.testing.assert_allclose(out, np.full((4, 1), 0.25))

    def test_target_length_is_weighted_median(self):
        series = [np.zeros((4, 1)), np.zeros((4, 1)), np.zeros((10, 1))]
        assert weighted_mean_og(series).shape[0] == 4

    def test_explicit_length(self):
        series = [np.zeros((4, 1)), np.zeros((8, 1))]
        assert weighted_mean_og(series, length=6).shape == (6, 1)

    def test_zero_weights_fall_back_to_uniform(self):
        series = [np.zeros((3, 1)), np.ones((3, 1))]
        out = weighted_mean_og(series, weights=[0.0, 0.0])
        np.testing.assert_allclose(out, np.full((3, 1), 0.5))

    def test_empty_rejected(self):
        with pytest.raises(EmptySequenceError):
            weighted_mean_og([])

    def test_negative_weights_rejected(self):
        with pytest.raises(InvalidParameterError):
            weighted_mean_og([np.zeros((2, 1))], weights=[-1.0])

    def test_weight_count_mismatch(self):
        with pytest.raises(InvalidParameterError):
            weighted_mean_og([np.zeros((2, 1))], weights=[1.0, 2.0])

    def test_synthesize_centroid_alias(self):
        series = [np.ones((4, 2))]
        np.testing.assert_allclose(synthesize_centroid(series), np.ones((4, 2)))


class TestBaseHelpers:
    def test_validate_rejects_bad_k(self):
        with pytest.raises(InvalidParameterError):
            validate_inputs([np.zeros((2, 1))], 0)

    def test_validate_rejects_too_few_points(self):
        with pytest.raises(ClusteringError):
            validate_inputs([np.zeros((2, 1))], 5)

    def test_kmeanspp_spreads_seeds(self):
        ogs, _ = two_blob_ogs()
        rng = np.random.default_rng(1)
        centroids = kmeanspp_init([np.asarray(o) for o in ogs], 2,
                                  MetricEGED(), rng)
        d = MetricEGED()
        assert d(centroids[0], centroids[1]) > 50.0


class TestEM:
    def test_two_blobs_perfect(self):
        ogs, labels = two_blob_ogs()
        result = EMClustering(EMConfig(n_clusters=2, seed=1)).fit(ogs)
        assert clustering_error_rate(labels, result.assignments) == 0.0

    def test_result_shapes(self):
        ogs, _ = two_blob_ogs()
        result = EMClustering(EMConfig(n_clusters=2)).fit(ogs)
        assert result.num_clusters == 2
        assert result.assignments.shape == (16,)
        assert result.responsibilities.shape == (16, 2)
        assert result.weights.shape == (2,)
        np.testing.assert_allclose(result.weights.sum(), 1.0)
        assert np.isfinite(result.log_likelihood)

    def test_responsibilities_rows_normalized(self):
        ogs, _ = two_blob_ogs()
        result = EMClustering(EMConfig(n_clusters=2)).fit(ogs)
        np.testing.assert_allclose(
            result.responsibilities.sum(axis=1), np.ones(16)
        )

    def test_k1_single_cluster(self):
        ogs, _ = two_blob_ogs(n_per=4)
        result = EMClustering(EMConfig(n_clusters=1)).fit(ogs)
        assert np.all(result.assignments == 0)
        assert np.isfinite(result.log_likelihood)

    def test_iteration_seconds_recorded(self):
        ogs, _ = two_blob_ogs(n_per=4)
        result = EMClustering(EMConfig(n_clusters=2)).fit(ogs)
        assert len(result.iteration_seconds) == result.n_iterations
        assert result.total_seconds() > 0

    def test_predict_new_point(self):
        ogs, _ = two_blob_ogs()
        em = EMClustering(EMConfig(n_clusters=2, seed=1))
        result = em.fit(ogs)
        cluster_of_first = int(result.assignments[0])
        predicted = em.predict(result, ogs[1])
        assert predicted == cluster_of_first

    def test_higher_loglik_than_k1_when_structured(self):
        ogs, _ = two_blob_ogs()
        l1 = EMClustering(EMConfig(n_clusters=1)).fit(ogs).log_likelihood
        l2 = EMClustering(EMConfig(n_clusters=2)).fit(ogs).log_likelihood
        assert l2 > l1

    def test_invalid_config(self):
        with pytest.raises(InvalidParameterError):
            EMConfig(n_clusters=0)
        with pytest.raises(InvalidParameterError):
            EMConfig(max_iterations=0)
        with pytest.raises(InvalidParameterError):
            EMConfig(warm_start_iterations=-1)
        with pytest.raises(InvalidParameterError):
            EMConfig(sigma_band=0.0)
        with pytest.raises(InvalidParameterError):
            EMConfig(n_init=0)

    def test_restarts_never_hurt_fit_quality(self):
        ogs, _ = two_blob_ogs()
        single = EMClustering(EMConfig(n_clusters=2, seed=3)).fit(ogs)
        multi = EMClustering(EMConfig(n_clusters=2, seed=3, n_init=4)).fit(ogs)
        assert (multi.classification_log_likelihood
                >= single.classification_log_likelihood - 1e-9)

    def test_cluster_members(self):
        ogs, _ = two_blob_ogs()
        result = EMClustering(EMConfig(n_clusters=2)).fit(ogs)
        members = set()
        for c in range(2):
            members.update(result.cluster_members(c).tolist())
        assert members == set(range(16))


class TestKMeans:
    def test_two_blobs_perfect(self):
        ogs, labels = two_blob_ogs()
        result = KMeansClustering(KMeansConfig(n_clusters=2, seed=1)).fit(ogs)
        assert clustering_error_rate(labels, result.assignments) == 0.0

    def test_hard_responsibilities(self):
        ogs, _ = two_blob_ogs()
        result = KMeansClustering(KMeansConfig(n_clusters=2)).fit(ogs)
        assert set(np.unique(result.responsibilities)) <= {0.0, 1.0}

    def test_converges_to_fixed_point(self):
        ogs, _ = two_blob_ogs()
        result = KMeansClustering(KMeansConfig(n_clusters=2,
                                               max_iterations=30)).fit(ogs)
        assert result.converged

    def test_no_empty_clusters(self):
        ogs, _ = two_blob_ogs(n_per=3)
        result = KMeansClustering(KMeansConfig(n_clusters=4)).fit(ogs)
        assert len(np.unique(result.assignments)) == 4

    def test_custom_distance(self):
        ogs, labels = two_blob_ogs()
        result = KMeansClustering(
            KMeansConfig(n_clusters=2), distance=MetricEGED()
        ).fit(ogs)
        assert clustering_error_rate(labels, result.assignments) == 0.0

    def test_invalid_config(self):
        with pytest.raises(InvalidParameterError):
            KMeansConfig(n_clusters=0)
        with pytest.raises(InvalidParameterError):
            KMeansConfig(max_iterations=0)


class TestKHM:
    def test_two_blobs_perfect(self):
        ogs, labels = two_blob_ogs()
        result = KHMClustering(KHMConfig(n_clusters=2, seed=1)).fit(ogs)
        assert clustering_error_rate(labels, result.assignments) == 0.0

    def test_soft_memberships_normalized(self):
        ogs, _ = two_blob_ogs()
        result = KHMClustering(KHMConfig(n_clusters=2)).fit(ogs)
        np.testing.assert_allclose(
            result.responsibilities.sum(axis=1), np.ones(16), rtol=1e-6
        )

    def test_p_must_be_at_least_two(self):
        with pytest.raises(InvalidParameterError):
            KHMConfig(p=1.0)

    def test_performance_decreases(self):
        ogs, _ = two_blob_ogs()
        khm = KHMClustering(KHMConfig(n_clusters=2, max_iterations=10))
        result = khm.fit(ogs)
        assert result.n_iterations >= 1
        assert result.converged or result.n_iterations == 10
