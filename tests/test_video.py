"""Tests for the video substrate: frames, color, regions, synthesis."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError, SegmentationError, StorageError
from repro.video.color import rgb_to_gray, rgb_to_luv
from repro.video.frames import VideoSegment
from repro.video.regions import (
    rag_from_labels,
    region_adjacency,
    region_statistics,
)
from repro.video.synthesize import (
    Actor,
    BackgroundSpec,
    SceneRenderer,
    linear_trajectory,
    make_person,
    make_vehicle,
    uturn_trajectory,
)


class TestVideoSegment:
    def test_basic_properties(self):
        frames = np.zeros((5, 10, 20, 3), dtype=np.uint8)
        seg = VideoSegment(frames, fps=25.0, name="x")
        assert seg.num_frames == 5
        assert seg.height == 10
        assert seg.width == 20
        assert seg.duration_seconds == pytest.approx(0.2)

    def test_invalid_shape(self):
        with pytest.raises(InvalidParameterError):
            VideoSegment(np.zeros((5, 10, 20), dtype=np.uint8))

    def test_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            VideoSegment(np.zeros((0, 4, 4, 3), dtype=np.uint8))

    def test_invalid_fps(self):
        with pytest.raises(InvalidParameterError):
            VideoSegment(np.zeros((1, 4, 4, 3), dtype=np.uint8), fps=0)

    def test_slice(self):
        frames = np.arange(4 * 2 * 2 * 3, dtype=np.uint8).reshape(4, 2, 2, 3)
        seg = VideoSegment(frames)
        sub = seg.slice(1, 3)
        assert sub.num_frames == 2
        np.testing.assert_array_equal(sub.frame(0), seg.frame(1))

    def test_invalid_slice(self):
        seg = VideoSegment(np.zeros((3, 2, 2, 3), dtype=np.uint8))
        with pytest.raises(InvalidParameterError):
            seg.slice(2, 2)

    def test_npz_roundtrip(self, tmp_path):
        frames = np.random.default_rng(0).integers(
            0, 255, size=(3, 4, 5, 3)
        ).astype(np.uint8)
        seg = VideoSegment(frames, fps=12.0, name="clip")
        path = tmp_path / "clip.npz"
        seg.save_npz(path)
        loaded = VideoSegment.load_npz(path)
        np.testing.assert_array_equal(loaded.frames, frames)
        assert loaded.fps == 12.0
        assert loaded.name == "clip"

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(StorageError):
            VideoSegment.load_npz(tmp_path / "nope.npz")

    def test_iteration(self):
        seg = VideoSegment(np.zeros((3, 2, 2, 3), dtype=np.uint8))
        assert len(list(seg)) == 3


class TestColor:
    def test_gray_weights(self):
        white = np.full((1, 1, 3), 255, dtype=np.uint8)
        assert rgb_to_gray(white)[0, 0] == pytest.approx(255.0)

    def test_luv_white_point(self):
        white = np.full((1, 1, 3), 255, dtype=np.uint8)
        luv = rgb_to_luv(white)
        assert luv[0, 0, 0] == pytest.approx(100.0, abs=0.5)   # L*
        assert abs(luv[0, 0, 1]) < 1.0                          # u* ~ 0
        assert abs(luv[0, 0, 2]) < 1.0                          # v* ~ 0

    def test_luv_black(self):
        black = np.zeros((1, 1, 3), dtype=np.uint8)
        luv = rgb_to_luv(black)
        np.testing.assert_allclose(luv[0, 0], [0.0, 0.0, 0.0], atol=1e-6)

    def test_luv_distinguishes_hues(self):
        red = np.array([[[255, 0, 0]]], dtype=np.uint8)
        green = np.array([[[0, 255, 0]]], dtype=np.uint8)
        d = np.linalg.norm(rgb_to_luv(red) - rgb_to_luv(green))
        assert d > 50.0

    def test_shape_preserved(self):
        img = np.zeros((4, 6, 3), dtype=np.uint8)
        assert rgb_to_luv(img).shape == (4, 6, 3)


class TestRegions:
    def make_half_image(self):
        """Left half black (label 0), right half white (label 1)."""
        image = np.zeros((4, 6, 3), dtype=np.uint8)
        image[:, 3:] = 255
        labels = np.zeros((4, 6), dtype=np.int64)
        labels[:, 3:] = 1
        return image, labels

    def test_statistics(self):
        image, labels = self.make_half_image()
        stats = region_statistics(image, labels)
        assert stats[0].size == 12
        assert stats[1].size == 12
        assert stats[0].color == (0.0, 0.0, 0.0)
        assert stats[1].color == (255.0, 255.0, 255.0)
        assert stats[0].centroid == (1.0, 1.5)

    def test_statistics_shape_mismatch(self):
        with pytest.raises(SegmentationError):
            region_statistics(np.zeros((2, 2, 3)), np.zeros((3, 3)))

    def test_adjacency(self):
        _, labels = self.make_half_image()
        assert region_adjacency(labels) == {(0, 1)}

    def test_adjacency_no_diagonal(self):
        labels = np.array([[0, 1], [1, 0]])
        pairs = region_adjacency(labels)
        assert pairs == {(0, 1)}  # via sides, not diagonals

    def test_rag_from_labels(self):
        image, labels = self.make_half_image()
        rag = rag_from_labels(image, labels, frame_index=4)
        assert len(rag) == 2
        assert rag.number_of_edges() == 1
        assert rag.frame_index == 4


class TestTrajectories:
    def test_linear_endpoints(self):
        traj = linear_trajectory((0.0, 0.0), (10.0, 20.0), 5)
        assert traj(0) == (0.0, 0.0)
        assert traj(4) == (10.0, 20.0)

    def test_linear_clamps_beyond_range(self):
        traj = linear_trajectory((0.0, 0.0), (10.0, 0.0), 5)
        assert traj(100) == (10.0, 0.0)

    def test_uturn_returns(self):
        traj = uturn_trajectory((0.0, 0.0), (10.0, 0.0), 10)
        assert traj(0) == (0.0, 0.0)
        x_mid, _ = traj(4)
        assert x_mid > 5.0
        x_end, _ = traj(9)
        assert x_end < 3.0

    def test_invalid_lengths(self):
        with pytest.raises(InvalidParameterError):
            linear_trajectory((0, 0), (1, 1), 0)
        with pytest.raises(InvalidParameterError):
            uturn_trajectory((0, 0), (1, 1), 1)


class TestSceneRenderer:
    def test_background_zones_painted(self):
        bg = BackgroundSpec(width=10, height=10, base_color=(1, 2, 3),
                            zones=[(0, 0, 5, 5, (9, 9, 9))])
        canvas = bg.render()
        assert tuple(canvas[0, 0]) == (9, 9, 9)
        assert tuple(canvas[9, 9]) == (1, 2, 3)

    def test_actor_painted_and_moves(self):
        bg = BackgroundSpec(width=40, height=20, base_color=(0, 0, 0))
        actor = Actor(linear_trajectory((5.0, 10.0), (35.0, 10.0), 4),
                      [(0.0, 0.0, 6.0, 6.0, (255, 0, 0))])
        video = SceneRenderer(bg, [actor]).render(4)
        assert tuple(video.frame(0)[10, 5]) == (255, 0, 0)
        assert tuple(video.frame(3)[10, 5]) == (0, 0, 0)
        assert tuple(video.frame(3)[10, 35]) == (255, 0, 0)

    def test_actor_lifetime(self):
        bg = BackgroundSpec(width=20, height=20, base_color=(0, 0, 0))
        actor = Actor(linear_trajectory((10.0, 10.0), (10.0, 10.0), 2),
                      [(0.0, 0.0, 4.0, 4.0, (255, 0, 0))],
                      start_frame=1, end_frame=2)
        video = SceneRenderer(bg, [actor]).render(4)
        assert tuple(video.frame(0)[10, 10]) == (0, 0, 0)
        assert tuple(video.frame(1)[10, 10]) == (255, 0, 0)
        assert tuple(video.frame(3)[10, 10]) == (0, 0, 0)

    def test_actor_clipped_at_border(self):
        bg = BackgroundSpec(width=20, height=20, base_color=(0, 0, 0))
        actor = Actor(linear_trajectory((-5.0, 10.0), (-5.0, 10.0), 1),
                      [(0.0, 0.0, 8.0, 8.0, (255, 0, 0))])
        video = SceneRenderer(bg, [actor]).render(1)  # must not raise
        assert video.num_frames == 1

    def test_noise_applied(self):
        bg = BackgroundSpec(width=16, height=16, base_color=(128, 128, 128))
        clean = SceneRenderer(bg).render(1)
        noisy = SceneRenderer(bg, noise_std=10.0).render(1)
        assert not np.array_equal(clean.frames, noisy.frames)

    def test_invalid_noise(self):
        with pytest.raises(InvalidParameterError):
            SceneRenderer(BackgroundSpec(), noise_std=-1.0)

    def test_parts_builders(self):
        assert len(make_vehicle()) == 2
        assert len(make_person()) == 3

    def test_lighting_drift_brightens_over_time(self):
        bg = BackgroundSpec(width=16, height=16, base_color=(100, 100, 100))
        video = SceneRenderer(bg, lighting_drift=50.0).render(5)
        first = float(video.frame(0).mean())
        last = float(video.frame(4).mean())
        assert last > first + 30.0

    def test_camera_jitter_moves_scene(self):
        bg = BackgroundSpec(width=24, height=24, base_color=(0, 0, 0),
                            zones=[(10, 10, 14, 14, (255, 255, 255))])
        video = SceneRenderer(bg, camera_jitter=3,
                              rng=np.random.default_rng(3)).render(6)
        positions = set()
        for frame in video:
            ys, xs = np.where(frame[..., 0] > 0)
            positions.add((int(ys.mean()), int(xs.mean())))
        assert len(positions) > 1  # the patch moves between frames

    def test_invalid_jitter(self):
        with pytest.raises(InvalidParameterError):
            SceneRenderer(BackgroundSpec(), camera_jitter=-1)
