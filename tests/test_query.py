"""Tests for the fluent query layer."""

import math

import numpy as np
import pytest

from repro.errors import IndexStateError, InvalidParameterError
from repro.graph.object_graph import ObjectGraph
from repro.query import Query
from repro.storage.database import VideoDatabase


@pytest.fixture()
def db():
    database = VideoDatabase()
    ogs = []
    # Eastbound fast, westbound slow, northbound mid — distinct lanes.
    ogs.append(ObjectGraph.from_values(
        np.stack([np.linspace(0, 90, 10), np.full(10, 20.0)], axis=1),
        label=0,
    ))
    ogs.append(ObjectGraph.from_values(
        np.stack([np.linspace(90, 85, 10), np.full(10, 60.0)], axis=1),
        label=1,
    ))
    ogs.append(ObjectGraph.from_values(
        np.stack([np.full(20, 45.0), np.linspace(0, 80, 20)], axis=1),
        frames=np.arange(100, 120),
        label=2,
    ))
    database.ingest_object_graphs(ogs)
    return database, ogs


class TestPredicates:
    def test_heading(self, db):
        database, ogs = db
        hits = Query(database).heading(0.0).run()
        assert [r.og.label for r in hits] == [0]

    def test_velocity_band(self, db):
        database, ogs = db
        slow = Query(database).velocity(maximum=1.0).run()
        assert [r.og.label for r in slow] == [1]
        fast = Query(database).velocity(minimum=5.0).run()
        assert [r.og.label for r in fast] == [0]

    def test_duration(self, db):
        database, _ = db
        long_tracks = Query(database).duration(minimum=15).run()
        assert [r.og.label for r in long_tracks] == [2]

    def test_between_frames(self, db):
        database, _ = db
        late = Query(database).between_frames(100, 200).run()
        assert [r.og.label for r in late] == [2]
        early = Query(database).between_frames(0, 50).run()
        assert {r.og.label for r in early} == {0, 1}

    def test_through_region(self, db):
        database, _ = db
        top_left = Query(database).through_region(0, 0, 30, 30).run()
        assert [r.og.label for r in top_left] == [0]

    def test_chained_predicates_intersect(self, db):
        database, _ = db
        hits = (Query(database)
                .between_frames(0, 50)
                .velocity(minimum=5.0)
                .run())
        assert [r.og.label for r in hits] == [0]

    def test_custom_where(self, db):
        database, _ = db
        hits = Query(database).where(lambda og: og.label == 1).run()
        assert len(hits) == 1

    def test_count(self, db):
        database, _ = db
        assert Query(database).count() == 3
        assert Query(database).velocity(minimum=5.0).count() == 1


class TestRanking:
    def test_similar_to_orders_by_distance(self, db):
        database, ogs = db
        example = ogs[0].values + 1.0
        hits = Query(database).similar_to(example).run()
        assert hits[0].og.label == 0
        dists = [r.distance for r in hits]
        assert dists == sorted(dists)

    def test_limit(self, db):
        database, ogs = db
        hits = Query(database).similar_to(ogs[0]).limit(2).run()
        assert len(hits) == 2

    def test_unranked_results_have_no_distance(self, db):
        database, _ = db
        hits = Query(database).run()
        assert all(r.distance is None for r in hits)

    def test_predicates_apply_before_ranking(self, db):
        database, ogs = db
        hits = (Query(database)
                .similar_to(ogs[0])
                .heading(math.pi)  # westbound only
                .run())
        assert [r.og.label for r in hits] == [1]

    def test_custom_distance(self, db):
        from repro.distance.dtw import DTW

        database, ogs = db
        hits = Query(database).similar_to(ogs[0], distance=DTW()).run()
        assert hits[0].og.label == 0


class TestValidation:
    def test_empty_database_yields_no_results(self):
        # A database with no index yet is queryable — it just has no rows.
        assert Query(VideoDatabase()).run() == []
        assert Query(VideoDatabase()).count() == 0

    def test_unqueryable_source_rejected(self):
        with pytest.raises(IndexStateError):
            Query(object())

    def test_bare_index_accepted(self, db):
        database, ogs = db
        hits = Query(database.index).run()
        assert len(hits) == 3

    def test_limit_zero_yields_empty(self, db):
        database, ogs = db
        assert Query(database).limit(0).run() == []
        assert Query(database).similar_to(ogs[0]).limit(0).run() == []

    def test_negative_limit_rejected(self, db):
        database, _ = db
        with pytest.raises(InvalidParameterError):
            Query(database).limit(-1)

    def test_velocity_needs_bound(self, db):
        database, _ = db
        with pytest.raises(InvalidParameterError):
            Query(database).velocity()

    def test_duration_needs_bound(self, db):
        database, _ = db
        with pytest.raises(InvalidParameterError):
            Query(database).duration()

    def test_empty_interval_rejected(self, db):
        database, _ = db
        with pytest.raises(InvalidParameterError):
            Query(database).between_frames(10, 5)
        with pytest.raises(InvalidParameterError):
            Query(database).through_region(5, 5, 0, 0)
