"""Tests for the M-tree baseline index."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distance.base import CountingDistance
from repro.distance.eged import MetricEGED
from repro.errors import IndexStateError, InvalidParameterError
from repro.mtree.split import (
    RandomPromotion,
    SamplingPromotion,
    make_policy,
    partition_by_closer,
)
from repro.mtree.tree import MTree, MTreeConfig


def random_series(rng, n=None):
    n = n or int(rng.integers(2, 10))
    return rng.normal(size=(n, 2)) * 10.0


def brute_knn(distance, items, query, k):
    return sorted(((distance(query, o), i) for i, o in enumerate(items)),
                  key=lambda t: t[0])[:k]


class TestSplitPolicies:
    def test_partition_covers_all(self):
        dmat = np.abs(np.subtract.outer(np.arange(6.0), np.arange(6.0)))
        a, b, ra, rb = partition_by_closer(6, 0, 5, lambda i, j: dmat[i, j])
        assert sorted(a + b) == list(range(6))
        assert 0 in a and 5 in b

    def test_partition_radii(self):
        dmat = np.abs(np.subtract.outer(np.arange(6.0), np.arange(6.0)))
        _, _, ra, rb = partition_by_closer(6, 0, 5, lambda i, j: dmat[i, j])
        assert ra <= 2.0 and rb <= 2.0

    def test_random_promotes_distinct(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            a, b = RandomPromotion().promote(5, lambda i, j: 1.0, rng)
            assert a != b

    def test_random_rejects_tiny_node(self):
        with pytest.raises(InvalidParameterError):
            RandomPromotion().promote(1, lambda i, j: 1.0,
                                      np.random.default_rng(0))

    def test_sampling_picks_better_pair(self):
        # Points on a line: 0, 1, 2, ..., 9.  The best pivot pair splits
        # the line in half; sampling with full coverage must find a pair
        # whose max radius <= the random worst case.
        values = np.arange(10.0)
        def pairwise(i, j):
            return abs(values[i] - values[j])
        rng = np.random.default_rng(0)
        a, b = SamplingPromotion(sample_size=45).promote(10, pairwise, rng)
        _, _, ra, rb = partition_by_closer(10, a, b, pairwise)
        assert max(ra, rb) <= 4.0

    def test_make_policy(self):
        assert make_policy("random").name == "random"
        assert make_policy("sampling").name == "sampling"
        with pytest.raises(InvalidParameterError):
            make_policy("bogus")

    def test_sampling_invalid_size(self):
        with pytest.raises(InvalidParameterError):
            SamplingPromotion(sample_size=0)


class TestMTreeInsertSearch:
    @pytest.fixture(params=["random", "sampling"])
    def tree_and_items(self, request, rng):
        distance = MetricEGED()
        tree = MTree(distance, MTreeConfig(node_capacity=4,
                                           split_policy=request.param))
        items = [random_series(rng) for _ in range(40)]
        for i, item in enumerate(items):
            tree.insert(item, i)
        return tree, items, distance

    def test_size(self, tree_and_items):
        tree, items, _ = tree_and_items
        assert len(tree) == len(items)

    def test_tree_grows_in_height(self, tree_and_items):
        tree, _, _ = tree_and_items
        assert tree.height() >= 2
        assert tree.node_count() > 1

    def test_knn_matches_brute_force(self, tree_and_items):
        tree, items, distance = tree_and_items
        query = items[3]
        for k in (1, 5, 10):
            hits = tree.knn(query, k)
            brute = brute_knn(distance, items, query, k)
            assert [h[0] for h in hits] == pytest.approx(
                [b[0] for b in brute]
            )

    def test_knn_self_is_nearest(self, tree_and_items):
        tree, items, _ = tree_and_items
        hits = tree.knn(items[7], 1)
        assert hits[0][0] == pytest.approx(0.0)

    def test_knn_k_larger_than_size(self, tree_and_items):
        tree, items, _ = tree_and_items
        hits = tree.knn(items[0], 100)
        assert len(hits) == len(items)

    def test_range_query_matches_brute(self, tree_and_items):
        tree, items, distance = tree_and_items
        query = items[0]
        radius = 30.0
        hits = tree.range_query(query, radius)
        expected = {i for i, o in enumerate(items)
                    if distance(query, o) <= radius}
        assert {h[1] for h in hits} == expected

    def test_results_sorted(self, tree_and_items):
        tree, items, _ = tree_and_items
        hits = tree.knn(items[0], 10)
        dists = [h[0] for h in hits]
        assert dists == sorted(dists)


class TestMTreeEdgeCases:
    def test_empty_search_raises(self):
        tree = MTree(MetricEGED())
        with pytest.raises(IndexStateError):
            tree.knn(np.zeros((2, 2)), 1)

    def test_invalid_k(self):
        tree = MTree(MetricEGED())
        tree.insert(np.zeros((2, 2)))
        with pytest.raises(InvalidParameterError):
            tree.knn(np.zeros((2, 2)), 0)

    def test_invalid_radius(self):
        tree = MTree(MetricEGED())
        tree.insert(np.zeros((2, 2)))
        with pytest.raises(InvalidParameterError):
            tree.range_query(np.zeros((2, 2)), -1.0)

    def test_invalid_capacity(self):
        with pytest.raises(InvalidParameterError):
            MTreeConfig(node_capacity=1)

    def test_auto_ids(self):
        tree = MTree(MetricEGED())
        a = tree.insert(np.zeros((2, 2)))
        b = tree.insert(np.ones((2, 2)))
        assert a != b

    def test_duplicate_objects_allowed(self):
        tree = MTree(MetricEGED(), MTreeConfig(node_capacity=2))
        for i in range(6):
            tree.insert(np.zeros((2, 2)), i)
        hits = tree.knn(np.zeros((2, 2)), 6)
        assert len(hits) == 6
        assert all(h[0] == 0.0 for h in hits)


class TestDistancePruning:
    def test_search_saves_distance_computations(self, rng):
        # On clustered data (the paper's regime) the index must beat a
        # linear scan on distance evaluations.
        counter = CountingDistance(MetricEGED())
        tree = MTree(counter, MTreeConfig(node_capacity=8))
        items = []
        for blob in range(6):
            center = np.array([blob * 200.0, blob * 150.0])
            for _ in range(20):
                items.append(center + rng.normal(size=(6, 2)))
        for i, item in enumerate(items):
            tree.insert(item, i)
        counter.reset()
        tree.knn(items[0], 5)
        assert counter.calls < len(items)


class TestPropertyBased:
    @given(st.integers(min_value=1, max_value=8),
           st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_knn_always_matches_brute(self, k, seed):
        rng = np.random.default_rng(seed)
        distance = MetricEGED()
        tree = MTree(distance, MTreeConfig(node_capacity=3, seed=seed))
        items = [random_series(rng) for _ in range(20)]
        for i, item in enumerate(items):
            tree.insert(item, i)
        query = random_series(rng)
        hits = tree.knn(query, k)
        brute = brute_knn(distance, items, query, min(k, len(items)))
        assert [h[0] for h in hits] == pytest.approx([b[0] for b in brute])
