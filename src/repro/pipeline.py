"""End-to-end pipeline: raw frames -> RAGs -> STRG -> OGs/BG -> STRG-Index.

:class:`VideoPipeline` wires the substrates together exactly in the order
of Section 2: segment every frame (EDISON substitute), build the per-frame
RAGs, track regions across frames into an STRG (Algorithm 1), decompose
into Object Graphs and a Background Graph (Section 2.3), and hand the
result to the :class:`~repro.core.index.STRGIndex`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial

import numpy as np

from repro.core.index import STRGIndex, STRGIndexConfig
from repro.errors import CorruptSegmentError, InvalidParameterError
from repro.graph.decomposition import (
    DecompositionConfig,
    STRGDecomposition,
    decompose,
)
from repro.graph.strg import SpatioTemporalRegionGraph
from repro.graph.tracking import GraphTracker, TrackerConfig
from repro.observability import OBS
from repro.parallel import ordered_chunk_map
from repro.resilience.faults import maybe_fail, maybe_transform
from repro.resilience.policy import RECOVERABLE_ERRORS
from repro.resilience.retry import RetryPolicy, call_with_retry
from repro.video.frames import VideoSegment
from repro.video.segmentation import GridSegmenter, Segmenter


def _segment_chunk(segmenter: Segmenter, start: int,
                   frames: list[np.ndarray]):
    """Chunk task for :func:`repro.parallel.ordered_chunk_map`: build the
    RAGs of a contiguous run of validated frames."""
    return segmenter.build_rags(frames, start)


def _validate_frame(frame, t: int, segment: str) -> np.ndarray:
    """Reject unusable frame data before it reaches the segmenter.

    Real decoders hand back ``None`` or short reads for corrupted input;
    the ``segmentation`` fault point simulates the same.  Raising a
    typed :class:`CorruptSegmentError` here lets the ingest fault policy
    quarantine the segment instead of crashing deep in the segmenter.
    """
    if (not isinstance(frame, np.ndarray) or frame.ndim != 3
            or frame.shape[2] != 3 or frame.size == 0):
        raise CorruptSegmentError(
            f"segment {segment!r}: frame {t} is corrupt or missing",
            details={"segment": segment, "frame": t},
        )
    return frame


@dataclass
class PipelineConfig:
    """Configuration of every pipeline stage.

    The fast :class:`GridSegmenter` is the default because the simulated
    streams are flat-colored; swap in
    :class:`~repro.video.segmentation.MeanShiftSegmenter` for textured
    input.
    """

    segmenter: Segmenter = field(default_factory=GridSegmenter)
    tracker: TrackerConfig = field(default_factory=TrackerConfig)
    decomposition: DecompositionConfig = field(default_factory=DecompositionConfig)
    index: STRGIndexConfig = field(
        default_factory=lambda: STRGIndexConfig(n_clusters=None, k_max=8)
    )


@dataclass
class ClipResult:
    """Outcome of one clip run through the extraction pipeline.

    The unit every ingest surface shares — ``VideoDatabase.ingest``,
    the streaming :class:`~repro.serving.ingest.IngestService` and ad-hoc
    callers all consume the same (decomposition, refs, attempts) triple,
    so indexing and journaling decisions are made once, here.
    """

    decomposition: STRGDecomposition
    refs: list[dict]
    attempts: int = 1

    @property
    def object_graphs(self):
        return self.decomposition.object_graphs

    @property
    def background(self):
        return self.decomposition.background


class VideoPipeline:
    """Orchestrates segmentation, tracking, decomposition and indexing."""

    def __init__(self, config: PipelineConfig | None = None):
        self.config = config or PipelineConfig()
        self._tracker = GraphTracker(self.config.tracker)
        #: The most recent index produced by :meth:`process` (lets
        #: ``Query(pipeline)`` and ``repro.open_database`` treat a
        #: pipeline like any other queryable source).
        self.index: STRGIndex | None = None

    def build_strg(self, video: VideoSegment,
                   workers: int | None = None,
                   force_pool: bool = False) -> SpatioTemporalRegionGraph:
        """Segment every frame and assemble the STRG (Sections 2.1-2.2).

        The ``segmentation`` (per frame) and ``tracking`` (per segment)
        fault-injection points fire here; injected frame corruption is
        caught by validation and surfaces as
        :class:`~repro.errors.CorruptSegmentError`.

        With ``workers > 1`` the per-frame segmentation + RAG work fans
        out across a process pool while the sequential
        :class:`~repro.graph.tracking.GraphTracker` consumes completed
        RAGs in frame order, overlapping segmentation with tracking.
        Results are **bit-identical** at any worker count: every fault
        hook fires in this process, in frame order, *before* the fan-out
        (same hook/RNG sequence as serial), and the pure per-frame
        kernels are chunking-invariant.  ``force_pool`` exercises the
        pool even on single-core machines (for tests — a pool there is
        overhead, not speedup).
        """
        if workers is not None and workers < 0:
            raise InvalidParameterError(
                f"workers must be >= 0, got {workers}"
            )
        n = video.num_frames
        parallel = (workers is not None and workers > 1) or force_pool
        if not parallel:
            with OBS.span("pipeline.segmentation", segment=video.name,
                          frames=n):
                rags = []
                for t in range(n):
                    frame = maybe_transform("segmentation", video.frame(t))
                    frame = _validate_frame(frame, t, video.name)
                    maybe_fail("segmentation", segment=video.name, frame=t)
                    rags.append(self.config.segmenter.build_rag(frame, t))
            with OBS.span("pipeline.tracking", segment=video.name):
                maybe_fail("tracking", segment=video.name)
                return self._tracker.build_strg(rags)
        # Parallel path: evaluate every fault hook up front, in frame
        # order, so injection/quarantine decisions cannot depend on
        # worker scheduling; workers then run pure computation.
        with OBS.span("pipeline.segmentation", segment=video.name,
                      frames=n, workers=workers, mode="parallel"):
            frames = []
            for t in range(n):
                frame = maybe_transform("segmentation", video.frame(t))
                frame = _validate_frame(frame, t, video.name)
                maybe_fail("segmentation", segment=video.name, frame=t)
                frames.append(frame)
        with OBS.span("pipeline.tracking", segment=video.name,
                      mode="overlapped"):
            maybe_fail("tracking", segment=video.name)
            rag_stream = ordered_chunk_map(
                partial(_segment_chunk, self.config.segmenter), frames,
                workers=workers, force_pool=force_pool,
            )
            return self._tracker.track_stream(rag_stream)

    def decompose(self, video: VideoSegment,
                  workers: int | None = None,
                  force_pool: bool = False) -> STRGDecomposition:
        """Full decomposition of a segment into OGs + BG (Section 2.3)."""
        strg = self.build_strg(video, workers=workers, force_pool=force_pool)
        with OBS.span("pipeline.decomposition", segment=video.name):
            maybe_fail("decomposition", segment=video.name)
            return decompose(strg, self.config.decomposition)

    def process_clip(self, video: VideoSegment, *,
                     retry_policy: RetryPolicy | None = None,
                     on_retry=None,
                     workers: int | None = None,
                     force_pool: bool = False) -> ClipResult:
        """The reusable per-clip ingest entry point: decompose + refs.

        Runs the full extraction (segment → track → decompose) and
        returns a :class:`ClipResult` carrying the decomposition, one
        clip ref per OG (``{"video": name, "og": id}``) and the number
        of attempts used.  With ``retry_policy`` set, recoverable
        per-clip failures (:data:`~repro.resilience.policy.RECOVERABLE_ERRORS`)
        are retried under it — a retry re-runs the whole decomposition,
        so refs always describe the final successful attempt.
        ``on_retry(attempt, error, delay)`` is invoked before each
        backoff sleep (telemetry).  The final failure propagates
        unchanged; callers decide between fail-fast and quarantine.
        """
        attempts = 1

        def run():
            return self.decompose(video, workers=workers,
                                  force_pool=force_pool)

        if retry_policy is None:
            decomposition = run()
        else:
            def count(attempt, exc, delay):
                nonlocal attempts
                attempts = attempt + 1
                if on_retry is not None:
                    on_retry(attempt, exc, delay)

            decomposition = call_with_retry(
                run, retry_policy, retryable=RECOVERABLE_ERRORS,
                on_retry=count,
            )
        refs = [
            {"video": video.name, "og": og.og_id}
            for og in decomposition.object_graphs
        ]
        return ClipResult(decomposition, refs, attempts)

    def process(self, video: VideoSegment,
                index: STRGIndex | None = None,
                workers: int | None = None
                ) -> tuple[STRGDecomposition, STRGIndex]:
        """Decompose a segment and (build or extend) an STRG-Index.

        Returns the decomposition and the index.  When ``index`` is given,
        the segment's OGs are inserted into it (background-matched at the
        root level); otherwise a fresh index is built.  ``workers``
        controls frame-parallel segmentation (see :meth:`build_strg`).
        """
        clip = self.process_clip(video, workers=workers)
        decomposition, refs = clip.decomposition, clip.refs
        if index is None:
            index = STRGIndex(self.config.index)
            if decomposition.object_graphs:
                index.build(decomposition.object_graphs,
                            decomposition.background, refs)
        else:
            for og, ref in zip(decomposition.object_graphs, refs):
                index.insert(og, decomposition.background, ref)
        self.index = index
        return decomposition, index
