"""End-to-end pipeline: raw frames -> RAGs -> STRG -> OGs/BG -> STRG-Index.

:class:`VideoPipeline` wires the substrates together exactly in the order
of Section 2: segment every frame (EDISON substitute), build the per-frame
RAGs, track regions across frames into an STRG (Algorithm 1), decompose
into Object Graphs and a Background Graph (Section 2.3), and hand the
result to the :class:`~repro.core.index.STRGIndex`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.index import STRGIndex, STRGIndexConfig
from repro.graph.decomposition import (
    DecompositionConfig,
    STRGDecomposition,
    decompose,
)
from repro.graph.strg import SpatioTemporalRegionGraph
from repro.graph.tracking import GraphTracker, TrackerConfig
from repro.video.frames import VideoSegment
from repro.video.segmentation import GridSegmenter, Segmenter


@dataclass
class PipelineConfig:
    """Configuration of every pipeline stage.

    The fast :class:`GridSegmenter` is the default because the simulated
    streams are flat-colored; swap in
    :class:`~repro.video.segmentation.MeanShiftSegmenter` for textured
    input.
    """

    segmenter: Segmenter = field(default_factory=GridSegmenter)
    tracker: TrackerConfig = field(default_factory=TrackerConfig)
    decomposition: DecompositionConfig = field(default_factory=DecompositionConfig)
    index: STRGIndexConfig = field(
        default_factory=lambda: STRGIndexConfig(n_clusters=None, k_max=8)
    )


class VideoPipeline:
    """Orchestrates segmentation, tracking, decomposition and indexing."""

    def __init__(self, config: PipelineConfig | None = None):
        self.config = config or PipelineConfig()
        self._tracker = GraphTracker(self.config.tracker)

    def build_strg(self, video: VideoSegment) -> SpatioTemporalRegionGraph:
        """Segment every frame and assemble the STRG (Sections 2.1-2.2)."""
        rags = [
            self.config.segmenter.build_rag(video.frame(t), t)
            for t in range(video.num_frames)
        ]
        return self._tracker.build_strg(rags)

    def decompose(self, video: VideoSegment) -> STRGDecomposition:
        """Full decomposition of a segment into OGs + BG (Section 2.3)."""
        strg = self.build_strg(video)
        return decompose(strg, self.config.decomposition)

    def process(self, video: VideoSegment,
                index: STRGIndex | None = None
                ) -> tuple[STRGDecomposition, STRGIndex]:
        """Decompose a segment and (build or extend) an STRG-Index.

        Returns the decomposition and the index.  When ``index`` is given,
        the segment's OGs are inserted into it (background-matched at the
        root level); otherwise a fresh index is built.
        """
        decomposition = self.decompose(video)
        refs = [
            {"video": video.name, "og": og.og_id}
            for og in decomposition.object_graphs
        ]
        if index is None:
            index = STRGIndex(self.config.index)
            if decomposition.object_graphs:
                index.build(decomposition.object_graphs,
                            decomposition.background, refs)
        else:
            for og, ref in zip(decomposition.object_graphs, refs):
                index.insert(og, decomposition.background, ref)
        return decomposition, index
