"""End-to-end pipeline: raw frames -> RAGs -> STRG -> OGs/BG -> STRG-Index.

:class:`VideoPipeline` wires the substrates together exactly in the order
of Section 2: segment every frame (EDISON substitute), build the per-frame
RAGs, track regions across frames into an STRG (Algorithm 1), decompose
into Object Graphs and a Background Graph (Section 2.3), and hand the
result to the :class:`~repro.core.index.STRGIndex`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.index import STRGIndex, STRGIndexConfig
from repro.errors import CorruptSegmentError
from repro.graph.decomposition import (
    DecompositionConfig,
    STRGDecomposition,
    decompose,
)
from repro.graph.strg import SpatioTemporalRegionGraph
from repro.graph.tracking import GraphTracker, TrackerConfig
from repro.observability import OBS
from repro.resilience.faults import maybe_fail, maybe_transform
from repro.video.frames import VideoSegment
from repro.video.segmentation import GridSegmenter, Segmenter


def _validate_frame(frame, t: int, segment: str) -> np.ndarray:
    """Reject unusable frame data before it reaches the segmenter.

    Real decoders hand back ``None`` or short reads for corrupted input;
    the ``segmentation`` fault point simulates the same.  Raising a
    typed :class:`CorruptSegmentError` here lets the ingest fault policy
    quarantine the segment instead of crashing deep in the segmenter.
    """
    if (not isinstance(frame, np.ndarray) or frame.ndim != 3
            or frame.shape[2] != 3 or frame.size == 0):
        raise CorruptSegmentError(
            f"segment {segment!r}: frame {t} is corrupt or missing",
            details={"segment": segment, "frame": t},
        )
    return frame


@dataclass
class PipelineConfig:
    """Configuration of every pipeline stage.

    The fast :class:`GridSegmenter` is the default because the simulated
    streams are flat-colored; swap in
    :class:`~repro.video.segmentation.MeanShiftSegmenter` for textured
    input.
    """

    segmenter: Segmenter = field(default_factory=GridSegmenter)
    tracker: TrackerConfig = field(default_factory=TrackerConfig)
    decomposition: DecompositionConfig = field(default_factory=DecompositionConfig)
    index: STRGIndexConfig = field(
        default_factory=lambda: STRGIndexConfig(n_clusters=None, k_max=8)
    )


class VideoPipeline:
    """Orchestrates segmentation, tracking, decomposition and indexing."""

    def __init__(self, config: PipelineConfig | None = None):
        self.config = config or PipelineConfig()
        self._tracker = GraphTracker(self.config.tracker)
        #: The most recent index produced by :meth:`process` (lets
        #: ``Query(pipeline)`` and ``repro.open_database`` treat a
        #: pipeline like any other queryable source).
        self.index: STRGIndex | None = None

    def build_strg(self, video: VideoSegment) -> SpatioTemporalRegionGraph:
        """Segment every frame and assemble the STRG (Sections 2.1-2.2).

        The ``segmentation`` (per frame) and ``tracking`` (per segment)
        fault-injection points fire here; injected frame corruption is
        caught by validation and surfaces as
        :class:`~repro.errors.CorruptSegmentError`.
        """
        with OBS.span("pipeline.segmentation", segment=video.name,
                      frames=video.num_frames):
            rags = []
            for t in range(video.num_frames):
                frame = maybe_transform("segmentation", video.frame(t))
                frame = _validate_frame(frame, t, video.name)
                maybe_fail("segmentation", segment=video.name, frame=t)
                rags.append(self.config.segmenter.build_rag(frame, t))
        with OBS.span("pipeline.tracking", segment=video.name):
            maybe_fail("tracking", segment=video.name)
            return self._tracker.build_strg(rags)

    def decompose(self, video: VideoSegment) -> STRGDecomposition:
        """Full decomposition of a segment into OGs + BG (Section 2.3)."""
        strg = self.build_strg(video)
        with OBS.span("pipeline.decomposition", segment=video.name):
            maybe_fail("decomposition", segment=video.name)
            return decompose(strg, self.config.decomposition)

    def process(self, video: VideoSegment,
                index: STRGIndex | None = None
                ) -> tuple[STRGDecomposition, STRGIndex]:
        """Decompose a segment and (build or extend) an STRG-Index.

        Returns the decomposition and the index.  When ``index`` is given,
        the segment's OGs are inserted into it (background-matched at the
        root level); otherwise a fresh index is built.
        """
        decomposition = self.decompose(video)
        refs = [
            {"video": video.name, "og": og.og_id}
            for og in decomposition.object_graphs
        ]
        if index is None:
            index = STRGIndex(self.config.index)
            if decomposition.object_graphs:
                index.build(decomposition.object_graphs,
                            decomposition.background, refs)
        else:
            for og, ref in zip(decomposition.object_graphs, refs):
                index.insert(og, decomposition.background, ref)
        self.index = index
        return decomposition, index
