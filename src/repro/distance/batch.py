"""Batched distance kernels: one DP sweep for a whole batch of pairs.

Every distance in this package is an O(n*m) dynamic program, and Section
6.3's cost model makes those DPs the dominant cost of every experiment —
EM evaluates EGED against every centroid each iteration, BIC repeats whole
EM runs across K, and index build / k-NN pay per-pair calls.  The scalar
kernels (:mod:`repro.distance.eged` etc.) run a rolling-row Python loop
per pair; this module instead pads a batch of series to a common length
and advances the recurrence one *row* at a time as NumPy operations over
the entire batch, so P pairs cost roughly one NumPy-speed DP instead of P
Python-loop DPs.

Row-scan vectorization
----------------------
A DP row cannot be vectorized naively because ``cur[j]`` depends on
``cur[j - 1]`` (the insert/left transition).  All four recurrences are
min-plus (max-plus for LCS) linear along a row, so the row collapses to a
prefix scan.  Writing ``E[j]`` for the part of cell ``j`` that depends
only on the *previous* row and ``w[j]`` for the additive weight of the
left transition into cell ``j``:

    cur[j] = min(E[j], cur[j-1] + w[j])
           = C[j] + min_{k <= j} (E[k] - C[k]),   C[j] = w[1] + ... + w[j]

which is one ``cumsum`` plus one ``np.minimum.accumulate`` over the whole
``(batch, row)`` plane.  For LCS the weight is zero and min becomes max,
so the scan is exact integer arithmetic; for the real-valued kernels the
re-association of the sums introduces rounding differences of order
``1e-12`` relative to the scalar kernels (well inside the 1e-9 equivalence
tolerance the test suite enforces).

Padding
-------
Series are right-padded with zeros to the batch maximum length ``M``.
Cells at column ``j`` only ever read columns ``<= j`` of the current and
previous row, so the garbage computed in padded columns never reaches the
cell ``(n, m_b)`` that is read out for a series of true length
``m_b <= M``.  Batches are processed in length-sorted chunks (bounded by
:data:`MAX_CELLS` DP cells) to limit both padding waste and peak memory.

The public entry points are :func:`one_vs_many` and
:func:`pairwise_matrix`; they dispatch through
:meth:`repro.distance.base.Distance.compute_many`, which the four kernel
classes override to land here.  Distances without a batched kernel (or
plain callables) fall back to a per-pair loop with unchanged call order,
so asymmetric user distances keep their semantics.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from repro.distance.base import (
    Distance,
    SeriesLike,
    as_series,
    check_same_dim,
)
from repro.observability import OBS

try:  # optional: ~2x faster node-norm tensors when SciPy is around
    from scipy.spatial.distance import cdist as _cdist
except ImportError:  # pragma: no cover - exercised only without SciPy
    _cdist = None

#: Upper bound on ``batch * n * M`` DP cells processed per chunk; keeps the
#: cost tensors (the largest is ``(batch, n, M + 1)`` float64) around a few
#: tens of megabytes.
MAX_CELLS = 4_000_000


# -- padding / chunking -------------------------------------------------------


def _normalize_batch(query: SeriesLike, items: Sequence[SeriesLike]
                     ) -> tuple[np.ndarray, list[np.ndarray]]:
    """Coerce the query and every batch item to ``(n, d)`` series."""
    a = as_series(query)
    bs = []
    for item in items:
        b = as_series(item)
        check_same_dim(a, b)
        bs.append(b)
    return a, bs


def _pad(series: list[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
    """Right-pad a list of ``(m_i, d)`` series with zeros to a common
    length; returns the ``(B, M, d)`` tensor and the true lengths."""
    lengths = np.array([s.shape[0] for s in series], dtype=np.int64)
    big = int(lengths.max())
    out = np.zeros((len(series), big, series[0].shape[1]), dtype=np.float64)
    for i, s in enumerate(series):
        out[i, : s.shape[0]] = s
    return out, lengths


def _chunked(kernel: Callable, a: np.ndarray, bs: list[np.ndarray],
             *params) -> np.ndarray:
    """Run ``kernel`` over length-sorted chunks of ``bs`` bounded by
    :data:`MAX_CELLS` DP cells, scattering results back to input order."""
    out = np.empty(len(bs), dtype=np.float64)
    if not bs:
        return out
    n = a.shape[0]
    order = sorted(range(len(bs)), key=lambda i: bs[i].shape[0])
    pos = 0
    while pos < len(order):
        stop = pos + 1
        while stop < len(order):
            longest = bs[order[stop]].shape[0] + 1
            if (stop - pos + 1) * n * longest > MAX_CELLS:
                break
            stop += 1
        idx = order[pos:stop]
        padded, lengths = _pad([bs[i] for i in idx])
        out[idx] = kernel(a, padded, lengths, *params)
        pos = stop
    return out


def _row_scan_min(e: np.ndarray, c: np.ndarray, scan: np.ndarray,
                  out: np.ndarray) -> None:
    """Min-plus prefix scan: ``cur[j] = min(E[j], cur[j-1] + w[j])`` with
    ``c`` the prefix sums of the left-transition weights ``w``.  Runs
    entirely in the preallocated ``scan``/``out`` buffers."""
    np.subtract(e, c, out=scan)
    np.minimum.accumulate(scan, axis=1, out=scan)
    np.add(c, scan, out=out)


def _norms_to(points: np.ndarray, ref: np.ndarray) -> np.ndarray:
    """Batched L2 norms in DP-row-major layout.

    ``points`` is ``(B, M, d)`` and ``ref`` is ``(R, d)``; the result is
    ``(R, B, M)`` — the reference (DP row) axis first, so the per-row
    slices taken inside the kernels are contiguous.  Both paths compute
    ``sqrt(sum_k (p_k - r_k)^2)`` directly (no expanded ``|p|^2 + |r|^2 -
    2 p.r`` form, whose cancellation would blow the 1e-9 scalar-equivalence
    tolerance); SciPy's C loop is ~2x the NumPy path, which accumulates the
    squared differences one attribute dimension at a time so no ``(B, M,
    R, d)`` intermediate is ever materialized.
    """
    if _cdist is not None:
        batch, big, dim = points.shape
        return _cdist(ref, points.reshape(batch * big, dim)).reshape(
            ref.shape[0], batch, big
        )
    out = np.square(points[None, :, :, 0] - ref[:, None, None, 0])
    for k in range(1, ref.shape[1]):
        diff = points[None, :, :, k] - ref[:, None, None, k]
        out += np.square(diff, out=diff)
    return np.sqrt(out, out=out)


# -- kernels ------------------------------------------------------------------


def _erp_kernel(a: np.ndarray, padded: np.ndarray, lengths: np.ndarray,
                gap: np.ndarray) -> np.ndarray:
    """Unconstrained ERP over one padded chunk."""
    n = a.shape[0]
    batch, big = padded.shape[0], padded.shape[1]
    sub = _norms_to(padded, a)                       # (n, B, M)
    gap_a = np.sqrt(np.sum((a - gap[None, :]) ** 2, axis=1))      # (n,)
    gap_b = np.sqrt(np.sum((padded - gap[None, None, :]) ** 2, axis=2))
    # Prefix sums of the insert weights double as DP row 0.
    c = np.zeros((batch, big + 1), dtype=np.float64)
    np.cumsum(gap_b, axis=1, out=c[:, 1:])
    prev = c.copy()
    e = np.empty_like(prev)
    scan = np.empty_like(prev)
    t1 = np.empty((batch, big), dtype=np.float64)
    t2 = np.empty_like(t1)
    for i in range(n):
        e[:, 0] = prev[:, 0] + gap_a[i]
        np.add(prev[:, :-1], sub[i], out=t1)
        np.add(prev[:, 1:], gap_a[i], out=t2)
        np.minimum(t1, t2, out=e[:, 1:])
        _row_scan_min(e, c, scan, prev)
    return prev[np.arange(batch), lengths]


def _gap_states(padded: np.ndarray, lengths: np.ndarray,
                mode: str) -> np.ndarray:
    """Batched :func:`repro.distance.eged._gap_values`: per-item gap
    reference values for alignment states ``0..m_i`` of each series."""
    from repro.distance.eged import ADAPTIVE

    batch, big, dim = padded.shape
    # Zero-init: states past ``m_i`` are never read by the DP, but they do
    # flow through the batched norm, so they must stay finite.
    out = np.zeros((batch, big + 1, dim), dtype=np.float64)
    out[:, 0] = padded[:, 0]
    if mode == ADAPTIVE:
        if big > 1:
            out[:, 1:big] = (padded[:, :-1] + padded[:, 1:]) / 2.0
        # State m_i clamps to the last *true* node, not the padding.
        rows = np.arange(batch)
        out[rows, lengths] = padded[rows, lengths - 1]
    else:
        out[:, 1:] = padded
    return out


def _eged_kernel(a: np.ndarray, padded: np.ndarray, lengths: np.ndarray,
                 mode: str) -> np.ndarray:
    """Non-metric EGED (adaptive or dtw gap policy) over one padded chunk."""
    from repro.distance.eged import _gap_values

    n = a.shape[0]
    batch, big = padded.shape[0], padded.shape[1]
    sub = _norms_to(padded, a)                       # (n, B, M)
    mid_a = _gap_values(a, mode)                     # (n + 1, d)
    mid_b = _gap_states(padded, lengths, mode)       # (B, M + 1, d)
    # del_cost[i, b, j]: gap a[i] while b has consumed j nodes.
    del_cost = _norms_to(mid_b, a)                   # (n, B, M + 1)
    # ins_cost[i, b, j]: gap b[j] while a has consumed i nodes.
    ins_cost = _norms_to(padded, mid_a)              # (n + 1, B, M)

    # ins_cum[i]: the insert-only DP row for ``a`` consumed up to i — one
    # vectorized prefix sum for all n+1 rows instead of n+1 in-loop calls.
    ins_cum = np.zeros((n + 1, batch, big + 1), dtype=np.float64)
    np.cumsum(ins_cost, axis=2, out=ins_cum[:, :, 1:])

    prev = ins_cum[0].copy()
    e = np.empty_like(prev)
    scan = np.empty_like(prev)
    t1 = np.empty((batch, big), dtype=np.float64)
    t2 = np.empty_like(t1)
    for i in range(n):
        c = ins_cum[i + 1]
        e[:, 0] = prev[:, 0] + del_cost[i][:, 0]
        np.add(prev[:, :-1], sub[i], out=t1)
        np.add(prev[:, 1:], del_cost[i][:, 1:], out=t2)
        np.minimum(t1, t2, out=e[:, 1:])
        _row_scan_min(e, c, scan, prev)
    return prev[np.arange(batch), lengths]


def _dtw_kernel(a: np.ndarray, padded: np.ndarray,
                lengths: np.ndarray) -> np.ndarray:
    """Unconstrained DTW over one padded chunk."""
    n = a.shape[0]
    batch, big = padded.shape[0], padded.shape[1]
    cost = _norms_to(padded, a)                      # (n, B, M)
    prev = np.full((batch, big + 1), np.inf)
    prev[:, 0] = 0.0
    v = np.empty_like(prev)
    v[:, 0] = np.inf
    s = np.zeros_like(prev)
    scan = np.empty_like(prev)
    t1 = np.empty((batch, big), dtype=np.float64)
    for i in range(n):
        crow = cost[i]
        np.cumsum(crow, axis=1, out=s[:, 1:])
        np.minimum(prev[:, :-1], prev[:, 1:], out=t1)
        np.add(crow, t1, out=v[:, 1:])
        _row_scan_min(v, s, scan, prev)
    return prev[np.arange(batch), lengths]


def _lcs_kernel(a: np.ndarray, padded: np.ndarray, lengths: np.ndarray,
                epsilon: float, delta: int | None) -> np.ndarray:
    """LCS *length* (exact integer DP) over one padded chunk."""
    n = a.shape[0]
    batch, big = padded.shape[0], padded.shape[1]
    # match[i, b, j]: nodes a[i] and b[j] agree within epsilon in every
    # attribute dimension (row-major in i, accumulated per dimension).
    match = (
        np.abs(padded[None, :, :, 0] - a[:, None, None, 0]) <= epsilon
    )
    for k in range(1, a.shape[1]):
        match &= (
            np.abs(padded[None, :, :, k] - a[:, None, None, k]) <= epsilon
        )
    if delta is not None:
        ii, jj = np.indices((n, big))
        match &= (np.abs(ii - jj) <= delta)[:, None, :]
    prev = np.zeros((batch, big + 1), dtype=np.int64)
    e = np.zeros_like(prev)
    t1 = np.empty((batch, big), dtype=np.int64)
    for i in range(n):
        np.add(prev[:, :-1], 1, out=t1)
        np.copyto(e[:, 1:], prev[:, 1:])
        np.copyto(e[:, 1:], t1, where=match[i])
        np.maximum.accumulate(e, axis=1, out=prev)
    return prev[np.arange(batch), lengths].astype(np.float64)


# -- batched entry points per kernel -----------------------------------------


def batch_erp(query: SeriesLike, items: Sequence[SeriesLike],
              gap: float | np.ndarray = 0.0) -> np.ndarray:
    """Unconstrained ERP (= metric EGED_M) of ``query`` against every item."""
    a, bs = _normalize_batch(query, items)
    g = np.broadcast_to(
        np.asarray(gap, dtype=np.float64), (a.shape[1],)
    ).astype(np.float64)
    return _chunked(_erp_kernel, a, bs, g)


def batch_eged(query: SeriesLike, items: Sequence[SeriesLike],
               mode: str = "adaptive") -> np.ndarray:
    """Non-metric EGED (``adaptive`` or ``dtw`` gap policy) of ``query``
    against every item."""
    from repro.distance.eged import ADAPTIVE, DTW_GAP
    from repro.errors import InvalidParameterError

    if mode not in (ADAPTIVE, DTW_GAP):
        raise InvalidParameterError(
            f"mode must be 'adaptive' or 'dtw', got {mode!r}"
        )
    a, bs = _normalize_batch(query, items)
    return _chunked(_eged_kernel, a, bs, mode)


def batch_dtw(query: SeriesLike, items: Sequence[SeriesLike]) -> np.ndarray:
    """Unconstrained DTW of ``query`` against every item.

    Sakoe-Chiba-banded DTW is served by the scalar kernel (the band makes
    the reachable region differ per pair, defeating shared-row batching).
    """
    a, bs = _normalize_batch(query, items)
    return _chunked(_dtw_kernel, a, bs)


def batch_lcs(query: SeriesLike, items: Sequence[SeriesLike],
              epsilon: float = 1.0, delta: int | None = None) -> np.ndarray:
    """LCS dissimilarity ``1 - |LCS| / min(n, m)`` of ``query`` against
    every item (exact — the LCS DP is integer arithmetic)."""
    a, bs = _normalize_batch(query, items)
    common = _chunked(_lcs_kernel, a, bs, epsilon, delta)
    if len(bs) == 0:
        return common
    mins = np.minimum(a.shape[0], np.array([b.shape[0] for b in bs]))
    return 1.0 - common / mins


# -- generic dispatch ---------------------------------------------------------


def supports_batch(distance: Any) -> bool:
    """True when ``distance`` overrides
    :meth:`~repro.distance.base.Distance.compute_many` with a batched
    kernel (all shipped kernels are symmetric, so callers may freely flip
    the query/item roles on this path)."""
    return (
        isinstance(distance, Distance)
        and type(distance).compute_many is not Distance.compute_many
    )


def one_vs_many(distance: Distance | Callable[[Any, Any], float],
                query: SeriesLike,
                items: Sequence[SeriesLike]) -> np.ndarray:
    """Distances from ``query`` to every item, batched when possible.

    :class:`~repro.distance.base.Distance` instances dispatch through
    ``compute_many`` (batched for EGED/ERP/DTW/LCS, a loop otherwise);
    plain callables are looped with the ``(query, item)`` argument order
    preserved.
    """
    if OBS.enabled:
        OBS.count("distance.pairs_computed", len(items))
    if isinstance(distance, Distance):
        a, bs = _normalize_batch(query, items)
        return distance.compute_many(a, bs)
    return np.array([float(distance(query, item)) for item in items],
                    dtype=np.float64)


def pairwise_matrix(distance: Distance | Callable[[Any, Any], float],
                    items: Sequence[SeriesLike],
                    others: Sequence[SeriesLike] | None = None,
                    executor: Any = None) -> np.ndarray:
    """Dense distance matrix built row-by-row from batched sweeps.

    Mirrors :func:`repro.distance.base.pairwise_matrix` (symmetric
    self-distance matrix when ``others`` is omitted, with only the upper
    triangle evaluated) but each row is a single batched DP.  Pass a
    :class:`repro.parallel.DistanceExecutor` as ``executor`` to fan the
    rows out across worker processes.
    """
    if executor is not None:
        return executor.pairwise_matrix(distance, items, others)
    if others is None:
        n = len(items)
        out = np.zeros((n, n), dtype=np.float64)
        for i in range(n - 1):
            row = one_vs_many(distance, items[i], items[i + 1:])
            out[i, i + 1:] = row
            out[i + 1:, i] = row
        return out
    out = np.empty((len(items), len(others)), dtype=np.float64)
    for i, item in enumerate(items):
        out[i] = one_vs_many(distance, item, others)
    return out
