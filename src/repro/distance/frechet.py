"""Discrete Frechet distance.

A classic trajectory similarity measure included for completeness of the
baseline suite: the minimum over monotone couplings of the *maximum*
node distance (the "dog leash" length).  It is a true metric on
point-sequence space but sensitive to single outliers — the opposite
trade-off to EGED's summed edit costs.
"""

from __future__ import annotations

import numpy as np

from repro.distance.base import Distance, node_cost_matrix


def discrete_frechet(a: np.ndarray, b: np.ndarray) -> float:
    """Discrete Frechet distance between ``(n, d)`` and ``(m, d)`` series."""
    n, m = a.shape[0], b.shape[0]
    cost = node_cost_matrix(a, b).tolist()
    # Rolling-row DP: F[i][j] = max(cost[i][j], min(F[i-1][j-1],
    # F[i-1][j], F[i][j-1])).
    prev = [0.0] * m
    acc = 0.0
    first = cost[0]
    row0 = []
    for j in range(m):
        acc = max(acc, first[j])
        row0.append(acc)
    prev = row0
    for i in range(1, n):
        crow = cost[i]
        cur = [max(prev[0], crow[0])]
        for j in range(1, m):
            reach = min(prev[j - 1], prev[j], cur[j - 1])
            cur.append(max(reach, crow[j]))
        prev = cur
    return float(prev[m - 1])


class FrechetDistance(Distance):
    """Callable discrete Frechet distance (a metric)."""

    is_metric = True

    def compute(self, a: np.ndarray, b: np.ndarray) -> float:
        return discrete_frechet(a, b)

    @property
    def name(self) -> str:
        return "Frechet"
