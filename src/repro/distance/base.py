"""Shared machinery for sequence distances.

All distances in this package operate on *value series*: a float array of
shape ``(n, d)`` where ``n`` is the number of temporal nodes of an Object
Graph and ``d`` the attribute dimension.  :func:`as_series` normalizes the
accepted inputs (1-D arrays, lists of vectors, or any object exposing a
``values`` attribute, such as :class:`repro.graph.object_graph.ObjectGraph`).
"""

from __future__ import annotations

import abc
import itertools
from typing import Any, Callable, Sequence

import numpy as np

from repro.errors import DimensionMismatchError, EmptySequenceError

#: Anything convertible to a value series.
SeriesLike = Any


def as_series(x: SeriesLike) -> np.ndarray:
    """Coerce ``x`` into a float64 array of shape ``(n, d)``.

    Accepts a 1-D array (interpreted as scalar-valued nodes, ``d = 1``),
    a 2-D array, a sequence of vectors, or any object with a ``values``
    attribute.  Raises :class:`EmptySequenceError` for empty input.
    """
    values = getattr(x, "values", x)
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim == 0:
        arr = arr.reshape(1, 1)
    elif arr.ndim == 1:
        arr = arr.reshape(-1, 1)
    elif arr.ndim != 2:
        raise DimensionMismatchError(
            f"value series must be 1-D or 2-D, got shape {arr.shape}"
        )
    if arr.shape[0] == 0:
        raise EmptySequenceError("value series is empty")
    return arr


def check_same_dim(a: np.ndarray, b: np.ndarray) -> None:
    """Raise :class:`DimensionMismatchError` unless ``a`` and ``b`` share a
    feature dimension."""
    if a.shape[1] != b.shape[1]:
        raise DimensionMismatchError(
            f"feature dimensions differ: {a.shape[1]} vs {b.shape[1]}"
        )


class Distance(abc.ABC):
    """A dissimilarity function over value series.

    Subclasses implement :meth:`compute` on normalized ``(n, d)`` arrays;
    instances are callables accepting anything :func:`as_series` accepts.
    """

    #: Whether the distance satisfies the metric axioms.
    is_metric: bool = False

    def __call__(self, x: SeriesLike, y: SeriesLike) -> float:
        a = as_series(x)
        b = as_series(y)
        check_same_dim(a, b)
        return float(self.compute(a, b))

    @abc.abstractmethod
    def compute(self, a: np.ndarray, b: np.ndarray) -> float:
        """Distance between two normalized ``(n, d)`` series."""

    def compute_many(self, query: np.ndarray,
                     batch: Sequence[np.ndarray]) -> np.ndarray:
        """Distances from ``query`` to every normalized series in ``batch``.

        The default is a per-pair loop with the ``(query, item)`` argument
        order preserved; the EGED/ERP/DTW/LCS kernels override it with the
        wavefront-batched DPs of :mod:`repro.distance.batch`.
        """
        return np.array([self.compute(query, b) for b in batch],
                        dtype=np.float64)

    #: Hashable identity of the distance function *and* its parameters,
    #: or ``None`` when results must not be memoized.  Distances exposing
    #: a token promise to be symmetric and deterministic, which is what
    #: lets :class:`repro.distance.cache.DistanceCache` store each pair
    #: once under a canonical key.
    cache_token: Any = None

    @property
    def name(self) -> str:
        """Short human-readable identifier (used in benchmark tables)."""
        return type(self).__name__


class FunctionDistance(Distance):
    """Adapt a plain callable ``f(a, b) -> float`` into a :class:`Distance`."""

    def __init__(self, func: Callable[[np.ndarray, np.ndarray], float],
                 name: str | None = None, is_metric: bool = False):
        self._func = func
        self._name = name or getattr(func, "__name__", "distance")
        self.is_metric = is_metric

    def compute(self, a: np.ndarray, b: np.ndarray) -> float:
        return self._func(a, b)

    @property
    def name(self) -> str:
        return self._name


class CountingDistance(Distance):
    """Wrap a distance and count invocations.

    The paper's k-NN cost model (Section 6.3) treats the *number of distance
    evaluations* as the dominant query cost; this wrapper is how the Figure
    7(b) benchmark measures it.
    """

    def __init__(self, inner: Distance):
        self.inner = inner
        self.calls = 0
        self.is_metric = inner.is_metric

    def __call__(self, x: SeriesLike, y: SeriesLike) -> float:
        self.calls += 1
        return self.inner(x, y)

    def compute(self, a: np.ndarray, b: np.ndarray) -> float:
        self.calls += 1
        return self.inner.compute(a, b)

    def compute_many(self, query: np.ndarray,
                     batch: Sequence[np.ndarray]) -> np.ndarray:
        """Batched evaluation still counts one call per pair (the paper's
        cost model charges per distance *evaluation*, however computed).

        ``cache_token`` stays ``None`` so counting distances bypass the
        memo cache — a cache hit would silently drop evaluations from the
        Figure 7(b) counts.
        """
        self.calls += len(batch)
        return self.inner.compute_many(query, batch)

    def reset(self) -> None:
        """Zero the call counter."""
        self.calls = 0

    @property
    def name(self) -> str:
        return f"counting({self.inner.name})"


def pairwise_matrix(distance: Distance | Callable[[Any, Any], float],
                    items: Sequence[SeriesLike],
                    others: Sequence[SeriesLike] | None = None) -> np.ndarray:
    """Dense distance matrix between ``items`` and ``others``.

    When ``others`` is omitted the matrix is the symmetric self-distance
    matrix of ``items`` and only the upper triangle is evaluated.
    :class:`Distance` instances are evaluated one batched row at a time
    (see :mod:`repro.distance.batch`); plain callables fall back to the
    per-pair loop.
    """
    if isinstance(distance, Distance):
        from repro.distance.batch import pairwise_matrix as _batched

        return _batched(distance, items, others)
    if others is None:
        n = len(items)
        out = np.zeros((n, n), dtype=np.float64)
        for i in range(n):
            for j in range(i + 1, n):
                out[i, j] = out[j, i] = distance(items[i], items[j])
        return out
    out = np.empty((len(items), len(others)), dtype=np.float64)
    for i, x in enumerate(items):
        for j, y in enumerate(others):
            out[i, j] = distance(x, y)
    return out


def check_metric_axioms(distance: Distance | Callable[[Any, Any], float],
                        points: Sequence[SeriesLike],
                        atol: float = 1e-9) -> list[str]:
    """Empirically check the metric axioms on a sample of points.

    Returns a list of violation descriptions (empty when no violation was
    observed).  Used by tests and by the metric/non-metric ablation bench.
    """
    violations: list[str] = []
    n = len(points)
    d = pairwise_matrix(distance, points)
    for i in range(n):
        self_dist = distance(points[i], points[i])
        if abs(self_dist) > atol:
            violations.append(f"reflexivity: d(p{i}, p{i}) = {self_dist}")
    for i in range(n):
        for j in range(i + 1, n):
            if d[i, j] < -atol:
                violations.append(f"non-negativity: d(p{i}, p{j}) = {d[i, j]}")
            if abs(d[i, j] - d[j, i]) > atol:
                violations.append(
                    f"symmetry: d(p{i}, p{j})={d[i, j]} != d(p{j}, p{i})={d[j, i]}"
                )
    for i, j, k in itertools.permutations(range(n), 3):
        if d[i, k] > d[i, j] + d[j, k] + atol:
            violations.append(
                "triangle inequality: "
                f"d(p{i}, p{k})={d[i, k]:.6g} > "
                f"d(p{i}, p{j})+d(p{j}, p{k})={d[i, j] + d[j, k]:.6g}"
            )
    return violations


def node_cost_matrix(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """All-pairs L2 node substitution costs, shape ``(len(a), len(b))``."""
    diff = a[:, None, :] - b[None, :, :]
    return np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))


def resample_series(a: np.ndarray, length: int) -> np.ndarray:
    """Linearly resample a ``(n, d)`` series to ``(length, d)``.

    Used by the Lp baseline, which requires equal-length inputs.
    """
    if length < 1:
        raise EmptySequenceError("target length must be >= 1")
    n = a.shape[0]
    if n == length:
        return a
    if n == 1:
        return np.repeat(a, length, axis=0)
    src = np.linspace(0.0, 1.0, n)
    dst = np.linspace(0.0, 1.0, length)
    cols = [np.interp(dst, src, a[:, k]) for k in range(a.shape[1])]
    return np.stack(cols, axis=1)
