"""Content-hash-keyed memoization of distance evaluations.

EM clustering recomputes OG-vs-centroid distances every iteration, BIC's
K-sweep repeats whole EM runs, and ``n_init`` restarts re-seed from the
same data — so the same (series, series) pairs are evaluated over and
over.  Both k-means++ seeding and restarted warm starts measure against
centroids that are *copies of actual input series*, which makes those
pairs exact repeats across every K of a BIC sweep and every restart.

:class:`DistanceCache` memoizes scalar distances under a key built from
the distance's ``cache_token`` (its function + parameters) and a content
hash of the two series.  Only distances that expose a ``cache_token``
participate (EGED, MetricEGED, unconstrained ERP, DTW, LCS); the token is
a promise that the distance is **deterministic and symmetric**, so each
pair is stored once under a canonical (sorted) key.  Distances without a
token — notably :class:`~repro.distance.base.CountingDistance`, whose
whole purpose is to observe every evaluation — bypass the cache.

The cache is bounded (least-recently-used eviction) and keeps hit/miss
counters so benchmarks can report reuse rates.  It is safe for
concurrent use — the serving layer's worker threads share it — with a
lock around probe and store phases; distance computation for misses runs
*outside* the lock so concurrent readers only serialise on bookkeeping,
never on DP kernels.  A process-wide default instance serves the
clustering layer; swap or disable it with :func:`set_default_cache`.
"""

from __future__ import annotations

import hashlib
import threading
import warnings
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.distance.base import Distance, SeriesLike, as_series
from repro.distance.batch import one_vs_many
from repro.errors import InvalidParameterError
from repro.observability.registry import CacheStats as _CacheStats

#: Default bound on memoized pairs (~50 MB of keys + floats).
DEFAULT_MAX_ENTRIES = 262_144


def __getattr__(name: str):
    # CacheStats moved to repro.observability.registry (the blessed home
    # for telemetry types); keep the old import path working with a nudge.
    if name == "CacheStats":
        warnings.warn(
            "repro.distance.cache.CacheStats moved to "
            "repro.observability.registry; cache counters are also "
            "available via repro.observability.metrics()",
            DeprecationWarning,
            stacklevel=2,
        )
        return _CacheStats
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def series_digest(series: np.ndarray) -> bytes:
    """16-byte content hash of a normalized ``(n, d)`` series."""
    h = hashlib.blake2b(digest_size=16)
    h.update(np.int64(series.shape[0]).tobytes())
    h.update(np.int64(series.shape[1]).tobytes())
    h.update(np.ascontiguousarray(series).tobytes())
    return h.digest()


@dataclass
class DistanceCache:
    """Bounded LRU memo of scalar distance evaluations."""

    max_entries: int = DEFAULT_MAX_ENTRIES
    stats: _CacheStats = field(default_factory=_CacheStats)

    def __post_init__(self) -> None:
        if self.max_entries < 1:
            raise InvalidParameterError(
                f"max_entries must be >= 1, got {self.max_entries}"
            )
        self._store: OrderedDict[tuple, float] = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._store)

    def clear(self) -> None:
        """Drop every entry and zero the counters."""
        with self._lock:
            self._store.clear()
            self.stats = _CacheStats()

    # -- lookups --------------------------------------------------------------

    def one_vs_many(self, distance: Distance | Callable[[Any, Any], float],
                    query: SeriesLike,
                    items: Sequence[SeriesLike]) -> np.ndarray:
        """Distances from ``query`` to every item, reusing memoized pairs.

        Missing pairs are computed in one batched ``compute_many`` sweep
        and stored; distances without a ``cache_token`` (or plain
        callables) are forwarded untouched.
        """
        token = getattr(distance, "cache_token", None)
        if token is None:
            with self._lock:
                self.stats.bypasses += len(items)
            return one_vs_many(distance, query, items)
        a = as_series(query)
        bs = [as_series(item) for item in items]
        qd = series_digest(a)
        keys = []
        for b in bs:
            bd = series_digest(b)
            # Canonical order — cache_token promises symmetry.
            keys.append((token, qd, bd) if qd <= bd else (token, bd, qd))
        out = np.empty(len(bs), dtype=np.float64)
        missing: list[int] = []
        with self._lock:
            for i, key in enumerate(keys):
                value = self._store.get(key)
                if value is None:
                    missing.append(i)
                else:
                    self._store.move_to_end(key)
                    out[i] = value
            self.stats.hits += len(bs) - len(missing)
            self.stats.misses += len(missing)
        if missing:
            # Kernels run unlocked: concurrent readers only serialise on
            # the probe/store bookkeeping above and below.
            computed = one_vs_many(distance, a, [bs[i] for i in missing])
            with self._lock:
                for i, value in zip(missing, computed):
                    out[i] = value
                    self._put(keys[i], float(value))
        return out

    def _put(self, key: tuple, value: float) -> None:
        # Caller holds self._lock.
        self._store[key] = value
        self._store.move_to_end(key)
        while len(self._store) > self.max_entries:
            self._store.popitem(last=False)
            self.stats.evictions += 1


_default_cache: DistanceCache | None = DistanceCache()


def get_default_cache() -> DistanceCache | None:
    """The process-wide cache used by the clustering layer (or ``None``
    when caching is disabled)."""
    return _default_cache


def set_default_cache(cache: DistanceCache | None) -> DistanceCache | None:
    """Install (or, with ``None``, disable) the process-wide cache;
    returns the previous one."""
    global _default_cache
    previous = _default_cache
    _default_cache = cache
    return previous


def cached_one_vs_many(distance: Distance | Callable[[Any, Any], float],
                       query: SeriesLike,
                       items: Sequence[SeriesLike]) -> np.ndarray:
    """:func:`repro.distance.batch.one_vs_many` through the default cache
    (straight through when caching is disabled)."""
    cache = get_default_cache()
    if cache is None:
        return one_vs_many(distance, query, items)
    return cache.one_vs_many(distance, query, items)
