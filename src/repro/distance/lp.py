"""Lp-norm distances — the "traditional distance functions" of Section 1.

Lp norms require equal-length inputs; unequal series are first linearly
resampled to the shorter length so that the baseline remains usable on the
variable-length Object Graphs of the evaluation.
"""

from __future__ import annotations

import numpy as np

from repro.distance.base import Distance, resample_series
from repro.errors import InvalidParameterError


def lp_distance(a: np.ndarray, b: np.ndarray, p: float = 2.0) -> float:
    """Lp distance between two ``(n, d)`` series of equal length.

    Unequal lengths are reconciled by resampling the longer series down to
    the shorter one.  ``p = inf`` gives the Chebyshev distance.
    """
    if p <= 0:
        raise InvalidParameterError(f"p must be positive, got {p}")
    n = min(a.shape[0], b.shape[0])
    a = resample_series(a, n)
    b = resample_series(b, n)
    delta = np.abs(a - b).ravel()
    if np.isinf(p):
        return float(delta.max())
    return float(np.sum(delta ** p) ** (1.0 / p))


class LpDistance(Distance):
    """Callable Lp distance (default Euclidean, ``p = 2``).

    Metric on equal-length series; the resampling used for unequal lengths
    preserves symmetry and reflexivity but not the triangle inequality in
    general, so :attr:`is_metric` is conservatively ``False``.
    """

    def __init__(self, p: float = 2.0):
        if p <= 0:
            raise InvalidParameterError(f"p must be positive, got {p}")
        self.p = float(p)

    def compute(self, a: np.ndarray, b: np.ndarray) -> float:
        return lp_distance(a, b, self.p)

    @property
    def name(self) -> str:
        return f"L{self.p:g}"
