"""Edit distance with Real Penalty (Chen & Ng, VLDB 2004).

ERP is the metric edit-style distance the paper builds EGED_M on: gaps are
charged against a *fixed* reference value ``g``, which restores the triangle
inequality while still allowing local time shifting.
"""

from __future__ import annotations

import numpy as np

from repro.distance.base import Distance, node_cost_matrix


def erp(a: np.ndarray, b: np.ndarray, gap: float | np.ndarray = 0.0,
        band: int | None = None) -> float:
    """ERP distance between ``(n, d)`` and ``(m, d)`` series.

    ``gap`` is the constant reference node ``g`` (scalar broadcast over the
    feature dimension, or a length-``d`` vector).  ``band`` optionally
    restricts the alignment to a Sakoe-Chiba corridor ``|i - j| <= band``
    (automatically widened to cover the length difference) — an
    *approximation* that upper-bounds the unconstrained distance while
    cutting the DP cost to O(band * n); it is not guaranteed metric.
    """
    n, m = a.shape[0], b.shape[0]
    if band is not None:
        if band < 0:
            raise ValueError(f"band must be >= 0, got {band}")
        band = max(band, abs(n - m))
    g = np.broadcast_to(np.asarray(gap, dtype=np.float64), (a.shape[1],))
    gap_a = np.sqrt(np.sum((a - g) ** 2, axis=1)).tolist()
    gap_b = np.sqrt(np.sum((b - g) ** 2, axis=1)).tolist()
    sub = node_cost_matrix(a, b).tolist()
    inf = float("inf")
    # Rolling-row DP over plain Python floats (numpy scalar indexing inside
    # the O(n*m) loop costs far more than the arithmetic itself).
    prev = [0.0] * (m + 1)
    acc = 0.0
    for j in range(m):
        acc += gap_b[j]
        prev[j + 1] = acc
    if band is not None:
        for j in range(band + 1, m + 1):
            prev[j] = inf
    for i in range(n):
        ga = gap_a[i]
        srow = sub[i]
        if band is None:
            j_lo, j_hi = 0, m
        else:
            j_lo = max(0, i + 1 - band - 1)
            j_hi = min(m, i + 1 + band)
        cur = [inf] * (m + 1)
        if j_lo == 0:
            cur[0] = prev[0] + ga
        last = cur[j_lo] if j_lo == 0 else inf
        for j in range(max(j_lo, 0), j_hi):
            best = prev[j] + srow[j]
            cand = prev[j + 1] + ga
            if cand < best:
                best = cand
            cand = last + gap_b[j]
            if cand < best:
                best = cand
            cur[j + 1] = best
            last = best
        prev = cur
    return float(prev[m])


class ERP(Distance):
    """Callable ERP distance; a metric for any fixed ``gap`` when
    unconstrained (``band=None``)."""

    def __init__(self, gap: float = 0.0, band: int | None = None):
        self.gap = gap
        self.band = band
        self.is_metric = band is None

    def compute(self, a: np.ndarray, b: np.ndarray) -> float:
        return erp(a, b, self.gap, self.band)

    def compute_many(self, query: np.ndarray,
                     batch: list[np.ndarray]) -> np.ndarray:
        """Batched DP for the unconstrained metric; the Sakoe-Chiba band
        (an approximation with a per-pair reachable region) stays on the
        scalar kernel."""
        if self.band is not None:
            return np.array([self.compute(query, b) for b in batch])
        from repro.distance.batch import batch_erp

        return batch_erp(query, batch, self.gap)

    @property
    def cache_token(self):
        gap = np.asarray(self.gap, dtype=np.float64)
        key = float(gap) if gap.ndim == 0 else ("vec", gap.tobytes())
        return ("erp", key, self.band)

    @property
    def name(self) -> str:
        suffix = "" if self.band is None else f", band={self.band}"
        return f"ERP(g={self.gap:g}{suffix})"
