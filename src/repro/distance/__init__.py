"""Distance functions over Object Graph value sequences.

The central contribution is :class:`~repro.distance.eged.EGED` (Definition 9
of the paper) with its metric specialization (Theorem 2).  The module also
implements every baseline the paper evaluates against: Dynamic Time Warping,
Longest Common Subsequence, Edit distance with Real Penalty, plain edit
distance and the Lp norms.
"""

from repro.distance.base import (
    Distance,
    CountingDistance,
    as_series,
    pairwise_matrix,
    check_metric_axioms,
)
from repro.distance.batch import (
    batch_dtw,
    batch_eged,
    batch_erp,
    batch_lcs,
    one_vs_many,
    supports_batch,
)
from repro.distance.cache import (
    DistanceCache,
    cached_one_vs_many,
    get_default_cache,
    set_default_cache,
)
from repro.observability.registry import CacheStats
from repro.distance.lp import LpDistance, lp_distance
from repro.distance.dtw import DTW, dtw
from repro.distance.lcs import LCSDistance, lcs_length, lcs_distance
from repro.distance.erp import ERP, erp
from repro.distance.edit import EditDistance, edit_distance
from repro.distance.eged import EGED, MetricEGED, eged
from repro.distance.bounds import (
    gap_mass,
    eged_metric_lower_bound,
    NormIndex,
)
from repro.distance.edr import EDRDistance, edr, edr_distance
from repro.distance.frechet import FrechetDistance, discrete_frechet
from repro.distance.subsequence import SubsequenceMatch, eged_subsequence

__all__ = [
    "Distance",
    "CountingDistance",
    "as_series",
    "pairwise_matrix",
    "check_metric_axioms",
    "batch_dtw",
    "batch_eged",
    "batch_erp",
    "batch_lcs",
    "one_vs_many",
    "supports_batch",
    "CacheStats",
    "DistanceCache",
    "cached_one_vs_many",
    "get_default_cache",
    "set_default_cache",
    "LpDistance",
    "lp_distance",
    "DTW",
    "dtw",
    "LCSDistance",
    "lcs_length",
    "lcs_distance",
    "ERP",
    "erp",
    "EditDistance",
    "edit_distance",
    "EGED",
    "MetricEGED",
    "eged",
    "gap_mass",
    "eged_metric_lower_bound",
    "NormIndex",
    "EDRDistance",
    "edr",
    "edr_distance",
    "FrechetDistance",
    "discrete_frechet",
    "SubsequenceMatch",
    "eged_subsequence",
]
