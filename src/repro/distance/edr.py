"""Edit Distance on Real sequences (EDR; Chen, Ozsu & Oria).

The trajectory edit distance of the paper's reference [4] ("symbolic
representation and retrieval of moving object trajectories"): node pairs
within ``epsilon`` match at cost 0, everything else (mismatch, insert,
delete) costs 1.  Robust to outliers but non-metric.
"""

from __future__ import annotations

import numpy as np

from repro.distance.base import Distance
from repro.errors import InvalidParameterError


def edr(a: np.ndarray, b: np.ndarray, epsilon: float = 1.0) -> int:
    """EDR between ``(n, d)`` and ``(m, d)`` series.

    Returns the integer edit cost (0 when all nodes match within
    ``epsilon`` per coordinate).
    """
    if epsilon < 0:
        raise InvalidParameterError(f"epsilon must be >= 0, got {epsilon}")
    n, m = a.shape[0], b.shape[0]
    match_rows = np.all(
        np.abs(a[:, None, :] - b[None, :, :]) <= epsilon, axis=2
    ).tolist()
    # Rolling-row DP over plain Python ints (see repro.distance.erp).
    prev = list(range(m + 1))
    for i in range(n):
        mrow = match_rows[i]
        cur = [i + 1]
        last = i + 1
        for j in range(m):
            best = prev[j] + (0 if mrow[j] else 1)
            cand = prev[j + 1] + 1
            if cand < best:
                best = cand
            cand = last + 1
            if cand < best:
                best = cand
            cur.append(best)
            last = best
        prev = cur
    return int(prev[m])


def edr_distance(a: np.ndarray, b: np.ndarray, epsilon: float = 1.0) -> float:
    """EDR normalized by the longer length, in ``[0, 1]``."""
    return edr(a, b, epsilon) / max(a.shape[0], b.shape[0])


class EDRDistance(Distance):
    """Callable normalized EDR."""

    is_metric = False

    def __init__(self, epsilon: float = 1.0):
        if epsilon < 0:
            raise InvalidParameterError(f"epsilon must be >= 0, got {epsilon}")
        self.epsilon = float(epsilon)

    def compute(self, a: np.ndarray, b: np.ndarray) -> float:
        return edr_distance(a, b, self.epsilon)

    @property
    def name(self) -> str:
        return f"EDR(eps={self.epsilon:g})"
