"""Cheap lower bounds for the metric EGED (ERP-style).

Because ``EGED_M`` is a metric (Theorem 2), the triangle inequality with
any fixed reference ``R`` gives ``|d(Q, R) - d(S, R)| <= d(Q, S)``.
Taking ``R`` to be the *empty* sequence makes ``d(X, R)`` the total gap
mass ``sum_i |x_i - g|`` — an O(n) quantity — so candidate sequences can
be discarded without running the O(n*m) dynamic program at all.  This is
the norm-based pruning idea of Chen & Ng's ERP indexing, generalized to
the vector-valued OG nodes used here.
"""

from __future__ import annotations

import numpy as np

from repro.distance.base import SeriesLike, as_series


def gap_mass(x: SeriesLike, gap: float | np.ndarray = 0.0) -> float:
    """Total gap cost of a series against the reference value ``g``.

    Equals ``EGED_M(x, <empty sequence>)``: deleting every node.
    """
    a = as_series(x)
    g = np.broadcast_to(np.asarray(gap, dtype=np.float64), (a.shape[1],))
    return float(np.sum(np.sqrt(np.sum((a - g) ** 2, axis=1))))


def eged_metric_lower_bound(x: SeriesLike, y: SeriesLike,
                            gap: float | np.ndarray = 0.0) -> float:
    """A lower bound on ``EGED_M(x, y)`` computable in O(n + m).

    ``|gap_mass(x) - gap_mass(y)| <= EGED_M(x, y)`` by the triangle
    inequality through the empty sequence.
    """
    return abs(gap_mass(x, gap) - gap_mass(y, gap))


def pivot_lower_bounds(query_pd: np.ndarray,
                       corpus_pd: np.ndarray) -> np.ndarray:
    """Triangle lower bounds from precomputed pivot distances.

    Given ``query_pd[p] = d(Q, P_p)`` and ``corpus_pd[i, p] = d(S_i,
    P_p)`` for a set of pivot series ``P``, the triangle inequality gives
    ``|d(Q, P_p) - d(S_i, P_p)| <= d(Q, S_i)`` for every pivot; the
    tightest (largest) bound per candidate is returned, shape ``(n,)``.
    With zero pivots the bound degenerates to all-zeros (always valid).

    This is the multi-reference generalization of
    :func:`eged_metric_lower_bound` (which uses the single fixed
    reference ``R = <empty sequence>``); the approximate search tier
    (:mod:`repro.search`) uses it both to order candidates and to prune
    rerank work that provably cannot enter the top-k.
    """
    corpus_pd = np.asarray(corpus_pd, dtype=np.float64)
    query_pd = np.asarray(query_pd, dtype=np.float64)
    if corpus_pd.ndim != 2:
        corpus_pd = corpus_pd.reshape(len(corpus_pd), -1)
    if corpus_pd.shape[1] == 0:
        return np.zeros(corpus_pd.shape[0], dtype=np.float64)
    return np.abs(corpus_pd - query_pd.reshape(1, -1)).max(axis=1)


class NormIndex:
    """Precomputed gap masses for a collection, for batch pre-filtering.

    Typical use: before running exact k-NN over a candidate list, discard
    every candidate whose lower bound already exceeds the current k-th
    best distance.
    """

    def __init__(self, items, gap: float | np.ndarray = 0.0):
        self.items = list(items)
        self.gap = gap
        self._masses = np.array(
            [gap_mass(item, gap) for item in self.items], dtype=np.float64
        )

    def __len__(self) -> int:
        return len(self.items)

    def lower_bounds(self, query: SeriesLike) -> np.ndarray:
        """Lower bound of the distance from ``query`` to every item."""
        return np.abs(self._masses - gap_mass(query, self.gap))

    def candidates_within(self, query: SeriesLike, radius: float
                          ) -> list[int]:
        """Indices whose lower bound does not exceed ``radius``."""
        bounds = self.lower_bounds(query)
        return [int(i) for i in np.where(bounds <= radius)[0]]
