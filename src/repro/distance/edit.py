"""Classic (unit-cost) edit distance over value sequences.

This is the "original edit distance ... used for traditional string
matching" the paper says is inappropriate for video (Section 3.1); it is
included as a baseline and for the EGED regression tests.
"""

from __future__ import annotations

import numpy as np

from repro.distance.base import Distance
from repro.errors import InvalidParameterError


def edit_distance(a: np.ndarray, b: np.ndarray, tolerance: float = 0.0) -> int:
    """Unit-cost Levenshtein distance between two ``(n, d)`` series.

    Two nodes are equal when every coordinate differs by at most
    ``tolerance``.  Returns the minimum number of insert/delete/substitute
    operations.
    """
    if tolerance < 0:
        raise InvalidParameterError(f"tolerance must be >= 0, got {tolerance}")
    n, m = a.shape[0], b.shape[0]
    equal_rows = np.all(
        np.abs(a[:, None, :] - b[None, :, :]) <= tolerance, axis=2
    ).tolist()
    # Rolling-row DP over plain Python ints (see repro.distance.erp).
    prev = list(range(m + 1))
    for i in range(n):
        erow = equal_rows[i]
        cur = [i + 1]
        last = i + 1
        for j in range(m):
            best = prev[j] + (0 if erow[j] else 1)
            cand = prev[j + 1] + 1
            if cand < best:
                best = cand
            cand = last + 1
            if cand < best:
                best = cand
            cur.append(best)
            last = best
        prev = cur
    return int(prev[m])


class EditDistance(Distance):
    """Callable unit-cost edit distance.

    Metric for ``tolerance = 0`` (exact node equality); tolerant matching
    breaks transitivity of node equality and therefore the metric property.
    """

    def __init__(self, tolerance: float = 0.0):
        if tolerance < 0:
            raise InvalidParameterError(f"tolerance must be >= 0, got {tolerance}")
        self.tolerance = float(tolerance)
        self.is_metric = tolerance == 0.0

    def compute(self, a: np.ndarray, b: np.ndarray) -> float:
        return float(edit_distance(a, b, self.tolerance))

    @property
    def name(self) -> str:
        return f"ED(tol={self.tolerance:g})"
