"""Extended Graph Edit Distance (EGED) — Definition 9 and Theorem 2.

EGED measures the minimum cost of node edit operations (substitute, delete,
insert) transforming one Object Graph into another.  Because OGs are linear
temporal chains, the edit computation reduces to a dynamic program over the
two node-value sequences.

Two gap policies are provided, exactly as in the paper:

- **non-metric** (``gap="adaptive"``): the gap for node *i* is
  ``g_i = (v_{i-1} + v_i) / 2``, which handles local time shifting but
  breaks the triangle inequality.  This variant drives EM clustering
  (Section 4).
- **metric** (``gap=<constant>``): the gap is a fixed reference value
  (Theorem 2), making EGED a metric — this is ``EGED_M``, the index-key
  distance of the STRG-Index and the M-tree baseline.  With a constant gap
  the recursion coincides with ERP.

A third policy ``gap="dtw"`` (``g_i = v_{i-1}``) reproduces the paper's
remark that this choice degenerates to a DTW-style cost.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.distance.base import Distance
from repro.distance.erp import erp
from repro.errors import InvalidParameterError

GapSpec = Union[str, float, np.ndarray]

#: Gap policies accepted by :func:`eged`.
ADAPTIVE = "adaptive"
DTW_GAP = "dtw"


def _gap_values(seq: np.ndarray, mode: str) -> np.ndarray:
    """Gap reference values per alignment state of ``seq``.

    ``out[j]`` is the value a node of the *other* sequence is charged
    against when it is gapped while ``seq`` has consumed ``j`` nodes:

    - ``adaptive`` (Definition 9's ``g_i = (v_{i-1} + v_i) / 2``): the
      midpoint of the adjacent nodes of ``seq`` — local time shifting is
      cheap because a node falling "between" two similar nodes of the
      other trajectory pays only the interpolation residual;
    - ``dtw`` (``g_i = v_{i-1}``): the previously aligned node of ``seq``
      is repeated, exactly DTW's repeat semantics (the paper's remark that
      this choice degenerates to the DTW cost).

    Boundary states clamp to the first/last node.
    """
    m = seq.shape[0]
    out = np.empty((m + 1, seq.shape[1]), dtype=np.float64)
    out[0] = seq[0]
    if mode == ADAPTIVE:
        out[m] = seq[m - 1]
        if m > 1:
            out[1:m] = (seq[:-1] + seq[1:]) / 2.0
    else:
        out[1:] = seq
    return out


def _eged_dynamic(a: np.ndarray, b: np.ndarray, mode: str) -> float:
    """Edit DP with alignment-state-dependent gap costs (non-metric EGED).

    Reproduces the paper's worked example: for OG_r = {0}, OG_s = {1, 1},
    OG_t = {2, 2, 3} it yields EGED(r, t) = 7, EGED(r, s) = 2 and
    EGED(s, t) = 4, i.e. 7 > 2 + 4 — the triangle-inequality violation
    that motivates the metric specialization.

    Delegates to the vectorized batch kernel with a batch of one (no
    ``.tolist()`` round-trips, no Python-level inner loop); the test
    suite keeps an independent naive DP as the equivalence reference.
    """
    from repro.distance.batch import _chunked, _eged_kernel

    return float(_chunked(_eged_kernel, a, [b], mode)[0])


def eged(x, y, gap: GapSpec = ADAPTIVE) -> float:
    """Extended Graph Edit Distance between two Object Graphs.

    Parameters
    ----------
    x, y:
        Object Graphs, ``(n, d)`` arrays, or anything accepted by
        :func:`repro.distance.base.as_series`.
    gap:
        ``"adaptive"`` for the non-metric EGED of Definition 9
        (``g_i = (v_{i-1}+v_i)/2``), ``"dtw"`` for the DTW-degenerate
        policy (``g_i = v_{i-1}``), or a numeric constant / vector for the
        metric EGED_M of Theorem 2.

    Returns
    -------
    float
        The minimum node-edit cost.
    """
    from repro.distance.base import as_series, check_same_dim

    a = as_series(x)
    b = as_series(y)
    check_same_dim(a, b)
    if isinstance(gap, str):
        if gap not in (ADAPTIVE, DTW_GAP):
            raise InvalidParameterError(
                f"gap must be 'adaptive', 'dtw', or a constant; got {gap!r}"
            )
        return _eged_dynamic(a, b, gap)
    return erp(a, b, gap)


class EGED(Distance):
    """Non-metric EGED with the adaptive gap ``g_i = (v_{i-1}+v_i)/2``.

    Used as the clustering distance in Section 4; handles local time
    shifting but does not satisfy the triangle inequality (the paper's own
    counterexample is covered in the test suite).
    """

    is_metric = False

    def __init__(self, mode: str = ADAPTIVE):
        if mode not in (ADAPTIVE, DTW_GAP):
            raise InvalidParameterError(
                f"mode must be 'adaptive' or 'dtw', got {mode!r}"
            )
        self.mode = mode

    def compute(self, a: np.ndarray, b: np.ndarray) -> float:
        return _eged_dynamic(a, b, self.mode)

    def compute_many(self, query: np.ndarray,
                     batch: list[np.ndarray]) -> np.ndarray:
        from repro.distance.batch import batch_eged

        return batch_eged(query, batch, self.mode)

    @property
    def cache_token(self):
        return ("eged", self.mode)

    @property
    def name(self) -> str:
        return "EGED" if self.mode == ADAPTIVE else "EGED(dtw-gap)"


class MetricEGED(Distance):
    """Metric EGED (``EGED_M``) with a fixed constant gap (Theorem 2).

    The default gap ``0`` measures each OG against the origin of the
    attribute space; any fixed constant preserves the metric property.
    This is the key distance of the STRG-Index leaf level and of the
    M-tree baseline.
    """

    is_metric = True

    def __init__(self, gap: float = 0.0):
        self.gap = float(gap)

    def compute(self, a: np.ndarray, b: np.ndarray) -> float:
        return erp(a, b, self.gap)

    def compute_many(self, query: np.ndarray,
                     batch: list[np.ndarray]) -> np.ndarray:
        from repro.distance.batch import batch_erp

        return batch_erp(query, batch, self.gap)

    @property
    def cache_token(self):
        return ("erp", self.gap, None)

    @property
    def name(self) -> str:
        return f"EGED_M(g={self.gap:g})"
