"""Longest Common Subsequence similarity (Vlachos-style), baseline in Fig. 5.

Real-valued series are matched under an epsilon tolerance: two nodes match
when every coordinate differs by at most ``epsilon``.  The associated
dissimilarity is ``1 - |LCS| / min(n, m)`` (in [0, 1]); like DTW it is not a
metric.
"""

from __future__ import annotations

import numpy as np

from repro.distance.base import Distance
from repro.errors import InvalidParameterError


def lcs_length(a: np.ndarray, b: np.ndarray, epsilon: float = 1.0,
               delta: int | None = None) -> int:
    """Length of the longest common subsequence of two ``(n, d)`` series.

    ``epsilon`` is the per-coordinate matching tolerance; ``delta`` is an
    optional bound on temporal index displacement (``|i - j| <= delta``).
    """
    if epsilon < 0:
        raise InvalidParameterError(f"epsilon must be >= 0, got {epsilon}")
    if delta is not None and delta < 0:
        raise InvalidParameterError(f"delta must be >= 0, got {delta}")
    n, m = a.shape[0], b.shape[0]
    match = np.all(
        np.abs(a[:, None, :] - b[None, :, :]) <= epsilon, axis=2
    )
    if delta is not None:
        ii, jj = np.indices((n, m))
        match &= np.abs(ii - jj) <= delta
    match_rows = match.tolist()
    # Rolling-row DP over plain Python ints (see repro.distance.erp).
    prev = [0] * (m + 1)
    for i in range(n):
        cur = [0] * (m + 1)
        mrow = match_rows[i]
        for j in range(m):
            if mrow[j]:
                cur[j + 1] = prev[j] + 1
            else:
                up = prev[j + 1]
                left = cur[j]
                cur[j + 1] = up if up >= left else left
        prev = cur
    return int(prev[m])


def lcs_distance(a: np.ndarray, b: np.ndarray, epsilon: float = 1.0,
                 delta: int | None = None) -> float:
    """LCS dissimilarity ``1 - |LCS| / min(n, m)`` in ``[0, 1]``."""
    common = lcs_length(a, b, epsilon, delta)
    return 1.0 - common / min(a.shape[0], b.shape[0])


class LCSDistance(Distance):
    """Callable LCS dissimilarity with tolerance ``epsilon``."""

    is_metric = False

    def __init__(self, epsilon: float = 1.0, delta: int | None = None):
        if epsilon < 0:
            raise InvalidParameterError(f"epsilon must be >= 0, got {epsilon}")
        self.epsilon = float(epsilon)
        self.delta = delta

    def compute(self, a: np.ndarray, b: np.ndarray) -> float:
        return lcs_distance(a, b, self.epsilon, self.delta)

    def compute_many(self, query: np.ndarray,
                     batch: list[np.ndarray]) -> np.ndarray:
        from repro.distance.batch import batch_lcs

        return batch_lcs(query, batch, self.epsilon, self.delta)

    @property
    def cache_token(self):
        return ("lcs", self.epsilon, self.delta)

    @property
    def name(self) -> str:
        return f"LCS(eps={self.epsilon:g})"
