"""Subsequence matching under the metric EGED (subsequence-DTW analogue).

Stored Object Graphs are often much longer than a query motion ("find
clips where something did *this*, possibly mid-trajectory").  The edit DP
adapts in the standard way: deletions of the *target* before and after
the matched window are free — initialize the top row with zeros and take
the minimum over the bottom row.  The returned cost is the EGED_M between
the query and the best-matching window of the target.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distance.base import as_series, check_same_dim, node_cost_matrix


@dataclass(frozen=True)
class SubsequenceMatch:
    """Best window match: cost plus the target window ``[start, stop)``."""

    cost: float
    start: int
    stop: int


def eged_subsequence(query, target, gap: float | np.ndarray = 0.0
                     ) -> SubsequenceMatch:
    """Best-window EGED_M between ``query`` and any window of ``target``.

    Runs in O(n * m); the window boundaries are recovered by
    backtracking the start pointer through the DP.
    """
    q = as_series(query)
    t = as_series(target)
    check_same_dim(q, t)
    n, m = q.shape[0], t.shape[0]
    g = np.broadcast_to(np.asarray(gap, dtype=np.float64), (q.shape[1],))
    gap_q = np.sqrt(np.sum((q - g) ** 2, axis=1)).tolist()
    gap_t = np.sqrt(np.sum((t - g) ** 2, axis=1)).tolist()
    sub = node_cost_matrix(q, t).tolist()

    # prev[j] = best cost of aligning q[:i] against a window ending at j;
    # start[j] tracks where that window began.
    prev = [0.0] * (m + 1)
    prev_start = list(range(m + 1))
    for i in range(n):
        gq = gap_q[i]
        srow = sub[i]
        cur = [prev[0] + gq]
        cur_start = [0]
        for j in range(m):
            best = prev[j] + srow[j]
            origin = prev_start[j]
            cand = prev[j + 1] + gq
            if cand < best:
                best = cand
                origin = prev_start[j + 1]
            cand = cur[j] + gap_t[j]
            if cand < best:
                best = cand
                origin = cur_start[j]
            cur.append(best)
            cur_start.append(origin)
        prev = cur
        prev_start = cur_start
    stop = int(np.argmin(prev))
    return SubsequenceMatch(cost=float(prev[stop]),
                            start=int(prev_start[stop]), stop=stop)
