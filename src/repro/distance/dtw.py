"""Dynamic Time Warping (Gish & Ng style), a clustering baseline (Fig. 5/6).

DTW aligns two series by a monotone warping path and sums node costs along
it.  It handles local time shifting but is *not* a metric (it violates the
triangle inequality), which is exactly why the paper needs EGED_M for index
keys.
"""

from __future__ import annotations

import numpy as np

from repro.distance.base import Distance, node_cost_matrix
from repro.errors import InvalidParameterError


def dtw(a: np.ndarray, b: np.ndarray, window: int | None = None) -> float:
    """DTW distance between ``(n, d)`` and ``(m, d)`` series.

    ``window`` is an optional Sakoe-Chiba band half-width restricting the
    warping path to ``|i - j| <= window``; ``None`` means unconstrained.
    """
    n, m = a.shape[0], b.shape[0]
    if window is not None:
        if window < 0:
            raise InvalidParameterError(f"window must be >= 0, got {window}")
        window = max(window, abs(n - m))
    cost = node_cost_matrix(a, b).tolist()
    inf = float("inf")
    # Rolling-row DP over plain Python floats (see repro.distance.erp).
    prev = [inf] * (m + 1)
    prev[0] = 0.0
    for i in range(1, n + 1):
        if window is None:
            j_lo, j_hi = 1, m
        else:
            j_lo = max(1, i - window)
            j_hi = min(m, i + window)
        cur = [inf] * (m + 1)
        crow = cost[i - 1]
        for j in range(j_lo, j_hi + 1):
            best = prev[j - 1]
            if prev[j] < best:
                best = prev[j]
            if cur[j - 1] < best:
                best = cur[j - 1]
            cur[j] = crow[j - 1] + best
        prev = cur
    return float(prev[m])


class DTW(Distance):
    """Callable DTW distance with optional Sakoe-Chiba band."""

    is_metric = False

    def __init__(self, window: int | None = None):
        if window is not None and window < 0:
            raise InvalidParameterError(f"window must be >= 0, got {window}")
        self.window = window

    def compute(self, a: np.ndarray, b: np.ndarray) -> float:
        return dtw(a, b, self.window)

    def compute_many(self, query: np.ndarray,
                     batch: list[np.ndarray]) -> np.ndarray:
        """Batched DP when unconstrained; the Sakoe-Chiba window (whose
        reachable region differs per pair) stays on the scalar kernel."""
        if self.window is not None:
            return np.array([self.compute(query, b) for b in batch])
        from repro.distance.batch import batch_dtw

        return batch_dtw(query, batch)

    @property
    def cache_token(self):
        return ("dtw", self.window)

    @property
    def name(self) -> str:
        return "DTW" if self.window is None else f"DTW(w={self.window})"
