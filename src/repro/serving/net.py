"""Asyncio HTTP/JSON frontend over a :class:`~repro.serving.workers.WorkerPool`.

One stdlib-only network layer (``asyncio.start_server`` + hand-rolled
HTTP/1.1 framing — no web framework in the dependency set) so remote
clients get the same answers, the same admission control and the same
deadline semantics as in-process callers:

========================  ====================================================
``POST /knn``             exact / budgeted k-NN; body ``{"query", "k",
                          "search_budget"?, "deadline"?, "degrade"?}``
``POST /range``           range query; body ``{"query", "radius", ...}``
``POST /query``           envelope form: ``{"op": "knn"|"range", ...}``
``GET  /health``          pool + ingest health (200 even when degraded —
                          the body says so; monitors alert on content)
``GET  /metrics``         Prometheus text from the process-wide registry
``POST /ingest``          proxy to :class:`~repro.serving.ingest.IngestService`
                          (202 + job id; 501 when serving a frozen snapshot)
``POST /admin/reload``    re-open the snapshot in every worker
``POST /admin/rebalance`` run the hot-shard migration policy once
========================  ====================================================

Every query response is stamped with the coordinator's snapshot version
(the manifest digest), so a client can detect when answers started
coming from a newer snapshot mid-session.

Admission is bounded exactly like ``QueryService``: at most
``max_inflight`` requests are in flight; the next one is rejected with
**503** before any work is queued (backpressure, not failure).
Per-request deadlines ride ``asyncio.wait_for`` around the executor
future — a lapsed deadline returns **504** with the phase recorded,
and the stale result is discarded when it lands.

The handlers themselves run on a small thread pool: the worker
processes do the heavy kernel work, so frontend threads only block on
pipe I/O — the asyncio loop never does.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.errors import (
    DeadlineExceededError,
    DimensionMismatchError,
    EmptySequenceError,
    IndexStateError,
    IngestOverloadError,
    InvalidParameterError,
    ReproError,
    ServiceOverloadError,
    ServiceStoppedError,
    ShardUnavailableError,
    StorageError,
)
from repro.observability import OBS, export_metrics_prometheus

#: Largest accepted request body (an /ingest clip dominates).
MAX_BODY_BYTES = 64 << 20
_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request",
            404: "Not Found", 405: "Method Not Allowed",
            413: "Payload Too Large",
            500: "Internal Server Error", 501: "Not Implemented",
            503: "Service Unavailable", 504: "Gateway Timeout"}


@dataclass
class NetConfig:
    """Frontend sizing: where to listen and how much to admit.

    ``port=0`` binds an ephemeral port (tests); the bound port is
    published as ``frontend.port`` once serving.  ``max_inflight`` is
    the admission bound — requests past it get 503 immediately.
    ``default_deadline`` applies when a request body carries none.
    ``handler_threads`` sizes the executor that blocks on worker pipes.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_inflight: int = 64
    default_deadline: float = 30.0
    handler_threads: int = 8

    def __post_init__(self) -> None:
        if self.max_inflight < 1:
            raise InvalidParameterError(
                f"max_inflight must be >= 1, got {self.max_inflight}")
        if self.default_deadline <= 0:
            raise InvalidParameterError(
                f"default_deadline must be > 0, got {self.default_deadline}")
        if self.handler_threads < 1:
            raise InvalidParameterError(
                f"handler_threads must be >= 1, got {self.handler_threads}")


class _HttpError(Exception):
    """Internal: terminate a request with a specific HTTP status."""

    def __init__(self, status: int, message: str, **extra: Any):
        super().__init__(message)
        self.status = status
        self.body = {"error": message, **extra}


def _status_of(exc: BaseException) -> int:
    """Map a domain error onto the HTTP status a client can act on."""
    if isinstance(exc, DeadlineExceededError):
        return 504
    if isinstance(exc, (ServiceOverloadError, IngestOverloadError,
                        ServiceStoppedError, ShardUnavailableError)):
        return 503
    if isinstance(exc, (InvalidParameterError, DimensionMismatchError,
                        EmptySequenceError, IndexStateError)):
        return 400
    return 500


class NetFrontend:
    """The HTTP/JSON serving frontend.

    ``pool`` is a started :class:`~repro.serving.workers.WorkerPool`
    (owned by the caller — the frontend never shuts it down).
    ``ingest`` is an optional
    :class:`~repro.serving.ingest.IngestService`; without one,
    ``POST /ingest`` answers 501.

    Two run modes:

    - ``await frontend.start()`` inside an existing event loop, then
      ``await frontend.stop()``;
    - ``frontend.start_in_thread()`` for synchronous callers (tests,
      the CLI): spins a daemon thread with its own loop and blocks
      until the socket is bound, then ``frontend.stop()``.
    """

    def __init__(self, pool: Any, ingest: Any = None,
                 config: NetConfig | None = None):
        self.pool = pool
        self.ingest = ingest
        self.config = config or NetConfig()
        self.port: int | None = None
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self.requests_served = 0
        self.requests_rejected = 0

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> "NetFrontend":
        """Bind and start serving on the current event loop."""
        if self._server is not None:
            return self
        self._loop = asyncio.get_running_loop()
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.handler_threads,
            thread_name_prefix="net-http")
        self._server = await asyncio.start_server(
            self._serve_connection, self.config.host, self.config.port)
        self.port = self._server.sockets[0].getsockname()[1]
        OBS.count("net.frontends_started")
        return self

    async def _stop_async(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._executor is not None:
            self._executor.shutdown(wait=False)
            self._executor = None

    def start_in_thread(self) -> "NetFrontend":
        """Run the frontend on a dedicated daemon thread + event loop."""
        if self._thread is not None:
            return self
        ready = threading.Event()
        failure: list[BaseException] = []

        def _run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            try:
                loop.run_until_complete(self.start())
            except BaseException as exc:  # noqa: BLE001 — surfaced below
                failure.append(exc)
                ready.set()
                return
            ready.set()
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(self._stop_async())
                loop.close()

        self._thread = threading.Thread(
            target=_run, name="net-frontend", daemon=True)
        self._thread.start()
        ready.wait(timeout=30.0)
        if failure:
            self._thread = None
            raise failure[0]
        if self.port is None:
            raise IndexStateError("HTTP frontend failed to bind")
        return self

    def stop(self) -> None:
        """Stop a ``start_in_thread`` frontend (or a loop-owned one)."""
        loop = self._loop
        if loop is None:
            return
        if self._thread is not None:
            loop.call_soon_threadsafe(loop.stop)
            self._thread.join(timeout=10.0)
            self._thread = None
        else:
            asyncio.ensure_future(self._stop_async(), loop=loop)
        self._loop = None
        self.port = None

    def __enter__(self) -> "NetFrontend":
        return self.start_in_thread()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- connection handling --------------------------------------------------

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _HttpError as exc:
                    # Unreadable framing (bad Content-Length, oversized
                    # body): answer, then close — the byte stream can't
                    # be resynchronized for a next request.
                    await self._write_response(
                        writer, exc.status, exc.body, "application/json",
                        keep_alive=False)
                    break
                if request is None:
                    break
                method, path, headers, body = request
                status, payload, content_type = await self._dispatch(
                    method, path, body)
                keep_alive = headers.get("connection", "").lower() != "close"
                await self._write_response(
                    writer, status, payload, content_type, keep_alive)
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        try:
            request_line = await reader.readline()
        except (asyncio.IncompleteReadError, ConnectionResetError):
            return None
        if not request_line or request_line in (b"\r\n", b"\n"):
            return None
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3:
            return None
        method, path, _version = parts
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if not line or line in (b"\r\n", b"\n"):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        raw_length = headers.get("content-length", "").strip() or "0"
        try:
            length = int(raw_length)
        except ValueError:
            raise _HttpError(
                400, f"malformed Content-Length header: {raw_length!r}")
        if length < 0:
            raise _HttpError(
                400, f"negative Content-Length: {length}")
        if length > MAX_BODY_BYTES:
            raise _HttpError(
                413, f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), path.split("?", 1)[0], headers, body

    async def _write_response(self, writer: asyncio.StreamWriter,
                              status: int, payload: Any, content_type: str,
                              keep_alive: bool) -> None:
        if isinstance(payload, str):
            data = payload.encode("utf-8")
        else:
            data = json.dumps(payload).encode("utf-8")
        reason = _REASONS.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(data)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + data)
        await writer.drain()

    # -- routing --------------------------------------------------------------

    async def _dispatch(self, method: str, path: str, body: bytes
                        ) -> tuple[int, Any, str]:
        routes = {
            ("GET", "/health"): self._handle_health,
            ("GET", "/metrics"): self._handle_metrics,
            ("POST", "/knn"): self._handle_knn,
            ("POST", "/range"): self._handle_range,
            ("POST", "/query"): self._handle_query,
            ("POST", "/ingest"): self._handle_ingest,
            ("POST", "/admin/reload"): self._handle_reload,
            ("POST", "/admin/rebalance"): self._handle_rebalance,
        }
        handler = routes.get((method, path))
        if handler is None:
            known = {p for _, p in routes}
            if path in known:
                return 405, {"error": f"method {method} not allowed "
                             f"for {path}"}, "application/json"
            return 404, {"error": f"no route for {path}"}, "application/json"
        try:
            request = self._parse_body(body) if method == "POST" else {}
            return await handler(request)
        except _HttpError as exc:
            return exc.status, exc.body, "application/json"
        except ReproError as exc:
            status = _status_of(exc)
            payload = {"error": str(exc), "type": type(exc).__name__}
            details = getattr(exc, "details", None)
            if details:
                payload["details"] = details
            if status == 500:
                OBS.count("net.http_internal_errors")
            return status, payload, "application/json"
        except Exception as exc:  # noqa: BLE001 — last-resort 500
            OBS.count("net.http_internal_errors")
            return 500, {"error": f"{type(exc).__name__}: {exc}",
                         "type": type(exc).__name__}, "application/json"

    @staticmethod
    def _parse_body(body: bytes) -> dict[str, Any]:
        if not body:
            return {}
        try:
            parsed = json.loads(body)
        except json.JSONDecodeError as exc:
            raise _HttpError(400, f"request body is not valid JSON: {exc}")
        if not isinstance(parsed, dict):
            raise _HttpError(400, "request body must be a JSON object")
        return parsed

    # -- admission + execution ------------------------------------------------

    async def _admit_and_run(self, fn, deadline: float | None
                             ) -> Any:
        """Run ``fn`` on the handler executor under admission + deadline."""
        if deadline is None:
            budget = self.config.default_deadline
        else:
            try:
                budget = float(deadline)
            except (TypeError, ValueError):
                raise InvalidParameterError(
                    f"'deadline' must be a number, got {deadline!r}")
        if budget <= 0:
            raise InvalidParameterError(
                f"deadline must be > 0, got {budget}")
        with self._inflight_lock:
            if self._inflight >= self.config.max_inflight:
                self.requests_rejected += 1
                OBS.count("net.http_rejected")
                raise ServiceOverloadError(
                    f"frontend at max_inflight={self.config.max_inflight}: "
                    "request rejected (retry with backoff)")
            self._inflight += 1
        loop = asyncio.get_running_loop()
        try:
            future = loop.run_in_executor(self._executor, fn)
            try:
                result = await asyncio.wait_for(
                    asyncio.shield(future), timeout=budget)
            except asyncio.TimeoutError:
                OBS.count("net.http_deadline_exceeded")
                raise DeadlineExceededError(
                    f"request outran its {budget:.3f}s deadline",
                    phase="execution") from None
            self.requests_served += 1
            return result
        finally:
            # The shielded future may still be running after a timeout;
            # release the admission slot only when it actually finishes.
            future.add_done_callback(lambda _f: self._release())

    def _release(self) -> None:
        with self._inflight_lock:
            self._inflight -= 1

    # -- handlers -------------------------------------------------------------

    @staticmethod
    def _parse_query(request: dict[str, Any]) -> np.ndarray:
        if "query" not in request:
            raise _HttpError(400, "missing required field 'query'")
        try:
            return np.asarray(request["query"], dtype=np.float64)
        except (TypeError, ValueError) as exc:
            raise _HttpError(
                400, f"'query' is not a numeric trajectory: {exc}")

    @staticmethod
    def _as_int(value: Any, name: str) -> int:
        """Coerce a client-supplied field to int; bad input is a 400."""
        try:
            return int(value)
        except (TypeError, ValueError):
            raise _HttpError(
                400, f"'{name}' must be an integer, got {value!r}")

    @staticmethod
    def _as_float(value: Any, name: str) -> float:
        try:
            return float(value)
        except (TypeError, ValueError):
            raise _HttpError(
                400, f"'{name}' must be a number, got {value!r}")

    def _query_response(self, result: Any, started: float
                        ) -> dict[str, Any]:
        return {
            "snapshot": self.pool.snapshot_version,
            "hits": [hit.as_dict() for hit in result.hits],
            "degraded": result.degraded,
            "failed_shards": result.failed_shards,
            "latency": time.perf_counter() - started,
        }

    async def _handle_knn(self, request: dict[str, Any]
                          ) -> tuple[int, Any, str]:
        query = self._parse_query(request)
        if "k" not in request:
            raise _HttpError(400, "missing required field 'k'")
        k = self._as_int(request["k"], "k")
        budget = request.get("search_budget")
        if budget is not None:
            budget = self._as_int(budget, "search_budget")
        degrade = bool(request.get("degrade", True))
        started = time.perf_counter()
        result = await self._admit_and_run(
            lambda: self.pool.knn(
                query, k, search_budget=budget, degrade=degrade),
            request.get("deadline"))
        return 200, self._query_response(result, started), "application/json"

    async def _handle_range(self, request: dict[str, Any]
                            ) -> tuple[int, Any, str]:
        query = self._parse_query(request)
        if "radius" not in request:
            raise _HttpError(400, "missing required field 'radius'")
        radius = self._as_float(request["radius"], "radius")
        degrade = bool(request.get("degrade", True))
        started = time.perf_counter()
        result = await self._admit_and_run(
            lambda: self.pool.range_query(query, radius, degrade=degrade),
            request.get("deadline"))
        return 200, self._query_response(result, started), "application/json"

    async def _handle_query(self, request: dict[str, Any]
                            ) -> tuple[int, Any, str]:
        op = request.get("op")
        if op == "knn":
            return await self._handle_knn(request)
        if op == "range":
            return await self._handle_range(request)
        raise _HttpError(
            400, f"unknown query op {op!r} (expected 'knn' or 'range')")

    async def _handle_health(self, request: dict[str, Any]
                             ) -> tuple[int, Any, str]:
        health = self.pool.health()
        health["frontend"] = {
            "inflight": self._inflight,
            "max_inflight": self.config.max_inflight,
            "served": self.requests_served,
            "rejected": self.requests_rejected,
        }
        if self.ingest is not None:
            health["ingest"] = self.ingest.health()
        return 200, health, "application/json"

    async def _handle_metrics(self, request: dict[str, Any]
                              ) -> tuple[int, Any, str]:
        text = export_metrics_prometheus()
        return 200, text, "text/plain; version=0.0.4"

    async def _handle_ingest(self, request: dict[str, Any]
                             ) -> tuple[int, Any, str]:
        if self.ingest is None:
            return 501, {"error": "this frontend serves a frozen snapshot "
                         "(no ingest service attached)"}, "application/json"
        from repro.video.frames import VideoSegment

        if "frames" not in request:
            raise _HttpError(400, "missing required field 'frames' "
                             "(nested list of shape (T, H, W, 3))")
        try:
            frames = np.asarray(request["frames"], dtype=np.uint8)
        except (TypeError, ValueError) as exc:
            raise _HttpError(400, f"'frames' is not a uint8 video: {exc}")
        video = VideoSegment(frames,
                             fps=self._as_float(request.get("fps", 10.0),
                                                "fps"),
                             name=str(request.get("name", "http-clip")))
        job = self.ingest.submit(video, job_id=request.get("job_id"))
        return 202, {"job": job.job_id, "clip": job.clip_name,
                     "state": job.state.value}, "application/json"

    async def _handle_reload(self, request: dict[str, Any]
                             ) -> tuple[int, Any, str]:
        loop = asyncio.get_running_loop()
        version = await loop.run_in_executor(self._executor,
                                             self.pool.reload)
        return 200, {"snapshot": version}, "application/json"

    async def _handle_rebalance(self, request: dict[str, Any]
                                ) -> tuple[int, Any, str]:
        ratio = request.get("ratio")
        if ratio is not None:
            ratio = self._as_float(ratio, "ratio")
        loop = asyncio.get_running_loop()
        moves = await loop.run_in_executor(
            self._executor, lambda: self.pool.rebalance(ratio))
        return 200, {
            "moves": [{"shard": s, "from": a, "to": b}
                      for s, a, b in moves],
            "assignment": [list(x) for x in self.pool.assignment],
        }, "application/json"


# ---------------------------------------------------------------------------
# client helper
# ---------------------------------------------------------------------------

def request_json(host: str, port: int, method: str, path: str,
                 payload: dict[str, Any] | None = None,
                 timeout: float = 30.0) -> tuple[int, Any]:
    """One HTTP exchange against a frontend (stdlib ``http.client``).

    Returns ``(status, body)`` — body decoded from JSON when the
    response says so, raw text otherwise.  Shared by the tests, the
    load generator and the CLI so none of them grow their own client.
    """
    import http.client

    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        body = None if payload is None else json.dumps(payload)
        headers = {"Content-Type": "application/json"} if body else {}
        conn.request(method, path, body=body, headers=headers)
        response = conn.getresponse()
        raw = response.read()
        content_type = response.getheader("Content-Type", "")
        if "json" in content_type:
            return response.status, json.loads(raw.decode("utf-8"))
        return response.status, raw.decode("utf-8")
    finally:
        conn.close()


__all__ = [
    "MAX_BODY_BYTES",
    "NetConfig",
    "NetFrontend",
    "request_json",
]
