"""repro.serving — sharded, concurrent query serving with live swaps.

Layers, bottom up:

- :mod:`repro.serving.sharding` — :class:`ShardedIndex` partitions the
  corpus across N :class:`~repro.core.index.STRGIndex` shards and runs
  exact scatter-gather k-NN / range queries whose results are
  bit-identical to a monolithic index.
- :mod:`repro.serving.snapshot` — :class:`IndexSnapshot` /
  :class:`LiveIndex` give copy-on-write ingestion: readers query an
  immutable published snapshot while writes buffer and compact into the
  next one, swapped in atomically.
- :mod:`repro.serving.service` — :class:`QueryService` fronts a live
  index with worker threads, bounded admission, per-request deadlines
  and graceful shutdown.
- :mod:`repro.serving.ingest` — :class:`IngestService` is the write-side
  twin: a backpressured, journaled upload→queryable pipeline with
  crash-safe job recovery (see ``docs/STREAMING.md``).
- :mod:`repro.serving.loadgen` — closed-/open-loop load generators
  reporting throughput and p50/p95/p99 latency.
"""

from repro.serving.ingest import (
    IngestJob,
    IngestRecoveryReport,
    IngestService,
    IngestServiceConfig,
    JobState,
)
from repro.serving.loadgen import LoadReport, run_closed_loop, run_open_loop
from repro.serving.service import QueryResponse, QueryService, ServiceConfig
from repro.serving.sharding import (
    ShardedIndex,
    ShardedIndexConfig,
    ShardedSearchResult,
)
from repro.serving.snapshot import IndexSnapshot, LiveIndex, LiveIndexConfig

__all__ = [
    "IndexSnapshot",
    "IngestJob",
    "IngestRecoveryReport",
    "IngestService",
    "IngestServiceConfig",
    "JobState",
    "LiveIndex",
    "LiveIndexConfig",
    "LoadReport",
    "QueryResponse",
    "QueryService",
    "ServiceConfig",
    "ShardedIndex",
    "ShardedIndexConfig",
    "ShardedSearchResult",
    "run_closed_loop",
    "run_open_loop",
]
