"""repro.serving — sharded, concurrent query serving with live swaps.

Layers, bottom up:

- :mod:`repro.serving.sharding` — :class:`ShardedIndex` partitions the
  corpus across N :class:`~repro.core.index.STRGIndex` shards and runs
  exact scatter-gather k-NN / range queries whose results are
  bit-identical to a monolithic index.
- :mod:`repro.serving.snapshot` — :class:`IndexSnapshot` /
  :class:`LiveIndex` give copy-on-write ingestion: readers query an
  immutable published snapshot while writes buffer and compact into the
  next one, swapped in atomically.
- :mod:`repro.serving.service` — :class:`QueryService` fronts a live
  index with worker threads, bounded admission, per-request deadlines
  and graceful shutdown.
- :mod:`repro.serving.ingest` — :class:`IngestService` is the write-side
  twin: a backpressured, journaled upload→queryable pipeline with
  crash-safe job recovery (see ``docs/STREAMING.md``).
- :mod:`repro.serving.workers` — :class:`WorkerPool` promotes shards to
  long-lived worker *processes* memory-mapping one columnar snapshot,
  with replica failover, supervised restarts and hot-shard rebalancing
  (see ``docs/NETWORK.md``).
- :mod:`repro.serving.net` — :class:`NetFrontend`, the asyncio
  HTTP/JSON layer over a worker pool: ``/knn`` ``/range`` ``/query``
  ``/health`` ``/metrics`` ``/ingest``, bounded admission and
  per-request deadlines over the wire.
- :mod:`repro.serving.loadgen` — closed-/open-loop load generators
  (in-process and HTTP) reporting throughput and p50/p95/p99 latency.
"""

from repro.serving.ingest import (
    IngestJob,
    IngestRecoveryReport,
    IngestService,
    IngestServiceConfig,
    JobState,
)
from repro.serving.loadgen import (
    LoadReport,
    run_closed_loop,
    run_http_open_loop,
    run_open_loop,
)
from repro.serving.net import NetConfig, NetFrontend, request_json
from repro.serving.service import QueryResponse, QueryService, ServiceConfig
from repro.serving.sharding import (
    ShardedIndex,
    ShardedIndexConfig,
    ShardedSearchResult,
)
from repro.serving.snapshot import IndexSnapshot, LiveIndex, LiveIndexConfig
from repro.serving.workers import (
    RemoteHit,
    RemoteSearchResult,
    WorkerPool,
    WorkerPoolConfig,
)

__all__ = [
    "IndexSnapshot",
    "IngestJob",
    "IngestRecoveryReport",
    "IngestService",
    "IngestServiceConfig",
    "JobState",
    "LiveIndex",
    "LiveIndexConfig",
    "LoadReport",
    "NetConfig",
    "NetFrontend",
    "QueryResponse",
    "QueryService",
    "RemoteHit",
    "RemoteSearchResult",
    "ServiceConfig",
    "ShardedIndex",
    "ShardedIndexConfig",
    "ShardedSearchResult",
    "WorkerPool",
    "WorkerPoolConfig",
    "request_json",
    "run_closed_loop",
    "run_http_open_loop",
    "run_open_loop",
]
