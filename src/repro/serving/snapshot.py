"""Copy-on-write snapshots: queries never block on ingestion.

The serving layer separates reads from writes with an immutable
*published snapshot*:

- Readers always query the :class:`IndexSnapshot` that was current when
  their request started.  Snapshots are frozen — the underlying index
  rejects mutation — so a scan can never observe a half-applied insert.
- Writers append to a buffer on the :class:`LiveIndex`; nothing touches
  the published tree.
- :meth:`LiveIndex.compact` clones the published index, applies the
  buffered writes to the clone, freezes it and *atomically publishes*
  it as the next snapshot (a single reference assignment).  In-flight
  queries keep reading the previous snapshot; new queries see the new
  one.  Ingestion throughput costs a clone per compaction, and reads
  never take a lock.
"""

from __future__ import annotations

import copy
import logging
import threading
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.errors import InvalidParameterError, StorageError
from repro.graph.decomposition import BackgroundGraph
from repro.graph.object_graph import ObjectGraph
from repro.observability import OBS
from repro.serving.sharding import ShardedIndex, ShardedSearchResult

logger = logging.getLogger(__name__)


def _clone_index(index: Any) -> Any:
    """Deep, mutable copy of a (possibly frozen) index."""
    if hasattr(index, "clone"):
        return index.clone()
    dup = copy.deepcopy(index)
    dup.frozen = False
    return dup


class IndexSnapshot:
    """An immutable, versioned view of the index.

    Wraps a frozen index (sharded or monolithic) and delegates reads.
    Snapshots are cheap value objects: the expensive part — the frozen
    tree — is shared by reference and never mutated.
    """

    __slots__ = ("version", "index")

    def __init__(self, version: int, index: Any):
        self.version = version
        self.index = index

    def __len__(self) -> int:
        return len(self.index)

    def knn(self, query: ObjectGraph | np.ndarray, k: int,
            background: BackgroundGraph | None = None,
            search_budget: int | None = None
            ) -> list[tuple[float, ObjectGraph, Any]]:
        if search_budget is None:
            return self.index.knn(query, k, background)
        return self.index.knn(query, k, background,
                              search_budget=search_budget)

    def knn_detailed(self, query: ObjectGraph | np.ndarray, k: int,
                     background: BackgroundGraph | None = None,
                     search_budget: int | None = None
                     ) -> ShardedSearchResult:
        """Degraded-read k-NN (uniform over sharded/monolithic indexes).

        ``search_budget`` is forwarded only when set, so indexes that
        predate the approximate tier (or test doubles without the
        keyword) keep working on the default exact path.
        """
        if hasattr(self.index, "knn_detailed"):
            if search_budget is None:
                return self.index.knn_detailed(query, k, background)
            return self.index.knn_detailed(query, k, background,
                                           search_budget=search_budget)
        return ShardedSearchResult(self.knn(query, k, background,
                                            search_budget))

    def range_query(self, query, radius: float,
                    background: BackgroundGraph | None = None
                    ) -> list[tuple[float, ObjectGraph, Any]]:
        return self.index.range_query(query, radius, background)

    def range_query_detailed(self, query, radius: float,
                             background: BackgroundGraph | None = None
                             ) -> ShardedSearchResult:
        if hasattr(self.index, "range_query_detailed"):
            return self.index.range_query_detailed(query, radius, background)
        return ShardedSearchResult(self.index.range_query(query, radius,
                                                          background))

    def __repr__(self) -> str:
        return f"IndexSnapshot(version={self.version}, ogs={len(self)})"


@dataclass
class _BufferedWrite:
    """One buffered mutation, applied at the next compaction."""

    op: str  # "insert" | "delete"
    og: ObjectGraph | None = None
    background: BackgroundGraph | None = None
    clip_ref: Any = None
    og_id: int | None = None


@dataclass
class LiveIndexConfig:
    """Compaction policy for a :class:`LiveIndex`.

    ``auto_compact_threshold`` triggers a synchronous compaction from
    the writer's thread once that many writes are buffered (``None``
    leaves compaction entirely to explicit :meth:`LiveIndex.compact`
    calls).
    """

    auto_compact_threshold: int | None = None

    def __post_init__(self) -> None:
        if self.auto_compact_threshold is not None \
                and self.auto_compact_threshold < 1:
            raise InvalidParameterError(
                "auto_compact_threshold must be >= 1 or None, "
                f"got {self.auto_compact_threshold}"
            )


class LiveIndex:
    """A queryable index with copy-on-write ingestion.

    Reads go to the published :class:`IndexSnapshot`; writes buffer and
    take effect at the next :meth:`compact`.  All methods are
    thread-safe: reads are lock-free (one reference load), writes hold a
    short buffer lock, compactions serialize among themselves.
    """

    def __init__(self, index: Any,
                 config: LiveIndexConfig | None = None):
        self.config = config or LiveIndexConfig()
        index.freeze()
        self._snapshot = IndexSnapshot(1, index)
        self._buffer: list[_BufferedWrite] = []
        self._buffer_lock = threading.Lock()
        self._compact_lock = threading.Lock()
        self._store: Any = None
        self._store_dirty = False
        OBS.gauge("serving.snapshot_version", 1)

    # -- durability -----------------------------------------------------------

    def attach_store(self, store: Any, write: bool = True) -> None:
        """Persist every future compaction to ``store`` automatically.

        ``store`` is any ``open_store()`` result.  On a columnar store
        each compaction batch lands as one O(delta) appended segment
        (with a background merge folding segments when the dead-row
        fraction crosses the store's threshold); on an NPZ store every
        compaction rewrites the archive.  With ``write=True`` the
        current snapshot is written immediately, so the store is
        readable from the moment of attachment.

        Persistence failures degrade durability, never serving: the
        error is logged and counted, and the next successful compaction
        writes a full snapshot to resynchronize the store.
        """
        with self._compact_lock:
            self._store = store
            self._store_dirty = False
            if write:
                store.write_index(self._snapshot.index)

    def _persist_batch(self, batch: list[_BufferedWrite],
                       published: IndexSnapshot) -> None:
        try:
            writes = None if self._store_dirty else batch
            self._store.checkpoint(published.index, writes)
            self._store_dirty = False
            maybe_merge = getattr(self._store, "maybe_merge", None)
            if maybe_merge is not None:
                maybe_merge(background=True)
        except (StorageError, OSError) as exc:
            # Divergence guard: until a full write succeeds, appending
            # further deltas would replay to the wrong tree.
            self._store_dirty = True
            OBS.count("serving.persist_failures")
            logger.warning(
                "could not persist compaction batch (%d writes) to %s: "
                "%s — serving continues, next compaction writes a full "
                "snapshot", len(batch), self._store, exc)

    # -- reads ----------------------------------------------------------------

    @property
    def snapshot(self) -> IndexSnapshot:
        """The currently published snapshot (lock-free, immutable)."""
        return self._snapshot

    @property
    def version(self) -> int:
        return self._snapshot.version

    def knn(self, query, k: int,
            background: BackgroundGraph | None = None,
            search_budget: int | None = None):
        return self._snapshot.knn(query, k, background, search_budget)

    def knn_detailed(self, query, k: int,
                     background: BackgroundGraph | None = None,
                     search_budget: int | None = None
                     ) -> ShardedSearchResult:
        return self._snapshot.knn_detailed(query, k, background,
                                           search_budget)

    def range_query(self, query, radius: float,
                    background: BackgroundGraph | None = None):
        return self._snapshot.range_query(query, radius, background)

    def range_query_detailed(self, query, radius: float,
                             background: BackgroundGraph | None = None
                             ) -> ShardedSearchResult:
        return self._snapshot.range_query_detailed(query, radius, background)

    def __len__(self) -> int:
        return len(self._snapshot)

    # -- writes ---------------------------------------------------------------

    @property
    def pending_writes(self) -> int:
        """Buffered mutations not yet visible to readers."""
        return len(self._buffer)

    def insert(self, og: ObjectGraph,
               background: BackgroundGraph | None = None,
               clip_ref: Any = None) -> None:
        """Buffer one insert (visible after the next compaction)."""
        self._append(_BufferedWrite("insert", og=og, background=background,
                                    clip_ref=clip_ref))

    def bulk_insert(self, ogs: Sequence[ObjectGraph],
                    background: BackgroundGraph | None = None,
                    clip_refs: Sequence[Any] | None = None) -> None:
        """Buffer a batch of inserts."""
        if clip_refs is not None and len(clip_refs) != len(ogs):
            raise InvalidParameterError(
                f"{len(ogs)} OGs but {len(clip_refs)} clip refs"
            )
        refs = list(clip_refs) if clip_refs is not None else [None] * len(ogs)
        writes = [
            _BufferedWrite("insert", og=og, background=background,
                           clip_ref=ref)
            for og, ref in zip(ogs, refs)
        ]
        with self._buffer_lock:
            self._buffer.extend(writes)
            OBS.gauge("serving.write_buffer", len(self._buffer))
        self._maybe_auto_compact()

    def delete(self, og_id: int) -> None:
        """Buffer one delete (takes effect at the next compaction)."""
        self._append(_BufferedWrite("delete", og_id=og_id))

    def _append(self, write: _BufferedWrite) -> None:
        with self._buffer_lock:
            self._buffer.append(write)
            OBS.gauge("serving.write_buffer", len(self._buffer))
        self._maybe_auto_compact()

    def _maybe_auto_compact(self) -> None:
        threshold = self.config.auto_compact_threshold
        if threshold is not None and len(self._buffer) >= threshold:
            self.compact()

    # -- compaction -----------------------------------------------------------

    def compact(self) -> IndexSnapshot:
        """Apply buffered writes and publish a new snapshot.

        Readers are never blocked: the whole clone-and-apply runs on a
        private copy, and publication is one reference assignment.
        Writes that arrive *during* a compaction stay buffered for the
        next one.  Returns the snapshot current after the call (the
        unchanged one when the buffer was empty).
        """
        with self._compact_lock:
            with self._buffer_lock:
                batch = self._buffer
                self._buffer = []
                OBS.gauge("serving.write_buffer", 0)
            if not batch:
                return self._snapshot
            with OBS.span("serving.compact", writes=len(batch)):
                previous = self._snapshot
                working = _clone_index(previous.index)
                for write in batch:
                    if write.op == "insert":
                        working.insert(write.og, write.background,
                                       write.clip_ref)
                    else:
                        working.delete(write.og_id)
                if isinstance(working, ShardedIndex):
                    working.refresh_bounds()
                working.freeze()
                published = IndexSnapshot(previous.version + 1, working)
                self._snapshot = published
                OBS.count("serving.compactions")
                OBS.gauge("serving.snapshot_version", published.version)
                if self._store is not None:
                    self._persist_batch(batch, published)
                return published

    def __repr__(self) -> str:
        return (
            f"LiveIndex(version={self.version}, ogs={len(self)}, "
            f"pending={self.pending_writes})"
        )


# Callable alias used by the query service: any function taking a
# snapshot and returning a response payload.
SnapshotReader = Callable[[IndexSnapshot], Any]

__all__ = [
    "IndexSnapshot",
    "LiveIndex",
    "LiveIndexConfig",
    "SnapshotReader",
]
