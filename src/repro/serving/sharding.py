"""``ShardedIndex`` — the STRG-Index partitioned for serving.

The monolithic :class:`~repro.core.index.STRGIndex` answers one query at
a time against one tree.  The serving layer partitions the corpus across
N shards — each its own ``STRGIndex`` — and answers queries by
scatter-gather with **one global bound shared across shards**, so a
sharded search never evaluates more candidates than a monolithic scan:

- **Placement.**  ``"affine"`` (default) runs a coarse EM clustering and
  assigns each OG to the shard whose *pivot* (coarse centroid) is
  nearest, with a balance cap so no shard degenerates into the whole
  corpus.  ``"hash"`` places by ``og_id % num_shards`` — uniform, but
  with no locality to prune on.
- **Granularity.**  Every shard gets the same per-shard
  :class:`~repro.core.index.STRGIndexConfig`, so the fleet's total
  cluster count — and with it the tightness of every leaf window —
  grows with the shard count.
- **Pivot filters.**  Affine shards precompute each record's metric
  distance to *every* shard pivot.  At query time a single batched
  sweep against the pivots turns those stored keys into triangle
  lower bounds: the more shards, the more reference points, the more
  candidates are discarded before the kernel ever sees them.
- **Batched scans.**  Cluster ranking is one batched kernel invocation
  across *all* shards (pivots included), and candidate windows are
  accumulated across clusters and evaluated in large flushes — the
  per-invocation overhead that dominates scalar scans is paid a handful
  of times per query, not once per leaf.

Search is **exact**: every prune is justified by a metric lower bound
(with a tiny relative slack absorbing the batched kernels' float
asymmetry), and ties are broken by ``(distance, og_id)`` — so the hits,
their order *and their float distances* are bit-identical to the
monolithic index for any shard count.
"""

from __future__ import annotations

import copy
import math
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Sequence

import numpy as np

from repro.clustering.em import EMClustering, EMConfig
from repro.core.index import STRGIndex, STRGIndexConfig
from repro.core.nodes import ClusterRecord, LeafRecord
from repro.distance.base import Distance, as_series
from repro.distance.batch import one_vs_many, supports_batch
from repro.errors import (
    IndexStateError,
    InvalidParameterError,
    ShardUnavailableError,
)
from repro.graph.decomposition import BackgroundGraph
from repro.graph.object_graph import ObjectGraph
from repro.observability import OBS
from repro.resilience.faults import maybe_fail

#: Supported placement strategies.
PLACEMENTS = ("affine", "hash")


@dataclass
class ShardedIndexConfig:
    """Tuning of the sharded serving index.

    ``index`` configures every per-shard ``STRGIndex`` (identical across
    shards, so total cluster granularity scales with ``num_shards``).
    ``balance_factor`` caps a shard at ``balance_factor * M / num_shards``
    members during affine placement; overflow spills to the next-nearest
    pivot.  ``eval_batch`` is the candidate-flush size of the scatter
    scan: larger flushes amortize kernel-call overhead, smaller ones
    tighten the pruning bound more often.  ``prune_slack`` is the
    relative slack added to every pruning comparison to absorb the
    batched kernels' float asymmetry — raising it never makes results
    wrong, only scans slightly larger.
    """

    num_shards: int = 4
    placement: str = "affine"
    index: STRGIndexConfig = field(default_factory=STRGIndexConfig)
    coarse_sample_size: int = 128
    coarse_iterations: int = 10
    balance_factor: float = 1.3
    seed: int = 0
    eval_batch: int = 32
    prune_slack: float = 1e-9

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise InvalidParameterError(
                f"num_shards must be >= 1, got {self.num_shards}"
            )
        if self.placement not in PLACEMENTS:
            raise InvalidParameterError(
                f"unknown placement {self.placement!r}; "
                f"expected one of {PLACEMENTS}"
            )
        if self.coarse_sample_size < 2:
            raise InvalidParameterError(
                f"coarse_sample_size must be >= 2, got {self.coarse_sample_size}"
            )
        if self.balance_factor < 1.0:
            raise InvalidParameterError(
                f"balance_factor must be >= 1.0, got {self.balance_factor}"
            )
        if self.eval_batch < 1:
            raise InvalidParameterError(
                f"eval_batch must be >= 1, got {self.eval_batch}"
            )
        if self.prune_slack < 0.0:
            raise InvalidParameterError(
                f"prune_slack must be >= 0, got {self.prune_slack}"
            )


@dataclass
class ShardedSearchResult:
    """Scatter-gather outcome: hits plus degradation telemetry.

    ``hits`` are ``(distance, og, clip_ref)`` tuples sorted by
    ``(distance, og_id)``.  When a shard fails mid-search (fault
    injection, or a real per-shard backend error) the degraded-read path
    sets ``degraded`` and lists the ``failed_shards`` whose candidates
    are missing from ``hits``.
    """

    hits: list[tuple[float, ObjectGraph, Any]]
    degraded: bool = False
    failed_shards: list[int] = field(default_factory=list)


class _ClusterCache:
    """Immutable per-cluster scan cache.

    Everything the scatter scan needs without touching the OGs again:
    normalized member series, their sorted keys, and — under affine
    placement — the triangle-bound ingredients against every shard
    pivot (``centroid_pd[p] = d(pivot_p, centroid)`` and
    ``member_pd[i, p] = d(pivot_p, member_i)``).
    """

    __slots__ = ("centroid_series", "member_series", "keys", "max_key",
                 "centroid_pd", "member_pd")

    def __init__(self, centroid_series, member_series, keys, max_key,
                 centroid_pd, member_pd):
        self.centroid_series = centroid_series
        self.member_series = member_series
        self.keys = keys
        self.max_key = max_key
        self.centroid_pd = centroid_pd
        self.member_pd = member_pd


class _ShardBounds:
    """Scan caches for one shard, keyed by cluster-record identity.

    Valid only while the shard's mutation counter is unchanged; stale
    caches are rebuilt lazily on the next search (searches stay exact
    throughout — a rebuild changes cost, never results).
    """

    __slots__ = ("mutations", "by_record")

    def __init__(self, mutations: int, by_record: dict[int, _ClusterCache]):
        self.mutations = mutations
        self.by_record = by_record


class ShardedIndex:
    """N ``STRGIndex`` shards behind one exact scatter-gather search."""

    def __init__(self, config: ShardedIndexConfig | None = None,
                 metric_distance: Distance | Callable | None = None,
                 cluster_distance: Distance | None = None,
                 executor: Any = None):
        self.config = config or ShardedIndexConfig()
        self.shards: list[STRGIndex] = [
            STRGIndex(self.config.index, metric_distance=metric_distance,
                      cluster_distance=cluster_distance)
            for _ in range(self.config.num_shards)
        ]
        #: Shared metric (leaf keys, pivot keys and query evaluation).
        self.metric_distance = self.shards[0].metric_distance
        self.cluster_distance = self.shards[0].cluster_distance
        #: Affine shard pivots (coarse centroids); ``None`` for hash
        #: placement or before the first build.
        self.pivots: list[np.ndarray] | None = None
        #: Optional :class:`~repro.parallel.DistanceExecutor` for fanning
        #: large candidate flushes out across worker processes.
        self.executor = executor
        self.frozen = False
        self._bounds: tuple[_ShardBounds | None, ...] | None = None
        self._bounds_lock = threading.Lock()

    # -- construction ---------------------------------------------------------

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def _check_mutable(self) -> None:
        if self.frozen:
            raise IndexStateError(
                "sharded index is frozen (published as a serving "
                "snapshot); mutate a clone instead"
            )

    def build(self, ogs: Sequence[ObjectGraph],
              background: BackgroundGraph | None = None,
              clip_refs: Sequence[Any] | None = None) -> None:
        """Partition ``ogs`` across the shards and build each one."""
        if not ogs:
            raise IndexStateError("cannot build a sharded index from zero OGs")
        if clip_refs is not None and len(clip_refs) != len(ogs):
            raise InvalidParameterError(
                f"{len(ogs)} OGs but {len(clip_refs)} clip refs"
            )
        self._check_mutable()
        refs = list(clip_refs) if clip_refs is not None else [None] * len(ogs)
        with OBS.span("serving.shard_build", ogs=len(ogs),
                      shards=self.num_shards):
            assignment = self._place(ogs)
            for s in range(self.num_shards):
                members = [og for og, a in zip(ogs, assignment) if a == s]
                member_refs = [r for r, a in zip(refs, assignment) if a == s]
                if members:
                    self.shards[s].build(members, background, member_refs)
            self.refresh_bounds()

    def _place(self, ogs: Sequence[ObjectGraph]) -> list[int]:
        """Shard id per OG (fits affine pivots on the first build)."""
        if self.config.placement == "hash":
            return [int(og.og_id) % self.num_shards for og in ogs]
        if self.pivots is None:
            self.pivots = self._fit_pivots(ogs)
        return self._assign_affine(ogs)

    def _fit_pivots(self, ogs: Sequence[ObjectGraph]) -> list[np.ndarray]:
        """Coarse EM centroids used as shard pivots (one per shard)."""
        rng = np.random.default_rng(self.config.seed)
        sample: Sequence[ObjectGraph] = ogs
        if self.config.coarse_sample_size < len(ogs):
            idx = rng.choice(len(ogs), size=self.config.coarse_sample_size,
                             replace=False)
            sample = [ogs[int(i)] for i in sorted(idx)]
        k = min(self.num_shards, len(sample))
        em = EMClustering(
            EMConfig(n_clusters=k,
                     max_iterations=self.config.coarse_iterations,
                     seed=self.config.seed),
            distance=self.cluster_distance,
        )
        result = em.fit(list(sample))
        pivots = [np.asarray(result.centroids[c], dtype=np.float64)
                  for c in range(result.num_clusters)]
        while len(pivots) < self.num_shards:
            # Degenerate coarse fit: duplicate pivots; the balance cap
            # still spreads members across the extra shards.
            pivots.append(pivots[len(pivots) % max(1, len(pivots))].copy())
        return pivots

    def _pivot_distances(self, ogs: Sequence[ObjectGraph]) -> np.ndarray:
        """``(len(ogs), num_shards)`` matrix of pivot-first distances."""
        series = [as_series(og) for og in ogs]
        return np.stack(
            [one_vs_many(self.metric_distance, pivot, series)
             for pivot in self.pivots],
            axis=1,
        )

    def _assign_affine(self, ogs: Sequence[ObjectGraph]) -> list[int]:
        """Nearest-pivot placement under the balance cap (deterministic)."""
        cols = self._pivot_distances(ogs)
        counts = [len(shard) for shard in self.shards]
        cap = max(1, math.ceil(
            self.config.balance_factor
            * (len(ogs) + sum(counts)) / self.num_shards
        ))
        order = np.argsort(cols, axis=1, kind="stable")
        assignment: list[int] = []
        for j in range(len(ogs)):
            chosen = int(order[j, 0])
            for s in order[j]:
                if counts[int(s)] < cap:
                    chosen = int(s)
                    break
            counts[chosen] += 1
            assignment.append(chosen)
        return assignment

    # -- maintenance ----------------------------------------------------------

    def insert(self, og: ObjectGraph,
               background: BackgroundGraph | None = None,
               clip_ref: Any = None) -> None:
        """Insert one OG into its shard (bounds go stale until refresh)."""
        self._check_mutable()
        if len(self) == 0 and self.pivots is None \
                and self.config.placement == "affine":
            self.build([og], background, [clip_ref])
            return
        if self.config.placement == "hash":
            target = int(og.og_id) % self.num_shards
        else:
            dists = self._pivot_distances([og])[0]
            target = int(np.argmin(dists))
        self.shards[target].insert(og, background, clip_ref)

    def delete(self, og_id: int) -> bool:
        """Remove the OG with ``og_id`` from whichever shard holds it."""
        self._check_mutable()
        return any(shard.delete(og_id) for shard in self.shards)

    def freeze(self) -> "ShardedIndex":
        """Freeze every shard (and this wrapper) for snapshot publishing."""
        for shard in self.shards:
            shard.freeze()
        self.frozen = True
        return self

    def clone(self) -> "ShardedIndex":
        """A deep, *mutable* copy sharing no state with this index.

        The copy-on-write path of the serving snapshot manager: clone the
        published (frozen) index, apply buffered writes to the clone, and
        publish it as the next snapshot.
        """
        dup = ShardedIndex.__new__(ShardedIndex)
        dup.config = self.config
        dup.shards = copy.deepcopy(self.shards)
        for shard in dup.shards:
            shard.frozen = False
        dup.metric_distance = dup.shards[0].metric_distance
        dup.cluster_distance = dup.shards[0].cluster_distance
        dup.pivots = ([p.copy() for p in self.pivots]
                      if self.pivots is not None else None)
        dup.executor = self.executor
        dup.frozen = False
        dup._bounds = None
        dup._bounds_lock = threading.Lock()
        return dup

    # -- scan caches ----------------------------------------------------------

    def refresh_bounds(self) -> None:
        """(Re)compute the per-cluster scan caches and pivot bounds.

        One batched sweep per shard and pivot keys every cluster
        centroid and member against every shard pivot.  Hash placement
        has no pivots and caches only series/keys (searches stay exact,
        just without triangle filters).
        """
        with self._bounds_lock:
            previous = self._bounds or (None,) * self.num_shards
            bounds: list[_ShardBounds | None] = []
            for s, shard in enumerate(self.shards):
                prior = previous[s] if s < len(previous) else None
                if prior is not None and prior.mutations == shard.mutations:
                    bounds.append(prior)
                    continue
                bounds.append(self._compute_shard_bounds(s))
            self._bounds = tuple(bounds)

    def _compute_shard_bounds(self, s: int) -> _ShardBounds:
        shard = self.shards[s]
        records = shard.cluster_records()
        if not records:
            return _ShardBounds(shard.mutations, {})
        centroid_series = [np.asarray(r.centroid, dtype=np.float64)
                           for r in records]
        member_series = [[as_series(r.og) for r in record.leaf]
                         for record in records]
        centroid_pd = member_pd = None
        if self.pivots is not None:
            # One pivot-first sweep per pivot over every centroid and
            # every member of the shard, split back per cluster.
            flat = [srs for members in member_series for srs in members]
            spans = []
            start = 0
            for members in member_series:
                spans.append((start, start + len(members)))
                start += len(members)
            cpd_cols = []
            mpd_cols = []
            for pivot in self.pivots:
                cpd_cols.append(one_vs_many(self.metric_distance, pivot,
                                            centroid_series))
                mpd_cols.append(
                    one_vs_many(self.metric_distance, pivot, flat)
                    if flat else np.empty(0)
                )
            centroid_pd = np.stack(cpd_cols, axis=1)
            flat_pd = np.stack(mpd_cols, axis=1) if flat else \
                np.empty((0, len(self.pivots)))
            member_pd = [flat_pd[lo:hi] for lo, hi in spans]
        by_record: dict[int, _ClusterCache] = {}
        for i, record in enumerate(records):
            by_record[id(record)] = _ClusterCache(
                centroid_series=centroid_series[i],
                member_series=member_series[i],
                keys=np.asarray(record.leaf.keys, dtype=np.float64),
                max_key=record.leaf.max_key(),
                centroid_pd=(centroid_pd[i] if centroid_pd is not None
                             else None),
                member_pd=(member_pd[i] if member_pd is not None else None),
            )
        return _ShardBounds(shard.mutations, by_record)

    def _fresh_bounds(self) -> tuple[_ShardBounds | None, ...]:
        """Current scan caches; recompute stale shards first."""
        bounds = self._bounds
        if bounds is not None and len(bounds) == self.num_shards and all(
            b is not None and b.mutations == shard.mutations
            for b, shard in zip(bounds, self.shards)
        ):
            return bounds
        self.refresh_bounds()
        return self._bounds

    def _slack(self, bound: float) -> float:
        if not math.isfinite(bound):
            return 0.0
        return self.config.prune_slack * (1.0 + abs(bound))

    # -- search ---------------------------------------------------------------

    def knn(self, query: ObjectGraph | np.ndarray, k: int,
            background: BackgroundGraph | None = None,
            search_budget: int | None = None,
            prune_bound: float | None = None
            ) -> list[tuple[float, ObjectGraph, Any]]:
        """Exact k-NN over all shards, as ``(distance, og, clip_ref)``.

        Bit-identical to the monolithic ``STRGIndex.knn`` over the same
        corpus (ties broken by og_id).  ``k = 0`` yields ``[]``; ``k``
        beyond the corpus returns everything.  Shard failures propagate;
        use :meth:`knn_detailed` for degraded partial reads.

        With ``search_budget`` set, each shard runs its *approximate*
        sketch tier (see ``docs/SEARCH.md``) with the budget split
        proportionally to shard sizes (floored at ``k`` per shard, so
        the split can overshoot the global budget by at most
        ``num_shards * k`` evaluations), and the per-shard top-k lists
        are merged by ``(distance, og_id)``.

        ``prune_bound`` is an externally-known upper bound on the k-th
        nearest distance (e.g. the k-th hit of another partition of the
        same corpus).  It only tightens *pruning* — never which
        evaluated candidates are kept — so any valid bound leaves the
        result exact; it exists so distributed callers (the
        ``serving.workers`` pool) can share one global bound across
        partitions the way this index shares one bound across shards.
        """
        return self._search_knn(query, k, background, degrade=False,
                                search_budget=search_budget,
                                prune_bound=prune_bound).hits

    def knn_detailed(self, query: ObjectGraph | np.ndarray, k: int,
                     background: BackgroundGraph | None = None,
                     search_budget: int | None = None,
                     prune_bound: float | None = None
                     ) -> ShardedSearchResult:
        """k-NN with per-shard failure degradation.

        A shard raising :class:`~repro.errors.ShardUnavailableError`
        (e.g. under fault injection) is skipped; the result carries the
        surviving hits with ``degraded=True``.
        """
        return self._search_knn(query, k, background, degrade=True,
                                search_budget=search_budget,
                                prune_bound=prune_bound)

    def _search_knn(self, query, k: int,
                    background: BackgroundGraph | None,
                    degrade: bool,
                    search_budget: int | None = None,
                    prune_bound: float | None = None) -> ShardedSearchResult:
        if k < 0:
            raise InvalidParameterError(f"k must be >= 0, got {k}")
        if k == 0:
            return ShardedSearchResult([])
        if search_budget is not None and search_budget < 1:
            raise InvalidParameterError(
                f"search_budget must be >= 1, got {search_budget}"
            )
        if prune_bound is not None and not prune_bound >= 0.0:
            raise InvalidParameterError(
                f"prune_bound must be >= 0, got {prune_bound}"
            )
        if len(self) == 0:
            raise IndexStateError("cannot search an empty sharded index")
        with OBS.span("serving.knn", k=k, shards=self.num_shards,
                      budget=search_budget) as sp:
            OBS.count("serving.knn_queries")
            if search_budget is not None:
                result = self._approx_scatter(query, k, background,
                                              search_budget, degrade)
            else:
                result = self._scatter_gather(query, k, background, degrade,
                                              prune_bound)
            sp.set(hits=len(result.hits), degraded=result.degraded)
            return result

    def _approx_scatter(self, query, k: int,
                        background: BackgroundGraph | None,
                        search_budget: int, degrade: bool
                        ) -> ShardedSearchResult:
        """Budgeted scatter: each shard searches its own sketch tier.

        The budget is divided proportionally to shard sizes so a shard
        holding half the corpus gets half the evaluations; every live
        shard gets at least ``k`` so it can always fill a top-k list.
        """
        total = len(self)
        hits: list[tuple[float, ObjectGraph, Any]] = []
        failed: list[int] = []
        for s, shard in enumerate(self.shards):
            if len(shard) == 0:
                continue
            try:
                maybe_fail("serving.shard", shard=s)
            except ShardUnavailableError:
                if not degrade:
                    raise
                OBS.count("serving.shards_failed")
                failed.append(s)
                continue
            share = max(k, math.ceil(search_budget * len(shard) / total))
            hits.extend(shard.knn(query, k, background,
                                  search_budget=share))
        hits.sort(key=lambda h: (h[0], h[1].og_id))
        return ShardedSearchResult(hits[:k], bool(failed), failed)

    def _gather(self, background: BackgroundGraph | None, degrade: bool
                ) -> tuple[list[tuple[ClusterRecord, _ClusterCache]],
                           list[int]]:
        """Collect ``(cluster_record, scan_cache)`` pairs from live shards.

        The shard fault-injection point fires here, before any kernel
        work: a failed shard contributes no clusters and the search
        degrades to partial results (or raises, on the strict path).
        """
        bounds = self._fresh_bounds()
        clusters: list[tuple[ClusterRecord, _ClusterCache]] = []
        failed: list[int] = []
        for s, shard in enumerate(self.shards):
            if len(shard) == 0:
                continue
            try:
                maybe_fail("serving.shard", shard=s)
            except ShardUnavailableError:
                if not degrade:
                    raise
                OBS.count("serving.shards_failed")
                failed.append(s)
                continue
            sb = bounds[s]
            for record in shard.cluster_records(background):
                if len(record.leaf) == 0:
                    continue
                cache = sb.by_record.get(id(record)) if sb is not None \
                    else None
                if cache is None:
                    # A record the cache pass missed (mutated mid-gather
                    # on an unsynchronized writer): scan it uncached.
                    cache = self._uncached(record)
                clusters.append((record, cache))
        return clusters, failed

    def _uncached(self, record: ClusterRecord) -> _ClusterCache:
        return _ClusterCache(
            centroid_series=np.asarray(record.centroid, dtype=np.float64),
            member_series=[as_series(r.og) for r in record.leaf],
            keys=np.asarray(record.leaf.keys, dtype=np.float64),
            max_key=record.leaf.max_key(),
            centroid_pd=None,
            member_pd=None,
        )

    def _rank(self, series: np.ndarray, clusters: list
              ) -> tuple[np.ndarray, np.ndarray | None]:
        """Query distances to every centroid and pivot, in one sweep.

        Returns ``(key_qs, pivot_qs)``.  Pivots piggyback on the cluster
        ranking batch so the whole scatter pays a single fixed kernel
        invocation.  Metrics without a batch kernel fall back to per-pair
        calls in ``(query, centroid)`` order (keeps counting wrappers'
        bookkeeping deterministic); pivots are skipped on that path.
        """
        centroids = [cache.centroid_series for _, cache in clusters]
        if not supports_batch(self.metric_distance):
            key_qs = np.array(
                [float(self.metric_distance(series, c)) for c in centroids],
                dtype=np.float64,
            )
            return key_qs, None
        if self.pivots is not None:
            # The pivot fleet may be larger than num_shards: a partition
            # of the corpus (serving.workers) keeps every corpus pivot
            # for pruning even when it serves a subset of the shards.
            n_pivots = len(self.pivots)
            batch = one_vs_many(self.metric_distance, series,
                                list(self.pivots) + centroids)
            return batch[n_pivots:], batch[:n_pivots]
        return one_vs_many(self.metric_distance, series, centroids), None

    def _scatter_gather(self, query, k: int,
                        background: BackgroundGraph | None,
                        degrade: bool,
                        prune_bound: float | None = None
                        ) -> ShardedSearchResult:
        series = as_series(query)
        clusters, failed = self._gather(background, degrade)
        if not clusters:
            return ShardedSearchResult([], bool(failed), failed)
        key_qs, pivot_qs = self._rank(series, clusters)

        best: list[tuple[float, ObjectGraph, Any]] = []
        external = float("inf") if prune_bound is None else float(prune_bound)

        def kth() -> tuple[float, float]:
            if len(best) == k:
                return (best[-1][0], best[-1][1].og_id)
            return (float("inf"), float("inf"))

        def cut() -> float:
            # Pruning-only bound: the local kth candidate, tightened by
            # any caller-supplied global bound.  Candidates are only ever
            # *pruned* against it (strictly, beyond the slack), so ties
            # at the bound survive and the result stays exact for any
            # valid upper bound on the true kth distance.
            return min(kth()[0], external)

        def flush(pending: list[tuple[float, LeafRecord, np.ndarray]]) -> None:
            # Evaluate pending candidates best-first in ``eval_batch``
            # chunks, re-checking each survivor's stored lower bound
            # against the bound as it tightens — candidates windowed
            # under an older, looser bound are dropped without ever
            # paying the kernel for them.
            pending.sort(key=lambda c: c[0])
            start = 0
            while start < len(pending):
                bound = cut()
                slack = self._slack(bound)
                stop = start
                end = min(len(pending), start + self.config.eval_batch)
                while stop < end and pending[stop][0] <= bound + slack:
                    stop += 1
                if stop == start:
                    # Sorted by lower bound: everything further is
                    # provably outside the current kth distance.
                    OBS.count("serving.candidates_requeued_pruned",
                              len(pending) - start)
                    break
                chunk = pending[start:stop]
                items = [srs for _, _, srs in chunk]
                if self.executor is not None:
                    dists = self.executor.one_vs_many(self.metric_distance,
                                                      series, items)
                else:
                    dists = one_vs_many(self.metric_distance, series, items)
                OBS.count("serving.candidates_evaluated", len(chunk))
                for (_, rec, _), d in zip(chunk, dists):
                    d = float(d)
                    if (d, rec.og.og_id) < kth():
                        _insort(best, (d, rec.og, rec.clip_ref))
                        if len(best) > k:
                            best.pop()
                start = stop
            pending.clear()

        # Scan leaves in global key order: the nearest cluster anywhere
        # in the fleet seeds the bound, and every later window is cut by
        # it — one shared bound across all shards, exactly as the
        # monolithic index shares one bound across its clusters.
        # Candidates accumulate across clusters and are evaluated in
        # ``eval_batch``-sized kernel flushes.
        order = np.argsort(key_qs, kind="stable")
        pending: list[tuple[float, LeafRecord, np.ndarray]] = []
        for i in order:
            if len(pending) >= self.config.eval_batch:
                flush(pending)
            record, cache = clusters[int(i)]
            key_q = float(key_qs[int(i)])
            bound = cut()
            slack = self._slack(bound)
            if key_q - cache.max_key > bound + slack:
                OBS.count("serving.clusters_pruned")
                continue
            if pivot_qs is not None and cache.centroid_pd is not None:
                # Triangle bound via the pivot fleet: every member o of
                # this cluster has d(q, o) >= |d(q,P) - d(P,c)| - max_key
                # for each pivot P; take the tightest.
                lb = float(np.max(np.abs(pivot_qs - cache.centroid_pd))) \
                    - cache.max_key
                if lb > bound + slack:
                    OBS.count("serving.clusters_pruned")
                    continue
            self._window(record, cache, key_q, pivot_qs, bound, slack,
                         pending)
        flush(pending)
        return ShardedSearchResult(best, bool(failed), failed)

    def _window(self, record: ClusterRecord, cache: _ClusterCache,
                key_q: float, pivot_qs: np.ndarray | None, bound: float,
                slack: float, pending: list) -> None:
        """Append this leaf's surviving candidates to ``pending``.

        Survivors pass every available 1-D metric projection: the stored
        centroid key (``|key - key_q| <= bound``) and, under affine
        placement, the key to *each* shard pivot.  Each candidate is
        queued with its tightest lower bound so a later flush can
        re-check it against the bound current *then*.
        """
        OBS.count("serving.leaf_scans")
        keys = cache.keys
        if math.isinf(bound):
            idx = np.arange(len(keys))
        else:
            lo = int(np.searchsorted(keys, key_q - bound - slack,
                                     side="left"))
            hi = int(np.searchsorted(keys, key_q + bound + slack,
                                     side="right"))
            idx = np.arange(lo, hi)
        if len(idx) == 0:
            return
        lbs = np.abs(keys[idx] - key_q)
        if pivot_qs is not None and cache.member_pd is not None:
            gaps = np.abs(cache.member_pd[idx] - pivot_qs).max(axis=1)
            if not math.isinf(bound):
                keep = gaps <= bound + slack
                idx, lbs, gaps = idx[keep], lbs[keep], gaps[keep]
            lbs = np.maximum(lbs, gaps)
        records = record.leaf.records
        members = cache.member_series
        pending.extend(
            (float(lb), records[int(i)], members[int(i)])
            for lb, i in zip(lbs, idx)
        )

    def range_query(self, query, radius: float,
                    background: BackgroundGraph | None = None
                    ) -> list[tuple[float, ObjectGraph, Any]]:
        """All OGs within ``radius``, merged across shards."""
        return self._search_range(query, radius, background,
                                  degrade=False).hits

    def range_query_detailed(self, query, radius: float,
                             background: BackgroundGraph | None = None
                             ) -> ShardedSearchResult:
        """Range query with per-shard failure degradation."""
        return self._search_range(query, radius, background, degrade=True)

    def _search_range(self, query, radius: float,
                      background: BackgroundGraph | None,
                      degrade: bool) -> ShardedSearchResult:
        if radius < 0:
            raise InvalidParameterError(f"radius must be >= 0, got {radius}")
        if len(self) == 0:
            raise IndexStateError("cannot search an empty sharded index")
        with OBS.span("serving.range_query", radius=radius) as sp:
            series = as_series(query)
            clusters, failed = self._gather(background, degrade)
            hits: list[tuple[float, ObjectGraph, Any]] = []
            if clusters:
                key_qs, pivot_qs = self._rank(series, clusters)
                slack = self._slack(radius)
                pending: list[tuple[float, LeafRecord, np.ndarray]] = []
                for (record, cache), key_q in zip(clusters, key_qs):
                    key_q = float(key_q)
                    if key_q - cache.max_key > radius + slack:
                        OBS.count("serving.clusters_pruned")
                        continue
                    if pivot_qs is not None \
                            and cache.centroid_pd is not None:
                        lb = float(np.max(np.abs(
                            pivot_qs - cache.centroid_pd))) - cache.max_key
                        if lb > radius + slack:
                            OBS.count("serving.clusters_pruned")
                            continue
                    self._window(record, cache, key_q, pivot_qs, radius,
                                 slack, pending)
                if pending:
                    items = [srs for _, _, srs in pending]
                    if self.executor is not None:
                        dists = self.executor.one_vs_many(
                            self.metric_distance, series, items)
                    else:
                        dists = one_vs_many(self.metric_distance, series,
                                            items)
                    OBS.count("serving.candidates_evaluated", len(pending))
                    for (_, rec, _), d in zip(pending, dists):
                        if float(d) <= radius:
                            hits.append((float(d), rec.og, rec.clip_ref))
            hits.sort(key=lambda h: (h[0], h[1].og_id))
            sp.set(hits=len(hits), degraded=bool(failed))
            return ShardedSearchResult(hits, bool(failed), failed)

    # -- persistence ----------------------------------------------------------

    def save(self, path) -> str:
        """Persist shards + placement; see
        :func:`repro.storage.serialize.save_sharded_index`."""
        from repro.storage.serialize import save_sharded_index

        return save_sharded_index(path, self)

    @classmethod
    def load(cls, path) -> "ShardedIndex":
        """Load an index saved by :meth:`save`."""
        from repro.storage.serialize import load_sharded_index

        return load_sharded_index(path)

    # -- introspection --------------------------------------------------------

    def object_graphs(self) -> Iterator[ObjectGraph]:
        """Iterate every indexed OG, shard by shard."""
        for shard in self.shards:
            yield from shard.object_graphs()

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)

    def num_clusters(self) -> int:
        return sum(shard.num_clusters() for shard in self.shards)

    def shard_sizes(self) -> list[int]:
        """OG count per shard (placement balance diagnostics)."""
        return [len(shard) for shard in self.shards]

    def stats(self) -> dict[str, Any]:
        return {
            "shards": self.num_shards,
            "placement": self.config.placement,
            "shard_sizes": self.shard_sizes(),
            "cluster_records": self.num_clusters(),
            "leaf_records": len(self),
            "frozen": self.frozen,
        }

    def __repr__(self) -> str:
        return (
            f"ShardedIndex(shards={self.num_shards}, "
            f"placement={self.config.placement!r}, ogs={len(self)})"
        )


def _insort(best: list, entry: tuple) -> None:
    """Insert ``entry`` into ``best`` ordered by ``(distance, og_id)``."""
    key = (entry[0], entry[1].og_id)
    lo, hi = 0, len(best)
    while lo < hi:
        mid = (lo + hi) // 2
        if (best[mid][0], best[mid][1].og_id) < key:
            lo = mid + 1
        else:
            hi = mid
    best.insert(lo, entry)
