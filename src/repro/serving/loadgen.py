"""Load generators for the query service.

Two standard shapes:

- **Closed loop** (:func:`run_closed_loop`) — ``concurrency`` synthetic
  clients, each submitting a request, waiting for the response, and
  immediately submitting the next.  Offered load adapts to service
  speed, so the service is never overloaded; this measures *capacity*
  (max sustainable throughput) and best-case latency.
- **Open loop** (:func:`run_open_loop`) — requests arrive on a fixed
  schedule (``rate`` per second) regardless of completions, like
  independent external clients.  When the service falls behind, the
  queue fills and admission control rejects; this measures behaviour
  *under* overload — tail latency, rejection rate, backpressure.

Both return a :class:`LoadReport` with throughput and p50/p95/p99
latency, serialisable via :meth:`LoadReport.as_dict` for benchmark
artifacts.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.errors import (
    DeadlineExceededError,
    InvalidParameterError,
    ServiceOverloadError,
)
from repro.serving.service import QueryService


@dataclass
class LoadReport:
    """Outcome of one load-generation run."""

    mode: str                       # "closed" | "open"
    concurrency: int                # clients (closed) or offered rate (open)
    requests_sent: int = 0
    responses: int = 0
    rejected: int = 0               # ServiceOverloadError at admission
    deadline_exceeded: int = 0
    errors: int = 0                 # any other failure
    duration: float = 0.0           # wall-clock seconds
    latencies: list[float] = field(default_factory=list, repr=False)

    @property
    def throughput(self) -> float:
        """Completed responses per second."""
        return self.responses / self.duration if self.duration > 0 else 0.0

    def percentile(self, q: float) -> float:
        if not self.latencies:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies), q))

    def as_dict(self) -> dict[str, Any]:
        return {
            "mode": self.mode,
            "concurrency": self.concurrency,
            "requests_sent": self.requests_sent,
            "responses": self.responses,
            "rejected": self.rejected,
            "deadline_exceeded": self.deadline_exceeded,
            "errors": self.errors,
            "duration": self.duration,
            "throughput": self.throughput,
            "latency": {
                "mean": float(np.mean(self.latencies))
                if self.latencies else 0.0,
                "p50": self.percentile(50),
                "p95": self.percentile(95),
                "p99": self.percentile(99),
                "max": max(self.latencies) if self.latencies else 0.0,
            },
        }

    def __str__(self) -> str:
        return (
            f"{self.mode}-loop: {self.responses}/{self.requests_sent} ok, "
            f"{self.rejected} rejected, {self.throughput:.1f} qps, "
            f"p50={self.percentile(50) * 1e3:.1f}ms "
            f"p99={self.percentile(99) * 1e3:.1f}ms"
        )


def _record(report: LoadReport, lock: threading.Lock,
            outcome: str, latency: float | None = None) -> None:
    with lock:
        if outcome == "ok":
            report.responses += 1
            if latency is not None:
                report.latencies.append(latency)
        elif outcome == "rejected":
            report.rejected += 1
        elif outcome == "deadline":
            report.deadline_exceeded += 1
        else:
            report.errors += 1


def run_closed_loop(service: QueryService,
                    queries: Sequence[Any],
                    k: int = 10,
                    *,
                    num_requests: int | None = None,
                    duration: float | None = None,
                    concurrency: int = 1,
                    deadline: float | None = None,
                    search_budget: int | None = None) -> LoadReport:
    """Drive ``service`` with ``concurrency`` request-wait-repeat clients.

    Stops after ``num_requests`` total requests or ``duration`` seconds
    (exactly one must be given).  Queries are drawn round-robin.
    ``search_budget`` forwards to :meth:`QueryService.knn`, driving the
    approximate sketch tier instead of the exact path.
    """
    if (num_requests is None) == (duration is None):
        raise InvalidParameterError(
            "specify exactly one of num_requests / duration"
        )
    if num_requests is not None and num_requests < 1:
        raise InvalidParameterError(
            f"num_requests must be >= 1, got {num_requests}"
        )
    if concurrency < 1:
        raise InvalidParameterError(
            f"concurrency must be >= 1, got {concurrency}"
        )
    if not queries:
        raise InvalidParameterError("queries must be non-empty")

    report = LoadReport(mode="closed", concurrency=concurrency)
    lock = threading.Lock()
    counter = {"next": 0}
    deadline_at = None

    def take_ticket() -> int | None:
        """Next global request ordinal, or None when the run is over."""
        with lock:
            ticket = counter["next"]
            if num_requests is not None and ticket >= num_requests:
                return None
            if deadline_at is not None and time.monotonic() >= deadline_at:
                return None
            counter["next"] = ticket + 1
            report.requests_sent += 1
            return ticket

    def client() -> None:
        while True:
            ticket = take_ticket()
            if ticket is None:
                return
            query = queries[ticket % len(queries)]
            t0 = time.monotonic()
            try:
                service.knn(query, k, deadline=deadline,
                            search_budget=search_budget)
                _record(report, lock, "ok", time.monotonic() - t0)
            except ServiceOverloadError:
                _record(report, lock, "rejected")
            except DeadlineExceededError:
                _record(report, lock, "deadline")
            except Exception:  # noqa: BLE001 — load test keeps going
                _record(report, lock, "error")

    start = time.monotonic()
    if duration is not None:
        deadline_at = start + duration
    clients = [threading.Thread(target=client, name=f"loadgen-{i}")
               for i in range(concurrency)]
    for thread in clients:
        thread.start()
    for thread in clients:
        thread.join()
    report.duration = time.monotonic() - start
    return report


def run_open_loop(service: QueryService,
                  queries: Sequence[Any],
                  k: int = 10,
                  *,
                  rate: float,
                  duration: float,
                  deadline: float | None = None,
                  search_budget: int | None = None) -> LoadReport:
    """Offer ``rate`` requests/second for ``duration`` seconds.

    Arrivals are paced on a fixed schedule and submitted without
    waiting; the run then collects all outstanding futures.  Unlike the
    closed loop, offered load does not slow down when the service does —
    expect rejections once ``rate`` exceeds capacity.
    """
    if rate <= 0:
        raise InvalidParameterError(f"rate must be > 0, got {rate}")
    if duration <= 0:
        raise InvalidParameterError(f"duration must be > 0, got {duration}")
    if not queries:
        raise InvalidParameterError("queries must be non-empty")

    report = LoadReport(mode="open", concurrency=int(rate))
    lock = threading.Lock()
    interval = 1.0 / rate
    outstanding = []

    start = time.monotonic()
    sent = 0
    while True:
        now = time.monotonic()
        if now - start >= duration:
            break
        due = start + sent * interval
        if now < due:
            time.sleep(min(due - now, 0.01))
            continue
        query = queries[sent % len(queries)]
        report.requests_sent += 1
        sent += 1
        try:
            outstanding.append(service.submit_knn(
                query, k, deadline=deadline, search_budget=search_budget))
        except ServiceOverloadError:
            _record(report, lock, "rejected")

    for future in outstanding:
        try:
            # Response latency is stamped at serve time (queue wait +
            # execution), not at this late collection point.
            response = future.result()
            _record(report, lock, "ok", response.latency)
        except DeadlineExceededError:
            _record(report, lock, "deadline")
        except Exception:  # noqa: BLE001 — load test keeps going
            _record(report, lock, "error")
    report.duration = time.monotonic() - start
    return report


def run_http_open_loop(host: str, port: int,
                       queries: Sequence[Any],
                       k: int = 10,
                       *,
                       rate: float,
                       duration: float,
                       concurrency: int = 8,
                       deadline: float | None = None,
                       search_budget: int | None = None) -> LoadReport:
    """Open-loop load against a :class:`~repro.serving.net.NetFrontend`.

    Same arrival model as :func:`run_open_loop` — requests are offered
    at ``rate``/second regardless of completions — but over HTTP:
    ``concurrency`` client threads drain a paced ticket schedule, each
    holding its own keep-alive-free connection via
    :func:`~repro.serving.net.request_json`.  503 counts as rejected,
    504 as deadline-exceeded, matching the in-process report so the two
    serving paths are directly comparable in one benchmark table.
    """
    from repro.serving.net import request_json

    if rate <= 0:
        raise InvalidParameterError(f"rate must be > 0, got {rate}")
    if duration <= 0:
        raise InvalidParameterError(f"duration must be > 0, got {duration}")
    if concurrency < 1:
        raise InvalidParameterError(
            f"concurrency must be >= 1, got {concurrency}")
    if not queries:
        raise InvalidParameterError("queries must be non-empty")

    payloads = [np.asarray(getattr(q, "values", q),
                           dtype=np.float64).tolist() for q in queries]
    report = LoadReport(mode="http-open", concurrency=int(rate))
    lock = threading.Lock()
    interval = 1.0 / rate
    start = time.monotonic()
    stop_at = start + duration
    counter = {"next": 0}

    def take_ticket() -> int | None:
        """Next due arrival ordinal (paced), or None when time is up."""
        while True:
            now = time.monotonic()
            if now >= stop_at:
                return None
            with lock:
                ticket = counter["next"]
                due = start + ticket * interval
                if now >= due:
                    counter["next"] = ticket + 1
                    report.requests_sent += 1
                    return ticket
            time.sleep(min(due - now, 0.01))

    def client() -> None:
        while True:
            ticket = take_ticket()
            if ticket is None:
                return
            body = {"query": payloads[ticket % len(payloads)], "k": k}
            if deadline is not None:
                body["deadline"] = deadline
            if search_budget is not None:
                body["search_budget"] = search_budget
            t0 = time.monotonic()
            try:
                status, _ = request_json(
                    host, port, "POST", "/knn", body,
                    timeout=(deadline or 30.0) + 10.0)
            except Exception:  # noqa: BLE001 — load test keeps going
                _record(report, lock, "error")
                continue
            if status == 200:
                _record(report, lock, "ok", time.monotonic() - t0)
            elif status == 503:
                _record(report, lock, "rejected")
            elif status == 504:
                _record(report, lock, "deadline")
            else:
                _record(report, lock, "error")

    clients = [threading.Thread(target=client, name=f"http-loadgen-{i}")
               for i in range(concurrency)]
    for thread in clients:
        thread.start()
    for thread in clients:
        thread.join()
    report.duration = time.monotonic() - start
    return report


__all__ = ["LoadReport", "run_closed_loop", "run_http_open_loop",
           "run_open_loop"]
