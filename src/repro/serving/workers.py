"""Shard workers as long-lived **processes** over the mmap columnar store.

PR 4's :class:`~repro.serving.service.QueryService` fans shard work out
on *threads*, so every shard shares one GIL and four shards deliver
well under 4x.  This module promotes shards to worker processes:

- Each worker is spawned with a list of shard assignments and does its
  own ``open_store(..., mmap=True)`` — the columnar ``.strg/`` layout
  lets every process map the *same* snapshot read-only with zero
  copies, so N workers cost one page cache, not N heaps.
- Requests and responses crossing the pipe are small: a query
  trajectory array one way, ``(distance, shard, row, clip_ref)``
  tuples the other.  No OG graphs are ever pickled per request.
- The :class:`WorkerPool` coordinator reuses the lifecycle patterns of
  :class:`~repro.parallel.DistanceExecutor` / ``ordered_chunk_map``:
  spawn up front, health-check heartbeats, restart-on-crash, drain on
  shutdown.

Exactness.  Each worker serves its assigned shards through a
worker-local :class:`~repro.serving.sharding.ShardedIndex` (one shared
pruning bound, ``eval_batch``-sized kernel flushes), and the
coordinator merges the per-worker exact top-k lists by ``(distance,
shard, row)``.  That reproduces the in-process scatter-gather
**bit-identically**: distances come from the same batched kernels
(chunk-invariant), and shards are opened in ascending ordinal order so
every tie-break — worker-local og_id and the coordinator merge — is
the same ``(shard, row)`` order a freshly loaded snapshot mints og_ids
in.  The budgeted approximate path runs per shard with the
coordinator-computed proportional budget split, mirroring
``ShardedIndex._approx_scatter`` exactly.

Failover.  ``replicas=R`` spawns R processes per worker *slot*; a
request round-robins across a slot's live replicas (spare capacity,
not just standby).  When one replica dies, the others keep the slot's
shards served with **no** degradation; only when every replica of a
slot is gone do that slot's shards fall back to the degraded-read
semantics of ``serving.shard`` — partial results flagged
``degraded=True`` with the missing shards listed — until the
supervisor respawns a worker.

Rebalancing.  Every response carries per-shard busy time, accumulated
into per-shard query counters (the same signal affine placement
concentrates: hot locality islands burn more kernel time).  When the
pool multiplexes more shards than worker slots,
:meth:`WorkerPool.rebalance` migrates the coldest shard off the
hottest slot onto the coldest slot until the busy-time ratio drops
under ``rebalance_ratio`` — workers re-open the moved shard store
(an mmap, so the move ships no data).
"""

from __future__ import annotations

import hashlib
import math
import multiprocessing as mp
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.errors import (
    IndexStateError,
    InvalidParameterError,
    ShardUnavailableError,
    StorageError,
)
from repro.observability import OBS

#: Sub-store directory of shard ``i`` inside a sharded columnar store.
SHARD_DIR = "shard-{ordinal}"


# ---------------------------------------------------------------------------
# worker process
# ---------------------------------------------------------------------------

def _open_shard(store_path: str, rel: str, mmap: bool):
    """Load one shard index (+ its og_id->row map) inside a worker."""
    from repro.storage.columnar import ColumnarStore

    path = store_path if not rel else os.path.join(store_path, rel)
    store = ColumnarStore(path, normalize=False)
    index = store.load_index(mmap=mmap)
    return index, store.row_ordinals()


class _ShardSet:
    """Worker-local view of the assigned shards.

    Exact requests that cover every (non-empty) open shard run through
    one worker-local :class:`~repro.serving.sharding.ShardedIndex`
    assembled over exactly those shards.  Its scatter-gather shares one
    global pruning bound and flushes candidates through
    ``eval_batch``-sized kernel calls — an order of magnitude faster
    than looping ``STRGIndex.knn`` per shard, whose leaf scan evaluates
    candidates one kernel call at a time.

    Exactness is preserved: shards are (re)opened in ascending ordinal
    order, so worker-local og_ids are minted in ``(ordinal, row)``
    order and the combined index's ``(distance, og_id)`` tie-break is
    the restriction of the coordinator's global ``(distance, shard,
    row)`` merge order — the worker's top-k therefore contains every
    globally-ranked hit from its shards.

    Budgeted (``search_budget``) requests keep the per-shard loop: the
    coordinator computes the global proportional budget split, and a
    worker-local re-split over a subset would diverge from it.  The
    same loop also serves requests for a strict shard subset (seen
    transiently while a rebalance moves a shard between slots).
    """

    def __init__(self, store_path: str, assignment: list[tuple[int, str]],
                 mmap: bool):
        self.store_path = store_path
        self.mmap = mmap
        self.rels: dict[int, str] = {o: rel for o, rel in assignment}
        self.shards: dict[int, tuple[Any, dict[int, int]]] = {}
        self._combined: Any = None
        self._fast: frozenset[int] = frozenset()
        self._loc: dict[int, tuple[int, int]] = {}
        self._serving: dict[str, Any] | None = None
        self._pivots: list[np.ndarray] | None = None
        self.reload()

    # -- lifecycle ------------------------------------------------------

    def reload(self) -> None:
        """(Re)open every assigned shard, ascending ordinal order."""
        self._serving = None
        self._pivots = None
        self._read_root()
        self.shards = {
            o: _open_shard(self.store_path, self.rels[o], self.mmap)
            for o in sorted(self.rels)
        }
        self._refresh()

    def open(self, ordinal: int, rel: str) -> None:
        self.rels[ordinal] = rel
        # Full reopen keeps worker-local og_ids minted in (ordinal, row)
        # order — the tie-break invariant the combined index relies on.
        self.shards = {
            o: _open_shard(self.store_path, self.rels[o], self.mmap)
            for o in sorted(self.rels)
        }
        self._refresh()

    def close(self, ordinal: int) -> None:
        self.shards.pop(ordinal, None)
        self.rels.pop(ordinal, None)
        # Dropping a shard preserves the relative mint order of the rest.
        self._refresh()

    def sizes(self) -> dict[int, int]:
        return {o: len(index) for o, (index, _) in self.shards.items()}

    # -- combined-index assembly ----------------------------------------

    def _read_root(self) -> None:
        """Pick up serving config + shard pivots from the root manifest."""
        from repro.storage.columnar import ColumnarStore, _unpack_ragged

        manifest = ColumnarStore(self.store_path, normalize=False).manifest()
        if manifest.get("kind") != "sharded":
            return
        self._serving = dict(manifest["serving_config"])
        if not manifest.get("has_pivots"):
            return
        try:
            values = np.load(
                os.path.join(self.store_path, "pivot_values.npy"),
                allow_pickle=False)
            offsets = np.load(
                os.path.join(self.store_path, "pivot_offsets.npy"),
                allow_pickle=False)
            self._pivots = [np.asarray(p, dtype=np.float64)
                            for p in _unpack_ragged(values, offsets)]
        except (OSError, ValueError, EOFError):
            self._pivots = None  # pivots only prune; never required

    def _refresh(self) -> None:
        ordered = sorted(self.shards)
        self._loc = {
            og_id: (o, row)
            for o in ordered
            for og_id, row in self.shards[o][1].items()
        }
        live = [o for o in ordered if len(self.shards[o][0]) > 0]
        self._fast = frozenset(live)
        self._combined = self._assemble(live) if live else None

    def _assemble(self, ordinals: list[int]) -> Any:
        from repro.serving.sharding import ShardedIndex, ShardedIndexConfig

        indexes = [self.shards[o][0] for o in ordinals]
        params = dict(self._serving or {})
        params["num_shards"] = len(indexes)
        config = ShardedIndexConfig(index=indexes[0].config, **params)
        combined = ShardedIndex(config)
        combined.shards = indexes
        combined.metric_distance = indexes[0].metric_distance
        combined.cluster_distance = indexes[0].cluster_distance
        if self._pivots is not None:
            # The FULL corpus pivot fleet, not just the assigned shards'
            # pivots: pivots only serve triangle pruning, and more
            # reference points mean tighter bounds — a subset worker
            # prunes as hard as the whole in-process index would.
            combined.pivots = list(self._pivots)
        combined.refresh_bounds()
        combined.frozen = True
        return combined

    # -- search ---------------------------------------------------------

    def search(self, request: dict[str, Any]) -> dict[str, Any]:
        """Run one knn/range request; hits as ``(d, shard, row, ref)``."""
        op = request["op"]
        query = request["query"]
        arg = request["arg"]
        shares = request.get("shares")
        requested = list(request["shards"])
        missing = [o for o in requested if o not in self.shards]
        if missing:
            raise ShardUnavailableError(
                f"shard(s) {missing} are not assigned to this worker",
                details={"shards": missing, "assigned": sorted(self.shards)})
        live = [o for o in requested if len(self.shards[o][0]) > 0]
        if (shares is None and self._combined is not None
                and frozenset(live) == self._fast):
            return self._search_combined(op, query, arg, requested, live,
                                         request.get("bound"))
        return self._search_per_shard(op, query, arg, shares, requested)

    def _search_combined(self, op: str, query: Any, arg: Any,
                         requested: list[int], live: list[int],
                         bound: float | None) -> dict[str, Any]:
        started = time.perf_counter()
        if op == "knn":
            found = self._combined.knn(query, arg, prune_bound=bound)
        else:
            found = self._combined.range_query(query, arg)
        elapsed = time.perf_counter() - started
        # The shared-bound search is one pass, so per-shard busy time is
        # attributed proportionally to shard size — slot totals stay
        # real measured time, which is what rebalancing keys on.
        total = sum(len(self.shards[o][0]) for o in live)
        busy = {o: 0.0 for o in requested}
        for o in live:
            busy[o] = elapsed * len(self.shards[o][0]) / total
        loc = self._loc
        hits = [(float(d), *loc[og.og_id], ref) for d, og, ref in found]
        return {"hits": hits, "busy": busy}

    def _search_per_shard(self, op: str, query: Any, arg: Any,
                          shares: dict[int, int] | None,
                          requested: list[int]) -> dict[str, Any]:
        hits: list[tuple[float, int, int, Any]] = []
        busy: dict[int, float] = {}
        for ordinal in requested:
            index, row_of = self.shards[ordinal]
            if len(index) == 0:
                busy[ordinal] = 0.0
                continue
            started = time.perf_counter()
            if op == "knn":
                share = None if shares is None else shares.get(ordinal)
                if share is None:
                    found = index.knn(query, arg)
                else:
                    found = index.knn(query, arg, search_budget=share)
            else:
                found = index.range_query(query, arg)
            busy[ordinal] = time.perf_counter() - started
            hits.extend(
                (float(d), ordinal, row_of[og.og_id], ref)
                for d, og, ref in found
            )
        return {"hits": hits, "busy": busy}


def _worker_main(store_path: str, assignment: list[tuple[int, str]],
                 conn, mmap: bool, name: str) -> None:
    """Process entry point: serve search requests over ``conn`` forever.

    ``assignment`` is ``[(shard_ordinal, relative_store_path), ...]``;
    an empty relative path means the store root itself (monolithic
    snapshot served as shard 0).  The worker opens every assigned shard
    read-only (memory-mapped when the format supports it), announces
    readiness with the shard sizes, then answers one request at a time.
    A lost pipe (coordinator gone) exits the process.
    """
    try:
        shard_set = _ShardSet(store_path, assignment, mmap)
        conn.send(("ready", {
            "pid": os.getpid(), "name": name, "sizes": shard_set.sizes(),
        }))
    except BaseException as exc:  # noqa: BLE001 — relayed to coordinator
        try:
            conn.send(("error", exc))
        except (OSError, ValueError):
            pass
        return
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            return
        op = message[0]
        if op == "stop":
            return
        try:
            if op == "ping":
                conn.send(("ok", {
                    "pid": os.getpid(), "sizes": shard_set.sizes(),
                }))
            elif op == "reload":
                shard_set.reload()
                conn.send(("ok", {"sizes": shard_set.sizes()}))
            elif op == "open":
                _, ordinal, rel = message
                shard_set.open(ordinal, rel)
                conn.send(("ok", {"shard": ordinal,
                                  "size": shard_set.sizes()[ordinal]}))
            elif op == "close":
                _, ordinal = message
                shard_set.close(ordinal)
                conn.send(("ok", {"shard": ordinal}))
            elif op == "search":
                conn.send(("ok", shard_set.search(message[1])))
            else:
                raise InvalidParameterError(f"unknown worker op {op!r}")
        except BaseException as exc:  # noqa: BLE001 — relayed to coordinator
            try:
                conn.send(("error", exc))
            except (OSError, ValueError, TypeError):
                conn.send(("error", StorageError(
                    f"worker {name}: {type(exc).__name__}: {exc}")))


# ---------------------------------------------------------------------------
# coordinator
# ---------------------------------------------------------------------------

@dataclass
class WorkerPoolConfig:
    """Sizing and supervision policy for a :class:`WorkerPool`.

    ``workers``             worker *slots* (processes per replica set).
                            ``None`` = one per shard; more than the
                            shard count is clamped (an idle worker
                            serves nothing).
    ``replicas``            processes per slot.  ``1`` = no failover
                            capacity; ``2`` keeps a slot's shards
                            served through a single crash.
    ``mmap``                memory-map shard columns read-only (always
                            possible on columnar stores).
    ``start_method``        multiprocessing start method; ``"spawn"``
                            keeps workers clean of coordinator threads.
    ``heartbeat_interval``  seconds between supervisor health sweeps.
    ``start_timeout``       seconds to wait for a worker to load its
                            shards and report ready.
    ``request_timeout``     seconds a scatter waits on one worker
                            before declaring it dead.
    ``restart``             respawn crashed workers from the
                            supervisor sweep.
    ``rebalance_ratio``     busy-time ratio (hottest/coldest slot)
                            above which :meth:`WorkerPool.rebalance`
                            migrates shards.
    """

    workers: int | None = None
    replicas: int = 1
    mmap: bool = True
    start_method: str = "spawn"
    heartbeat_interval: float = 1.0
    start_timeout: float = 120.0
    request_timeout: float = 120.0
    restart: bool = True
    rebalance_ratio: float = 2.0

    def __post_init__(self) -> None:
        if self.workers is not None and self.workers < 1:
            raise InvalidParameterError(
                f"workers must be >= 1, got {self.workers}")
        if self.replicas < 1:
            raise InvalidParameterError(
                f"replicas must be >= 1, got {self.replicas}")
        if self.start_method not in ("spawn", "fork", "forkserver"):
            raise InvalidParameterError(
                f"unknown start_method {self.start_method!r}")
        for name in ("heartbeat_interval", "start_timeout",
                     "request_timeout"):
            if getattr(self, name) <= 0:
                raise InvalidParameterError(
                    f"{name} must be > 0, got {getattr(self, name)}")
        if self.rebalance_ratio < 1.0:
            raise InvalidParameterError(
                f"rebalance_ratio must be >= 1.0, got "
                f"{self.rebalance_ratio}")


@dataclass
class RemoteHit:
    """One k-NN/range hit served by a worker process.

    ``shard``/``row`` name the record by its durable identity — the
    shard ordinal and the global row ordinal inside that shard's store
    — because og_ids are minted per process and never cross the wire.
    """

    distance: float
    shard: int
    row: int
    clip_ref: Any = None

    def as_dict(self) -> dict[str, Any]:
        return {"distance": self.distance, "shard": self.shard,
                "row": self.row, "clip_ref": self.clip_ref}


@dataclass
class RemoteSearchResult:
    """Scatter outcome across worker processes (+ degradation)."""

    hits: list[RemoteHit]
    degraded: bool = False
    failed_shards: list[int] = field(default_factory=list)


class _WorkerHandle:
    """One live worker process: pipe, lock, and supervision state."""

    __slots__ = ("slot", "replica", "name", "process", "conn", "lock",
                 "alive", "poisoned", "restarts", "last_seen")

    def __init__(self, slot: int, replica: int):
        self.slot = slot
        self.replica = replica
        self.name = f"w{slot}.{replica}"
        self.process = None
        self.conn = None
        self.lock = threading.Lock()
        self.alive = False
        #: A request timed out on this handle's pipe: the worker's
        #: eventual reply would be mis-read as the answer to the *next*
        #: request, so the handle must not be reused until respawned.
        self.poisoned = False
        self.restarts = 0
        self.last_seen = 0.0


class WorkerPool:
    """Shard-serving process fleet over one columnar snapshot.

    ``path`` must hold a columnar store (``.strg/``) — the format whose
    raw ``.npy`` segments many processes can memory-map read-only.  NPZ
    archives cannot be served this way; convert first (``repro
    convert``).  A sharded store yields one logical shard per
    ``shard-i`` sub-store; a monolithic store is served as one shard.

    Use as a context manager, or call :meth:`start` / :meth:`shutdown`.
    All search methods are thread-safe and may be called concurrently
    (each request fans out on an internal thread pool and pipelines
    across worker processes).
    """

    def __init__(self, path: str | os.PathLike,
                 config: WorkerPoolConfig | None = None):
        from repro.storage.columnar import ColumnarStore
        from repro.storage.store import open_store

        self.config = config or WorkerPoolConfig()
        store = open_store(path)
        if not isinstance(store, ColumnarStore):
            raise StorageError(
                f"{store.path} is not a columnar store: worker processes "
                "memory-map raw .npy shard columns. Migrate with `repro "
                f"convert {store.path}` first."
            )
        if not store.exists():
            raise StorageError(
                f"no columnar snapshot at {store.path} (write one with "
                "db.save(format='columnar') or `repro convert`)")
        self.store = store
        manifest = store.manifest()
        if manifest["kind"] == "sharded":
            self._shard_rels = {
                ordinal: name
                for ordinal, name in enumerate(manifest["shards"])
            }
        else:
            self._shard_rels = {0: ""}
        self.num_shards = len(self._shard_rels)
        slots = self.config.workers or self.num_shards
        self.num_slots = min(slots, self.num_shards)
        #: ``assignment[slot]`` — shard ordinals this slot serves.
        self.assignment: list[list[int]] = [[] for _ in range(self.num_slots)]
        for ordinal in sorted(self._shard_rels):
            self.assignment[ordinal % self.num_slots].append(ordinal)
        self._handles: list[list[_WorkerHandle]] = [
            [_WorkerHandle(slot, replica)
             for replica in range(self.config.replicas)]
            for slot in range(self.num_slots)
        ]
        self._ctx = mp.get_context(self.config.start_method)
        self._scatter_pool: ThreadPoolExecutor | None = None
        self._supervisor: threading.Thread | None = None
        self._stop = threading.Event()
        self._started = False
        self._rr = 0
        self._probe_rr = 0
        self._state_lock = threading.Lock()
        self.shard_sizes: dict[int, int] = {}
        self._shard_stats: dict[int, dict[str, float]] = {
            ordinal: {"queries": 0.0, "busy_seconds": 0.0}
            for ordinal in self._shard_rels
        }
        self.rebalances = 0
        self.snapshot_version = self._manifest_digest()

    # -- lifecycle ------------------------------------------------------------

    def _manifest_digest(self) -> str:
        with open(os.path.join(self.store.path, "manifest.json"),
                  "rb") as fh:
            return hashlib.sha256(fh.read()).hexdigest()[:12]

    def start(self) -> "WorkerPool":
        """Spawn every worker, wait for readiness, start the supervisor."""
        if self._started:
            return self
        with OBS.span("net.pool_start", slots=self.num_slots,
                      replicas=self.config.replicas):
            for slot in range(self.num_slots):
                for handle in self._handles[slot]:
                    self._spawn(handle)
            deadline = time.monotonic() + self.config.start_timeout
            for row in self._handles:
                for handle in row:
                    self._await_ready(handle, deadline)
        self._started = True
        self._scatter_pool = ThreadPoolExecutor(
            max_workers=max(2, self.num_slots * self.config.replicas),
            thread_name_prefix="net-scatter")
        self._supervisor = threading.Thread(
            target=self._supervise, name="net-supervisor", daemon=True)
        self._supervisor.start()
        return self

    def _spawn(self, handle: _WorkerHandle) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        assignment = [(o, self._shard_rels[o])
                      for o in self.assignment[handle.slot]]
        process = self._ctx.Process(
            target=_worker_main,
            args=(self.store.path, assignment, child_conn,
                  self.config.mmap and self.store.supports_mmap,
                  handle.name),
            name=f"strg-{handle.name}", daemon=True)
        process.start()
        child_conn.close()
        handle.process = process
        handle.conn = parent_conn
        handle.alive = False
        handle.poisoned = False
        OBS.count("net.workers_spawned")

    def _await_ready(self, handle: _WorkerHandle, deadline: float) -> None:
        timeout = max(0.0, deadline - time.monotonic())
        if not handle.conn.poll(timeout):
            raise StorageError(
                f"worker {handle.name} did not become ready within "
                f"{self.config.start_timeout:.0f}s")
        kind, payload = handle.conn.recv()
        if kind == "error":
            raise payload
        handle.alive = True
        handle.last_seen = time.monotonic()
        with self._state_lock:
            for ordinal, size in payload["sizes"].items():
                self.shard_sizes[int(ordinal)] = int(size)

    def shutdown(self, wait: bool = True) -> None:
        """Stop the supervisor, then every worker process.  Idempotent."""
        self._stop.set()
        if self._supervisor is not None and wait:
            self._supervisor.join(timeout=self.config.heartbeat_interval * 4)
        if self._scatter_pool is not None:
            self._scatter_pool.shutdown(wait=False)
            self._scatter_pool = None
        for row in self._handles:
            for handle in row:
                self._stop_worker(handle, wait)
        self._started = False

    def _stop_worker(self, handle: _WorkerHandle, wait: bool) -> None:
        process, conn = handle.process, handle.conn
        handle.alive = False
        if conn is not None:
            if handle.lock.acquire(blocking=False):
                try:
                    conn.send(("stop",))
                except (OSError, ValueError, BrokenPipeError):
                    pass
                finally:
                    handle.lock.release()
            try:
                conn.close()
            except OSError:  # pragma: no cover - already gone
                pass
        if process is not None:
            process.join(timeout=2.0 if wait else 0.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=2.0)

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- supervision ----------------------------------------------------------

    def _supervise(self) -> None:
        """Heartbeat sweep: ping idle workers, respawn dead ones."""
        while not self._stop.wait(self.config.heartbeat_interval):
            for row in self._handles:
                for handle in row:
                    if self._stop.is_set():
                        return
                    self._check_worker(handle)

    def _check_worker(self, handle: _WorkerHandle) -> None:
        process = handle.process
        if handle.poisoned:
            handle.alive = False
        elif process is not None and process.is_alive():
            # A busy worker (lock held by a scatter) is alive by
            # definition; only ping the idle ones.
            if handle.lock.acquire(blocking=False):
                try:
                    handle.conn.send(("ping",))
                    if handle.conn.poll(self.config.request_timeout):
                        kind, payload = handle.conn.recv()
                        if kind == "ok":
                            handle.last_seen = time.monotonic()
                            return
                        handle.alive = False
                    else:
                        # An unanswered ping leaves the reply queued —
                        # same desync hazard as a search timeout.
                        self._poison(handle)
                except (OSError, EOFError, BrokenPipeError, ValueError):
                    handle.alive = False
                finally:
                    handle.lock.release()
            else:
                return
        else:
            handle.alive = False
        if not handle.alive and self.config.restart:
            self._respawn(handle)

    def _poison(self, handle: _WorkerHandle) -> None:
        """Retire a handle whose request timed out.  Call with the lock.

        After a timeout the worker's eventual reply is still queued on
        the pipe; reusing the handle would hand that stale payload to
        the *next* request (or to the supervisor ping), silently
        desynchronizing the protocol.  Kill the process and drop the
        pipe instead — the supervisor respawns the slot on its next
        sweep when ``restart=True``.
        """
        handle.alive = False
        handle.poisoned = True
        if handle.process is not None:
            handle.process.terminate()
            handle.process.join(timeout=1.0)
        if handle.conn is not None:
            try:
                handle.conn.close()
            except OSError:  # pragma: no cover - already gone
                pass
            handle.conn = None
        OBS.count("net.workers_poisoned")

    def _respawn(self, handle: _WorkerHandle) -> None:
        with handle.lock:
            process = handle.process
            if process is not None:
                if process.is_alive():  # pragma: no cover - hung worker
                    process.terminate()
                process.join(timeout=2.0)
            if handle.conn is not None:
                try:
                    handle.conn.close()
                except OSError:  # pragma: no cover
                    pass
            self._spawn(handle)
            try:
                self._await_ready(
                    handle, time.monotonic() + self.config.start_timeout)
            except (StorageError, Exception):  # noqa: BLE001
                handle.alive = False
                OBS.count("net.worker_restart_failures")
                return
            handle.restarts += 1
            OBS.count("net.workers_restarted")

    def kill_worker(self, slot: int, replica: int = 0) -> None:
        """Hard-kill one worker process (failover drills and tests)."""
        handle = self._handles[slot][replica]
        if handle.process is not None:
            handle.process.kill()
            handle.process.join(timeout=5.0)

    def await_healthy(self, timeout: float = 60.0) -> bool:
        """Block until every worker is alive again (post-drill barrier).

        "Alive" means both the coordinator's flag *and* the OS process —
        a just-killed worker whose death the supervisor has not noticed
        yet does not count.
        """
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if all(handle.alive
                   and handle.process is not None
                   and handle.process.is_alive()
                   for row in self._handles for handle in row):
                return True
            time.sleep(0.05)
        return False

    # -- request fan-out ------------------------------------------------------

    def _live_candidates(self, slot: int) -> list[_WorkerHandle]:
        """A slot's replicas, live ones first, rotated for load spread."""
        row = self._handles[slot]
        offset = self._rr
        self._rr = (self._rr + 1) % max(1, len(row))
        rotated = row[offset % len(row):] + row[:offset % len(row)]
        return ([h for h in rotated if h.alive]
                + [h for h in rotated if not h.alive])

    def _exchange(self, slot: int, request: dict[str, Any]
                  ) -> dict[str, Any]:
        """Send one request to a slot, failing over across replicas."""
        last_error: BaseException | None = None
        for handle in self._live_candidates(slot):
            with handle.lock:
                if (handle.poisoned or handle.process is None
                        or not handle.process.is_alive()):
                    handle.alive = False
                    continue
                try:
                    handle.conn.send(("search", request))
                    if not handle.conn.poll(self.config.request_timeout):
                        # The reply will eventually land on this pipe;
                        # retire the handle so nothing mis-reads it.
                        self._poison(handle)
                        raise TimeoutError(
                            f"worker {handle.name} did not answer within "
                            f"{self.config.request_timeout:.0f}s")
                    kind, payload = handle.conn.recv()
                except (OSError, EOFError, BrokenPipeError,
                        TimeoutError) as exc:
                    handle.alive = False
                    last_error = exc
                    OBS.count("net.worker_failures")
                    continue
            if kind == "error":
                if isinstance(payload, ShardUnavailableError):
                    # This replica doesn't (currently) hold a requested
                    # shard — e.g. it is mid-rebalance.  Another replica
                    # of the slot may still serve it.
                    last_error = payload
                    continue
                raise payload
            handle.last_seen = time.monotonic()
            return payload
        with self._state_lock:
            shards = list(self.assignment[slot])
        raise ShardUnavailableError(
            f"no live worker for slot {slot} (shards {shards})",
            details={"slot": slot, "shards": shards,
                     "cause": type(last_error).__name__
                     if last_error else "no_replicas"})

    def _probe_bound(self, query: np.ndarray, k: int) -> float | None:
        """Cheap global upper bound on the kth distance, for the fan-out.

        One rotating slot answers a minimal budgeted (sketch-tier)
        request first; the kth smallest of its hits — real corpus
        distances — bounds the true global kth from above, and every
        worker in the fan-out then prunes against it
        (``ShardedIndex.knn(prune_bound=...)``).  This restores the
        one-shared-bound economics of the in-process scatter across
        process boundaries: without it, N workers each search with only
        their local bound and together do several times the kernel work
        of one combined search.  Purely an optimization — a failed
        probe (dead slot, sketch tier error) falls back to an unbounded
        fan-out, and a valid bound never changes results.
        """
        with self._state_lock:
            assignment = [list(shards) for shards in self.assignment]
            sizes = dict(self.shard_sizes)
        slots = [
            s for s in range(self.num_slots)
            if any(sizes.get(o, 0) > 0 for o in assignment[s])
        ]
        if len(slots) < 2:
            return None  # a single slot already shares its bound internally
        self._probe_rr += 1
        slot = slots[self._probe_rr % len(slots)]
        shards = [o for o in assignment[slot] if sizes.get(o, 0) > 0]
        request = {"op": "knn", "query": query, "arg": k,
                   "shards": shards, "shares": {o: k for o in shards}}
        try:
            payload = self._exchange(slot, request)
        except Exception:  # noqa: BLE001 — probe is best-effort
            OBS.count("net.probe_failures")
            return None
        distances = sorted(h[0] for h in payload["hits"])
        if len(distances) < k:
            return None
        return float(distances[k - 1])

    def _scatter(self, op: str, query: np.ndarray, arg: Any,
                 shares: dict[int, int] | None, degrade: bool,
                 bound: float | None = None) -> RemoteSearchResult:
        if self._scatter_pool is None:
            raise IndexStateError(
                "worker pool is not started (call start() first)")
        with self._state_lock:
            assignment = [list(shards) for shards in self.assignment]
            sizes = dict(self.shard_sizes)
        requests: list[tuple[int, dict[str, Any]]] = []
        for slot in range(self.num_slots):
            shards = [o for o in assignment[slot] if sizes.get(o, 0) > 0]
            if not shards:
                continue
            requests.append((slot, {
                "op": op, "query": query, "arg": arg, "shards": shards,
                "shares": shares, "bound": bound,
            }))
        futures = [
            (slot, request,
             self._scatter_pool.submit(self._exchange, slot, request))
            for slot, request in requests
        ]
        hits: list[tuple[float, int, int, Any]] = []
        failed: list[int] = []
        retry: list[int] = []

        def absorb(payload: dict[str, Any]) -> None:
            hits.extend(payload["hits"])
            with self._state_lock:
                for ordinal, busy in payload["busy"].items():
                    stats = self._shard_stats[int(ordinal)]
                    stats["queries"] += 1
                    stats["busy_seconds"] += float(busy)

        for slot, request, future in futures:
            try:
                payload = future.result()
            except ShardUnavailableError:
                retry.extend(request["shards"])
                continue
            absorb(payload)
        # The assignment snapshot may go stale mid-flight (a rebalance
        # moved a shard off the slot we asked): re-resolve each missed
        # shard's current owner and retry.  A bounded number of rounds,
        # because a multi-move rebalance pass can invalidate the first
        # retry's resolution too.
        last_error: ShardUnavailableError | None = None
        for _ in range(4):
            if not retry:
                break
            with self._state_lock:
                owner = {o: slot
                         for slot, shards in enumerate(self.assignment)
                         for o in shards}
            regrouped: dict[int, list[int]] = {}
            for shard in retry:
                regrouped.setdefault(owner.get(shard, -1), []).append(shard)
            retry = []
            for slot, shards in sorted(regrouped.items()):
                if slot < 0:  # pragma: no cover - shard left the pool
                    failed.extend(shards)
                    continue
                request = {"op": op, "query": query, "arg": arg,
                           "shards": shards, "shares": shares,
                           "bound": bound}
                try:
                    payload = self._exchange(slot, request)
                except ShardUnavailableError as exc:
                    last_error = exc
                    retry.extend(shards)
                    continue
                absorb(payload)
        if retry:
            if not degrade and last_error is not None:
                raise last_error
            OBS.count("net.shards_failed", len(retry))
            failed.extend(retry)
        hits.sort(key=lambda h: (h[0], h[1], h[2]))
        return RemoteSearchResult(
            [RemoteHit(*h) for h in hits], bool(failed), sorted(failed))

    # -- search ---------------------------------------------------------------

    def __len__(self) -> int:
        return sum(self.shard_sizes.values())

    def knn(self, query: Any, k: int, *,
            search_budget: int | None = None,
            degrade: bool = True) -> RemoteSearchResult:
        """Exact (or budgeted-approximate) k-NN across all worker shards.

        Bit-identical to the in-process ``ShardedIndex`` over the same
        snapshot: same distances (chunk-invariant kernels), same order
        (``(distance, shard, row)`` merge = its ``(distance, og_id)``
        tie-break).  ``degrade=True`` (default) serves partial results
        when a slot has no live worker; ``degrade=False`` raises
        :class:`~repro.errors.ShardUnavailableError` instead.
        """
        from repro.distance.base import as_series

        if k < 0:
            raise InvalidParameterError(f"k must be >= 0, got {k}")
        if k == 0:
            return RemoteSearchResult([])
        if search_budget is not None and search_budget < 1:
            raise InvalidParameterError(
                f"search_budget must be >= 1, got {search_budget}")
        total = len(self)
        if total == 0:
            raise IndexStateError("cannot search an empty worker pool")
        shares = None
        if search_budget is not None:
            # Mirror ShardedIndex._approx_scatter: proportional to shard
            # size, floored at k so every shard can fill a top-k list.
            shares = {
                ordinal: max(k, math.ceil(search_budget * size / total))
                for ordinal, size in self.shard_sizes.items() if size > 0
            }
        series = as_series(query)
        with OBS.span("net.knn", k=k, budget=search_budget) as sp:
            OBS.count("net.knn_queries")
            bound = self._probe_bound(series, k) if shares is None else None
            result = self._scatter("knn", series, k, shares, degrade,
                                   bound=bound)
            result.hits = result.hits[:k]
            sp.set(hits=len(result.hits), degraded=result.degraded)
            return result

    def range_query(self, query: Any, radius: float, *,
                    degrade: bool = True) -> RemoteSearchResult:
        """All OGs within ``radius``, merged across worker shards."""
        from repro.distance.base import as_series

        if radius < 0:
            raise InvalidParameterError(
                f"radius must be >= 0, got {radius}")
        if len(self) == 0:
            raise IndexStateError("cannot search an empty worker pool")
        with OBS.span("net.range_query", radius=radius) as sp:
            OBS.count("net.range_queries")
            result = self._scatter("range", as_series(query), radius,
                                   None, degrade)
            sp.set(hits=len(result.hits), degraded=result.degraded)
            return result

    # -- maintenance ----------------------------------------------------------

    def reload(self) -> str:
        """Re-open the snapshot in every worker (post-ingest refresh).

        Returns the new snapshot version (manifest digest).  The
        manifest is re-read first, and a reload that changes the
        *shard set* (count or layout) is rejected with
        :class:`~repro.errors.StorageError` — shard-to-slot assignment
        is fixed at pool construction, so a new layout needs a pool
        restart, not a hot swap.

        Workers reload sequentially; requests keep being served by the
        replicas not currently reloading.  The new version is published
        to response stamping only *after* every live worker has
        acknowledged — responses emitted during the reload window carry
        the old version, so a client never sees the new version stamped
        on answers that may still come from the old snapshot.  A worker
        that fails to acknowledge is retired; its respawn opens the new
        snapshot.
        """
        with OBS.span("net.pool_reload"):
            manifest = self.store.manifest()
            if manifest["kind"] == "sharded":
                new_rels = {ordinal: name
                            for ordinal, name in enumerate(manifest["shards"])}
            else:
                new_rels = {0: ""}
            if new_rels != self._shard_rels:
                raise StorageError(
                    f"snapshot reload changed the shard set "
                    f"({len(self._shard_rels)} shard(s) -> "
                    f"{len(new_rels)}): restart the worker pool to "
                    "serve the new layout")
            version = self._manifest_digest()
            for row in self._handles:
                for handle in row:
                    if not handle.alive or handle.poisoned:
                        continue
                    with handle.lock:
                        try:
                            handle.conn.send(("reload",))
                            if handle.conn.poll(self.config.start_timeout):
                                kind, payload = handle.conn.recv()
                                if kind == "error":
                                    raise payload
                                with self._state_lock:
                                    for o, n in payload["sizes"].items():
                                        self.shard_sizes[int(o)] = int(n)
                            else:
                                self._poison(handle)
                        except (OSError, EOFError, BrokenPipeError):
                            handle.alive = False
            self.snapshot_version = version
            return version

    def shard_stats(self) -> dict[int, dict[str, float]]:
        """Per-shard query counters since the last rebalance."""
        with self._state_lock:
            return {o: dict(s) for o, s in self._shard_stats.items()}

    def slot_loads(self) -> list[float]:
        """Busy seconds per worker slot (sum over its shards)."""
        with self._state_lock:
            stats = {o: dict(s) for o, s in self._shard_stats.items()}
            assignment = [list(shards) for shards in self.assignment]
        return [
            sum(stats[o]["busy_seconds"] for o in shards)
            for shards in assignment
        ]

    def rebalance(self, ratio: float | None = None
                  ) -> list[tuple[int, int, int]]:
        """Migrate shards from hot slots to cold ones.

        Policy: while the hottest slot's busy time exceeds ``ratio``
        times the coldest slot's *and* the hottest slot serves more
        than one shard, move its coldest shard to the coldest slot.
        Returns the moves as ``(shard, from_slot, to_slot)``; counters
        reset afterwards so the next window measures the new layout.
        Only meaningful when shards outnumber slots — with one shard
        per slot there is nothing to migrate.
        """
        ratio = self.config.rebalance_ratio if ratio is None else ratio
        if ratio < 1.0:
            raise InvalidParameterError(
                f"ratio must be >= 1.0, got {ratio}")
        moves: list[tuple[int, int, int]] = []
        if self.num_slots < 2:
            return moves
        with self._state_lock:
            stats = {o: dict(s) for o, s in self._shard_stats.items()}
            assignment = [list(shards) for shards in self.assignment]
        loads = [
            sum(stats[o]["busy_seconds"] for o in shards)
            for shards in assignment
        ]
        while True:
            hot = max(range(self.num_slots), key=lambda s: loads[s])
            cold = min(range(self.num_slots), key=lambda s: loads[s])
            if hot == cold or len(assignment[hot]) <= 1:
                break
            if loads[hot] <= ratio * max(loads[cold], 1e-12):
                break
            shard = min(assignment[hot],
                        key=lambda o: (stats[o]["busy_seconds"], o))
            if not self._move_shard(shard, hot, cold):
                break
            assignment[hot].remove(shard)
            assignment[cold].append(shard)
            moves.append((shard, hot, cold))
            loads[hot] -= stats[shard]["busy_seconds"]
            loads[cold] += stats[shard]["busy_seconds"]
        if moves:
            self.rebalances += len(moves)
            OBS.count("net.shards_rebalanced", len(moves))
            with self._state_lock:
                for entry in self._shard_stats.values():
                    entry["queries"] = 0.0
                    entry["busy_seconds"] = 0.0
        return moves

    def _move_shard(self, shard: int, hot: int, cold: int) -> bool:
        """Open ``shard`` on every replica of ``cold``, close on ``hot``.

        Open-before-close on each worker, so a crash mid-move leaves the
        shard served by at least one slot.  A move that cannot open the
        shard on any cold replica is abandoned (returns ``False``).

        The assignment swap happens under ``_state_lock`` *between* the
        open and the close: a concurrent scatter either snapshots the
        old owner (which still has the shard open until the close below)
        or the new one (already open).  A request built on the old
        snapshot that loses the race with the close gets a worker-side
        ``ShardUnavailableError`` and is retried against the updated
        assignment by :meth:`_scatter`.
        """
        rel = self._shard_rels[shard]
        opened = 0
        for handle in self._handles[cold]:
            if self._admin(handle, ("open", shard, rel)):
                opened += 1
        if opened == 0:
            return False
        with self._state_lock:
            self.assignment[hot].remove(shard)
            self.assignment[cold].append(shard)
            self.assignment[cold].sort()
        for handle in self._handles[hot]:
            self._admin(handle, ("close", shard))
        return True

    def _admin(self, handle: _WorkerHandle, message: tuple) -> bool:
        """One fire-and-check admin exchange with a worker."""
        if not handle.alive or handle.poisoned:
            return False
        with handle.lock:
            try:
                handle.conn.send(message)
                if not handle.conn.poll(self.config.start_timeout):
                    self._poison(handle)
                    return False
                kind, payload = handle.conn.recv()
            except (OSError, EOFError, BrokenPipeError):
                handle.alive = False
                return False
        if kind == "error":
            raise payload
        return True

    # -- introspection --------------------------------------------------------

    def health(self) -> dict[str, Any]:
        """Operational telemetry: what an operator (or /health) watches."""
        with self._state_lock:
            assignment = [list(shards) for shards in self.assignment]
        workers = []
        for row in self._handles:
            for handle in row:
                process = handle.process
                workers.append({
                    "name": handle.name,
                    "slot": handle.slot,
                    "replica": handle.replica,
                    "pid": None if process is None else process.pid,
                    "alive": bool(handle.alive and process is not None
                                  and process.is_alive()),
                    "restarts": handle.restarts,
                    "shards": list(assignment[handle.slot]),
                })
        alive = sum(1 for w in workers if w["alive"])
        served = {
            o for slot, shards in enumerate(assignment)
            for o in shards
            if any(w["alive"] for w in workers if w["slot"] == slot)
        }
        return {
            "status": "ok" if alive == len(workers) else
            ("degraded" if served == set(self._shard_rels) else "partial"),
            "snapshot": self.snapshot_version,
            "shards": self.num_shards,
            "slots": self.num_slots,
            "replicas": self.config.replicas,
            "workers": workers,
            "workers_alive": alive,
            "shards_served": sorted(served),
            "shard_sizes": {str(o): n
                            for o, n in sorted(self.shard_sizes.items())},
            "rebalances": self.rebalances,
            "assignment": assignment,
        }

    def __repr__(self) -> str:
        return (
            f"WorkerPool(shards={self.num_shards}, slots={self.num_slots}, "
            f"replicas={self.config.replicas}, ogs={len(self)})"
        )


__all__ = [
    "RemoteHit",
    "RemoteSearchResult",
    "WorkerPool",
    "WorkerPoolConfig",
]
