"""Streaming ingest service: backpressured upload → queryable pipeline.

:class:`IngestService` closes the loop the paper's surveillance setting
implies (Sec. 5: trajectories arrive continuously and the index is
maintained incrementally): clips are *submitted* as jobs into a bounded,
journaled queue, a pool of ingest workers runs each through the existing
frame-parallel extraction pipeline, and the resulting OGs stream into a
:class:`~repro.serving.snapshot.LiveIndex` — queries keep serving from
published snapshots the whole time.

Lifecycle of one job::

    submit() ──> QUEUED ──> RUNNING ──> INDEXED
                               │   └──> (retry under RetryPolicy)
                               └─────> QUARANTINED   (poison / timeout)

Robustness machinery, in the order it fires:

- **Admission control** — the queue is bounded; past ``queue_depth``
  a submission raises :class:`~repro.errors.IngestOverloadError`, or
  blocks for space with ``submit(..., backpressure=True)``.
- **Journaled states** — every transition appends one durable JSONL
  record (``QUEUED → RUNNING → INDEXED | QUARANTINED``), and every
  snapshot save appends a ``checkpoint``.  After a crash,
  :meth:`IngestService.recover` replays the journal: jobs ``INDEXED``
  before the last checkpoint are durable and **never re-run** (idempotent
  completion keyed by job id); everything else re-runs from its spooled
  upload.  The index only persists via checkpoints, so replay can never
  lose or double-index an OG.
- **Retries** — recoverable per-job failures retry under the config's
  :class:`~repro.resilience.retry.RetryPolicy`, bounded by a service-wide
  ``retry_budget``.
- **Watchdog timeouts** — a watchdog thread cancels jobs that outrun
  ``job_timeout``; workers observe the cancellation at stage boundaries
  and quarantine the job with :class:`~repro.errors.IngestTimeoutError`
  (slow jobs are poison, not transient faults).
- **Worker scaling** — the watchdog grows the pool toward
  ``max_workers`` while the queue is deeper than the pool, and retires
  idle workers back to ``min_workers``.
- **Fault points** — ``ingest.accept``, ``ingest.process`` and
  ``ingest.commit`` are compiled in for
  :class:`~repro.resilience.faults.FaultInjector` drills.

``health()`` exports queue depth, in-flight count, oldest-job age,
quarantine count and the upload→queryable freshness lag, mirrored as
gauges in the observability registry.
"""

from __future__ import annotations

import os
import queue
import threading
import time
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path
from typing import Any

from repro.errors import (
    IngestOverloadError,
    IngestTimeoutError,
    InvalidParameterError,
    ServiceStoppedError,
    StorageError,
)
from repro.observability import OBS
from repro.pipeline import VideoPipeline
from repro.resilience.faults import maybe_fail
from repro.resilience.journal import (
    IngestJournal,
    read_journal,
    replay_jobs,
)
from repro.resilience.policy import (
    RECOVERABLE_ERRORS,
    QuarantineRecord,
    quarantine_record,
)
from repro.resilience.retry import RetryPolicy
from repro.serving.snapshot import LiveIndex, _BufferedWrite
from repro.storage.store import FORMATS, open_store
from repro.video.frames import VideoSegment

_SHUTDOWN = object()   # queue sentinel: worker exits unconditionally
_RETIRE = object()     # queue sentinel: worker exits if pool is above min

#: Journal file name inside a service's ``state_dir``.
JOURNAL_NAME = "ingest.journal"
#: Snapshot base name inside a service's ``state_dir``; ``open_store``
#: resolves it to ``index.npz`` or ``index.strg/`` by format.
SNAPSHOT_BASE = "index"
#: Historical NPZ snapshot file name (the ``store_format="auto"``
#: default for fresh state dirs, kept for backwards compatibility).
SNAPSHOT_NAME = "index.npz"
#: Spool directory name inside a service's ``state_dir``.
SPOOL_DIR = "spool"


class JobState(str, Enum):
    """Lifecycle states of an ingest job (journaled transitions)."""

    QUEUED = "QUEUED"
    RUNNING = "RUNNING"
    INDEXED = "INDEXED"
    QUARANTINED = "QUARANTINED"


#: States a job can never leave.
TERMINAL_STATES = (JobState.INDEXED, JobState.QUARANTINED)


@dataclass
class IngestJob:
    """One submitted clip and its progress through the service."""

    job_id: str
    clip_name: str
    video: VideoSegment | None
    submitted: float                      # time.monotonic() at acceptance
    state: JobState = JobState.QUEUED
    attempts: int = 0
    started: float | None = None
    finished: float | None = None
    deadline: float | None = None         # monotonic cutoff (watchdog)
    og_ids: list[int] = field(default_factory=list)
    error: str | None = None
    spool: str | None = None
    cancel: threading.Event = field(default_factory=threading.Event)
    done: threading.Event = field(default_factory=threading.Event)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def freshness(self) -> float | None:
        """Upload→queryable latency in seconds (``None`` until INDEXED)."""
        if self.state is not JobState.INDEXED or self.finished is None:
            return None
        return self.finished - self.submitted

    def __repr__(self) -> str:
        return (f"IngestJob({self.job_id!r}, clip={self.clip_name!r}, "
                f"state={self.state.value})")


@dataclass
class IngestServiceConfig:
    """Sizing and policy for an :class:`IngestService`.

    ``queue_depth``        max queued (not yet running) jobs; past this,
                           non-backpressure submissions are rejected.
    ``min_workers``        worker threads kept alive when idle.
    ``max_workers``        scaling ceiling under queue pressure.
    ``job_timeout``        per-job wall-clock budget in seconds enforced
                           by the watchdog (``None`` = unbounded).
    ``retry_policy``       backoff schedule for recoverable job failures
                           (``max_attempts`` counts the first try).
    ``retry_budget``       service-wide cap on total retries; exhausted,
                           failing jobs quarantine on first error
                           (``None`` = unbounded).
    ``checkpoint_every``   snapshot + journal checkpoint after this many
                           indexed jobs (``None`` = only on demand);
                           requires a ``state_dir`` / snapshot path.
    ``store_format``       snapshot store format for the state dir
                           (``"auto"`` | ``"columnar"`` | ``"npz"``).
                           ``"auto"`` reopens whatever exists and
                           defaults fresh state dirs to NPZ; columnar
                           stores checkpoint as O(delta) appended
                           segments instead of full rewrites (see
                           ``docs/STORAGE.md``).
    ``watchdog_interval``  seconds between watchdog ticks (timeouts,
                           gauges, worker scaling).
    ``clip_workers``       frame-parallel workers *inside* each job
                           (see ``VideoPipeline.build_strg``).
    """

    queue_depth: int = 64
    min_workers: int = 1
    max_workers: int = 2
    job_timeout: float | None = None
    retry_policy: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(max_attempts=2, base_delay=0.02))
    retry_budget: int | None = 64
    checkpoint_every: int | None = 4
    store_format: str = "auto"
    watchdog_interval: float = 0.05
    clip_workers: int | None = None

    def __post_init__(self) -> None:
        if self.queue_depth < 1:
            raise InvalidParameterError(
                f"queue_depth must be >= 1, got {self.queue_depth}")
        if self.min_workers < 1:
            raise InvalidParameterError(
                f"min_workers must be >= 1, got {self.min_workers}")
        if self.max_workers < self.min_workers:
            raise InvalidParameterError(
                f"max_workers ({self.max_workers}) must be >= min_workers "
                f"({self.min_workers})")
        if self.job_timeout is not None and self.job_timeout <= 0:
            raise InvalidParameterError(
                f"job_timeout must be > 0, got {self.job_timeout}")
        if self.checkpoint_every is not None and self.checkpoint_every < 1:
            raise InvalidParameterError(
                f"checkpoint_every must be >= 1 or None, "
                f"got {self.checkpoint_every}")
        if self.retry_budget is not None and self.retry_budget < 0:
            raise InvalidParameterError(
                f"retry_budget must be >= 0 or None, got {self.retry_budget}")
        if self.store_format not in FORMATS:
            raise InvalidParameterError(
                f"store_format must be one of {FORMATS}, "
                f"got {self.store_format!r}")
        if self.watchdog_interval <= 0:
            raise InvalidParameterError(
                f"watchdog_interval must be > 0, got {self.watchdog_interval}")


@dataclass
class IngestRecoveryReport:
    """Outcome of :meth:`IngestService.recover`."""

    snapshot_loaded: bool
    snapshot_path: str
    snapshot_ogs: int
    snapshot_error: str | None
    journal_path: str
    journal_truncated: bool
    completed_jobs: list[str] = field(default_factory=list)
    replayed_jobs: list[str] = field(default_factory=list)
    quarantined_jobs: list[str] = field(default_factory=list)
    lost_jobs: list[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "snapshot_loaded": self.snapshot_loaded,
            "snapshot_path": self.snapshot_path,
            "snapshot_ogs": self.snapshot_ogs,
            "snapshot_error": self.snapshot_error,
            "journal_path": self.journal_path,
            "journal_truncated": self.journal_truncated,
            "completed_jobs": list(self.completed_jobs),
            "replayed_jobs": list(self.replayed_jobs),
            "quarantined_jobs": list(self.quarantined_jobs),
            "lost_jobs": list(self.lost_jobs),
        }


class IngestService:
    """Backpressured, journaled, crash-safe streaming ingest over a
    :class:`~repro.serving.snapshot.LiveIndex`.

    Workers start in the constructor; use as a context manager (or call
    :meth:`shutdown`) to stop them.  With a ``state_dir`` the service is
    durable: uploads spool to ``state_dir/spool/``, state transitions
    journal to ``state_dir/ingest.journal`` and checkpoints snapshot to
    ``state_dir/index.npz`` (or ``index.strg/`` with
    ``store_format="columnar"``, where checkpoints append O(delta)
    segments) — :meth:`recover` rebuilds an equivalent service after a
    crash.  Without one it is a fast in-memory pipeline with the same
    admission/retry/timeout behavior.

    ``database`` optionally binds a
    :class:`~repro.storage.database.VideoDatabase`: after every commit
    its ``index`` attribute is repointed at the newest published
    snapshot, so ``db.knn()`` callers see freshly ingested clips without
    touching the service API.
    """

    def __init__(self, live: LiveIndex,
                 pipeline: VideoPipeline | None = None, *,
                 state_dir: str | os.PathLike | None = None,
                 config: IngestServiceConfig | None = None,
                 database: Any = None):
        self.live = live
        self.pipeline = pipeline or VideoPipeline()
        self.config = config or IngestServiceConfig()
        self._database = database

        self.state_dir = None if state_dir is None else os.fspath(state_dir)
        self._journal: IngestJournal | None = None
        self._spool_dir: str | None = None
        self.snapshot_path: str | None = None
        self._store: Any = None
        self._store_dirty = False
        self._pending_writes: list[_BufferedWrite] = []
        if self.state_dir is not None:
            os.makedirs(self.state_dir, exist_ok=True)
            self._spool_dir = os.path.join(self.state_dir, SPOOL_DIR)
            os.makedirs(self._spool_dir, exist_ok=True)
            self._journal = IngestJournal(
                os.path.join(self.state_dir, JOURNAL_NAME))
            self._store = open_store(
                os.path.join(self.state_dir, SNAPSHOT_BASE),
                format=self.config.store_format)
            self.snapshot_path = self._store.path

        self._queue: queue.Queue = queue.Queue()
        #: Guards backlog/in-flight accounting and wakes backpressured
        #: submitters and drain() waiters.
        self._space = threading.Condition()
        self._backlog = 0
        self._in_flight = 0
        self._jobs: dict[str, IngestJob] = {}
        self._jobs_lock = threading.Lock()
        self._journal_lock = threading.Lock()
        self._commit_lock = threading.Lock()
        self._completed: set[str] = set()
        self.quarantine: list[QuarantineRecord] = []
        self.recovery: IngestRecoveryReport | None = None
        self._seq = 0
        self._indexed_jobs = 0
        self._retries = 0
        self._indexed_since_checkpoint = 0
        self._last_freshness: float | None = None
        self._checkpoint_errors = 0
        self._stopped = False

        self._workers: list[threading.Thread] = []
        self._workers_lock = threading.Lock()
        self._peak_workers = 0
        for _ in range(self.config.min_workers):
            self._spawn_worker()
        self._stop_watchdog = threading.Event()
        self._watchdog = threading.Thread(
            target=self._watchdog_loop, name="ingest-watchdog", daemon=True)
        self._watchdog.start()

    # -- submission -----------------------------------------------------------

    def submit(self, video: VideoSegment, *,
               job_id: str | None = None,
               backpressure: bool = False,
               timeout: float | None = None) -> IngestJob:
        """Accept one clip as an ingest job and return its handle.

        Admission is bounded: with the queue at ``queue_depth`` the call
        raises :class:`~repro.errors.IngestOverloadError` immediately, or
        — with ``backpressure=True`` — blocks until space frees (or
        ``timeout`` elapses, then the same error).  Re-submitting a
        ``job_id`` that already completed durably is an idempotent no-op
        returning the completed handle: recovery and client retries can
        never double-index a clip.
        """
        if self._stopped:
            raise ServiceStoppedError(
                "ingest service is stopped; no new jobs accepted")
        if job_id is None:
            with self._jobs_lock:
                job_id = f"job-{self._seq:06d}"
                self._seq += 1
        maybe_fail("ingest.accept", job=job_id)
        existing = self._jobs.get(job_id)
        if job_id in self._completed:
            if existing is not None:
                return existing
            done = IngestJob(job_id=job_id, clip_name=video.name, video=None,
                             submitted=time.monotonic(),
                             state=JobState.INDEXED)
            done.done.set()
            with self._jobs_lock:
                self._jobs[job_id] = done
            return done
        if existing is not None and not existing.terminal:
            return existing  # already queued or running

        self._acquire_slot(backpressure, timeout)
        try:
            job = IngestJob(job_id=job_id, clip_name=video.name, video=video,
                            submitted=time.monotonic())
            if self._spool_dir is not None:
                spool = os.path.join(self._spool_dir, f"{job_id}.npz")
                video.save_npz(spool)
                job.spool = os.path.basename(spool)
        except BaseException:
            self._release_slot()
            raise
        with self._jobs_lock:
            self._jobs[job_id] = job
        self._append_journal({
            "event": "job", "job": job_id, "state": JobState.QUEUED.value,
            "clip": video.name, "frames": video.num_frames,
            "spool": job.spool,
        })
        self._queue.put(job)
        OBS.count("ingest.jobs_accepted")
        OBS.gauge("ingest.queue_depth", self._backlog)
        return job

    def _acquire_slot(self, backpressure: bool,
                      timeout: float | None) -> None:
        """Claim one bounded-queue slot (reject or block when full)."""
        with self._space:
            if self._backlog < self.config.queue_depth:
                self._backlog += 1
                return
            if not backpressure:
                OBS.count("ingest.jobs_rejected")
                raise IngestOverloadError(
                    f"ingest queue full ({self.config.queue_depth} deep); "
                    "retry later, or submit with backpressure=True")
            deadline = (None if timeout is None
                        else time.monotonic() + timeout)
            while self._backlog >= self.config.queue_depth:
                if self._stopped:
                    raise ServiceStoppedError(
                        "ingest service stopped while waiting for space")
                remaining = (None if deadline is None
                             else deadline - time.monotonic())
                if remaining is not None and remaining <= 0:
                    OBS.count("ingest.jobs_rejected")
                    raise IngestOverloadError(
                        f"no queue space within {timeout:.3f}s "
                        f"({self.config.queue_depth} deep)")
                self._space.wait(remaining)
            self._backlog += 1

    def _release_slot(self) -> None:
        with self._space:
            self._backlog -= 1
            self._space.notify_all()

    # -- workers --------------------------------------------------------------

    def _spawn_worker(self) -> None:
        with self._workers_lock:
            worker = threading.Thread(
                target=self._worker_loop,
                name=f"ingest-worker-{len(self._workers)}", daemon=True)
            self._workers.append(worker)
            self._peak_workers = max(self._peak_workers, len(self._workers))
        OBS.gauge("ingest.workers", len(self._workers))
        worker.start()

    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                self._remove_worker()
                return
            if item is _RETIRE:
                with self._workers_lock:
                    if len(self._workers) > self.config.min_workers:
                        self._workers.remove(threading.current_thread())
                        OBS.gauge("ingest.workers", len(self._workers))
                        return
                continue
            self._release_slot()
            if item.job_id in self._completed:
                # Idempotent completion: a re-enqueued finished job is a
                # no-op, never a second index insertion.
                self._finish(item, JobState.INDEXED)
                continue
            with self._space:
                self._in_flight += 1
            try:
                self._run_job(item)
            finally:
                with self._space:
                    self._in_flight -= 1
                    self._space.notify_all()

    def _remove_worker(self) -> None:
        with self._workers_lock:
            thread = threading.current_thread()
            if thread in self._workers:
                self._workers.remove(thread)
            OBS.gauge("ingest.workers", len(self._workers))

    def _run_job(self, job: IngestJob) -> None:
        job.state = JobState.RUNNING
        job.started = time.monotonic()
        if self.config.job_timeout is not None:
            job.deadline = job.started + self.config.job_timeout
        policy = self.config.retry_policy
        delays = list(policy.delays())
        attempt = 0
        with OBS.span("ingest.job", job=job.job_id, clip=job.clip_name):
            while True:
                attempt += 1
                job.attempts = attempt
                self._append_journal({
                    "event": "job", "job": job.job_id,
                    "state": JobState.RUNNING.value, "attempt": attempt,
                })
                try:
                    self._check_cancelled(job)
                    maybe_fail("ingest.process", job=job.job_id)
                    clip = self.pipeline.process_clip(
                        job.video, workers=self.config.clip_workers)
                    self._check_cancelled(job)
                    maybe_fail("ingest.commit", job=job.job_id)
                    self._commit(job, clip)
                    return
                except IngestTimeoutError as exc:
                    self._quarantine_job(job, exc)
                    return
                except RECOVERABLE_ERRORS as exc:
                    if (attempt >= policy.max_attempts
                            or not self._take_retry_token()):
                        self._quarantine_job(job, exc)
                        return
                    self._retries += 1
                    OBS.count("ingest.job_retries")
                    delay = delays[attempt - 1] if attempt - 1 < len(delays) \
                        else 0.0
                    if delay > 0:
                        time.sleep(delay)
                except Exception as exc:  # noqa: BLE001 - worker survival
                    # Unlike batch ingest (which propagates programming
                    # errors), a long-running worker must outlive any
                    # single poison job; the error type is preserved in
                    # the quarantine record for diagnosis.
                    self._quarantine_job(job, exc)
                    return

    def _take_retry_token(self) -> bool:
        budget = self.config.retry_budget
        if budget is None:
            return True
        return self._retries < budget

    def _check_cancelled(self, job: IngestJob) -> None:
        """Raise if the watchdog cancelled the job or its budget lapsed.

        Called at stage boundaries — cancellation is cooperative, so a
        stage already running completes before the timeout is observed.
        """
        overdue = (job.deadline is not None
                   and time.monotonic() > job.deadline)
        if job.cancel.is_set() or overdue:
            elapsed = time.monotonic() - (job.started or job.submitted)
            raise IngestTimeoutError(
                f"job {job.job_id!r} exceeded its "
                f"{self.config.job_timeout}s budget after {elapsed:.3f}s",
                details={"job": job.job_id, "elapsed": elapsed,
                         "timeout": self.config.job_timeout},
            )

    def _commit(self, job: IngestJob, clip) -> None:
        """Stream a processed clip's OGs into the live index, exactly once.

        Serialized across workers so journal order matches index content
        order — the invariant recovery replays against.  The INDEXED
        record is appended only after the OGs are visible in a published
        snapshot; a crash between insert and journal re-runs the job
        against a snapshot that never contained it.
        """
        with self._commit_lock:
            self._check_cancelled(job)
            ogs = clip.object_graphs
            if ogs:
                refs = [{"video": job.clip_name, "og": og.og_id,
                         "job": job.job_id} for og in ogs]
                self.live.bulk_insert(ogs, clip.background, refs)
                self.live.compact()
                self._track_writes(ogs, clip.background, refs)
            if self._database is not None:
                self._database.index = self.live.snapshot.index
            job.og_ids = [og.og_id for og in ogs]
            self._append_journal({
                "event": "job", "job": job.job_id,
                "state": JobState.INDEXED.value,
                "clip": job.clip_name, "ogs": len(ogs),
            })
            self._completed.add(job.job_id)
            self._indexed_jobs += 1
            self._indexed_since_checkpoint += 1
            self._finish(job, JobState.INDEXED)
            OBS.count("ingest.jobs_indexed")
            if job.freshness is not None:
                self._last_freshness = job.freshness
                OBS.observe("ingest.freshness", job.freshness)
                OBS.gauge("ingest.freshness_lag", job.freshness)
            if (self.config.checkpoint_every is not None
                    and self.snapshot_path is not None
                    and self._indexed_since_checkpoint
                    >= self.config.checkpoint_every):
                self._checkpoint_locked()

    def checkpoint(self) -> None:
        """Snapshot the published index and journal the checkpoint.

        Jobs INDEXED before this call become durable: recovery will not
        re-run them.  Requires a ``state_dir`` (or ``snapshot_path``).
        """
        if self.snapshot_path is None:
            raise StorageError(
                "checkpoint() needs a snapshot path: construct the service "
                "with state_dir=...")
        with self._commit_lock:
            self._checkpoint_locked()

    #: Delta-write backlog past which the next checkpoint falls back to
    #: a full snapshot write (bounds memory when checkpoints are
    #: disabled or keep failing).
    max_pending_writes = 4096

    def _track_writes(self, ogs, background, refs) -> None:
        """Remember a committed batch for O(delta) checkpointing."""
        if self._store is None or self._store_dirty \
                or not getattr(self._store, "supports_append", False):
            return
        self._pending_writes.extend(
            _BufferedWrite("insert", og=og, background=background,
                           clip_ref=ref)
            for og, ref in zip(ogs, refs))
        if len(self._pending_writes) > self.max_pending_writes:
            self._pending_writes.clear()
            self._store_dirty = True

    def _checkpoint_locked(self) -> None:
        index = self.live.snapshot.index
        # On a columnar store a bound checkpoint appends only the
        # writes committed since the last one; the NPZ store (and the
        # first checkpoint of a fresh store) rewrites the snapshot.
        # After a failure the delta may no longer match the on-disk
        # state, so resynchronize with a full write (writes=None).
        writes = None if self._store_dirty else self._pending_writes
        try:
            self._store.checkpoint(index, writes)
        except (StorageError, OSError) as exc:
            # A failed checkpoint only delays durability: jobs stay
            # journaled as INDEXED-after-checkpoint and replay re-runs
            # them.  Keep serving; retry at the next commit.
            self._store_dirty = True
            self._pending_writes = []
            self._checkpoint_errors += 1
            OBS.count("ingest.checkpoint_errors")
            self._indexed_since_checkpoint = self.config.checkpoint_every or 1
            import logging

            logging.getLogger(__name__).warning(
                "ingest checkpoint failed (will retry): %s", exc)
            return
        self._pending_writes = []
        self._store_dirty = False
        maybe_merge = getattr(self._store, "maybe_merge", None)
        if maybe_merge is not None:
            maybe_merge(background=True)
        self._append_journal({
            "event": "checkpoint", "path": self._store.path,
            "ogs": len(index),
        })
        self._indexed_since_checkpoint = 0
        OBS.count("ingest.checkpoints")

    def _quarantine_job(self, job: IngestJob, exc: BaseException) -> None:
        record = quarantine_record(job.clip_name, exc, job.attempts)
        record.details.setdefault("job", job.job_id)
        self.quarantine.append(record)
        job.error = f"{type(exc).__name__}: {exc}"
        self._append_journal({
            "event": "job", "job": job.job_id,
            "state": JobState.QUARANTINED.value,
            "clip": job.clip_name, "error": record.error_type,
            "message": record.message, "attempts": job.attempts,
        })
        self._finish(job, JobState.QUARANTINED)
        OBS.count("ingest.jobs_quarantined")

    def _finish(self, job: IngestJob, state: JobState) -> None:
        job.state = state
        job.finished = time.monotonic()
        job.video = None  # free the frames; the spool holds the payload
        job.done.set()
        with self._space:
            self._space.notify_all()

    # -- watchdog: timeouts, gauges, scaling ----------------------------------

    def _watchdog_loop(self) -> None:
        while not self._stop_watchdog.wait(self.config.watchdog_interval):
            self._tick()

    def _tick(self) -> None:
        now = time.monotonic()
        with self._jobs_lock:
            jobs = list(self._jobs.values())
        oldest = None
        for job in jobs:
            if job.terminal:
                continue
            age = now - job.submitted
            oldest = age if oldest is None else max(oldest, age)
            if (job.state is JobState.RUNNING and job.deadline is not None
                    and now > job.deadline):
                job.cancel.set()
        with self._space:
            backlog, in_flight = self._backlog, self._in_flight
        OBS.gauge("ingest.queue_depth", backlog)
        OBS.gauge("ingest.in_flight", in_flight)
        OBS.gauge("ingest.oldest_job_age", oldest or 0.0)
        with self._workers_lock:
            n_workers = len(self._workers)
        if backlog > n_workers and n_workers < self.config.max_workers:
            self._spawn_worker()
        elif (backlog == 0 and in_flight == 0
                and n_workers > self.config.min_workers):
            self._queue.put(_RETIRE)

    # -- introspection --------------------------------------------------------

    def job_status(self, job_id: str) -> IngestJob | None:
        """The job handle for ``job_id`` (``None`` if unknown)."""
        with self._jobs_lock:
            return self._jobs.get(job_id)

    def wait(self, job: IngestJob | str,
             timeout: float | None = None) -> JobState:
        """Block until a job reaches a terminal state; returns it."""
        handle = job if isinstance(job, IngestJob) else self.job_status(job)
        if handle is None:
            raise InvalidParameterError(f"unknown job {job!r}")
        if not handle.done.wait(timeout):
            raise IngestTimeoutError(
                f"job {handle.job_id!r} still {handle.state.value} "
                f"after {timeout}s",
                details={"job": handle.job_id, "state": handle.state.value})
        return handle.state

    def drain(self, timeout: float | None = None) -> bool:
        """Block until no job is queued or in flight.

        Returns ``False`` if ``timeout`` elapsed first.  The service
        keeps accepting new jobs; this only waits out the backlog.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._space:
            while self._backlog > 0 or self._in_flight > 0:
                remaining = (None if deadline is None
                             else deadline - time.monotonic())
                if remaining is not None and remaining <= 0:
                    return False
                self._space.wait(remaining)
        return True

    def health(self) -> dict[str, Any]:
        """Operational telemetry: the surface an operator watches."""
        now = time.monotonic()
        with self._jobs_lock:
            active = [j for j in self._jobs.values() if not j.terminal]
        with self._space:
            backlog, in_flight = self._backlog, self._in_flight
        with self._workers_lock:
            n_workers = len(self._workers)
        budget = self.config.retry_budget
        return {
            "queue_depth": backlog,
            "in_flight": in_flight,
            "workers": n_workers,
            "peak_workers": self._peak_workers,
            "indexed_jobs": self._indexed_jobs,
            "quarantined": len(self.quarantine),
            "quarantined_jobs": [
                q.details.get("job", q.segment) for q in self.quarantine],
            "oldest_job_age": (max((now - j.submitted for j in active),
                                   default=0.0)),
            "freshness_lag": self._last_freshness,
            "retries": self._retries,
            "retry_budget_left": (None if budget is None
                                  else max(0, budget - self._retries)),
            "checkpoint_errors": self._checkpoint_errors,
            "snapshot_version": self.live.version,
            "indexed_ogs": len(self.live),
            "journal": None if self._journal is None else self._journal.path,
            "stopped": self._stopped,
        }

    # -- journaling -----------------------------------------------------------

    def _append_journal(self, record: dict) -> None:
        if self._journal is not None:
            with self._journal_lock:
                self._journal.append(record)

    # -- lifecycle ------------------------------------------------------------

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting jobs, drain the queue, stop workers.  Idempotent."""
        with self._space:
            already = self._stopped
            self._stopped = True
            self._space.notify_all()
        self._stop_watchdog.set()
        if not already:
            with self._workers_lock:
                workers = list(self._workers)
            for _ in workers:
                self._queue.put(_SHUTDOWN)
        if wait:
            self._watchdog.join()
            with self._workers_lock:
                workers = list(self._workers)
            for worker in workers:
                worker.join()
            join_merges = getattr(self._store, "join_merges", None)
            if join_merges is not None:
                join_merges()
        if self._journal is not None:
            with self._journal_lock:
                self._journal.close()

    @property
    def stopped(self) -> bool:
        return self._stopped

    def __enter__(self) -> "IngestService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown(wait=True)

    def __repr__(self) -> str:
        return (f"IngestService(workers={len(self._workers)}, "
                f"queued={self._backlog}, in_flight={self._in_flight}, "
                f"indexed={self._indexed_jobs}, "
                f"quarantined={len(self.quarantine)}, "
                f"stopped={self._stopped})")

    # -- crash recovery -------------------------------------------------------

    @classmethod
    def recover(cls, state_dir: str | os.PathLike, *,
                pipeline: VideoPipeline | None = None,
                config: IngestServiceConfig | None = None,
                database: Any = None) -> "IngestService":
        """Rebuild a service from its ``state_dir`` after a crash.

        Loads the last checkpointed snapshot (if any survives integrity
        checks), replays the journal, and re-submits every job that was
        not durably indexed — ``QUEUED``/``RUNNING`` jobs and jobs
        ``INDEXED`` after the last checkpoint — from their spooled
        uploads, in original submission order.  Quarantine decisions are
        preserved (poison jobs are *not* retried), and durably completed
        job ids are remembered so replays and client re-submissions are
        idempotent.  Jobs whose spool file is missing or unreadable are
        quarantined as lost rather than failing recovery.
        """
        state = Path(os.fspath(state_dir))
        journal_path = state / JOURNAL_NAME
        records, truncated = read_journal(journal_path)
        replay = replay_jobs(records)

        store = open_store(
            state / SNAPSHOT_BASE,
            format=config.store_format if config is not None else "auto")
        index = None
        snapshot_error: str | None = None
        snapshot_loaded = False
        if store.exists():
            try:
                index = store.load_index()
                snapshot_loaded = True
            except StorageError as exc:
                snapshot_error = f"{type(exc).__name__}: {exc}"
        pipeline = pipeline or VideoPipeline()
        if index is None:
            from repro.core.index import STRGIndex, STRGIndexConfig

            pipeline_config = getattr(pipeline, "config", None)
            index = STRGIndex(
                pipeline_config.index if pipeline_config is not None
                else STRGIndexConfig(n_clusters=None, k_max=8))

        durable = set(replay.completed) if snapshot_loaded else set()
        pending = list(replay.pending)
        if not snapshot_loaded:
            # No usable snapshot: nothing is durable; journaled-INDEXED
            # jobs must re-run too (their OGs died with the process).
            pending = [info for info in replay.jobs_in_order
                       if info.get("state") != JobState.QUARANTINED.value]

        live = LiveIndex(index)
        service = cls(live, pipeline, state_dir=state_dir, config=config,
                      database=database)
        if snapshot_loaded:
            # Reuse the store that loaded the snapshot: its row map is
            # bound to the recovered index, so the first post-recovery
            # checkpoint can append O(delta) instead of rewriting.
            service._store = store
            service.snapshot_path = store.path
        service._completed = set(durable)
        for info in replay.quarantined:
            record = QuarantineRecord(
                segment=str(info.get("clip", info.get("job"))),
                error_type=str(info.get("error", "unknown")),
                message=str(info.get("message", "")),
                details={"job": str(info.get("job"))},
                attempts=int(info.get("attempts", 1)),
            )
            service.quarantine.append(record)
        if database is not None:
            database.index = live.snapshot.index

        replayed: list[str] = []
        lost: list[str] = []
        for info in pending:
            job_id = str(info.get("job"))
            spool_name = info.get("spool")
            spool = (None if spool_name is None
                     else os.path.join(os.fspath(state), SPOOL_DIR,
                                       str(spool_name)))
            video = None
            if spool is not None and os.path.exists(spool):
                try:
                    video = VideoSegment.load_npz(spool)
                except (StorageError, OSError, ValueError) as exc:
                    service._note_lost_job(job_id, info, exc)
                    lost.append(job_id)
                    continue
            if video is None:
                service._note_lost_job(
                    job_id, info,
                    StorageError(f"spooled upload missing for {job_id!r}"))
                lost.append(job_id)
                continue
            service.submit(video, job_id=job_id, backpressure=True)
            replayed.append(job_id)

        service.recovery = IngestRecoveryReport(
            snapshot_loaded=snapshot_loaded,
            snapshot_path=store.path,
            snapshot_ogs=len(index),
            snapshot_error=snapshot_error,
            journal_path=os.fspath(journal_path),
            journal_truncated=truncated,
            completed_jobs=sorted(durable),
            replayed_jobs=replayed,
            quarantined_jobs=[
                q.details.get("job", q.segment) for q in service.quarantine],
            lost_jobs=lost,
        )
        return service

    def _note_lost_job(self, job_id: str, info: dict,
                       exc: BaseException) -> None:
        """Quarantine a replayed job whose upload payload is gone."""
        record = quarantine_record(str(info.get("clip", job_id)), exc, 1)
        record.details["job"] = job_id
        record.details["lost_payload"] = True
        self.quarantine.append(record)
        self._append_journal({
            "event": "job", "job": job_id,
            "state": JobState.QUARANTINED.value,
            "clip": info.get("clip"), "error": record.error_type,
            "message": record.message, "attempts": 1,
        })
        OBS.count("ingest.jobs_quarantined")


__all__ = [
    "IngestJob",
    "IngestRecoveryReport",
    "IngestService",
    "IngestServiceConfig",
    "JobState",
]
