"""Thread-pool query service with admission control and deadlines.

:class:`QueryService` fronts a :class:`~repro.serving.snapshot.LiveIndex`
with a bounded request queue and a pool of worker threads:

- **Admission control** — requests beyond ``queue_depth`` are rejected
  immediately with :class:`~repro.errors.ServiceOverloadError` rather
  than queued without bound.  A saturated service sheds load; it never
  hangs the caller.
- **Deadlines** — each request carries an optional deadline.  A request
  whose deadline elapses while it sits in the queue fails fast with
  :class:`~repro.errors.DeadlineExceededError` (``phase="queued"``)
  instead of wasting a worker on an answer nobody is waiting for; when a
  full queue would reject a submission, already-expired queued requests
  are failed first to make room.  A request whose deadline lapses while
  it *executes* still runs to completion (index scans are not
  interruptible) but resolves with ``phase="execution"`` rather than a
  result nobody is waiting for.
- **Snapshot isolation** — a worker resolves the published snapshot
  once, at execution time, and serves the whole request from it.
  Concurrent compactions swap the published snapshot for *later*
  requests; in-flight ones are unaffected.
- **Graceful shutdown** — :meth:`drain` blocks until queued work
  finishes; :meth:`shutdown` additionally stops the workers.  Requests
  submitted after shutdown get :class:`~repro.errors.ServiceStoppedError`.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any

from repro.errors import (
    DeadlineExceededError,
    InvalidParameterError,
    ServiceOverloadError,
    ServiceStoppedError,
)
from repro.graph.decomposition import BackgroundGraph
from repro.observability import OBS
from repro.serving.snapshot import IndexSnapshot, LiveIndex

_SHUTDOWN = object()  # queue sentinel that stops a worker


@dataclass
class ServiceConfig:
    """Sizing and policy for a :class:`QueryService`.

    ``workers``           worker threads draining the queue.
    ``queue_depth``       max queued (not yet executing) requests; beyond
                          this, submissions are rejected.
    ``default_deadline``  per-request deadline in seconds applied when a
                          submission doesn't carry its own (``None`` =
                          no deadline).
    """

    workers: int = 2
    queue_depth: int = 64
    default_deadline: float | None = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise InvalidParameterError(
                f"workers must be >= 1, got {self.workers}"
            )
        if self.queue_depth < 1:
            raise InvalidParameterError(
                f"queue_depth must be >= 1, got {self.queue_depth}"
            )
        if self.default_deadline is not None and self.default_deadline <= 0:
            raise InvalidParameterError(
                f"default_deadline must be > 0, got {self.default_deadline}"
            )


@dataclass
class QueryResponse:
    """A served query: hits plus the serving metadata callers need to
    interpret them (which snapshot answered, whether shards were lost)."""

    hits: list[tuple[float, Any, Any]]
    snapshot_version: int
    degraded: bool = False
    failed_shards: list[int] = field(default_factory=list)
    latency: float = 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "hits": [
                {"distance": d, "og_id": og.og_id, "clip_ref": ref}
                for d, og, ref in self.hits
            ],
            "snapshot_version": self.snapshot_version,
            "degraded": self.degraded,
            "failed_shards": self.failed_shards,
            "latency": self.latency,
        }


@dataclass
class _Request:
    kind: str  # "knn" | "range"
    query: Any
    arg: Any  # k for knn, radius for range
    background: BackgroundGraph | None
    deadline: float | None  # absolute time.monotonic() cutoff
    enqueued: float
    future: Future
    search_budget: int | None = None  # knn only: approximate-tier budget


class QueryService:
    """Concurrent query frontend over a :class:`LiveIndex`.

    Workers start in the constructor; use as a context manager (or call
    :meth:`shutdown`) to stop them.  ``submit_knn``/``submit_range``
    return :class:`concurrent.futures.Future` objects resolving to
    :class:`QueryResponse`; ``knn``/``range_query`` are their blocking
    conveniences.
    """

    def __init__(self, live: LiveIndex,
                 config: ServiceConfig | None = None):
        self.live = live
        self.config = config or ServiceConfig()
        self._queue: queue.Queue = queue.Queue(maxsize=self.config.queue_depth)
        self._admission_lock = threading.Lock()
        self._stopped = False
        self._stragglers: list[str] = []
        self._workers = [
            threading.Thread(target=self._worker_loop,
                             name=f"query-worker-{i}", daemon=True)
            for i in range(self.config.workers)
        ]
        for worker in self._workers:
            worker.start()

    # -- submission -----------------------------------------------------------

    def submit_knn(self, query, k: int,
                   background: BackgroundGraph | None = None,
                   deadline: float | None = None,
                   search_budget: int | None = None) -> Future:
        """Enqueue a k-NN request; rejects instead of blocking when full.

        ``search_budget`` routes the request through the approximate
        sketch tier with that many exact distance evaluations (see
        ``docs/SEARCH.md``); ``None`` keeps the exact path.
        """
        return self._submit("knn", query, k, background, deadline,
                            search_budget=search_budget)

    def submit_range(self, query, radius: float,
                     background: BackgroundGraph | None = None,
                     deadline: float | None = None) -> Future:
        """Enqueue a range request; rejects instead of blocking when full."""
        return self._submit("range", query, radius, background, deadline)

    def knn(self, query, k: int,
            background: BackgroundGraph | None = None,
            deadline: float | None = None,
            search_budget: int | None = None) -> QueryResponse:
        """Submit a k-NN request and block for its response."""
        return self.submit_knn(query, k, background, deadline,
                               search_budget=search_budget).result()

    def range_query(self, query, radius: float,
                    background: BackgroundGraph | None = None,
                    deadline: float | None = None) -> QueryResponse:
        """Submit a range request and block for its response."""
        return self.submit_range(query, radius, background, deadline).result()

    def _submit(self, kind: str, query, arg,
                background: BackgroundGraph | None,
                deadline: float | None,
                search_budget: int | None = None) -> Future:
        if self._stopped:
            raise ServiceStoppedError(
                "query service is stopped; no new requests accepted"
            )
        if deadline is None:
            deadline = self.config.default_deadline
        if deadline is not None and deadline <= 0:
            raise InvalidParameterError(
                f"deadline must be > 0 seconds, got {deadline}"
            )
        now = time.monotonic()
        request = _Request(
            kind=kind, query=query, arg=arg, background=background,
            deadline=None if deadline is None else now + deadline,
            enqueued=now, future=Future(), search_budget=search_budget,
        )
        with self._admission_lock:
            try:
                self._queue.put_nowait(request)
            except queue.Full:
                # Expired requests still queued are dead weight: fail
                # them now (they'd only bounce off a worker later) and
                # admit the live request into the space they held.
                if self._purge_expired() == 0:
                    OBS.count("serving.requests_rejected")
                    raise ServiceOverloadError(
                        f"admission queue full ({self.config.queue_depth} "
                        "deep); retry later or shed load upstream"
                    ) from None
                self._queue.put(request)
        OBS.count("serving.requests_accepted")
        OBS.gauge("serving.queue_depth", self._queue.qsize())
        return request.future

    def _purge_expired(self) -> int:
        """Fail queued requests whose deadline already lapsed; returns
        how many were purged.  Called with the admission lock held.

        The ``task_done`` bookkeeping keeps :meth:`drain` exact: a purged
        request's get is matched by its own ``task_done``; a kept (or
        sentinel) item is re-enqueued before its matching ``task_done``,
        leaving one outstanding unit for the worker that will serve it.
        """
        now = time.monotonic()
        purged = 0
        kept: list[Any] = []
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if (item is not _SHUTDOWN
                    and item.deadline is not None and now > item.deadline
                    and item.future.set_running_or_notify_cancel()):
                OBS.count("serving.deadline_exceeded")
                item.future.set_exception(DeadlineExceededError(
                    f"deadline elapsed after {now - item.enqueued:.3f}s "
                    "in queue", phase="queued"))
                purged += 1
                self._queue.task_done()
            else:
                kept.append(item)
        for item in kept:
            self._queue.put(item)
            self._queue.task_done()
        return purged

    # -- workers --------------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            try:
                if item is _SHUTDOWN:
                    return
                self._serve(item)
            finally:
                self._queue.task_done()

    def _serve(self, request: _Request) -> None:
        if not request.future.set_running_or_notify_cancel():
            return
        now = time.monotonic()
        if request.deadline is not None and now > request.deadline:
            OBS.count("serving.deadline_exceeded")
            request.future.set_exception(DeadlineExceededError(
                f"deadline elapsed after {now - request.enqueued:.3f}s "
                "in queue", phase="queued"
            ))
            return
        snapshot: IndexSnapshot = self.live.snapshot
        try:
            if request.kind == "knn":
                result = snapshot.knn_detailed(
                    request.query, request.arg, request.background,
                    search_budget=request.search_budget,
                )
            else:
                result = snapshot.range_query_detailed(
                    request.query, request.arg, request.background)
            latency = time.monotonic() - request.enqueued
            if (request.deadline is not None
                    and time.monotonic() > request.deadline):
                OBS.count("serving.deadline_exceeded")
                request.future.set_exception(DeadlineExceededError(
                    f"deadline elapsed mid-execution after {latency:.3f}s",
                    phase="execution"
                ))
                return
            OBS.observe("serving.latency", latency)
            OBS.count("serving.requests_served")
            request.future.set_result(QueryResponse(
                hits=result.hits,
                snapshot_version=snapshot.version,
                degraded=result.degraded,
                failed_shards=list(result.failed_shards),
                latency=latency,
            ))
        except BaseException as exc:  # noqa: BLE001 — relayed to the caller
            OBS.count("serving.request_errors")
            request.future.set_exception(exc)

    # -- lifecycle ------------------------------------------------------------

    def drain(self) -> None:
        """Block until every queued request has been served.

        The service keeps accepting new requests; this only waits for
        the current backlog.
        """
        self._queue.join()

    def shutdown(self, wait: bool = True,
                 timeout: float | None = None) -> None:
        """Stop accepting requests, then stop the workers.

        With ``wait=True`` (default) queued requests are served before
        the workers exit — a graceful drain.  ``timeout`` bounds the
        *total* time spent joining worker threads: a worker stuck on a
        pathological request past the budget is left behind as a
        *straggler* (it is a daemon thread, so it cannot block process
        exit) and reported by :meth:`health` instead of hanging the
        caller forever.  Idempotent — a later call retries the join and
        clears stragglers that have since finished.
        """
        if timeout is not None and timeout <= 0:
            raise InvalidParameterError(
                f"timeout must be > 0 seconds, got {timeout}")
        if not self._stopped:
            self._stopped = True
            for _ in self._workers:
                self._queue.put(_SHUTDOWN)  # after queued work
        if not wait:
            return
        deadline = None if timeout is None else time.monotonic() + timeout
        stragglers = []
        for worker in self._workers:
            remaining = None if deadline is None \
                else max(0.0, deadline - time.monotonic())
            worker.join(timeout=remaining)
            if worker.is_alive():
                stragglers.append(worker.name)
        self._stragglers = stragglers
        if stragglers:
            OBS.count("serving.shutdown_stragglers", len(stragglers))

    def health(self) -> dict[str, Any]:
        """Operational snapshot: thread liveness, backlog, stragglers.

        ``stragglers`` lists worker threads that outlived a bounded
        :meth:`shutdown` — non-empty means a drain was abandoned and
        some request is still grinding in the background.
        """
        alive = sum(1 for worker in self._workers if worker.is_alive())
        return {
            "workers": len(self._workers),
            "workers_alive": alive,
            "queue_depth": self._queue.qsize(),
            "stopped": self._stopped,
            "stragglers": [worker.name for worker in self._workers
                           if worker.name in self._stragglers
                           and worker.is_alive()],
        }

    @property
    def stopped(self) -> bool:
        return self._stopped

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown(wait=True)

    def __repr__(self) -> str:
        return (
            f"QueryService(workers={self.config.workers}, "
            f"queue_depth={self.config.queue_depth}, "
            f"stopped={self._stopped})"
        )


__all__ = ["QueryResponse", "QueryService", "ServiceConfig"]
