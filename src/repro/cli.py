"""Command-line interface.

Subcommands::

    strg-index demo                # synthetic end-to-end demo
    strg-index build  OUT          # build an index from a simulated stream
    strg-index ingest OUT          # fault-tolerant batch ingest + journal
    strg-index recover INDEX       # inspect crash-recovery state
    strg-index query  INDEX        # k-NN query with a synthetic trajectory
    strg-index convert SRC [DST]   # migrate a snapshot between formats
    strg-index bench               # tiny smoke benchmark
    strg-index serve  INDEX        # drive the query service on an index
    strg-index bench-load          # closed-loop load benchmark at N shards

Snapshot paths accept either store format — a checksummed ``.npz``
archive or a memory-mappable columnar ``.strg/`` directory
(``--store-format`` pins the format where a command writes one; see
``docs/STORAGE.md``).  Every subcommand prints human-readable progress
to stdout.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np


def _start_observability(args: argparse.Namespace) -> bool:
    """Enable tracing/metrics when ``--observe`` (or an export path) is set."""
    observe = bool(getattr(args, "observe", False)
                   or getattr(args, "trace_out", None)
                   or getattr(args, "metrics_out", None))
    if observe:
        from repro import observability

        observability.configure(enabled=True, reset_state=True)
    return observe


def _report_observability(args: argparse.Namespace) -> None:
    """Print the span tree and write any requested exports."""
    from repro import observability

    tree = observability.render_trace_tree()
    if tree:
        print("-- trace " + "-" * 40)
        print(tree)
    trace_out = getattr(args, "trace_out", None)
    if trace_out:
        observability.export_trace_jsonl(trace_out)
        print(f"trace written to {trace_out}")
    metrics_out = getattr(args, "metrics_out", None)
    if metrics_out:
        observability.export_metrics_prometheus(metrics_out)
        print(f"metrics written to {metrics_out}")


def _add_store_format_option(sub: argparse.ArgumentParser,
                             help: str) -> None:
    from repro.storage.store import FORMATS

    sub.add_argument("--store-format", default="auto", choices=FORMATS,
                     help=help)


def _add_observe_options(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--observe", action="store_true",
                     help="enable tracing/metrics and print the span tree")
    sub.add_argument("--trace-out", default=None, metavar="PATH",
                     help="write the span trace as JSONL (implies --observe)")
    sub.add_argument("--metrics-out", default=None, metavar="PATH",
                     help="write Prometheus metrics (implies --observe)")


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.core.index import STRGIndex, STRGIndexConfig
    from repro.datasets.synthetic import SyntheticConfig, generate_synthetic_ogs

    ogs = generate_synthetic_ogs(
        SyntheticConfig(num_ogs=args.num_ogs, noise_fraction=args.noise,
                        seed=args.seed)
    )
    print(f"generated {len(ogs)} synthetic OGs (noise {args.noise:.0%})")
    index = STRGIndex(STRGIndexConfig(n_clusters=args.clusters))
    started = time.perf_counter()
    index.build(ogs)
    print(f"built {index!r} in {time.perf_counter() - started:.2f}s")
    query = ogs[0]
    hits = index.knn(query, k=5)
    print(f"5-NN of OG {query.og_id} (pattern {query.meta.get('pattern')}):")
    for d, og, _ in hits:
        print(f"  d={d:8.2f}  og={og.og_id:<5d} pattern={og.meta.get('pattern')}")
    return 0


def _cmd_build(args: argparse.Namespace) -> int:
    from repro.datasets.real import STREAMS, render_stream_segment
    from repro.storage.database import VideoDatabase

    if args.stream not in STREAMS:
        print(f"unknown stream {args.stream!r}; choose from {sorted(STREAMS)}",
              file=sys.stderr)
        return 2
    db = VideoDatabase()
    video = render_stream_segment(args.stream, num_frames=args.frames)
    n = db.ingest(video)
    print(f"ingested {video!r}: {n} OGs")
    print(f"stats: {db.stats()}")
    db.save(args.output, format=args.store_format)
    print(f"index saved to {db.path}")
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    from repro.datasets.real import STREAMS, render_stream_segment
    from repro.errors import IngestDegradedError
    from repro.resilience import FaultInjector, injected
    from repro.storage.database import VideoDatabase

    if args.stream not in STREAMS:
        print(f"unknown stream {args.stream!r}; choose from {sorted(STREAMS)}",
              file=sys.stderr)
        return 2
    from repro.storage.store import store_path

    observe = _start_observability(args)
    journal = args.journal or (
        store_path(args.output, args.store_format) + ".journal")
    db = VideoDatabase(fault_policy=args.fault_policy, journal_path=journal)
    rng = np.random.default_rng(args.seed)
    videos = []
    for i in range(args.segments):
        video = render_stream_segment(args.stream, num_frames=args.frames,
                                      rng=rng)
        video.name = f"{args.stream}-{i:04d}"
        videos.append(video)
    injector = FaultInjector(seed=args.seed)
    if args.fault_rate > 0:
        injector.inject("decomposition", rate=args.fault_rate)
    try:
        with injected(injector):
            report = db.ingest_many(videos, workers=args.workers)
    except IngestDegradedError as exc:
        print(f"ingest degraded: {exc}", file=sys.stderr)
        print(f"health: {db.health()}", file=sys.stderr)
        return 3
    print(f"ingested {report['segments']} segment(s), "
          f"{report['ogs']} OGs, {report['quarantined']} quarantined")
    db.save(args.output, format=args.store_format)
    print(f"index saved to {db.path} (journal: {journal})")
    print(f"health: {db.health()}")
    if observe:
        _report_observability(args)
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    from repro.errors import RecoveryError
    from repro.storage.database import VideoDatabase

    try:
        db = VideoDatabase.recover(args.index, journal_path=args.journal)
    except RecoveryError as exc:
        print(f"recovery failed: {exc}", file=sys.stderr)
        return 3
    report = db.recovery
    print(f"snapshot {report.snapshot_path}: "
          f"{'loaded' if report.snapshot_loaded else 'UNUSABLE'} "
          f"({report.snapshot_ogs} OGs)")
    if report.snapshot_error:
        print(f"  snapshot error: {report.snapshot_error}")
    print(f"journal {report.journal_path}"
          + (" (torn tail skipped)" if report.journal_truncated else ""))
    print(f"pending segments (ingested but not in snapshot): "
          f"{len(report.pending_segments)}")
    for name in report.pending_segments[: args.limit]:
        print(f"  {name}")
    if report.quarantined_segments:
        print(f"quarantined during ingest: {report.quarantined_segments}")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.api import open_database
    from repro.datasets.patterns import pattern_by_id

    observe = _start_observability(args)
    index_path = args.index
    if args.store_format != "auto":
        from repro.storage.store import store_path

        index_path = store_path(args.index, args.store_format)
    mmap_mode = {"auto": "auto", "always": True, "never": False}[
        getattr(args, "mmap", "auto")]
    db = open_database(index_path, create=False, mmap=mmap_mode)
    pattern = pattern_by_id(args.pattern)
    trajectory = pattern.generate(32)
    hits = db.knn(trajectory, k=args.k, search_budget=args.search_budget)
    out_of_core = args.search_budget is not None and not db.index_loaded
    print(f"{args.k}-NN for pattern {pattern.name}"
          + (f" (budget {args.search_budget} evaluations"
             + (", out-of-core" if out_of_core else "") + ")"
             if args.search_budget is not None else "")
          + ":")
    for hit in hits:
        print(f"  d={hit.distance:8.2f}  og={hit.og.og_id}  ref={hit.clip_ref}")
    if observe:
        _report_observability(args)
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    from repro.errors import InvalidParameterError, StorageError
    from repro.storage.store import convert, open_store

    source = open_store(args.source)
    started = time.perf_counter()
    try:
        dest = convert(args.source, args.dest, format=args.format,
                       verify=not args.no_verify)
    except (StorageError, InvalidParameterError) as exc:
        print(f"conversion failed: {exc}", file=sys.stderr)
        return 3
    elapsed = time.perf_counter() - started
    print(f"converted {source.path} ({source.format}) -> "
          f"{dest.path} ({dest.format}) in {elapsed:.2f}s")
    if not args.no_verify:
        report = dest.describe()
        print(f"verified: {report}")
    print("the source snapshot is untouched; delete it once the "
          "destination is in service")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.core.index import STRGIndex, STRGIndexConfig
    from repro.datasets.synthetic import SyntheticConfig, generate_synthetic_ogs
    from repro.distance.base import CountingDistance
    from repro.distance.eged import MetricEGED
    from repro.mtree.tree import MTree, MTreeConfig

    ogs = generate_synthetic_ogs(SyntheticConfig(num_ogs=args.num_ogs, seed=1))
    counter_strg = CountingDistance(MetricEGED())
    index = STRGIndex(STRGIndexConfig(n_clusters=12),
                      metric_distance=counter_strg)
    index.build(ogs)
    counter_mt = CountingDistance(MetricEGED())
    mtree = MTree(counter_mt, MTreeConfig(split_policy="random"))
    for og in ogs:
        mtree.insert(og, og.og_id)
    counter_strg.reset()
    counter_mt.reset()
    for og in ogs[:10]:
        index.knn(og, k=10)
        mtree.knn(og, k=10)
    print(f"distance evaluations over 10 queries (k=10, n={len(ogs)}):")
    print(f"  STRG-Index: {counter_strg.calls}")
    print(f"  M-tree(RA): {counter_mt.calls}")
    return 0


def _cmd_shots(args: argparse.Namespace) -> int:
    from repro.datasets.real import STREAMS, render_stream_segment
    from repro.video.frames import VideoSegment
    from repro.video.shots import split_into_shots

    segments = []
    for name in args.streams:
        if name not in STREAMS:
            print(f"unknown stream {name!r}; choose from {sorted(STREAMS)}",
                  file=sys.stderr)
            return 2
        segments.append(render_stream_segment(name, num_frames=args.frames))
    video = VideoSegment(
        np.concatenate([s.frames for s in segments]),
        name="+".join(args.streams),
    )
    shots = split_into_shots(video)
    print(f"{video.num_frames} frames -> {len(shots)} shot(s):")
    for i, shot in enumerate(shots):
        print(f"  shot {i}: {shot.num_frames} frames ({shot.name})")
    return 0


def _cmd_motion(args: argparse.Namespace) -> int:
    import math

    from repro.storage.database import VideoDatabase

    db = VideoDatabase.load(args.index)
    direction = math.radians(args.direction) if args.direction is not None else None
    hits = db.query_by_motion(
        direction=direction,
        min_velocity=args.min_velocity,
        max_velocity=args.max_velocity,
        min_duration=args.min_duration,
    )
    print(f"{len(hits)} trajectories match:")
    for og in hits[: args.limit]:
        print(f"  OG {og.og_id}: {og.duration()} frames, "
              f"mean speed {og.mean_velocity():.1f} px/frame")
    return 0


def _serve_http(args: argparse.Namespace) -> int:
    """``serve --http``: process workers + asyncio frontend over a store."""
    from repro.serving import (
        NetConfig,
        NetFrontend,
        WorkerPool,
        WorkerPoolConfig,
        run_http_open_loop,
    )
    from repro.storage.columnar import ColumnarStore
    from repro.storage.store import open_store

    observe = _start_observability(args)
    host, sep, port_text = args.http.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        port = -1
    if not sep or not host or port < 0:
        print(f"--http expects HOST:PORT, got {args.http!r}",
              file=sys.stderr)
        return 2
    store = open_store(args.index)
    if not isinstance(store, ColumnarStore) or not store.exists():
        print(f"--http serves worker processes memory-mapping a columnar "
              f".strg store; {store.path} is not one. Migrate with "
              f"`strg-index convert {args.index}` first.", file=sys.stderr)
        return 2
    pool = WorkerPool(store.path, WorkerPoolConfig(
        workers=args.workers, replicas=args.replicas))
    print(f"starting {args.workers} worker slot(s) x {args.replicas} "
          f"replica(s) over {store.path}...")
    with pool:
        print(f"serving {pool!r} (snapshot {pool.snapshot_version})")
        frontend = NetFrontend(pool, config=NetConfig(
            host=host, port=port, max_inflight=args.queue_depth,
            default_deadline=args.deadline if args.deadline else 30.0))
        with frontend:
            print(f"listening on http://{host}:{frontend.port} "
                  "(/knn /range /query /health /metrics)")
            if args.duration > 0:
                # Self-driven open-loop demo load, queries drawn from
                # the corpus itself.
                ref = store.load_index(mmap=True)
                queries = [og for _, og in
                           zip(range(64), ref.object_graphs())]
                report = run_http_open_loop(
                    host, frontend.port, queries, k=args.k,
                    rate=args.rate, duration=args.duration,
                    deadline=args.deadline,
                    search_budget=args.search_budget)
                print(report)
            else:
                print("serving until interrupted (Ctrl-C)...")
                try:
                    while True:
                        time.sleep(1.0)
                except KeyboardInterrupt:
                    print("interrupted; shutting down")
    if observe:
        _report_observability(args)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.api import open_database
    from repro.serving import (
        LiveIndex,
        QueryService,
        ServiceConfig,
        ShardedIndex,
        ShardedIndexConfig,
        run_open_loop,
    )

    if args.http is not None:
        return _serve_http(args)

    observe = _start_observability(args)
    db = open_database(args.index, create=False)
    index = db.index
    if args.shards is not None and getattr(index, "shards", None) is None:
        # Monolithic snapshot + --shards: reshard its OGs in memory.
        print(f"resharding {len(index)} OGs across {args.shards} shard(s)...")
        sharded = ShardedIndex(ShardedIndexConfig(
            num_shards=args.shards, index=index.config))
        sharded.build(list(index.object_graphs()))
        index = sharded
    live = LiveIndex(index)
    queries = [og for _, og in zip(range(64), live.snapshot.index.object_graphs())]
    ingest_service = None
    if args.ingest:
        from repro.datasets.real import STREAMS, render_stream_segment
        from repro.serving import IngestService, IngestServiceConfig

        if args.ingest_stream not in STREAMS:
            print(f"unknown stream {args.ingest_stream!r}; "
                  f"choose from {sorted(STREAMS)}", file=sys.stderr)
            return 2
        ingest_service = IngestService(
            live, db.pipeline, state_dir=args.state_dir,
            config=IngestServiceConfig(
                queue_depth=args.ingest_queue_depth,
                job_timeout=args.ingest_timeout,
                store_format=args.store_format,
            ))
    print(f"serving {live!r} with {args.workers} worker(s); "
          f"driving {args.rate:.0f} req/s for {args.duration:.1f}s"
          + (f" while ingesting {args.ingest_jobs} clip(s)"
             if ingest_service else ""))
    with QueryService(live, ServiceConfig(
            workers=args.workers, queue_depth=args.queue_depth,
            default_deadline=args.deadline)) as service:
        if ingest_service is not None:
            # Submit the write load first (backpressured, workers drain
            # concurrently), then drive reads against the moving index.
            rng = np.random.default_rng(0)
            for i in range(args.ingest_jobs):
                video = render_stream_segment(
                    args.ingest_stream, num_frames=args.ingest_frames,
                    rng=rng)
                video.name = f"{args.ingest_stream}-live-{i:04d}"
                ingest_service.submit(video, backpressure=True)
        report = run_open_loop(service, queries, k=args.k,
                               rate=args.rate, duration=args.duration,
                               search_budget=args.search_budget)
    print(report)
    if ingest_service is not None:
        ingest_service.drain(timeout=120.0)
        health = ingest_service.health()
        ingest_service.shutdown()
        print(f"ingest: {health['indexed_jobs']} job(s) indexed, "
              f"{health['quarantined']} quarantined, "
              f"snapshot v{health['snapshot_version']} "
              f"({health['indexed_ogs']} OGs)")
        if health["freshness_lag"] is not None:
            print(f"ingest freshness lag: {health['freshness_lag'] * 1e3:.0f} ms "
                  "(upload -> queryable)")
    if observe:
        _report_observability(args)
    return 0


def _cmd_bench_load(args: argparse.Namespace) -> int:
    from repro.core.index import STRGIndexConfig
    from repro.datasets.synthetic import SyntheticConfig, generate_synthetic_ogs
    from repro.serving import (
        LiveIndex,
        QueryService,
        ServiceConfig,
        ShardedIndex,
        ShardedIndexConfig,
        run_closed_loop,
    )

    observe = _start_observability(args)
    ogs = generate_synthetic_ogs(
        SyntheticConfig(num_ogs=args.num_ogs, seed=args.seed))
    queries = generate_synthetic_ogs(SyntheticConfig(num_ogs=32, seed=99))
    throughput = {}
    for shards in args.shards:
        index = ShardedIndex(ShardedIndexConfig(
            num_shards=shards,
            index=STRGIndexConfig(n_clusters=args.clusters)))
        started = time.perf_counter()
        index.build(ogs)
        build_s = time.perf_counter() - started
        with QueryService(LiveIndex(index), ServiceConfig(
                workers=args.workers, queue_depth=args.queue_depth)) as svc:
            report = run_closed_loop(svc, queries, k=args.k,
                                     num_requests=args.requests,
                                     concurrency=args.concurrency)
        throughput[shards] = report.throughput
        print(f"{shards} shard(s) (built in {build_s:.1f}s): {report}")
    if len(throughput) > 1:
        low, high = min(throughput), max(throughput)
        print(f"speedup {high} vs {low} shard(s): "
              f"{throughput[high] / throughput[low]:.2f}x")
    if observe:
        _report_observability(args)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="strg-index",
        description="STRG-Index (SIGMOD 2005) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="synthetic end-to-end demo")
    demo.add_argument("--num-ogs", type=int, default=240)
    demo.add_argument("--noise", type=float, default=0.05)
    demo.add_argument("--clusters", type=int, default=12)
    demo.add_argument("--seed", type=int, default=0)
    demo.set_defaults(func=_cmd_demo)

    build = sub.add_parser("build", help="index a simulated stream")
    build.add_argument("output", help="output snapshot path")
    build.add_argument("--stream", default="Traffic1")
    build.add_argument("--frames", type=int, default=60)
    _add_store_format_option(
        build, "snapshot format written (auto = by suffix, NPZ default)")
    build.set_defaults(func=_cmd_build)

    ingest = sub.add_parser(
        "ingest", help="fault-tolerant batch ingest with journaling"
    )
    ingest.add_argument("output", help="output snapshot path")
    ingest.add_argument("--stream", default="Traffic1")
    ingest.add_argument("--segments", type=int, default=5)
    ingest.add_argument("--frames", type=int, default=12)
    ingest.add_argument("--fault-policy", default="retry-then-skip",
                        choices=["fail-fast", "skip-and-quarantine",
                                 "retry-then-skip"])
    ingest.add_argument("--fault-rate", type=float, default=0.0,
                        help="injected per-segment failure probability")
    ingest.add_argument("--journal", default=None,
                        help="journal path (default: <output>.journal)")
    ingest.add_argument("--seed", type=int, default=0)
    ingest.add_argument("--workers", type=int, default=None,
                        help="frame-parallel segmentation workers per "
                             "segment (results are identical at any "
                             "worker count; default serial)")
    _add_store_format_option(
        ingest, "snapshot format written (auto = by suffix, NPZ default)")
    _add_observe_options(ingest)
    ingest.set_defaults(func=_cmd_ingest)

    recover = sub.add_parser(
        "recover", help="inspect snapshot + journal after a crash"
    )
    recover.add_argument("index", help="index NPZ path")
    recover.add_argument("--journal", default=None,
                         help="journal path (default: <index>.journal)")
    recover.add_argument("--limit", type=int, default=10,
                         help="max pending segments listed")
    recover.set_defaults(func=_cmd_recover)

    query = sub.add_parser("query", help="k-NN query a saved index")
    query.add_argument("index", help="index snapshot path (NPZ or .strg)")
    query.add_argument("--pattern", type=int, default=0)
    query.add_argument("-k", type=int, default=5)
    query.add_argument("--search-budget", type=int, default=None,
                       metavar="N",
                       help="max exact distance evaluations (approximate "
                            "sketch-tier search; omit for exact)")
    query.add_argument("--mmap", default="auto",
                       choices=("auto", "always", "never"),
                       help="memory-map the snapshot instead of copying it "
                            "into RAM (columnar stores only). With "
                            "--search-budget, mmap mode answers straight "
                            "from the store's sketch columns without "
                            "materializing the tree (out-of-core search); "
                            "'always' fails on formats that cannot mmap, "
                            "'never' forces the eager in-RAM load")
    _add_store_format_option(
        query, "pin the snapshot format instead of autodetecting")
    _add_observe_options(query)
    query.set_defaults(func=_cmd_query)

    convert = sub.add_parser(
        "convert", help="migrate a snapshot between store formats"
    )
    convert.add_argument("source", help="existing snapshot (NPZ or .strg)")
    convert.add_argument("dest", nargs="?", default=None,
                         help="destination path (default: next to the "
                              "source, e.g. corpus.npz -> corpus.strg/)")
    convert.add_argument("--format", default="columnar",
                         choices=["columnar", "npz"],
                         help="destination format (default: columnar)")
    convert.add_argument("--no-verify", action="store_true",
                         help="skip the deep integrity pass on the "
                              "destination")
    convert.set_defaults(func=_cmd_convert)

    bench = sub.add_parser("bench", help="smoke benchmark vs M-tree")
    bench.add_argument("--num-ogs", type=int, default=240)
    bench.set_defaults(func=_cmd_bench)

    shots = sub.add_parser("shots", help="parse simulated streams into shots")
    shots.add_argument("streams", nargs="+",
                       help="stream names to concatenate (e.g. Traffic1 Lab2)")
    shots.add_argument("--frames", type=int, default=30,
                       help="frames rendered per stream")
    shots.set_defaults(func=_cmd_shots)

    motion = sub.add_parser("motion", help="motion-attribute query on a saved index")
    motion.add_argument("index", help="index NPZ path")
    motion.add_argument("--direction", type=float, default=None,
                        help="heading in degrees (0 = east)")
    motion.add_argument("--min-velocity", type=float, default=None)
    motion.add_argument("--max-velocity", type=float, default=None)
    motion.add_argument("--min-duration", type=int, default=None)
    motion.add_argument("--limit", type=int, default=10)
    motion.set_defaults(func=_cmd_motion)

    serve = sub.add_parser(
        "serve", help="run the query service over a saved index"
    )
    serve.add_argument("index",
                       help="index snapshot path (NPZ or .strg; "
                            "monolithic or sharded)")
    serve.add_argument("--shards", type=int, default=None,
                       help="reshard a monolithic snapshot across N shards")
    serve.add_argument("--http", default=None, metavar="HOST:PORT",
                       help="serve over HTTP with worker *processes* "
                            "memory-mapping the columnar snapshot "
                            "(requires a .strg store; port 0 = ephemeral)")
    serve.add_argument("--replicas", type=int, default=1,
                       help="worker processes per shard slot in --http "
                            "mode (2+ keeps shards served through a "
                            "single worker crash)")
    serve.add_argument("--workers", type=int, default=2)
    serve.add_argument("--queue-depth", type=int, default=64)
    serve.add_argument("--deadline", type=float, default=None,
                       help="per-request deadline in seconds")
    serve.add_argument("--rate", type=float, default=50.0,
                       help="offered load in requests/second")
    serve.add_argument("--duration", type=float, default=2.0,
                       help="seconds of open-loop load to drive")
    serve.add_argument("-k", type=int, default=5)
    serve.add_argument("--search-budget", type=int, default=None,
                       metavar="N",
                       help="per-query exact-evaluation budget (approximate "
                            "sketch-tier search; omit for exact)")
    serve.add_argument("--ingest", action="store_true",
                       help="stream clips into the live index while serving")
    serve.add_argument("--ingest-jobs", type=int, default=4,
                       help="clips to ingest during the run")
    serve.add_argument("--ingest-frames", type=int, default=8,
                       help="frames per ingested clip")
    serve.add_argument("--ingest-stream", default="Traffic1",
                       help="simulated stream feeding the ingest service")
    serve.add_argument("--ingest-queue-depth", type=int, default=16)
    serve.add_argument("--ingest-timeout", type=float, default=None,
                       help="per-job processing timeout in seconds")
    serve.add_argument("--state-dir", default=None,
                       help="journal/spool/checkpoint directory "
                            "(enables crash recovery)")
    _add_store_format_option(
        serve, "checkpoint snapshot format for --state-dir (columnar "
               "checkpoints append O(delta) segments)")
    _add_observe_options(serve)
    serve.set_defaults(func=_cmd_serve)

    bench_load = sub.add_parser(
        "bench-load", help="closed-loop serving benchmark at several shard counts"
    )
    bench_load.add_argument("--shards", type=int, nargs="+", default=[1, 4])
    bench_load.add_argument("--num-ogs", type=int, default=480)
    bench_load.add_argument("--clusters", type=int, default=10,
                            help="per-shard cluster count")
    bench_load.add_argument("--requests", type=int, default=64)
    bench_load.add_argument("--concurrency", type=int, default=2)
    bench_load.add_argument("--workers", type=int, default=2)
    bench_load.add_argument("--queue-depth", type=int, default=64)
    bench_load.add_argument("-k", type=int, default=10)
    bench_load.add_argument("--seed", type=int, default=0)
    _add_observe_options(bench_load)
    bench_load.set_defaults(func=_cmd_bench_load)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``strg-index`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
