"""Fault policies and quarantine records for graceful-degradation ingest.

A :class:`FaultPolicy` decides what ``VideoDatabase.ingest`` does when a
segment fails with a *recoverable* error (:data:`RECOVERABLE_ERRORS`):

- ``FAIL_FAST``        — propagate immediately (the pre-resilience
  behavior; right for interactive debugging).
- ``SKIP``             — quarantine the segment and keep ingesting.
- ``RETRY_THEN_SKIP``  — retry the segment under the database's
  :class:`~repro.resilience.retry.RetryPolicy`, then quarantine.  The
  default: transient faults heal, persistent ones are contained.

Programming errors (``TypeError``, ``KeyError``, ...) always propagate —
quarantine is for degraded *input*, not broken code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.errors import (
    ClusteringError,
    CorruptSegmentError,
    GraphStructureError,
    SegmentationError,
)

#: Errors that mark one segment as bad input rather than a library bug.
#: ``OSError`` covers decode/read failures from real frame sources.
RECOVERABLE_ERRORS: tuple[type[BaseException], ...] = (
    CorruptSegmentError,
    SegmentationError,
    GraphStructureError,
    ClusteringError,
    OSError,
)


class FaultPolicy(str, Enum):
    """How batch ingestion reacts to a recoverable per-segment failure."""

    FAIL_FAST = "fail-fast"
    SKIP = "skip-and-quarantine"
    RETRY_THEN_SKIP = "retry-then-skip"

    @classmethod
    def coerce(cls, value: "FaultPolicy | str") -> "FaultPolicy":
        """Accept either an enum member or its string value."""
        return value if isinstance(value, cls) else cls(value)


@dataclass
class QuarantineRecord:
    """One quarantined segment and the structured reason."""

    segment: str
    error_type: str
    message: str
    details: dict = field(default_factory=dict)
    attempts: int = 1

    def to_dict(self) -> dict:
        return {
            "segment": self.segment,
            "error_type": self.error_type,
            "message": self.message,
            "details": self.details,
            "attempts": self.attempts,
        }


def quarantine_record(segment: str, error: BaseException,
                      attempts: int = 1) -> QuarantineRecord:
    """Build a :class:`QuarantineRecord` from a caught exception."""
    return QuarantineRecord(
        segment=segment,
        error_type=type(error).__name__,
        message=str(error),
        details=dict(getattr(error, "details", {}) or {}),
        attempts=attempts,
    )
