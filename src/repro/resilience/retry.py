"""Retry policies with exponential backoff, jitter and a soft deadline.

:func:`call_with_retry` wraps one pipeline stage (decompose a segment,
write a snapshot) and re-runs it on retryable failures.  Delays follow a
capped exponential schedule with optional jitter; jitter is drawn from a
seeded ``random.Random`` so a policy with a fixed ``seed`` produces the
same schedule on every run — required for reproducible benchmarks and
byte-identical test assertions.

The ``sleep`` and ``clock`` hooks exist so tests can run schedules
instantly against a fake clock.
"""

from __future__ import annotations

import logging
import random
import time
from dataclasses import dataclass
from typing import Callable, Iterator, TypeVar

from repro.errors import InvalidParameterError

T = TypeVar("T")

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff configuration for one retried operation.

    ``max_attempts`` counts the first try: ``max_attempts=3`` means up to
    two retries.  Delay before retry ``i`` (1-based) is
    ``min(base_delay * multiplier**(i-1), max_delay)`` plus a uniform
    jitter of up to ``jitter`` times that delay.  ``total_timeout`` is a
    soft deadline: once the elapsed time exceeds it, no further retry is
    attempted and the last error propagates.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.0
    total_timeout: float | None = None
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise InvalidParameterError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise InvalidParameterError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise InvalidParameterError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise InvalidParameterError("jitter must be in [0, 1]")

    def delays(self) -> Iterator[float]:
        """The backoff delays before retry 1, 2, ... (without jitter cap
        randomness applied when ``jitter == 0``; deterministic under a
        fixed ``seed`` otherwise)."""
        rng = random.Random(self.seed)
        delay = self.base_delay
        for _ in range(self.max_attempts - 1):
            capped = min(delay, self.max_delay)
            if self.jitter:
                capped += capped * self.jitter * rng.random()
            yield capped
            delay *= self.multiplier


def backoff_schedule(policy: RetryPolicy) -> list[float]:
    """Materialized delay schedule of ``policy`` (for tests/telemetry)."""
    return list(policy.delays())


def call_with_retry(fn: Callable[[], T],
                    policy: RetryPolicy | None = None, *,
                    retryable: tuple[type[BaseException], ...] = (Exception,),
                    on_retry: Callable[[int, BaseException, float], None]
                    | None = None,
                    sleep: Callable[[float], None] = time.sleep,
                    clock: Callable[[], float] = time.monotonic) -> T:
    """Run ``fn`` under ``policy``, retrying on ``retryable`` errors.

    ``on_retry(attempt, error, delay)`` is called before each sleep (for
    telemetry counters).  Non-retryable exceptions propagate immediately;
    the final retryable exception propagates unchanged once attempts or
    the soft deadline are exhausted.
    """
    policy = policy or RetryPolicy()
    started = clock()
    delays = policy.delays()
    for attempt in range(1, policy.max_attempts + 1):
        try:
            return fn()
        except retryable as exc:
            if attempt >= policy.max_attempts:
                raise
            if (policy.total_timeout is not None
                    and clock() - started >= policy.total_timeout):
                logger.warning("retry deadline exceeded after %d attempt(s)",
                               attempt)
                raise
            delay = next(delays)
            if on_retry is not None:
                on_retry(attempt, exc, delay)
            logger.info("attempt %d/%d failed (%s); retrying in %.3fs",
                        attempt, policy.max_attempts, exc, delay)
            if delay > 0:
                sleep(delay)
    raise AssertionError("unreachable")  # pragma: no cover
