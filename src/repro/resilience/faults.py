"""Fault-injection harness for ingestion and persistence.

Named injection points are compiled into the pipeline and storage layers
(:data:`INJECTION_POINTS`).  Tests and benchmarks install a
:class:`FaultInjector` (via :func:`install` or the :func:`injected`
context manager) that decides — deterministically under a seeded RNG —
whether each point fires, and how:

- ``kind="raise"``    — raise a typed exception (segmenter crash,
  simulated ``OSError`` during a write, ...).
- ``kind="corrupt"``  — transform a value flowing through the point
  (e.g. replace a frame with garbage so downstream validation trips).
- ``kind="truncate"`` — truncate the file a storage point just produced,
  simulating a torn write / interrupted copy.

When no injector is installed every hook is a near-free no-op, so
production ingest pays only a module-global ``None`` check.
"""

from __future__ import annotations

import os
import random
from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.errors import (
    CorruptSegmentError,
    InvalidParameterError,
    SegmentationError,
    ShardUnavailableError,
)

#: The named injection points compiled into the library.
INJECTION_POINTS = (
    "segmentation",     # per frame, before the segmenter runs
    "tracking",         # per segment, before STRG assembly
    "decomposition",    # per segment, before OG/BG decomposition
    "storage.write",    # after the temp file is written, before rename
    "storage.read",     # before a persisted file is opened
    "storage.append",   # before a delta segment's manifest commit
    "serving.shard",    # before a shard is scanned during scatter-gather
    "ingest.accept",    # per job, during IngestService.submit admission
    "ingest.process",   # per job attempt, before the clip pipeline runs
    "ingest.commit",    # per job, before OGs stream into the live index
)

#: Default exception raised per point when a ``raise`` fault fires.
_DEFAULT_ERRORS: dict[str, Callable[[str, int], Exception]] = {
    "segmentation": lambda point, n: SegmentationError(
        f"injected segmenter failure at {point}#{n}"
    ),
    "tracking": lambda point, n: CorruptSegmentError(
        f"injected tracking failure at {point}#{n}",
        details={"point": point, "ordinal": n},
    ),
    "decomposition": lambda point, n: CorruptSegmentError(
        f"injected decomposition failure at {point}#{n}",
        details={"point": point, "ordinal": n},
    ),
    "storage.write": lambda point, n: OSError(
        f"injected I/O failure at {point}#{n}"
    ),
    "storage.read": lambda point, n: OSError(
        f"injected I/O failure at {point}#{n}"
    ),
    "storage.append": lambda point, n: OSError(
        f"injected I/O failure at {point}#{n}"
    ),
    "serving.shard": lambda point, n: ShardUnavailableError(
        f"injected shard failure at {point}#{n}",
        details={"point": point, "ordinal": n},
    ),
    "ingest.accept": lambda point, n: OSError(
        f"injected upload failure at {point}#{n}"
    ),
    "ingest.process": lambda point, n: CorruptSegmentError(
        f"injected processing failure at {point}#{n}",
        details={"point": point, "ordinal": n},
    ),
    "ingest.commit": lambda point, n: OSError(
        f"injected commit failure at {point}#{n}"
    ),
}


def _default_corrupt(value: Any) -> Any:
    """Default ``corrupt`` transform: destroy the value entirely."""
    return None


@dataclass
class FaultSpec:
    """One configured fault at one injection point."""

    point: str
    kind: str = "raise"                     # raise | corrupt | truncate
    rate: float = 0.0                       # probabilistic firing
    at: frozenset[int] = field(default_factory=frozenset)  # scripted ordinals
    error: Callable[[str, int], Exception] | type[Exception] | None = None
    transform: Callable[[Any], Any] | None = None
    truncate_to: float = 0.5                # fraction of bytes kept

    def __post_init__(self) -> None:
        if self.point not in INJECTION_POINTS:
            raise InvalidParameterError(
                f"unknown injection point {self.point!r}; "
                f"expected one of {INJECTION_POINTS}"
            )
        if self.kind not in ("raise", "corrupt", "truncate"):
            raise InvalidParameterError(f"unknown fault kind {self.kind!r}")
        if not 0.0 <= self.rate <= 1.0:
            raise InvalidParameterError("rate must be in [0, 1]")
        self.at = frozenset(self.at)

    def make_error(self, ordinal: int) -> Exception:
        if self.error is None:
            return _DEFAULT_ERRORS[self.point](self.point, ordinal)
        if isinstance(self.error, type):
            return self.error(f"injected fault at {self.point}#{ordinal}")
        return self.error(self.point, ordinal)


class FaultInjector:
    """Deterministic fault scheduler over the named injection points.

    Each call into a point increments that point's invocation ordinal;
    a fault fires when the ordinal is in a spec's scripted ``at`` set or
    when the seeded RNG draws below ``rate``.  ``counts`` and ``fired``
    expose per-point telemetry for assertions.
    """

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)
        self._specs: dict[str, list[FaultSpec]] = {}
        self.counts: Counter[str] = Counter()
        self.fired: Counter[str] = Counter()

    # -- configuration -------------------------------------------------------

    def inject(self, point: str, *, kind: str = "raise", rate: float = 0.0,
               at: Iterator[int] | frozenset[int] = (),
               error: Callable | type[Exception] | None = None,
               transform: Callable[[Any], Any] | None = None,
               truncate_to: float = 0.5) -> "FaultInjector":
        """Register a fault at ``point``; returns ``self`` for chaining."""
        spec = FaultSpec(point=point, kind=kind, rate=rate,
                         at=frozenset(at), error=error,
                         transform=transform, truncate_to=truncate_to)
        self._specs.setdefault(point, []).append(spec)
        return self

    # -- firing decisions ----------------------------------------------------

    def _next(self, point: str, kinds: tuple[str, ...]) -> FaultSpec | None:
        """Advance ``point``'s ordinal and return a firing spec, if any."""
        ordinal = self.counts[point]
        self.counts[point] += 1
        for spec in self._specs.get(point, ()):
            if spec.kind not in kinds:
                continue
            if ordinal in spec.at or (
                spec.rate > 0.0 and self._rng.random() < spec.rate
            ):
                self.fired[point] += 1
                return spec
        return None

    def check(self, point: str, **context: Any) -> None:
        """Raise the configured exception if a ``raise`` fault fires."""
        spec = self._next(point, ("raise",))
        if spec is not None:
            exc = spec.make_error(self.counts[point] - 1)
            if context and hasattr(exc, "details"):
                exc.details.update(context)
            raise exc

    def transform(self, point: str, value: Any) -> Any:
        """Apply a ``corrupt`` transform if one fires; else pass through."""
        spec = self._next(point, ("corrupt",))
        if spec is None:
            return value
        return (spec.transform or _default_corrupt)(value)

    def truncate(self, point: str, path: str | os.PathLike) -> bool:
        """Truncate ``path`` if a ``truncate`` fault fires at ``point``."""
        spec = self._next(point, ("truncate",))
        if spec is None:
            return False
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(max(0, int(size * spec.truncate_to)))
        return True


# -- global installation -----------------------------------------------------

_ACTIVE: FaultInjector | None = None


def install(injector: FaultInjector) -> None:
    """Make ``injector`` the process-wide active injector."""
    global _ACTIVE
    _ACTIVE = injector


def uninstall() -> None:
    """Deactivate fault injection."""
    global _ACTIVE
    _ACTIVE = None


def active() -> FaultInjector | None:
    """The currently installed injector, if any."""
    return _ACTIVE


@contextmanager
def injected(injector: FaultInjector):
    """Context manager: install ``injector`` for the ``with`` body."""
    previous = _ACTIVE
    install(injector)
    try:
        yield injector
    finally:
        install(previous) if previous is not None else uninstall()


def maybe_fail(point: str, **context: Any) -> None:
    """Hook: raise at ``point`` if the active injector says so."""
    if _ACTIVE is not None:
        _ACTIVE.check(point, **context)


def maybe_transform(point: str, value: Any) -> Any:
    """Hook: corrupt ``value`` at ``point`` if the active injector says so."""
    if _ACTIVE is not None:
        return _ACTIVE.transform(point, value)
    return value


def maybe_truncate(point: str, path: str | os.PathLike) -> bool:
    """Hook: truncate the file at ``path`` if the active injector says so."""
    if _ACTIVE is not None:
        return _ACTIVE.truncate(point, path)
    return False
