"""Append-only ingest journal for crash recovery.

Each ingested (or quarantined) segment appends one JSON line; every
successful snapshot save appends a ``checkpoint`` line.  After a crash,
:meth:`VideoDatabase.recover` replays the journal against the last valid
snapshot: segments journaled *after* the last checkpoint were ingested
but never persisted, so they are reported as pending for re-ingestion.

Writes are flushed and fsync'd per record, so a crash can lose at most
the line being written.  A torn final line (the classic
kill-mid-append artifact) is detected and skipped on read; garbage in
the *middle* of the journal truncates the replay at that point — the
records before it are still trusted.
"""

from __future__ import annotations

import json
import logging
import os
from dataclasses import dataclass, field
from typing import IO

logger = logging.getLogger(__name__)


class IngestJournal:
    """Append-only JSONL writer with per-record durability."""

    def __init__(self, path: str | os.PathLike):
        self.path = os.fspath(path)
        self._fh: IO[str] | None = None

    def append(self, record: dict) -> None:
        """Durably append one record (flush + fsync)."""
        if self._fh is None:
            self._fh = open(self.path, "a", encoding="utf-8")
        self._fh.write(json.dumps(record, default=str) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "IngestJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_journal(path: str | os.PathLike) -> tuple[list[dict], bool]:
    """Read a journal, tolerating a torn tail.

    Returns ``(records, truncated)`` where ``truncated`` is True when a
    malformed line stopped the replay early (records after it are
    discarded).  A missing journal reads as ``([], False)``.
    """
    records: list[dict] = []
    try:
        with open(path, "r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    logger.warning(
                        "journal %s: malformed line %d; replay truncated",
                        path, lineno + 1,
                    )
                    return records, True
                if not isinstance(record, dict):
                    logger.warning(
                        "journal %s: non-object line %d; replay truncated",
                        path, lineno + 1,
                    )
                    return records, True
                records.append(record)
    except FileNotFoundError:
        return [], False
    return records, False


@dataclass
class RecoveryReport:
    """Outcome of :meth:`VideoDatabase.recover`."""

    snapshot_loaded: bool
    snapshot_path: str
    snapshot_ogs: int
    snapshot_error: str | None
    journal_path: str
    journal_truncated: bool
    pending_segments: list[str] = field(default_factory=list)
    quarantined_segments: list[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "snapshot_loaded": self.snapshot_loaded,
            "snapshot_path": self.snapshot_path,
            "snapshot_ogs": self.snapshot_ogs,
            "snapshot_error": self.snapshot_error,
            "journal_path": self.journal_path,
            "journal_truncated": self.journal_truncated,
            "pending_segments": list(self.pending_segments),
            "quarantined_segments": list(self.quarantined_segments),
        }


@dataclass
class JobReplay:
    """Journal replay for the streaming ingest service.

    ``jobs_in_order`` holds one merged info dict per job id, in original
    submission order, carrying the last-seen value of every journaled
    field (``state``, ``clip``, ``spool``, ``attempts``, ...).

    ``completed``    job ids INDEXED *before* the last checkpoint — their
                     OGs are durable in the snapshot; never re-run.
    ``pending``      info dicts for jobs that must re-run: last state
                     QUEUED/RUNNING, or INDEXED after the last checkpoint
                     (their OGs died with the process).
    ``quarantined``  info dicts whose last state is QUARANTINED — poison
                     decisions survive restarts and are never retried.
    """

    jobs_in_order: list[dict] = field(default_factory=list)
    completed: list[str] = field(default_factory=list)
    pending: list[dict] = field(default_factory=list)
    quarantined: list[dict] = field(default_factory=list)


def replay_jobs(records: list[dict]) -> JobReplay:
    """Fold job-state journal records into a :class:`JobReplay`.

    ``job`` events merge per job id (last write wins per field); each
    ``checkpoint`` event marks every currently-INDEXED job durable.  The
    classification implements the service's recovery invariant: an
    INDEXED record proves the OGs reached a published snapshot, and a
    later checkpoint proves that snapshot reached disk — so only
    checkpoint-covered INDEXED jobs are completed, and re-running the
    rest can neither lose an OG nor index one twice.
    """
    merged: dict[str, dict] = {}
    durable: list[str] = []
    durable_set: set[str] = set()
    for record in records:
        event = record.get("event")
        if event == "job":
            job_id = str(record.get("job"))
            info = merged.setdefault(job_id, {"job": job_id})
            for key, value in record.items():
                if key != "event" and value is not None:
                    info[key] = value
        elif event == "checkpoint":
            for job_id, info in merged.items():
                if info.get("state") == "INDEXED" \
                        and job_id not in durable_set:
                    durable.append(job_id)
                    durable_set.add(job_id)
    jobs = list(merged.values())
    pending = [info for info in jobs
               if info["job"] not in durable_set
               and info.get("state") in ("QUEUED", "RUNNING", "INDEXED")]
    quarantined = [info for info in jobs
                   if info.get("state") == "QUARANTINED"]
    return JobReplay(jobs_in_order=jobs, completed=durable,
                     pending=pending, quarantined=quarantined)


def replay_pending(records: list[dict]) -> tuple[list[str], list[str]]:
    """Split journal records into (pending, quarantined) segment names.

    ``pending`` holds segments journaled as successfully ingested after
    the last checkpoint — i.e. state the last snapshot does not contain.
    """
    pending: list[str] = []
    quarantined: list[str] = []
    for record in records:
        event = record.get("event")
        if event == "checkpoint":
            pending.clear()
        elif event == "segment":
            name = str(record.get("segment"))
            if record.get("status") == "ok":
                pending.append(name)
            else:
                quarantined.append(name)
    return pending, quarantined
