"""Fault tolerance: injection harness, retry policies, quarantine,
journaling and crash recovery (see ``docs/RESILIENCE.md``).

The paper's streaming claim (Sec. 5) only holds in practice if ingestion
survives degraded input and persistence survives being killed.  This
package supplies the machinery; ``repro.pipeline`` and ``repro.storage``
wire it through the hot paths.
"""

from repro.resilience.faults import (
    INJECTION_POINTS,
    FaultInjector,
    FaultSpec,
    active,
    injected,
    install,
    maybe_fail,
    maybe_transform,
    maybe_truncate,
    uninstall,
)
from repro.resilience.journal import (
    IngestJournal,
    JobReplay,
    RecoveryReport,
    read_journal,
    replay_jobs,
    replay_pending,
)
from repro.resilience.policy import (
    RECOVERABLE_ERRORS,
    FaultPolicy,
    QuarantineRecord,
    quarantine_record,
)
from repro.resilience.retry import (
    RetryPolicy,
    backoff_schedule,
    call_with_retry,
)

__all__ = [
    "INJECTION_POINTS",
    "FaultInjector",
    "FaultSpec",
    "FaultPolicy",
    "IngestJournal",
    "JobReplay",
    "QuarantineRecord",
    "RecoveryReport",
    "RECOVERABLE_ERRORS",
    "RetryPolicy",
    "active",
    "backoff_schedule",
    "call_with_retry",
    "injected",
    "install",
    "maybe_fail",
    "maybe_transform",
    "maybe_truncate",
    "quarantine_record",
    "read_journal",
    "replay_jobs",
    "replay_pending",
    "uninstall",
]
