"""M-tree: dynamic balanced metric index.

Stores arbitrary objects under a metric distance.  Leaf entries keep their
distance to the parent pivot; routing entries keep a pivot object, a
covering radius and a child node.  Search prunes with the two classic
triangle-inequality bounds:

- routing entry: skip the subtree when
  ``|d(q, parent_pivot) - d(pivot, parent_pivot)| - radius > range``;
- leaf entry: skip the distance evaluation when
  ``|d(q, parent_pivot) - d(object, parent_pivot)| > range``.

These saved evaluations are precisely what Figure 7(b) counts.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.distance.batch import one_vs_many, pairwise_matrix, supports_batch
from repro.errors import IndexStateError, InvalidParameterError
from repro.mtree.split import SplitPolicy, make_policy, partition_by_closer
from repro.observability import OBS

DistanceFn = Callable[[Any, Any], float]


@dataclass
class MTreeConfig:
    """M-tree tuning: fan-out, split policy and RNG seed."""

    node_capacity: int = 8
    split_policy: str = "random"
    sample_size: int = 10
    seed: int = 0

    def __post_init__(self) -> None:
        if self.node_capacity < 2:
            raise InvalidParameterError(
                f"node_capacity must be >= 2, got {self.node_capacity}"
            )


class _Entry:
    """Leaf entry: an object with its distance to the parent pivot."""

    __slots__ = ("obj", "obj_id", "dist_to_parent")

    def __init__(self, obj: Any, obj_id: Any, dist_to_parent: float = 0.0):
        self.obj = obj
        self.obj_id = obj_id
        self.dist_to_parent = dist_to_parent


class _RoutingEntry:
    """Routing entry: pivot + covering radius + child node."""

    __slots__ = ("pivot", "radius", "dist_to_parent", "child")

    def __init__(self, pivot: Any, radius: float, child: "_Node",
                 dist_to_parent: float = 0.0):
        self.pivot = pivot
        self.radius = radius
        self.dist_to_parent = dist_to_parent
        self.child = child


class _Node:
    """A tree node holding leaf entries or routing entries."""

    __slots__ = ("entries", "is_leaf")

    def __init__(self, is_leaf: bool):
        self.entries: list = []
        self.is_leaf = is_leaf


class MTree:
    """Dynamic M-tree over arbitrary objects.

    ``distance`` must be a metric for search correctness (use
    :class:`repro.distance.eged.MetricEGED` for OGs); wrap it in
    :class:`repro.distance.base.CountingDistance` to measure evaluation
    counts.
    """

    def __init__(self, distance: DistanceFn,
                 config: MTreeConfig | None = None):
        self.distance = distance
        self.config = config or MTreeConfig()
        self.policy: SplitPolicy = make_policy(
            self.config.split_policy, self.config.sample_size
        )
        self._rng = np.random.default_rng(self.config.seed)
        self._root = _Node(is_leaf=True)
        self._size = 0
        self._id_counter = itertools.count()

    def __len__(self) -> int:
        return self._size

    # -- insertion -----------------------------------------------------------

    def insert(self, obj: Any, obj_id: Any = None) -> Any:
        """Insert an object; returns its id (auto-assigned if omitted)."""
        if obj_id is None:
            obj_id = next(self._id_counter)
        entry = _Entry(obj, obj_id)
        path = self._choose_leaf(entry.obj)
        leaf = path[-1][0]
        parent_pivot = path[-1][1]
        entry.dist_to_parent = (
            self.distance(obj, parent_pivot) if parent_pivot is not None else 0.0
        )
        leaf.entries.append(entry)
        self._size += 1
        self._handle_overflow(path)
        return obj_id

    def bulk_load(self, objects: list, object_ids: list | None = None,
                  executor: Any = None) -> list:
        """Bulk-construct an *empty* tree; returns the assigned ids.

        Recursive k-center partition: each level greedily picks up to
        ``node_capacity`` farthest-point pivots, assigns every object to
        its closest pivot, and recurses per group.  Every level costs one
        batched distance sweep per pivot instead of a per-object root-to-
        leaf descent, so building from scratch is far cheaper than
        repeated :meth:`insert` while producing a tree with the same
        search invariants (covering radii bound members via the triangle
        inequality).  Pass a :class:`repro.parallel.DistanceExecutor` to
        fan the sweeps across worker processes.
        """
        if self._size != 0:
            raise IndexStateError("bulk_load requires an empty M-tree")
        objs = list(objects)
        if object_ids is None:
            ids = [next(self._id_counter) for _ in objs]
        else:
            ids = list(object_ids)
            if len(ids) != len(objs):
                raise InvalidParameterError(
                    f"{len(objs)} objects but {len(ids)} ids"
                )
        if not objs:
            return ids
        self._root, _ = self._bulk_subtree(objs, ids, None, executor)
        self._size = len(objs)
        return ids

    def _bulk_row(self, pivot: Any, objs: list,
                  executor: Any = None) -> np.ndarray:
        """Distances from one pivot to many objects, batched if possible."""
        if supports_batch(self.distance):
            if executor is not None:
                return executor.one_vs_many(self.distance, pivot, objs)
            return one_vs_many(self.distance, pivot, objs)
        return np.array([float(self.distance(obj, pivot)) for obj in objs],
                        dtype=np.float64)

    def _bulk_subtree(self, objs: list, ids: list, parent_pivot: Any,
                      executor: Any) -> tuple[_Node, float]:
        """Build a subtree; returns ``(node, covering_radius)`` with the
        radius measured from ``parent_pivot``."""
        n = len(objs)
        cap = self.config.node_capacity
        if n <= cap:
            node = _Node(is_leaf=True)
            if parent_pivot is None:
                dists = np.zeros(n, dtype=np.float64)
            else:
                dists = self._bulk_row(parent_pivot, objs, executor)
            for obj, oid, d in zip(objs, ids, dists):
                node.entries.append(_Entry(obj, oid, float(d)))
            return node, float(np.max(dists, initial=0.0))
        # Greedy farthest-point pivot selection (k-center seeding).
        first = int(self._rng.integers(n))
        pivot_idx = [first]
        pivot_rows = [self._bulk_row(objs[first], objs, executor)]
        closest = pivot_rows[0].copy()
        while len(pivot_idx) < cap:
            nxt = int(np.argmax(closest))
            if closest[nxt] <= 0.0:
                break  # every remaining object coincides with a pivot
            pivot_idx.append(nxt)
            pivot_rows.append(self._bulk_row(objs[nxt], objs, executor))
            np.minimum(closest, pivot_rows[-1], out=closest)
        if len(pivot_idx) == 1:
            # All objects identical — distance cannot separate them, so
            # deal round-robin into equal groups to guarantee the
            # recursion shrinks.
            deal = np.arange(n) % cap
            group_list = [
                (int(members[0]), members)
                for g in range(cap)
                if (members := np.where(deal == g)[0]).size
            ]
        else:
            assign = np.argmin(np.vstack(pivot_rows), axis=0)
            # Each pivot anchors its own group, so every group is a
            # strict subset and the recursion terminates.
            assign[np.array(pivot_idx)] = np.arange(len(pivot_idx))
            group_list = [
                (pi, members)
                for p, pi in enumerate(pivot_idx)
                if (members := np.where(assign == p)[0]).size
            ]
        child_pivots = [objs[pi] for pi, _ in group_list]
        if parent_pivot is None:
            pivot_d = np.zeros(len(group_list), dtype=np.float64)
        else:
            pivot_d = self._bulk_row(parent_pivot, child_pivots, executor)
        node = _Node(is_leaf=False)
        radius = 0.0
        for (pi, members), child_pivot, d_parent in zip(
                group_list, child_pivots, pivot_d):
            child, child_radius = self._bulk_subtree(
                [objs[int(i)] for i in members],
                [ids[int(i)] for i in members],
                child_pivot, executor,
            )
            node.entries.append(
                _RoutingEntry(child_pivot, child_radius, child,
                              float(d_parent))
            )
            radius = max(radius, float(d_parent) + child_radius)
        return node, radius

    def _choose_leaf(self, obj: Any) -> list[tuple[_Node, Any, int]]:
        """Descend to the best leaf; returns the path as
        ``(node, parent_pivot, entry_index_in_parent)`` tuples."""
        path: list[tuple[_Node, Any, int]] = [(self._root, None, -1)]
        node = self._root
        while not node.is_leaf:
            best: _RoutingEntry | None = None
            best_idx = -1
            best_key = (1, float("inf"))  # (needs_enlargement, metric)
            for idx, routing in enumerate(node.entries):
                d = self.distance(obj, routing.pivot)
                if d <= routing.radius:
                    key = (0, d)
                else:
                    key = (1, d - routing.radius)
                if key < best_key:
                    best_key = key
                    best = routing
                    best_idx = idx
            assert best is not None
            if best_key[0] == 1:
                best.radius += best_key[1]  # enlarge to cover the new object
            path.append((best.child, best.pivot, best_idx))
            node = best.child
        return path

    def _handle_overflow(self, path: list[tuple[_Node, Any, int]]) -> None:
        """Split overflowing nodes bottom-up along the insertion path."""
        for depth in range(len(path) - 1, -1, -1):
            node = path[depth][0]
            if len(node.entries) <= self.config.node_capacity:
                continue
            parent = path[depth - 1][0] if depth > 0 else None
            parent_entry_idx = path[depth][2]
            self._split(node, parent, parent_entry_idx,
                        path[depth - 1][1] if depth > 0 else None)

    def _split(self, node: _Node, parent: _Node | None,
               parent_entry_idx: int, grandparent_pivot: Any) -> None:
        """Split ``node`` into two; install routing entries in the parent
        (creating a new root when ``node`` is the root)."""
        entries = node.entries
        pivots_obj = [
            e.obj if node.is_leaf else e.pivot for e in entries
        ]
        cache: dict[tuple[int, int], float] = {}
        if (self.policy.wants_full_matrix
                and supports_batch(self.distance)
                and getattr(self.distance, "cache_token", None) is not None):
            # Sampling promotion scores many candidate pairs and ends up
            # touching most of the matrix; one batched sweep beats the
            # lazy scalar fills.  CountingDistance keeps token=None, so
            # evaluation-count benchmarks still measure the lazy path.
            matrix = pairwise_matrix(self.distance, pivots_obj)
            n = len(entries)
            for i in range(n - 1):
                for j in range(i + 1, n):
                    cache[(i, j)] = float(matrix[i, j])

        def pairwise(i: int, j: int) -> float:
            key = (min(i, j), max(i, j))
            if key not in cache:
                cache[key] = self.distance(pivots_obj[i], pivots_obj[j])
            return cache[key]

        a, b = self.policy.promote(len(entries), pairwise, self._rng)
        members_a, members_b, _, _ = partition_by_closer(
            len(entries), a, b, pairwise
        )
        node_a = _Node(node.is_leaf)
        node_b = _Node(node.is_leaf)
        radius_a = self._fill(node_a, entries, members_a, pivots_obj[a], pairwise, a)
        radius_b = self._fill(node_b, entries, members_b, pivots_obj[b], pairwise, b)

        routing_a = _RoutingEntry(pivots_obj[a], radius_a, node_a)
        routing_b = _RoutingEntry(pivots_obj[b], radius_b, node_b)
        if parent is None:
            new_root = _Node(is_leaf=False)
            new_root.entries = [routing_a, routing_b]
            self._root = new_root
        else:
            if grandparent_pivot is not None:
                routing_a.dist_to_parent = self.distance(
                    routing_a.pivot, grandparent_pivot
                )
                routing_b.dist_to_parent = self.distance(
                    routing_b.pivot, grandparent_pivot
                )
            parent.entries[parent_entry_idx] = routing_a
            parent.entries.append(routing_b)

    def _fill(self, target: _Node, entries: list, members: list[int],
              pivot_obj: Any, pairwise, pivot_idx: int) -> float:
        """Move member entries into ``target``; return the covering radius."""
        radius = 0.0
        for i in members:
            entry = entries[i]
            d = 0.0 if i == pivot_idx else pairwise(i, pivot_idx)
            entry.dist_to_parent = d
            if isinstance(entry, _RoutingEntry):
                radius = max(radius, d + entry.radius)
            else:
                radius = max(radius, d)
            target.entries.append(entry)
        return radius

    # -- search ---------------------------------------------------------------

    def knn(self, query: Any, k: int) -> list[tuple[float, Any, Any]]:
        """k nearest neighbors as ``(distance, obj_id, obj)``, ascending."""
        if k < 1:
            raise InvalidParameterError(f"k must be >= 1, got {k}")
        if self._size == 0:
            raise IndexStateError("cannot search an empty M-tree")
        # Max-heap of current best (negated distances).
        best: list[tuple[float, int, Any, Any]] = []
        counter = itertools.count()

        def kth_bound() -> float:
            return -best[0][0] if len(best) == k else float("inf")

        # Min-heap of (lower_bound, tiebreak, node, d(q, parent_pivot)).
        pending: list[tuple[float, int, _Node, float]] = [
            (0.0, next(counter), self._root, 0.0)
        ]
        while pending:
            bound, _, node, d_parent = heapq.heappop(pending)
            OBS.count("mtree.node_visits")
            if bound > kth_bound():
                continue
            if node.is_leaf:
                for entry in node.entries:
                    if abs(d_parent - entry.dist_to_parent) > kth_bound():
                        continue
                    d = self.distance(query, entry.obj)
                    if d <= kth_bound():
                        heapq.heappush(
                            best, (-d, next(counter), entry.obj_id, entry.obj)
                        )
                        if len(best) > k:
                            heapq.heappop(best)
            else:
                for routing in node.entries:
                    cheap = abs(d_parent - routing.dist_to_parent) - routing.radius
                    if cheap > kth_bound():
                        continue
                    d_pivot = self.distance(query, routing.pivot)
                    child_bound = max(d_pivot - routing.radius, 0.0)
                    if child_bound <= kth_bound():
                        heapq.heappush(
                            pending,
                            (child_bound, next(counter), routing.child, d_pivot),
                        )
        results = sorted(((-d, oid, obj) for d, _, oid, obj in best),
                         key=lambda item: item[0])
        return results

    def range_query(self, query: Any, radius: float) -> list[tuple[float, Any, Any]]:
        """All objects within ``radius``, as ``(distance, obj_id, obj)``."""
        if radius < 0:
            raise InvalidParameterError(f"radius must be >= 0, got {radius}")
        results: list[tuple[float, Any, Any]] = []

        def visit(node: _Node, d_parent: float) -> None:
            OBS.count("mtree.node_visits")
            if node.is_leaf:
                for entry in node.entries:
                    if abs(d_parent - entry.dist_to_parent) > radius:
                        continue
                    d = self.distance(query, entry.obj)
                    if d <= radius:
                        results.append((d, entry.obj_id, entry.obj))
            else:
                for routing in node.entries:
                    if (abs(d_parent - routing.dist_to_parent)
                            - routing.radius > radius):
                        continue
                    d_pivot = self.distance(query, routing.pivot)
                    if d_pivot - routing.radius <= radius:
                        visit(routing.child, d_pivot)

        visit(self._root, 0.0)
        return sorted(results, key=lambda item: item[0])

    # -- introspection ---------------------------------------------------------

    def height(self) -> int:
        """Tree height (1 for a root-only tree)."""
        h = 1
        node = self._root
        while not node.is_leaf:
            node = node.entries[0].child
            h += 1
        return h

    def node_count(self) -> int:
        """Total number of nodes."""
        def count(node: _Node) -> int:
            if node.is_leaf:
                return 1
            return 1 + sum(count(r.child) for r in node.entries)
        return count(self._root)

    def __repr__(self) -> str:
        return (
            f"MTree(size={self._size}, height={self.height()}, "
            f"policy={self.policy.name})"
        )
