"""M-tree baseline index (Ciaccia, Patella & Zezula, VLDB 1997).

The comparison index of Section 6: a balanced metric tree storing the same
Object Graphs under the same metric distance (EGED_M), so that the Figure 7
experiments isolate index *structure*.  Both promotion policies the paper
benchmarks are implemented: RANDOM (``MT-RA``) and SAMPLING (``MT-SA``).
"""

from repro.mtree.tree import MTree, MTreeConfig
from repro.mtree.split import (
    SplitPolicy,
    RandomPromotion,
    SamplingPromotion,
    make_policy,
)

__all__ = [
    "MTree",
    "MTreeConfig",
    "SplitPolicy",
    "RandomPromotion",
    "SamplingPromotion",
    "make_policy",
]
