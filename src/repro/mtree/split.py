"""M-tree node split: promotion policies and partitioning.

A split promotes two pivot entries and partitions the overflowing node's
entries between them (generalized-hyperplane: each entry goes to the
closer pivot).  The promotion policy is the knob the paper benchmarks:

- **RANDOM** (``MT-RA``): promote two entries uniformly at random — the
  fastest policy (no extra distance computations).
- **SAMPLING** (``MT-SA``): evaluate a sample of candidate pivot pairs and
  keep the pair minimizing the larger covering radius (the ``mM_RAD``
  criterion) — the most accurate policy.
"""

from __future__ import annotations

import abc
import itertools
from typing import Callable

import numpy as np

from repro.errors import InvalidParameterError

#: ``pairwise(i, j)`` returns the distance between entries i and j.
PairwiseFn = Callable[[int, int], float]


def partition_by_closer(n_entries: int, pivot_a: int, pivot_b: int,
                        pairwise: PairwiseFn
                        ) -> tuple[list[int], list[int], float, float]:
    """Assign each entry to the closer pivot; return partitions and radii.

    Pivots always join their own partition.  Returns
    ``(members_a, members_b, radius_a, radius_b)`` where radii are the
    max member distance to the respective pivot.
    """
    members_a, members_b = [pivot_a], [pivot_b]
    radius_a = radius_b = 0.0
    for i in range(n_entries):
        if i in (pivot_a, pivot_b):
            continue
        da = pairwise(i, pivot_a)
        db = pairwise(i, pivot_b)
        if da <= db:
            members_a.append(i)
            radius_a = max(radius_a, da)
        else:
            members_b.append(i)
            radius_b = max(radius_b, db)
    return members_a, members_b, radius_a, radius_b


class SplitPolicy(abc.ABC):
    """Chooses the two promoted pivot entries of an overflowing node."""

    name = "abstract"
    #: Policies that touch most entry pairs anyway (candidate scoring)
    #: set this so the tree precomputes the full pairwise matrix in one
    #: batched sweep instead of thousands of scalar DP calls.
    wants_full_matrix = False

    @abc.abstractmethod
    def promote(self, n_entries: int, pairwise: PairwiseFn,
                rng: np.random.Generator) -> tuple[int, int]:
        """Return the indices of the two promoted entries."""


class RandomPromotion(SplitPolicy):
    """RANDOM policy (MT-RA): two distinct entries uniformly at random."""

    name = "random"

    def promote(self, n_entries: int, pairwise: PairwiseFn,
                rng: np.random.Generator) -> tuple[int, int]:
        """Two distinct entries, uniformly at random (no distance calls)."""
        if n_entries < 2:
            raise InvalidParameterError("cannot split a node with < 2 entries")
        a, b = rng.choice(n_entries, size=2, replace=False)
        return int(a), int(b)


class SamplingPromotion(SplitPolicy):
    """SAMPLING policy (MT-SA): best of ``sample_size`` random pairs.

    Each candidate pair is scored by the larger covering radius its
    generalized-hyperplane partition would produce; the minimizing pair is
    promoted.
    """

    name = "sampling"
    wants_full_matrix = True

    def __init__(self, sample_size: int = 10):
        if sample_size < 1:
            raise InvalidParameterError(
                f"sample_size must be >= 1, got {sample_size}"
            )
        self.sample_size = sample_size

    def promote(self, n_entries: int, pairwise: PairwiseFn,
                rng: np.random.Generator) -> tuple[int, int]:
        """The sampled pair minimizing the larger covering radius."""
        if n_entries < 2:
            raise InvalidParameterError("cannot split a node with < 2 entries")
        all_pairs = list(itertools.combinations(range(n_entries), 2))
        if len(all_pairs) <= self.sample_size:
            candidates = all_pairs
        else:
            chosen = rng.choice(len(all_pairs), size=self.sample_size,
                                replace=False)
            candidates = [all_pairs[int(i)] for i in chosen]
        best_pair = candidates[0]
        best_score = float("inf")
        for a, b in candidates:
            _, _, ra, rb = partition_by_closer(n_entries, a, b, pairwise)
            score = max(ra, rb)
            if score < best_score:
                best_score = score
                best_pair = (a, b)
        return best_pair


def make_policy(name: str, sample_size: int = 10) -> SplitPolicy:
    """Factory: ``"random"`` -> MT-RA, ``"sampling"`` -> MT-SA."""
    if name == "random":
        return RandomPromotion()
    if name == "sampling":
        return SamplingPromotion(sample_size)
    raise InvalidParameterError(
        f"unknown split policy {name!r}; expected 'random' or 'sampling'"
    )
