"""Process-level fan-out: distance jobs and ordered chunk maps.

The batched kernels of :mod:`repro.distance.batch` already turn P
Python-loop DPs into one NumPy-speed DP, but a single process still runs
on one core.  :class:`DistanceExecutor` chunks big ``one_vs_many`` /
``pairwise_matrix`` jobs across a ``ProcessPoolExecutor`` so multi-core
machines scale the remaining NumPy work roughly linearly.

:func:`ordered_chunk_map` generalizes the same idea beyond distance
work: an ordered process-pool ``map`` over contiguous item chunks,
streaming results out in item order.  The ingestion pipeline uses it to
segment frames and build RAGs in parallel while the sequential tracker
consumes completed RAGs in frame order.

Overhead model (why the thresholds exist)
-----------------------------------------
Spawning a pool costs tens of milliseconds and every task pickles its
distance object and series chunk, so parallelism only pays when the DP
work dwarfs that overhead:

- jobs smaller than ``min_pairs`` pair evaluations run serially;
- each worker receives ``chunks_per_worker`` tasks so stragglers (longer
  series sort into later chunks) rebalance;
- ``workers=0`` (or ``1``) forces the serial path — results are
  *bit-identical* either way, because every pair's DP only reads its own
  rows of the padded batch, so chunk boundaries cannot change values.
  Tests use ``workers=0`` for determinism of scheduling, not of results.

The executor only fans out :class:`~repro.distance.base.Distance`
instances (they pickle as plain attribute bags); bare callables fall back
to the serial path, which preserves their argument order and closure
state.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Sequence

import numpy as np

from repro.distance.base import Distance, SeriesLike, as_series
from repro.distance.batch import one_vs_many
from repro.errors import InvalidParameterError
from repro.observability import OBS

#: Default lower bound on pair evaluations before a pool is worth it.
MIN_PARALLEL_PAIRS = 512


def usable_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def chunk_bounds(n: int, n_chunks: int) -> list[tuple[int, int]]:
    """Split ``range(n)`` into at most ``n_chunks`` contiguous, balanced,
    non-empty ``(lo, hi)`` slices."""
    if n <= 0:
        return []
    bounds = np.linspace(0, n, min(n, max(1, n_chunks)) + 1).astype(int)
    return [(int(lo), int(hi)) for lo, hi in zip(bounds[:-1], bounds[1:])
            if hi > lo]


def _run_chunk(fn: Callable[[int, list], list], start: int,
               chunk: list) -> list:
    """Worker task: apply a chunk function to one contiguous slice."""
    return fn(start, chunk)


def ordered_chunk_map(fn: Callable[[int, list], list], items: Sequence,
                      *, workers: int | None = None,
                      chunks_per_worker: int = 2,
                      force_pool: bool = False):
    """Map ``fn`` over contiguous chunks of ``items``, yielding per-item
    results **in item order**.

    ``fn(start, chunk)`` receives the chunk's offset into ``items`` and
    must return one result per chunk element; it (and the items) must
    pickle.  All chunks are submitted to a process pool up front and
    results stream out in order as the leading chunk completes — so a
    sequential consumer (the :class:`~repro.graph.tracking.GraphTracker`)
    overlaps with computation of the trailing chunks.

    Chunking never changes results: ``fn`` sees the same ``(start,
    chunk)`` slices on the serial path, which is used when ``workers``
    (resolved against :func:`usable_cpus`) is 1 — or when the machine
    only exposes one core, where a pool is pure overhead.  ``force_pool``
    overrides that guard so tests can exercise the pool path anywhere.
    """
    if chunks_per_worker < 1:
        raise InvalidParameterError(
            f"chunks_per_worker must be >= 1, got {chunks_per_worker}"
        )
    if workers is not None and workers < 0:
        raise InvalidParameterError(f"workers must be >= 0, got {workers}")
    n = len(items)
    requested = usable_cpus() if workers in (None, 0) else workers
    effective = requested if force_pool else min(requested, usable_cpus())
    use_pool = n > 1 and (effective > 1 or (force_pool and requested > 1))
    if not use_pool:
        with OBS.span("parallel.map", items=n, mode="serial"):
            for start, stop in chunk_bounds(n, max(1, requested)):
                yield from fn(start, list(items[start:stop]))
        return
    with OBS.span("parallel.map", items=n, mode="pool",
                  workers=max(2, effective)):
        slices = chunk_bounds(n, max(2, effective) * chunks_per_worker)
        with ProcessPoolExecutor(max_workers=max(2, effective)) as pool:
            futures = [
                pool.submit(_run_chunk, fn, start, list(items[start:stop]))
                for start, stop in slices
            ]
            if OBS.enabled:
                OBS.count("parallel.map_jobs")
                OBS.count("parallel.map_chunks", len(futures))
            for future in futures:
                yield from future.result()


def _worker_one_vs_many(distance: Distance, query: np.ndarray,
                        chunk: list[np.ndarray]) -> np.ndarray:
    """Worker task: one batched sweep over a chunk of series."""
    return distance.compute_many(query, chunk)


def _worker_rows(distance: Distance, items: list[np.ndarray],
                 rows: list[int], symmetric: bool,
                 others: list[np.ndarray] | None) -> list[np.ndarray]:
    """Worker task: a set of matrix rows (upper-triangle tails when
    ``symmetric``)."""
    results = []
    for i in rows:
        targets = items[i + 1:] if symmetric else others
        results.append(distance.compute_many(items[i], targets))
    return results


class DistanceExecutor:
    """Fan distance jobs out across worker processes.

    Parameters
    ----------
    workers:
        Process count; ``None`` uses ``os.cpu_count()``, ``0`` or ``1``
        disables the pool entirely (serial, deterministic scheduling).
    min_pairs:
        Smallest job (in pair evaluations) worth shipping to the pool.
    chunks_per_worker:
        Oversubscription factor for straggler rebalancing.

    Usable as a context manager; the pool is created lazily on first
    parallel job and torn down by :meth:`shutdown` / ``__exit__``.
    """

    def __init__(self, workers: int | None = None,
                 min_pairs: int = MIN_PARALLEL_PAIRS,
                 chunks_per_worker: int = 4):
        if workers is not None and workers < 0:
            raise InvalidParameterError(
                f"workers must be >= 0, got {workers}"
            )
        if chunks_per_worker < 1:
            raise InvalidParameterError(
                f"chunks_per_worker must be >= 1, got {chunks_per_worker}"
            )
        self.workers = (os.cpu_count() or 1) if workers is None else workers
        self.min_pairs = min_pairs
        self.chunks_per_worker = chunks_per_worker
        self._pool: ProcessPoolExecutor | None = None
        # Serving worker threads share one executor; guard lazy pool
        # creation/teardown so two threads can't race a double-create.
        self._pool_lock = threading.Lock()

    # -- lifecycle ------------------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            with self._pool_lock:
                if self._pool is None:
                    self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def shutdown(self) -> None:
        """Tear the worker pool down (jobs submitted later re-create it)."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown()

    def __enter__(self) -> "DistanceExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def _serial(self, n_pairs: int, distance: Any) -> bool:
        return (
            self.workers <= 1
            or n_pairs < self.min_pairs
            or not isinstance(distance, Distance)
        )

    # -- jobs -----------------------------------------------------------------

    def one_vs_many(self, distance: Distance | Callable[[Any, Any], float],
                    query: SeriesLike,
                    items: Sequence[SeriesLike]) -> np.ndarray:
        """Parallel :func:`repro.distance.batch.one_vs_many`."""
        if self._serial(len(items), distance):
            with OBS.span("parallel.one_vs_many", items=len(items),
                          mode="serial"):
                return one_vs_many(distance, query, items)
        with OBS.span("parallel.one_vs_many", items=len(items), mode="pool"):
            a = as_series(query)
            bs = [as_series(item) for item in items]
            n_chunks = min(len(bs), self.workers * self.chunks_per_worker)
            bounds = np.linspace(0, len(bs), n_chunks + 1).astype(int)
            pool = self._ensure_pool()
            futures = [
                pool.submit(_worker_one_vs_many, distance, a, bs[lo:hi])
                for lo, hi in zip(bounds[:-1], bounds[1:])
                if hi > lo
            ]
            if OBS.enabled:
                OBS.count("parallel.jobs")
                OBS.count("parallel.chunks", len(futures))
                OBS.count("distance.pairs_computed", len(bs))
            return np.concatenate([f.result() for f in futures])

    def pairwise_matrix(self, distance: Distance | Callable[[Any, Any], float],
                        items: Sequence[SeriesLike],
                        others: Sequence[SeriesLike] | None = None
                        ) -> np.ndarray:
        """Parallel :func:`repro.distance.batch.pairwise_matrix`.

        Rows are dealt to tasks in a round-robin so the shrinking
        upper-triangle tails of the symmetric case balance out.
        """
        from repro.distance.batch import pairwise_matrix as serial_pairwise

        symmetric = others is None
        n = len(items)
        n_pairs = n * (n - 1) // 2 if symmetric else n * len(others)
        if self._serial(n_pairs, distance):
            with OBS.span("parallel.pairwise_matrix", pairs=n_pairs,
                          mode="serial"):
                return serial_pairwise(distance, items, others)
        with OBS.span("parallel.pairwise_matrix", pairs=n_pairs, mode="pool"):
            items_n = [as_series(item) for item in items]
            others_n = None if symmetric else [as_series(o) for o in others]
            row_count = n - 1 if symmetric else n
            n_tasks = max(1, min(row_count,
                                 self.workers * self.chunks_per_worker))
            row_sets: list[list[int]] = [[] for _ in range(n_tasks)]
            for i in range(row_count):
                row_sets[i % n_tasks].append(i)
            pool = self._ensure_pool()
            futures = {
                pool.submit(_worker_rows, distance, items_n, rows, symmetric,
                            others_n): rows
                for rows in row_sets if rows
            }
            if OBS.enabled:
                OBS.count("parallel.jobs")
                OBS.count("parallel.chunks", len(futures))
                OBS.count("distance.pairs_computed", n_pairs)
            if symmetric:
                out = np.zeros((n, n), dtype=np.float64)
                for future, rows in futures.items():
                    for i, row in zip(rows, future.result()):
                        out[i, i + 1:] = row
                        out[i + 1:, i] = row
                return out
            out = np.empty((n, len(others)), dtype=np.float64)
            for future, rows in futures.items():
                for i, row in zip(rows, future.result()):
                    out[i] = row
            return out
