"""Reproduction of *STRG-Index: Spatio-Temporal Region Graph Indexing for
Large Video Databases* (Lee, Oh, Hwang — SIGMOD 2005).

The blessed public surface is small (see ``docs/API.md``):

    >>> import repro
    >>> db = repro.open_database("corpus.npz")
    >>> db.ingest(video_segment)
    >>> hits = db.knn(example_trajectory, k=5)
    >>> repro.observability.configure(enabled=True)   # tracing + metrics

The package mirrors the paper's pipeline:

- :mod:`repro.video` — frame containers, synthetic video rendering and
  mean-shift region segmentation (EDISON substitute).
- :mod:`repro.graph` — Region Adjacency Graphs, Spatio-Temporal Region
  Graphs, graph-based tracking and STRG decomposition into object/background
  graphs.
- :mod:`repro.distance` — Extended Graph Edit Distance (EGED) in both
  non-metric and metric forms, plus the DTW/LCS/ERP/Lp baselines.
- :mod:`repro.clustering` — EM / K-Means / K-Harmonic-Means over arbitrary
  distances, BIC model selection and evaluation metrics.
- :mod:`repro.mtree` — a full M-tree baseline with RANDOM and SAMPLING
  split policies.
- :mod:`repro.core` — the STRG-Index itself: three-level tree, build,
  BIC-driven node split and k-NN search.
- :mod:`repro.datasets` — the paper's synthetic workload (48 motion
  patterns, Pelleg+Vlachos style) and simulated surveillance streams.
- :mod:`repro.storage` — the ``open_store`` snapshot facade (columnar
  memory-mapped store + checksummed NPZ archives, see ``docs/STORAGE.md``)
  and the ``VideoDatabase`` facade.
- :mod:`repro.resilience` — fault injection, retry/backoff policies,
  quarantine, ingest journaling and crash recovery.
- :mod:`repro.parallel` — multi-process fan-out: distance jobs
  (:class:`DistanceExecutor`) and ordered frame-parallel ingest
  (:func:`ordered_chunk_map`).
- :mod:`repro.observability` — tracing spans, a metrics registry
  (JSON / Prometheus exporters) and profiling hooks through every hot
  path, behind one ``configure(enabled=...)`` switch.
- :mod:`repro.search` — the approximate search tier: quantized trajectory
  sketches, voting candidate generation and budgeted exact rerank behind
  ``knn(..., search_budget=)`` (see ``docs/SEARCH.md``).
- :mod:`repro.serving` — sharded scatter-gather indexes, copy-on-write
  snapshots with live swaps, a thread-pool query service with admission
  control and deadlines, a crash-safe streaming ingest service,
  multi-process shard workers over the mmap store behind an asyncio
  HTTP/JSON frontend, and closed-/open-loop load generators (see
  ``docs/SERVING.md``, ``docs/STREAMING.md`` and ``docs/NETWORK.md``).
"""

from repro import observability
from repro.api import open_database
from repro.core.index import STRGIndex, STRGIndexConfig
from repro.distance.eged import EGED, MetricEGED, eged
from repro.graph.object_graph import ObjectGraph
from repro.graph.strg import SpatioTemporalRegionGraph
from repro.parallel import DistanceExecutor, ordered_chunk_map
from repro.pipeline import PipelineConfig, VideoPipeline
from repro.query import Query, QueryResult
from repro.resilience import FaultInjector, FaultPolicy, RetryPolicy
from repro.search import SketchConfig, SketchIndex, approx_knn
from repro.serving import (
    IndexSnapshot,
    IngestService,
    IngestServiceConfig,
    LiveIndex,
    NetConfig,
    NetFrontend,
    QueryService,
    ServiceConfig,
    ShardedIndex,
    ShardedIndexConfig,
    WorkerPool,
    WorkerPoolConfig,
)
from repro.storage.database import QueryHit, VideoDatabase
from repro.storage.store import open_store

__version__ = "1.7.0"

__all__ = [
    "DistanceExecutor",
    "EGED",
    "FaultInjector",
    "FaultPolicy",
    "IndexSnapshot",
    "IngestService",
    "IngestServiceConfig",
    "LiveIndex",
    "MetricEGED",
    "NetConfig",
    "NetFrontend",
    "ObjectGraph",
    "PipelineConfig",
    "Query",
    "QueryHit",
    "QueryResult",
    "QueryService",
    "RetryPolicy",
    "STRGIndex",
    "STRGIndexConfig",
    "ServiceConfig",
    "ShardedIndex",
    "ShardedIndexConfig",
    "SketchConfig",
    "SketchIndex",
    "SpatioTemporalRegionGraph",
    "VideoDatabase",
    "VideoPipeline",
    "WorkerPool",
    "WorkerPoolConfig",
    "__version__",
    "approx_knn",
    "eged",
    "observability",
    "open_database",
    "open_store",
    "ordered_chunk_map",
]
